// aisd — the long-lived anticipatory-scheduling daemon.
//
// Listens on a unix-domain socket for framed compile requests (see
// docs/SERVER.md for the protocol) and serves them from a shared warm
// schedule cache through the ThreadPool:
//
//   aisd --socket /tmp/aisd.sock
//   aisd --socket /tmp/aisd.sock --threads 8 --cache-dir /var/cache/aisd
//
// Flags:
//   --socket PATH         unix socket to listen on (required)
//   --threads N           pool workers (0 = one per hardware thread)
//   --queue-cap N         bounded admission queue depth (default 1024)
//   --batch-max N         micro-batch size cap (default 32)
//   --batch-window-us N   micro-batch gather window (default 200)
//   --cache BOOL          enable/disable the shared schedule cache
//   --cache-dir DIR       persistent cache tier shared across restarts
//   --metrics-out F       write the metric registry on clean shutdown
//                         (Prometheus text, or JSON when F ends in .json)
//
// Shut down with the SHUTDOWN verb (aisload --shutdown) or SIGINT/SIGTERM;
// both drain every admitted request and flush the cache's disk tier.
#include <signal.h>

#include <cstdio>
#include <fstream>
#include <thread>

#include "core/schedule_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/process_stats.hpp"
#include "server/server.hpp"
#include "support/cli.hpp"

namespace {

using namespace ais;

bool ends_with_json(const std::string& path) {
  return path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  server::ServerOptions options;
  options.socket_path = args.get_string("socket", "");
  if (options.socket_path.empty()) {
    std::fprintf(stderr,
                 "usage: aisd --socket PATH [--threads N] [--queue-cap N] "
                 "[--batch-max N] [--batch-window-us N] [--cache BOOL] "
                 "[--cache-dir DIR] [--metrics-out FILE]\n");
    return 1;
  }
  options.threads = static_cast<int>(args.get_int("threads", 0));
  options.queue_cap =
      static_cast<std::size_t>(args.get_int("queue-cap", 1024));
  options.batch_max = static_cast<std::size_t>(args.get_int("batch-max", 32));
  options.batch_window_us = args.get_int("batch-window-us", 200);

  if (args.has("cache")) {
    ScheduleCache::global().set_enabled(args.get_bool("cache", true));
  }
  const std::string cache_dir = args.get_string("cache-dir", "");
  if (!cache_dir.empty()) ScheduleCache::global().set_disk_dir(cache_dir);
  const std::string metrics_path = args.get_string("metrics-out", "");

  // Graceful SIGINT/SIGTERM: block them here (inherited by every server
  // thread), then let a watcher thread sigwait and stop the server — signal
  // handlers cannot take the locks a graceful stop needs.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  server::Server server(options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "aisd: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "aisd: listening on %s (%d workers)\n",
               options.socket_path.c_str(),
               options.threads > 0
                   ? options.threads
                   : static_cast<int>(std::thread::hardware_concurrency()));

  std::thread([&server, sigs] {
    int sig = 0;
    if (sigwait(&sigs, &sig) == 0) server.stop();
  }).detach();  // never fires on the SHUTDOWN-verb path; gone at exit

  server.wait();

  if (!metrics_path.empty()) {
    obs::record_process_gauges();
    std::ofstream out(metrics_path);
    if (out.is_open()) {
      if (ends_with_json(metrics_path)) {
        obs::MetricRegistry::global().write_json(out);
      } else {
        obs::MetricRegistry::global().write_prometheus(out);
      }
    }
    if (!out.good()) {
      std::fprintf(stderr, "aisd: cannot write metrics to %s\n",
                   metrics_path.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "aisd: clean shutdown\n");
  return 0;
}
