// aisd — the long-lived anticipatory-scheduling daemon.
//
// Listens on a unix-domain socket and/or a TCP endpoint for framed compile
// requests (see docs/SERVER.md for the protocol and the QoS model) and
// serves them from a shared warm schedule cache through the ThreadPool:
//
//   aisd --socket /tmp/aisd.sock
//   aisd --socket /tmp/aisd.sock --threads 8 --cache-dir /var/cache/aisd
//   aisd --tcp 127.0.0.1:7433
//   aisd --tcp 127.0.0.1:0 --port-file /tmp/aisd.port   # kernel-picked port
//   aisd --socket /tmp/aisd.sock --quotas bulk-ci=50 --quota-default 0
//
// Flags:
//   --socket PATH         unix socket to listen on
//   --tcp HOST:PORT       TCP endpoint to listen on (port 0 = kernel pick);
//                         at least one of --socket/--tcp is required
//   --port-file F         write the bound TCP port to F after listen (how
//                         scripts consume --tcp HOST:0)
//   --threads N           pool workers (0 = one per hardware thread)
//   --queue-cap N         bounded admission queue depth (default 1024)
//   --batch-max N         micro-batch size cap (default 32)
//   --batch-window-us N   micro-batch gather window (default 200)
//   --dispatch-ahead N    unfinished jobs allowed past admission at once
//                         (0 = 2x workers; small = tighter QoS ordering)
//   --read-deadline-ms N  disconnect a peer stalled mid-frame this long
//                         (default 30000; 0 disables)
//   --qos BOOL            priority/quota/aging admission (default true;
//                         false = FIFO, priorities parsed but ignored)
//   --quota-default RPS   token-bucket rate for unlisted tenants (0 = off)
//   --quotas LIST         per-tenant rates, "tenant=rps,tenant=rps"
//   --age-promote-us N    wait before a queued request is promoted one
//                         priority level (default 100000)
//   --defer-max-us N      over-quota work is force-admitted past this wait
//                         (default 1000000)
//   --cache BOOL          enable/disable the shared schedule cache
//   --cache-dir DIR       persistent cache tier shared across restarts
//   --metrics-out F       write the metric registry on clean shutdown
//                         (Prometheus text, or JSON when F ends in .json)
//
// Shut down with the SHUTDOWN verb (aisload --shutdown) or SIGINT/SIGTERM;
// both drain every admitted request and flush the cache's disk tier.
#include <signal.h>

#include <cstdio>
#include <fstream>
#include <thread>

#include "core/schedule_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/process_stats.hpp"
#include "server/server.hpp"
#include "support/cli.hpp"

namespace {

using namespace ais;

bool ends_with_json(const std::string& path) {
  return path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  server::ServerOptions options;
  options.socket_path = args.get_string("socket", "");
  options.tcp_addr = args.get_string("tcp", "");
  if (options.socket_path.empty() && options.tcp_addr.empty()) {
    std::fprintf(
        stderr,
        "usage: aisd [--socket PATH] [--tcp HOST:PORT] [--port-file F] "
        "[--threads N] [--queue-cap N] [--batch-max N] [--batch-window-us N] "
        "[--dispatch-ahead N] [--read-deadline-ms N] [--qos BOOL] "
        "[--quota-default RPS] [--quotas tenant=rps,...] "
        "[--age-promote-us N] [--defer-max-us N] [--cache BOOL] "
        "[--cache-dir DIR] [--metrics-out FILE]\n"
        "(at least one of --socket / --tcp)\n");
    return 1;
  }
  options.threads = static_cast<int>(args.get_int("threads", 0));
  options.queue_cap =
      static_cast<std::size_t>(args.get_int("queue-cap", 1024));
  options.batch_max = static_cast<std::size_t>(args.get_int("batch-max", 32));
  options.batch_window_us = args.get_int("batch-window-us", 200);
  options.dispatch_ahead =
      static_cast<std::size_t>(args.get_int("dispatch-ahead", 0));
  options.read_deadline_ms = args.get_int("read-deadline-ms", 30'000);
  options.admission.qos = args.get_bool("qos", true);
  options.admission.default_rps = args.get_double("quota-default", 0.0);
  options.admission.age_promote_us = args.get_int("age-promote-us", 100'000);
  options.admission.defer_max_us = args.get_int("defer-max-us", 1'000'000);
  const std::string quotas = args.get_string("quotas", "");
  if (!quotas.empty()) {
    std::string quota_error;
    if (!server::parse_quota_list(quotas, &options.admission.quotas,
                                  &quota_error)) {
      std::fprintf(stderr, "aisd: --quotas: %s\n", quota_error.c_str());
      return 1;
    }
  }

  if (args.has("cache")) {
    ScheduleCache::global().set_enabled(args.get_bool("cache", true));
  }
  const std::string cache_dir = args.get_string("cache-dir", "");
  if (!cache_dir.empty()) ScheduleCache::global().set_disk_dir(cache_dir);
  const std::string metrics_path = args.get_string("metrics-out", "");
  const std::string port_file = args.get_string("port-file", "");

  // Graceful SIGINT/SIGTERM: block them here (inherited by every server
  // thread), then let a watcher thread sigwait and stop the server — signal
  // handlers cannot take the locks a graceful stop needs.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  server::Server server(options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "aisd: %s\n", error.c_str());
    return 1;
  }
  const int workers =
      options.threads > 0
          ? options.threads
          : static_cast<int>(std::thread::hardware_concurrency());
  if (!options.socket_path.empty()) {
    std::fprintf(stderr, "aisd: listening on %s (%d workers)\n",
                 options.socket_path.c_str(), workers);
  }
  if (!options.tcp_addr.empty()) {
    std::fprintf(stderr, "aisd: listening on tcp %s port %d (%d workers)\n",
                 options.tcp_addr.c_str(), server.tcp_port(), workers);
  }
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.tcp_port() << '\n';
    if (!out.good()) {
      std::fprintf(stderr, "aisd: cannot write port file %s\n",
                   port_file.c_str());
      server.stop();
      return 1;
    }
  }

  std::thread([&server, sigs] {
    int sig = 0;
    if (sigwait(&sigs, &sig) == 0) server.stop();
  }).detach();  // never fires on the SHUTDOWN-verb path; gone at exit

  server.wait();

  if (!metrics_path.empty()) {
    obs::record_process_gauges();
    std::ofstream out(metrics_path);
    if (out.is_open()) {
      if (ends_with_json(metrics_path)) {
        obs::MetricRegistry::global().write_json(out);
      } else {
        obs::MetricRegistry::global().write_prometheus(out);
      }
    }
    if (!out.good()) {
      std::fprintf(stderr, "aisd: cannot write metrics to %s\n",
                   metrics_path.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "aisd: clean shutdown\n");
  return 0;
}
