// aisload — load generator for the aisd daemon.
//
// Drives a request mix of randomly generated IR programs (plus any .s files
// from an examples directory) at a daemon endpoint (unix socket or TCP),
// either closed-loop (each client thread keeps one request in flight) or
// open-loop (requests are pipelined on a fixed global schedule, one sender +
// one receiver thread per connection), and reports client-side latency
// percentiles:
//
//   aisload --socket /tmp/aisd.sock --requests 100000 --clients 32
//   aisload --tcp 127.0.0.1:7433 --requests 100000 --clients 32
//   aisload --socket /tmp/aisd.sock --rate 5000 --requests 50000
//   aisload --socket /tmp/aisd.sock --metrics      # dump daemon METRICS
//   aisload --socket /tmp/aisd.sock --shutdown     # graceful stop
//
// A second client class turns one run into a mixed-tenant contention
// experiment — per-class percentiles come back separately (the QoS gate in
// bench/bench_server.cpp is the same experiment in-process):
//
//   aisload --socket /tmp/aisd.sock --clients 2 --tenant web \
//           --priority interactive --requests 2000 \
//           --clients2 16 --tenant2 batch --priority2 bulk --requests2 8000
//
// Flags:
//   --socket PATH     daemon unix socket
//   --tcp HOST:PORT   daemon TCP endpoint (exactly one of --socket/--tcp)
//   --requests N      class-1 requests (default 1000)
//   --clients N       class-1 concurrent connections (default 8)
//   --priority P      class-1 priority: interactive | normal | bulk
//   --tenant T        class-1 tenant name
//   --clients2 N      class-2 connections (0 = single-class run)
//   --requests2 N     class-2 requests (default: same as --requests)
//   --priority2 P     class-2 priority
//   --tenant2 T       class-2 tenant name
//   --rate R          open-loop target req/s across class-1 clients
//                     (0 = closed loop; class 2 is always closed-loop)
//   --bodies N        distinct programs in the mix (default 64; smaller =
//                     warmer cache, 0 = every request unique)
//   --blocks N        blocks per generated trace (default 4)
//   --insts N         instructions per block (default 12)
//   --mode M          trace | loop | cfg (default trace)
//   --machine NAME    machine preset forwarded to the daemon
//   --window N        lookahead window forwarded to the daemon
//   --profile BOOL    request counter streams with each reply
//   --examples DIR    mix in every *.s file found in DIR
//   --seed N          request-mix PRNG seed (default 1)
//   --json            print the summary as one JSON object on stdout
//   --metrics         fetch METRICS, print the Prometheus text, exit
//   --shutdown        send SHUTDOWN and exit
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "ir/instruction.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "support/cli.hpp"
#include "support/prng.hpp"
#include "workloads/random_ir.hpp"

namespace {

using namespace ais;

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string render_trace(const Trace& trace) {
  std::string text;
  for (const BasicBlock& bb : trace.blocks) {
    text += "block " + bb.label + ":\n";
    for (const Instruction& inst : bb.insts) {
      text += "  " + inst.to_string() + "\n";
    }
  }
  return text;
}

/// The request-body pool: `bodies` generated programs (deterministic in
/// seed) plus every .s file under `examples_dir`.
std::vector<std::string> build_body_pool(std::size_t bodies, int blocks,
                                         int insts, std::uint64_t seed,
                                         const std::string& mode,
                                         const std::string& examples_dir) {
  std::vector<std::string> pool;
  Prng prng(seed);
  RandomIrParams params;
  params.num_insts = insts;
  for (std::size_t i = 0; i < bodies; ++i) {
    const int n = mode == "loop" ? 1 : blocks;
    pool.push_back(render_trace(random_ir_trace(prng, params, n)));
  }
  if (!examples_dir.empty()) {
    std::error_code ec;
    std::vector<std::filesystem::path> files;
    for (const auto& entry :
         std::filesystem::directory_iterator(examples_dir, ec)) {
      if (entry.path().extension() == ".s") files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const auto& path : files) {
      std::ifstream in(path);
      if (!in.is_open()) continue;
      pool.emplace_back(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
    }
  }
  return pool;
}

struct LoadConfig {
  std::string target;  // socket path or host:port
  bool tcp = false;
  std::size_t requests = 1000;
  std::size_t clients = 8;
  double rate = 0.0;  // open-loop req/s; 0 = closed loop
  std::string mode = "trace";
  std::string machine = "rs6000";
  std::int64_t window = 0;
  bool profile = false;
};

/// One client class in a mixed-tenant run: its connections draw request ids
/// from [id_begin, id_end) and tag every request with its priority/tenant.
struct ClientClass {
  std::size_t clients = 0;
  std::size_t id_begin = 0;
  std::size_t id_end = 0;
  std::string priority;  // empty = daemon default (normal)
  std::string tenant;    // empty = daemon default tenant
  std::atomic<std::size_t> next_id{0};
};

bool connect_client(server::Client& client, const LoadConfig& cfg,
                    std::string* error) {
  return cfg.tcp ? client.connect_tcp(cfg.target, error)
                 : client.connect(cfg.target, error);
}

server::Request make_request(const LoadConfig& cfg, const ClientClass& cls,
                             const std::vector<std::string>& pool,
                             std::size_t id, Prng& prng, int blocks,
                             int insts) {
  server::Request req;
  req.verb = server::kVerbCompile;
  req.options["mode"] = cfg.mode;
  req.options["machine"] = cfg.machine;
  req.options["window"] = std::to_string(cfg.window);
  if (cfg.profile) req.options["profile"] = "1";
  if (!cls.priority.empty()) req.options["priority"] = cls.priority;
  if (!cls.tenant.empty()) req.options["tenant"] = cls.tenant;
  req.options["id"] = std::to_string(id);
  if (pool.empty()) {
    // --bodies 0: every request is a fresh program (all-miss load).
    RandomIrParams params;
    params.num_insts = insts;
    const int n = cfg.mode == "loop" ? 1 : blocks;
    req.body = render_trace(random_ir_trace(prng, params, n));
  } else {
    req.body = pool[prng.index(pool.size())];
  }
  return req;
}

/// Parses the id echoed in a reply: the `id=` option on OK, the trailing
/// " (id=N)" suffix on ERR.  Returns npos when absent.
std::size_t reply_id(const server::Response& resp) {
  std::string text(resp.option("id"));
  if (text.empty()) {
    const std::size_t pos = resp.message.rfind("(id=");
    if (pos == std::string::npos || resp.message.back() != ')') {
      return std::string::npos;
    }
    text = resp.message.substr(pos + 4, resp.message.size() - pos - 5);
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return std::string::npos;
  return static_cast<std::size_t>(v);
}

struct LoadResult {
  std::vector<std::int64_t> latency_us;  // one slot per request id; -1 unset
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> transport_failures{0};
};

/// Closed loop: each client thread keeps exactly one request outstanding,
/// drawing ids from its class's shared counter until the budget is spent.
void run_closed_client(const LoadConfig& cfg, ClientClass& cls,
                       const std::vector<std::string>& pool, int blocks,
                       int insts, std::uint64_t seed, LoadResult& result) {
  server::Client client;
  std::string error;
  if (!connect_client(client, cfg, &error)) {
    result.transport_failures.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Prng prng(seed);
  for (;;) {
    const std::size_t id =
        cls.id_begin + cls.next_id.fetch_add(1, std::memory_order_relaxed);
    if (id >= cls.id_end) return;
    const server::Request req =
        make_request(cfg, cls, pool, id, prng, blocks, insts);
    const std::int64_t start = now_us();
    server::Response resp;
    if (!client.call(req, &resp, &error)) {
      result.transport_failures.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    result.latency_us[id] = now_us() - start;
    if (resp.ok) {
      result.ok.fetch_add(1, std::memory_order_relaxed);
    } else {
      result.errors.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

/// Open loop: ids are striped across connections and each is sent at its
/// global schedule slot start + id*interval, regardless of responses; a
/// receiver thread matches replies back to ids.  Latency therefore includes
/// any queueing the daemon builds up when it falls behind the offered rate.
void run_open_client(const LoadConfig& cfg, const ClientClass& cls,
                     const std::vector<std::string>& pool, int blocks,
                     int insts, std::uint64_t seed, std::size_t client_index,
                     std::int64_t start_us, double interval_us,
                     std::vector<std::atomic<std::int64_t>>& send_us,
                     LoadResult& result) {
  server::Client client;
  std::string error;
  if (!connect_client(client, cfg, &error)) {
    result.transport_failures.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::size_t expected =
      client_index < cfg.requests
          ? (cfg.requests - client_index + cfg.clients - 1) / cfg.clients
          : 0;

  std::thread receiver([&] {
    // Every sent request gets exactly one reply; when the daemon dies
    // early, recv fails and we bail with a transport failure instead.
    server::Response resp;
    std::string recv_error;
    for (std::size_t received = 0; received < expected; ++received) {
      if (!client.receive(&resp, &recv_error)) {
        result.transport_failures.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      const std::size_t id = reply_id(resp);
      if (id < result.latency_us.size()) {
        const std::int64_t t0 = send_us[id].load(std::memory_order_acquire);
        if (t0 > 0) result.latency_us[id] = now_us() - t0;
      }
      if (resp.ok) {
        result.ok.fetch_add(1, std::memory_order_relaxed);
      } else {
        result.errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  Prng prng(seed);
  for (std::size_t id = client_index; id < cfg.requests;
       id += cfg.clients) {
    const server::Request req =
        make_request(cfg, cls, pool, id, prng, blocks, insts);
    const std::int64_t due =
        start_us + static_cast<std::int64_t>(interval_us * id);
    const std::int64_t now = now_us();
    if (now < due) {
      std::this_thread::sleep_for(std::chrono::microseconds(due - now));
    }
    send_us[id].store(now_us(), std::memory_order_release);
    if (!client.send(req, &error)) {
      result.transport_failures.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  receiver.join();
}

std::int64_t percentile(const std::vector<std::int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(rank + 0.5)];
}

/// Latency percentiles over the request-id range [begin, end).
struct ClassSummary {
  std::size_t completed = 0;
  std::int64_t p50 = 0;
  std::int64_t p90 = 0;
  std::int64_t p99 = 0;
  std::int64_t max = 0;
};

ClassSummary summarize(const std::vector<std::int64_t>& latency_us,
                       std::size_t begin, std::size_t end) {
  std::vector<std::int64_t> sorted;
  sorted.reserve(end - begin);
  for (std::size_t id = begin; id < end && id < latency_us.size(); ++id) {
    if (latency_us[id] >= 0) sorted.push_back(latency_us[id]);
  }
  std::sort(sorted.begin(), sorted.end());
  ClassSummary s;
  s.completed = sorted.size();
  s.p50 = percentile(sorted, 0.50);
  s.p90 = percentile(sorted, 0.90);
  s.p99 = percentile(sorted, 0.99);
  s.max = sorted.empty() ? 0 : sorted.back();
  return s;
}

int simple_verb(const LoadConfig& cfg, const std::string& verb) {
  server::Client client;
  std::string error;
  if (!connect_client(client, cfg, &error)) {
    std::fprintf(stderr, "aisload: %s\n", error.c_str());
    return 1;
  }
  server::Request req;
  req.verb = verb;
  server::Response resp;
  if (!client.call(req, &resp, &error)) {
    std::fprintf(stderr, "aisload: %s\n", error.c_str());
    return 1;
  }
  if (!resp.ok) {
    std::fprintf(stderr, "aisload: %s\n", resp.message.c_str());
    return 1;
  }
  if (!resp.diag_text.empty()) std::fputs(resp.diag_text.c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  LoadConfig cfg;
  const std::string socket = args.get_string("socket", "");
  const std::string tcp = args.get_string("tcp", "");
  if (socket.empty() == tcp.empty()) {
    std::fprintf(stderr,
                 "usage: aisload (--socket PATH | --tcp HOST:PORT) "
                 "[--requests N] [--clients N] [--priority P] [--tenant T] "
                 "[--clients2 N] [--requests2 N] [--priority2 P] "
                 "[--tenant2 T] [--rate R] [--bodies N] [--blocks N] "
                 "[--insts N] [--mode M] [--machine NAME] [--window N] "
                 "[--profile BOOL] [--examples DIR] [--seed N] [--json] "
                 "[--metrics | --shutdown]\n");
    return 1;
  }
  cfg.tcp = socket.empty();
  cfg.target = cfg.tcp ? tcp : socket;
  if (args.get_bool("metrics", false)) {
    return simple_verb(cfg, server::kVerbMetrics);
  }
  if (args.get_bool("shutdown", false)) {
    return simple_verb(cfg, server::kVerbShutdown);
  }

  cfg.requests = static_cast<std::size_t>(args.get_int("requests", 1000));
  cfg.clients =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   args.get_int("clients", 8)));
  cfg.rate = args.get_double("rate", 0.0);
  cfg.mode = args.get_string("mode", "trace");
  cfg.machine = args.get_string("machine", "rs6000");
  cfg.window = args.get_int("window", 0);
  cfg.profile = args.get_bool("profile", false);
  const int blocks = static_cast<int>(args.get_int("blocks", 4));
  const int insts = static_cast<int>(args.get_int("insts", 12));
  const std::size_t bodies =
      static_cast<std::size_t>(args.get_int("bodies", 64));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string examples_dir = args.get_string("examples", "");
  const bool json = args.get_bool("json", false);

  ClientClass class1;
  class1.clients = cfg.clients;
  class1.id_begin = 0;
  class1.id_end = cfg.requests;
  class1.priority = args.get_string("priority", "");
  class1.tenant = args.get_string("tenant", "");

  ClientClass class2;
  class2.clients = static_cast<std::size_t>(args.get_int("clients2", 0));
  const std::size_t requests2 =
      class2.clients > 0
          ? static_cast<std::size_t>(args.get_int(
                "requests2", static_cast<std::int64_t>(cfg.requests)))
          : 0;
  class2.id_begin = cfg.requests;
  class2.id_end = cfg.requests + requests2;
  class2.priority = args.get_string("priority2", "");
  class2.tenant = args.get_string("tenant2", "");
  if (class2.clients > 0 && cfg.rate > 0) {
    std::fprintf(stderr,
                 "aisload: --rate applies to class 1 only; class 2 is "
                 "closed-loop\n");
  }
  const std::size_t total_requests = cfg.requests + requests2;

  const std::vector<std::string> pool =
      build_body_pool(bodies, blocks, insts, seed, cfg.mode, examples_dir);

  LoadResult result;
  result.latency_us.assign(total_requests, -1);
  std::vector<std::atomic<std::int64_t>> send_us(
      cfg.rate > 0 ? cfg.requests : 0);
  for (auto& t : send_us) t.store(0, std::memory_order_relaxed);

  const std::int64_t bench_start = now_us();
  std::vector<std::thread> threads;
  threads.reserve(class1.clients + class2.clients);
  for (std::size_t c = 0; c < class1.clients; ++c) {
    const std::uint64_t client_seed = seed * 7919 + c + 1;
    if (cfg.rate > 0) {
      const double interval_us = 1e6 / cfg.rate;
      threads.emplace_back([&, c, client_seed, interval_us] {
        run_open_client(cfg, class1, pool, blocks, insts, client_seed, c,
                        bench_start, interval_us, send_us, result);
      });
    } else {
      threads.emplace_back([&, client_seed] {
        run_closed_client(cfg, class1, pool, blocks, insts, client_seed,
                          result);
      });
    }
  }
  for (std::size_t c = 0; c < class2.clients; ++c) {
    const std::uint64_t client_seed = seed * 104729 + c + 1;
    threads.emplace_back([&, client_seed] {
      run_closed_client(cfg, class2, pool, blocks, insts, client_seed,
                        result);
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_s =
      static_cast<double>(now_us() - bench_start) / 1e6;

  const ClassSummary overall = summarize(result.latency_us, 0,
                                         total_requests);
  const std::uint64_t ok = result.ok.load();
  const std::uint64_t errors = result.errors.load();
  const std::uint64_t failures = result.transport_failures.load();
  const double rps =
      elapsed_s > 0 ? static_cast<double>(ok + errors) / elapsed_s : 0.0;
  const bool two_classes = class2.clients > 0;

  if (json) {
    std::printf(
        "{\"requests\": %zu, \"ok\": %" PRIu64 ", \"errors\": %" PRIu64
        ", \"transport_failures\": %" PRIu64
        ", \"elapsed_s\": %.3f, \"rps\": %.1f, \"p50_us\": %lld, "
        "\"p90_us\": %lld, \"p99_us\": %lld, \"max_us\": %lld",
        total_requests, ok, errors, failures, elapsed_s, rps,
        static_cast<long long>(overall.p50),
        static_cast<long long>(overall.p90),
        static_cast<long long>(overall.p99),
        static_cast<long long>(overall.max));
    if (two_classes) {
      auto print_class = [](const char* key, const ClientClass& cls,
                            const ClassSummary& s) {
        std::printf(
            ", \"%s\": {\"tenant\": \"%s\", \"priority\": \"%s\", "
            "\"requests\": %zu, \"p50_us\": %lld, \"p90_us\": %lld, "
            "\"p99_us\": %lld, \"max_us\": %lld}",
            key, cls.tenant.c_str(),
            cls.priority.empty() ? "normal" : cls.priority.c_str(),
            s.completed, static_cast<long long>(s.p50),
            static_cast<long long>(s.p90), static_cast<long long>(s.p99),
            static_cast<long long>(s.max));
      };
      print_class("class1", class1,
                  summarize(result.latency_us, class1.id_begin,
                            class1.id_end));
      print_class("class2", class2,
                  summarize(result.latency_us, class2.id_begin,
                            class2.id_end));
    }
    std::printf("}\n");
  } else {
    std::printf("aisload: %zu requests (%" PRIu64 " ok, %" PRIu64
                " err, %" PRIu64 " transport failures) in %.2f s = %.1f "
                "req/s\n",
                total_requests, ok, errors, failures, elapsed_s, rps);
    std::printf("aisload: latency us p50=%lld p90=%lld p99=%lld max=%lld\n",
                static_cast<long long>(overall.p50),
                static_cast<long long>(overall.p90),
                static_cast<long long>(overall.p99),
                static_cast<long long>(overall.max));
    if (two_classes) {
      auto print_class = [](const char* name, const ClientClass& cls,
                            const ClassSummary& s) {
        std::printf(
            "aisload: %s tenant=%s priority=%s n=%zu "
            "p50=%lld p90=%lld p99=%lld max=%lld\n",
            name, cls.tenant.empty() ? "default" : cls.tenant.c_str(),
            cls.priority.empty() ? "normal" : cls.priority.c_str(),
            s.completed, static_cast<long long>(s.p50),
            static_cast<long long>(s.p90), static_cast<long long>(s.p99),
            static_cast<long long>(s.max));
      };
      print_class("class1", class1,
                  summarize(result.latency_us, class1.id_begin,
                            class1.id_end));
      print_class("class2", class2,
                  summarize(result.latency_us, class2.id_begin,
                            class2.id_end));
    }
  }
  return failures == 0 && ok + errors == total_requests ? 0 : 1;
}
