// aisprof — telemetry report mode for the AIS pipeline.
//
// Compiles a program with full telemetry on and prints where the time and
// the scheduler effort went: per-phase wall times, every obs counter, the
// per-compile ScheduleStats delta, and (trace mode) the simulator's
// stall-cycle attribution and window-occupancy histogram.
//
//   aisprof --in prog.s [--mode trace|loop|cfg] [--machine NAME]
//           [--window N] [--repeat N] [--jobs N] [--trace-json FILE]
//           [--json FILE]
//
// A second mode quantifies the ROADMAP `window-span` open item over random
// traces (how often Merge's planning order carries inversions spanning
// more than W list positions):
//
//   aisprof --random-traces N [--blocks B] [--nodes K] [--window W]
//           [--machine NAME] [--seed S] [--jobs N]
//
// Flags:
//   --in FILE          input assembly
//   --mode MODE        trace (default) | loop | cfg
//   --machine NAME     scalar01 | rs6000 (default) | deep | vliw4
//   --window N         lookahead window (0 = machine default)
//   --repeat N         compile N times and aggregate (default 1)
//   --trace-json FILE  also write Chrome trace-event JSON (Perfetto)
//   --json FILE        machine-readable report (bench_json.py input)
//   --metrics          print the Prometheus text exposition of the metric
//                      registry after the report (see docs/OBSERVABILITY.md)
//   --hist             print the ASCII histogram report (per-bucket bars)
//   --metrics-out FILE write the registry to FILE — Prometheus text, or the
//                      JSON snapshot when FILE ends in .json
//   --random-traces N  window-span survey instead of a file compile
//   --blocks/--nodes   random-trace shape (default 8 blocks x 12 nodes)
//   --edge-prob P      intra-block edge probability (default 0.35)
//   --max-latency L    maximum edge latency (default 3; 1 = restricted case)
//   --fill-cap C       also compile every survey trace with the Merge fill
//                      depth capped at C and report the simulated cycle
//                      delta vs the advisory order (0 = off; see
//                      LookaheadOptions::fill_cap and ROADMAP window-span)
//   --seed S           PRNG seed for the survey (default 42)
//   --jobs N           compile traces on N threads (0 = all hardware
//                      threads; results are identical at every N)
//   --cache BOOL       enable/disable the in-memory schedule cache (default
//                      on; see docs/CACHING.md).  Note --repeat with the
//                      cache on measures warm-hit compiles after the first.
//   --cache-dir DIR    persist cache entries under DIR across runs
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/block_schedulers.hpp"
#include "cfg/cfg.hpp"
#include "core/schedule_cache.hpp"
#include "driver/anticipatory.hpp"
#include "driver/function_compiler.hpp"
#include "ir/asm_parser.hpp"
#include "machine/machine_model.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/process_stats.hpp"
#include "obs/stats.hpp"
#include "sim/lookahead_sim.hpp"
#include "support/cli.hpp"
#include "support/stopwatch.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "workloads/random_graphs.hpp"

namespace {

using namespace ais;

const MachineModel& machine_by_name(const std::string& name) {
  const MachineModel* m = machine_preset(name);
  if (m == nullptr) {
    std::fprintf(stderr, "aisprof: unknown machine '%s'\n", name.c_str());
    std::exit(2);
  }
  return *m;
}

void print_stall_table(const SimResult& sim) {
  TextTable stalls({"stall kind", "cycles"});
  stalls.add_row({"latency", std::to_string(sim.latency_stall_cycles)});
  stalls.add_row({"window-head", std::to_string(sim.window_stall_cycles)});
  stalls.add_row({"total", std::to_string(sim.stall_cycles)});
  std::printf("stall attribution:\n%s", stalls.to_string().c_str());

  TextTable occ({"window occupancy", "cycles"});
  for (std::size_t k = 0; k < sim.window_occupancy.size(); ++k) {
    occ.add_row({std::to_string(k), std::to_string(sim.window_occupancy[k])});
  }
  std::printf("\nwindow occupancy histogram:\n%s", occ.to_string().c_str());
}

std::string json_counters() {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, value] : obs::counters_snapshot()) {
    os << (first ? "" : ", ") << "\"" << name << "\": " << value;
    first = false;
  }
  return os.str();
}

std::string json_phases() {
  std::ostringstream os;
  bool first = true;
  for (const obs::PhaseTotal& p : obs::phase_totals()) {
    os << (first ? "" : ", ") << "{\"name\": \"" << p.name
       << "\", \"calls\": " << p.calls << ", \"total_ms\": "
       << fmt_double(p.total_ms, 4) << "}";
    first = false;
  }
  return os.str();
}

/// Window-span survey over random traces: the data behind the ROADMAP
/// `window-span` decision.
int run_random_survey(const CliArgs& args) {
  const int n = static_cast<int>(args.get_int("random-traces", 0));
  const int blocks = static_cast<int>(args.get_int("blocks", 8));
  const int nodes = static_cast<int>(args.get_int("nodes", 12));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));
  const MachineModel& machine =
      machine_by_name(args.get_string("machine", "deep"));
  int window = static_cast<int>(args.get_int("window", 0));
  if (window == 0) window = machine.default_window();

  Prng prng(seed);
  RandomTraceParams params;
  params.num_blocks = blocks;
  params.block.num_nodes = nodes;
  params.block.edge_prob = args.get_double("edge-prob", 0.35);
  params.block.max_latency =
      static_cast<int>(args.get_int("max-latency", 3));
  params.cross_edges = 2;

  const int jobs = static_cast<int>(args.get_int("jobs", 1));

  // The trace set is pregenerated serially from the single PRNG stream so
  // it is identical at every --jobs; each trace then compiles into its own
  // result slot, and the aggregation below is a serial reduction.
  std::vector<DepGraph> graphs;
  graphs.reserve(static_cast<std::size_t>(std::max(n, 0)));
  for (int i = 0; i < n; ++i) graphs.push_back(random_trace(prng, params));

  std::vector<std::size_t> spans(graphs.size(), 0);
  std::vector<std::vector<NodeId>> lists(graphs.size());
  parallel_for(jobs, graphs.size(), [&](std::size_t i) {
    const RankScheduler scheduler(graphs[i], machine);
    LookaheadOptions opts;
    opts.window = window;
    const LookaheadResult res = schedule_trace(scheduler, opts);
    spans[i] = res.diag.max_inversion_span;
    lists[i] = res.priority_list();
  });

  // Optional second arm: the same traces compiled with a capped Merge fill
  // depth (LookaheadOptions::fill_cap), for the ROADMAP `window-span`
  // comparison of advisory vs W-capped planning orders.
  const int fill_cap = static_cast<int>(args.get_int("fill-cap", 0));
  std::vector<std::vector<NodeId>> capped_lists;
  std::vector<std::size_t> capped_spans;
  if (fill_cap > 0) {
    capped_lists.resize(graphs.size());
    capped_spans.assign(graphs.size(), 0);
    parallel_for(jobs, graphs.size(), [&](std::size_t i) {
      const RankScheduler scheduler(graphs[i], machine);
      LookaheadOptions opts;
      opts.window = window;
      opts.fill_cap = fill_cap;
      const LookaheadResult res = schedule_trace(scheduler, opts);
      capped_spans[i] = res.diag.max_inversion_span;
      capped_lists[i] = res.priority_list();
    });
  }

  // All executions go through one batched simulate_many: uncapped lists
  // first, then (when --fill-cap is set) the capped ones.
  std::vector<SimJob> sim_jobs;
  sim_jobs.reserve(lists.size() + capped_lists.size());
  for (std::size_t i = 0; i < lists.size(); ++i) {
    sim_jobs.push_back({&graphs[i], &machine, &lists[i], window});
  }
  for (std::size_t i = 0; i < capped_lists.size(); ++i) {
    sim_jobs.push_back({&graphs[i], &machine, &capped_lists[i], window});
  }
  const std::vector<SimResult> sims =
      simulate_many(sim_jobs, clamp_jobs(jobs));

  int over = 0;
  std::size_t max_span = 0;
  double span_sum = 0;
  for (const std::size_t span : spans) {
    if (span > static_cast<std::size_t>(window)) ++over;
    max_span = std::max(max_span, span);
    span_sum += static_cast<double>(span);
  }
  double log_cycles_sum = 0;
  Time stall_total = 0;
  Time window_stall_total = 0;
  for (std::size_t i = 0; i < lists.size(); ++i) {
    log_cycles_sum += std::log(static_cast<double>(sims[i].completion));
    stall_total += sims[i].stall_cycles;
    window_stall_total += sims[i].window_stall_cycles;
  }

  TextTable t({"metric", "value"});
  t.add_row({"traces", std::to_string(n)});
  t.add_row({"blocks x nodes",
             std::to_string(blocks) + " x " + std::to_string(nodes)});
  t.add_row({"edge prob / max latency",
             fmt_double(params.block.edge_prob, 2) + " / " +
                 std::to_string(params.block.max_latency)});
  t.add_row({"machine / W", machine.name() + " / " + std::to_string(window)});
  t.add_row({"span > W traces", std::to_string(over)});
  t.add_row({"span > W fraction",
             fmt_double(n == 0 ? 0.0 : static_cast<double>(over) / n, 3)});
  t.add_row({"mean max span",
             fmt_double(n == 0 ? 0.0 : span_sum / n, 2)});
  t.add_row({"max span seen", std::to_string(max_span)});
  t.add_row({"geomean cycles",
             fmt_double(n == 0 ? 0.0 : std::exp(log_cycles_sum / n), 1)});
  t.add_row({"stall cycles (window / total)",
             std::to_string(window_stall_total) + " / " +
                 std::to_string(stall_total)});
  std::printf("window-span survey (counter %s):\n%s",
              obs::ctr::kWindowSpanOverW, t.to_string().c_str());

  if (fill_cap > 0) {
    int capped_over = 0;
    int better = 0;
    int equal = 0;
    int worse = 0;
    double log_ratio_sum = 0;
    for (std::size_t i = 0; i < capped_lists.size(); ++i) {
      if (capped_spans[i] > static_cast<std::size_t>(window)) ++capped_over;
      const Time uncapped_cycles = sims[i].completion;
      const Time capped_cycles = sims[lists.size() + i].completion;
      if (capped_cycles < uncapped_cycles) ++better;
      else if (capped_cycles == uncapped_cycles) ++equal;
      else ++worse;
      log_ratio_sum += std::log(static_cast<double>(capped_cycles) /
                                static_cast<double>(uncapped_cycles));
    }
    TextTable tc({"metric", "value"});
    tc.add_row({"fill cap", std::to_string(fill_cap)});
    tc.add_row({"capped span > W traces", std::to_string(capped_over)});
    tc.add_row({"capped better / equal / worse",
                std::to_string(better) + " / " + std::to_string(equal) +
                    " / " + std::to_string(worse)});
    tc.add_row({"geomean cycles ratio (capped/uncapped)",
                fmt_double(n == 0 ? 1.0 : std::exp(log_ratio_sum / n), 4)});
    std::printf("fill-cap comparison (same traces, fill_cap = %d):\n%s",
                fill_cap, tc.to_string().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.has("cache")) {
    ScheduleCache::global().set_enabled(args.get_bool("cache", true));
  }
  const std::string cache_dir = args.get_string("cache-dir", "");
  if (!cache_dir.empty()) ScheduleCache::global().set_disk_dir(cache_dir);
  obs::init_from_env();
  obs::set_enabled(true);
  obs::register_builtin_counters();

  if (args.has("random-traces")) return run_random_survey(args);

  const std::string path = args.get_string("in", "");
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: aisprof --in FILE [--mode trace|loop|cfg] "
                 "[--machine NAME] [--window N] [--repeat N] [--jobs N] "
                 "[--trace-json FILE] [--json FILE] [--metrics] [--hist] "
                 "[--metrics-out FILE] [--cache BOOL] [--cache-dir DIR]\n"
                 "       aisprof --random-traces N [--blocks B] [--nodes K] "
                 "[--window W] [--machine NAME] [--seed S] [--jobs N]\n");
    return 2;
  }
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "aisprof: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  const Program prog = parse_program(text.str());
  const MachineModel& machine =
      machine_by_name(args.get_string("machine", "rs6000"));
  const int window = static_cast<int>(args.get_int("window", 0));
  const std::string mode = args.get_string("mode", "trace");
  const int repeat = std::max(1, static_cast<int>(args.get_int("repeat", 1)));
  const std::string trace_path =
      args.get_string("trace-json", obs::env_trace_path());
  if (!trace_path.empty()) obs::set_trace_enabled(true);

  const obs::ScheduleStats before_stats = obs::ScheduleStats::capture();
  Time cycles_before = 0;
  Time cycles_after = 0;
  double cycles_per_iteration = 0;
  SimResult sim;
  bool have_sim = false;

  double compile_ms = 0;
  if (mode == "trace") {
    const Trace trace{prog.blocks};
    ScheduledTrace scheduled;
    compile_ms = timed_ms([&] {
      for (int r = 0; r < repeat; ++r) {
        scheduled = schedule(trace, machine, window);
      }
    });
    const auto source_list = schedule_trace_per_block(
        scheduled.graph, machine, BlockScheduler::kSourceOrder);
    cycles_before = simulated_completion(scheduled.graph, machine, source_list,
                                         scheduled.window);
    sim = simulate_list(scheduled.graph, machine,
                        scheduled.detail.priority_list(), scheduled.window);
    cycles_after = sim.completion;
    have_sim = true;
  } else if (mode == "loop") {
    Loop loop;
    loop.body = Trace{prog.blocks};
    ScheduledLoop scheduled;
    compile_ms = timed_ms([&] {
      for (int r = 0; r < repeat; ++r) {
        scheduled = schedule(loop, machine, window);
      }
    });
    cycles_per_iteration = scheduled.cycles_per_iteration;
  } else if (mode == "cfg") {
    const Cfg cfg(prog);
    const int jobs = static_cast<int>(args.get_int("jobs", 1));
    CompiledProgram compiled;
    compile_ms = timed_ms([&] {
      for (int r = 0; r < repeat; ++r) {
        compiled = compile_program(cfg, machine, window, false, jobs);
      }
    });
    cycles_before = compiled.hot_trace_cycles_before;
    cycles_after = compiled.hot_trace_cycles_after;
  } else {
    std::fprintf(stderr, "aisprof: unknown mode '%s'\n", mode.c_str());
    return 2;
  }
  const obs::ScheduleStats stats =
      obs::ScheduleStats::capture().delta(before_stats);

  std::printf("aisprof: %s (mode %s, machine %s, repeat %d)\n", path.c_str(),
              mode.c_str(), machine.name().c_str(), repeat);
  std::printf("compile: %.3f ms total, %.3f ms/compile\n", compile_ms,
              compile_ms / repeat);
  if (mode == "loop") {
    std::printf("steady state: %.2f cycles/iteration\n", cycles_per_iteration);
  } else {
    std::printf("cycles: %lld -> %lld\n",
                static_cast<long long>(cycles_before),
                static_cast<long long>(cycles_after));
  }
  std::printf("\n%s\n", obs::profile_report().c_str());
  std::printf("schedule stats (this run):\n%s\n", stats.to_string().c_str());
  if (have_sim) print_stall_table(sim);

  if (args.get_bool("metrics", false)) {
    obs::record_process_gauges();
    std::printf("\n%s",
                obs::MetricRegistry::global().prometheus_text().c_str());
  }
  if (args.get_bool("hist", false)) {
    std::printf("\n%s", obs::MetricRegistry::global().ascii_report().c_str());
  }
  const std::string metrics_path = args.get_string("metrics-out", "");
  if (!metrics_path.empty()) {
    obs::record_process_gauges();
    std::ofstream mo(metrics_path);
    if (!mo.is_open()) {
      std::fprintf(stderr, "aisprof: cannot write %s\n", metrics_path.c_str());
      return 2;
    }
    const bool json_fmt = metrics_path.size() >= 5 &&
                          metrics_path.compare(metrics_path.size() - 5, 5,
                                               ".json") == 0;
    if (json_fmt) {
      obs::MetricRegistry::global().write_json(mo);
    } else {
      obs::MetricRegistry::global().write_prometheus(mo);
    }
  }

  if (!trace_path.empty() && !obs::write_chrome_trace(trace_path)) {
    std::fprintf(stderr, "aisprof: cannot write trace to %s\n",
                 trace_path.c_str());
    return 2;
  }

  const std::string json_path = args.get_string("json", "");
  if (!json_path.empty()) {
    std::ofstream js(json_path);
    if (!js.is_open()) {
      std::fprintf(stderr, "aisprof: cannot write %s\n", json_path.c_str());
      return 2;
    }
    js << "{\n"
       << "  \"file\": \"" << path << "\",\n"
       << "  \"mode\": \"" << mode << "\",\n"
       << "  \"machine\": \"" << machine.name() << "\",\n"
       << "  \"repeat\": " << repeat << ",\n"
       << "  \"compile_ms\": " << fmt_double(compile_ms / repeat, 4) << ",\n"
       << "  \"cycles_before\": " << cycles_before << ",\n"
       << "  \"cycles_after\": " << cycles_after << ",\n"
       << "  \"cycles_per_iteration\": "
       << fmt_double(cycles_per_iteration, 4) << ",\n"
       << "  \"counters\": {" << json_counters() << "},\n"
       << "  \"phases\": [" << json_phases() << "]";
    if (have_sim) {
      js << ",\n  \"stalls\": {\"latency\": " << sim.latency_stall_cycles
         << ", \"window\": " << sim.window_stall_cycles
         << ", \"total\": " << sim.stall_cycles << "}";
    }
    js << "\n}\n";
  }
  return 0;
}
