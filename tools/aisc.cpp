// aisc — the anticipatory instruction scheduling compiler driver.
//
// Reads a toy-ISA assembly file and emits it rescheduled:
//
//   aisc --in prog.s                         # trace mode (blocks in order)
//   aisc --in prog.s --mode loop             # single/multi-block loop body
//   aisc --in prog.s --mode cfg              # CFG + trace selection
//   aisc --in prog.s --machine deep --window 2 --rename --report
//
// Flags:
//   --in FILE        input assembly (required)
//   --mode MODE      trace (default) | loop | cfg
//   --machine NAME   scalar01 | rs6000 (default) | deep | vliw4
//   --window N       lookahead window (0 = machine default)
//   --jobs N         cfg mode: compile traces on N threads; trace mode:
//                    pre-schedule block substrates on N pool workers while
//                    the serial Merge/Chop chain consumes them (0 = all
//                    hardware threads; output identical at every N)
//   --rename         run local register renaming first
//   --report         print cycle counts (before/after) to stderr
//   --verify         re-check the emitted schedule with the independent
//                    oracle (src/verify); nonzero exit on any violation
//   --profile        print the per-phase time/counter telemetry table to
//                    stderr after compiling (see docs/OBSERVABILITY.md)
//   --trace-json F   write a Chrome trace-event JSON of the compile to F
//                    (loadable in Perfetto); implies telemetry collection
//   --metrics-out F  write the metric registry after compiling — Prometheus
//                    text exposition, or the JSON snapshot when F ends in
//                    .json; implies telemetry collection
//   --cache BOOL     enable/disable the in-memory schedule cache (default
//                    on; see docs/CACHING.md)
//   --cache-dir DIR  also persist cache entries under DIR and reuse them
//                    across runs (content-addressed, safe to share)
//
// The AIS_TRACE / AIS_TRACE_JSON environment variables enable the same
// telemetry without touching the command line; AIS_CACHE / AIS_CACHE_DIR
// mirror --cache / --cache-dir.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "baselines/block_schedulers.hpp"
#include "cfg/cfg.hpp"
#include "driver/anticipatory.hpp"
#include "driver/function_compiler.hpp"
#include "ir/asm_parser.hpp"
#include "ir/depbuild.hpp"
#include "ir/rename.hpp"
#include "core/schedule_cache.hpp"
#include "machine/machine_model.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/process_stats.hpp"
#include "obs/stats.hpp"
#include "sim/lookahead_sim.hpp"
#include "sim/loop_sim.hpp"
#include "support/cli.hpp"

namespace {

using namespace ais;

const MachineModel& machine_by_name(const std::string& name) {
  const MachineModel* m = machine_preset(name);
  if (m == nullptr) {
    std::fprintf(stderr, "aisc: unknown machine '%s'\n", name.c_str());
    std::exit(1);
  }
  return *m;
}

void emit(const std::vector<BasicBlock>& blocks) {
  for (const BasicBlock& bb : blocks) {
    std::printf("block %s:\n", bb.label.c_str());
    for (const Instruction& inst : bb.insts) {
      std::printf("  %s\n", inst.to_string().c_str());
    }
  }
}

/// Prints oracle findings to stderr; returns the process exit code.
int report_verification(const verify::Report& report) {
  if (report.ok()) return 0;
  std::fprintf(stderr, "aisc: schedule failed verification:\n%s",
               report.to_string().c_str());
  return 1;
}

/// True when `path` names a JSON output (the --metrics-out format switch).
bool ends_with_json(const std::string& path) {
  return path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
}

/// Emits the telemetry the run collected, on every exit path: the
/// `--profile` table to stderr, the `--trace-json` / AIS_TRACE_JSON file
/// and the `--metrics-out` registry exposition.
struct TelemetryFinalizer {
  bool profile = false;
  std::string trace_path;
  std::string metrics_path;

  ~TelemetryFinalizer() {
    if (!trace_path.empty() && !obs::write_chrome_trace(trace_path)) {
      std::fprintf(stderr, "aisc: cannot write trace to %s\n",
                   trace_path.c_str());
    }
    if (!metrics_path.empty()) {
      obs::record_process_gauges();  // mem_peak_rss_bytes covers the run
      std::ofstream out(metrics_path);
      if (out.is_open()) {
        if (ends_with_json(metrics_path)) {
          obs::MetricRegistry::global().write_json(out);
        } else {
          obs::MetricRegistry::global().write_prometheus(out);
        }
      }
      if (!out.good()) {
        std::fprintf(stderr, "aisc: cannot write metrics to %s\n",
                     metrics_path.c_str());
      }
    }
    if (profile) {
      std::fprintf(stderr, "aisc: pipeline profile\n%s",
                   obs::profile_report().c_str());
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string path = args.get_string("in", "");
  if (path.empty()) {
    std::fprintf(stderr, "usage: aisc --in FILE [--mode trace|loop|cfg] "
                         "[--machine NAME] [--window N] [--jobs N] "
                         "[--rename] [--report] [--verify] [--profile] "
                         "[--trace-json FILE] [--metrics-out FILE] "
                         "[--cache BOOL] [--cache-dir DIR]\n");
    return 1;
  }
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "aisc: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();

  const Program prog = parse_program(text.str());
  const MachineModel& machine =
      machine_by_name(args.get_string("machine", "rs6000"));
  const int window = static_cast<int>(args.get_int("window", 0));
  const std::string mode = args.get_string("mode", "trace");
  const bool do_rename = args.get_bool("rename", false);
  const bool report = args.get_bool("report", false);
  const bool do_verify = args.get_bool("verify", false);

  if (args.has("cache")) {
    ScheduleCache::global().set_enabled(args.get_bool("cache", true));
  }
  const std::string cache_dir = args.get_string("cache-dir", "");
  if (!cache_dir.empty()) ScheduleCache::global().set_disk_dir(cache_dir);

  obs::init_from_env();
  TelemetryFinalizer telemetry;
  telemetry.profile = args.get_bool("profile", false);
  telemetry.trace_path = args.get_string("trace-json", obs::env_trace_path());
  telemetry.metrics_path = args.get_string("metrics-out", "");
  if (telemetry.profile) obs::set_enabled(true);
  if (!telemetry.trace_path.empty()) obs::set_trace_enabled(true);
  if (!telemetry.metrics_path.empty()) obs::set_enabled(true);
  if (obs::enabled()) obs::register_builtin_counters();

  if (mode == "cfg") {
    const Cfg cfg(prog);
    const int jobs = static_cast<int>(args.get_int("jobs", 1));
    const CompiledProgram compiled =
        compile_program(cfg, machine, window, do_verify, jobs);
    emit(compiled.program.blocks);
    if (report) {
      std::fprintf(stderr,
                   "aisc: hot trace %lld -> %lld cycles at W = %d\n",
                   static_cast<long long>(compiled.hot_trace_cycles_before),
                   static_cast<long long>(compiled.hot_trace_cycles_after),
                   compiled.window);
    }
    return report_verification(compiled.verification);
  }

  Trace trace{prog.blocks};
  if (do_rename) trace = rename_trace(trace);

  if (mode == "loop") {
    Loop loop;
    loop.body = trace;
    const ScheduledLoop scheduled = schedule(loop, machine, window);
    emit(scheduled.blocks);
    if (report) {
      std::fprintf(stderr, "aisc: %.2f cycles/iteration at W = %d\n",
                   scheduled.cycles_per_iteration, scheduled.window);
    }
    if (do_verify) {
      return report_verification(verify_schedule(loop, scheduled, machine));
    }
    return 0;
  }

  if (mode != "trace") {
    std::fprintf(stderr, "aisc: unknown mode '%s'\n", mode.c_str());
    return 1;
  }
  const ScheduledTrace scheduled =
      schedule(trace, machine, window, {},
               static_cast<int>(args.get_int("jobs", 1)));
  emit(scheduled.blocks);
  if (report) {
    const auto before = schedule_trace_per_block(
        scheduled.graph, machine, BlockScheduler::kSourceOrder);
    std::fprintf(
        stderr, "aisc: %lld -> %lld cycles at W = %d\n",
        static_cast<long long>(simulated_completion(
            scheduled.graph, machine, before, scheduled.window)),
        static_cast<long long>(scheduled.simulated_cycles(machine)),
        scheduled.window);
  }
  if (do_verify) {
    return report_verification(verify_schedule(trace, scheduled, machine));
  }
  return 0;
}
