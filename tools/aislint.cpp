// aislint — static analyzer and schedule verifier for toy-ISA assembly and
// dependence graphs.
//
// The analysis half runs the src/analysis rule registry over the input
// program and its dependence graph (or over a bare .dg graph); the verify
// half re-derives every dependence from the IR (sharing no code with the
// scheduler's ir/depbuild.cpp) and checks that a compiled schedule respects
// them.
//
//   aislint --list-rules                     # print the rule catalog
//   aislint --in prog.s                      # analyze program + trace graph
//   aislint --in prog.s --verify             # ... and schedule + verify
//   aislint --in prog.s --against out.s      # verify out.s compiles prog.s
//   aislint --graph g.dg --machine vliw4     # analyze a dependence graph
//   aislint --in prog.s --fix --out g.dg     # proven transitive reduction
//
// Flags:
//   --in FILE        input assembly
//   --graph FILE     input dependence graph (.dg; graph rules only)
//   --mode MODE      trace (default) | loop | cfg — graph construction and
//                    how --verify schedules
//   --machine NAME   scalar01 | rs6000 (default) | deep | vliw4
//   --window N       lookahead window (0 = machine default)
//   --list-rules     print rule ids, default severities and summaries
//   --rule IDS       run only these comma-separated rules
//   --no-rule IDS    disable these comma-separated rules
//   --Werror[=IDS]   promote all (or the listed rules') warnings to errors
//   --notes          print note-severity findings (hidden by default)
//   --sarif[=FILE]   emit SARIF 2.1.0 (stdout, or to FILE)
//   --fix            transitive reduction with a schedule-identity proof
//                    (trace mode or --graph input only)
//   --out FILE       write the reduced graph as .dg (with --fix)
//   --rename         rename the input first (mirror `aisc --rename`)
//   --verify         schedule the input in-process and verify the result
//   --against FILE   verify FILE instead of scheduling in-process
//   --optimal        also attempt an optimality certificate (restricted
//                    machines; brute-force bounded)
//   --werror         legacy alias for bare --Werror
//   --quiet          suppress note diagnostics and the summary line
//
// Exit status (deterministic contract, see docs/ANALYSIS.md): 0 clean,
// 1 error-severity findings (or promoted warnings, or failed verification),
// 2 usage or I/O error.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "analysis/fix.hpp"
#include "analysis/graph_text.hpp"
#include "analysis/sarif.hpp"
#include "cfg/cfg.hpp"
#include "driver/anticipatory.hpp"
#include "driver/function_compiler.hpp"
#include "ir/asm_parser.hpp"
#include "ir/depbuild.hpp"
#include "ir/rename.hpp"
#include "machine/machine_model.hpp"
#include "support/cli.hpp"
#include "verify/lint.hpp"
#include "verify/verify.hpp"

namespace {

using namespace ais;

const MachineModel& machine_by_name(const std::string& name) {
  const MachineModel* m = machine_preset(name);
  if (m == nullptr) {
    std::fprintf(stderr, "aislint: unknown machine '%s'\n", name.c_str());
    std::exit(2);
  }
  return *m;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "aislint: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::vector<std::string> split_commas(const std::string& list) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(list);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Validates --rule / --no-rule / --Werror= ids against the registry so
/// typos fail loudly (exit 2) instead of silently running nothing.
void check_rule_ids(const std::vector<std::string>& ids) {
  for (const std::string& id : ids) {
    if (analysis::find_rule(id) == nullptr) {
      std::fprintf(stderr, "aislint: unknown rule '%s' (--list-rules)\n",
                   id.c_str());
      std::exit(2);
    }
  }
}

void list_rules() {
  std::printf("%-22s %-8s %s\n", "rule", "severity", "summary");
  for (const analysis::RuleInfo& info : analysis::rule_registry()) {
    std::printf("%-22s %-8s %s\n", info.id.c_str(),
                verify::severity_name(info.default_severity),
                info.summary.c_str());
  }
}

void print_verify_report(const verify::Report& report, bool quiet) {
  for (const verify::Diagnostic& d : report.diagnostics()) {
    if (quiet && d.severity == verify::Severity::kNote) continue;
    std::printf("%s\n", d.to_string().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  if (args.get_bool("list-rules", false)) {
    list_rules();
    return 0;
  }

  const std::string path = args.get_string("in", "");
  const std::string graph_path = args.get_string("graph", "");
  if (path.empty() && graph_path.empty()) {
    std::fprintf(stderr,
                 "usage: aislint (--in FILE | --graph FILE.dg) "
                 "[--mode trace|loop|cfg] [--machine NAME] [--window N] "
                 "[--list-rules] [--rule IDS] [--no-rule IDS] "
                 "[--Werror[=IDS]] [--notes] [--sarif[=FILE]] "
                 "[--fix [--out FILE]] [--rename] [--verify] "
                 "[--against FILE] [--optimal] [--quiet]\n");
    return 2;
  }

  const MachineModel& machine =
      machine_by_name(args.get_string("machine", "rs6000"));
  const int window = static_cast<int>(args.get_int("window", 0));
  const std::string mode = args.get_string("mode", "trace");
  if (mode != "trace" && mode != "loop" && mode != "cfg") {
    std::fprintf(stderr, "aislint: unknown mode '%s'\n", mode.c_str());
    return 2;
  }
  const bool do_rename = args.get_bool("rename", false);
  const bool do_verify = args.get_bool("verify", false);
  const std::string against = args.get_string("against", "");
  const bool optimal = args.get_bool("optimal", false);
  const bool quiet = args.get_bool("quiet", false);
  const bool notes = args.get_bool("notes", false);
  const bool do_fix = args.get_bool("fix", false);

  // --- assemble the analysis configuration --------------------------------
  analysis::AnalysisOptions opts;
  opts.only = split_commas(args.get_string("rule", ""));
  opts.disabled = split_commas(args.get_string("no-rule", ""));
  check_rule_ids(opts.only);
  check_rule_ids(opts.disabled);
  const std::string werror_arg = args.get_string("Werror", "");
  if (werror_arg == "true" || args.get_bool("werror", false)) {
    opts.warnings_as_errors = true;
  } else if (!werror_arg.empty()) {
    opts.werror = split_commas(werror_arg);
    check_rule_ids(opts.werror);
  }

  // --- load the input and build the dependence graph ----------------------
  Program prog;
  DepGraph graph;
  bool have_program = false;
  bool have_graph = false;
  if (!graph_path.empty()) {
    std::string error;
    std::optional<DepGraph> parsed =
        analysis::parse_graph_text(read_file(graph_path), &error);
    if (!parsed) {
      std::fprintf(stderr, "aislint: %s: %s\n", graph_path.c_str(),
                   error.c_str());
      return 2;
    }
    graph = std::move(*parsed);
    have_graph = true;
  } else {
    prog = parse_program(read_file(path));
    have_program = true;
    // Structurally broken programs (mid-block branches, duplicate labels)
    // would trip depbuild's invariants; gate the graph phase on a clean
    // structural lint so the analysis can still report the defects.
    const bool structurally_sound =
        verify::lint_program(prog).num_errors() == 0;
    // cfg mode has no single trace graph; program rules still run.
    if (!structurally_sound) {
      // graph rules are skipped; the lint errors surface below.
    } else if (mode == "trace") {
      graph = build_trace_graph(Trace{prog.blocks}, machine);
      have_graph = true;
    } else if (mode == "loop") {
      Loop loop;
      loop.body = Trace{prog.blocks};
      graph = build_loop_graph(loop, machine);
      have_graph = true;
    }
  }

  analysis::AnalysisInput input;
  if (have_program) input.program = &prog;
  if (have_graph) input.graph = &graph;
  input.machine = &machine;
  const analysis::AnalysisResult result = analysis::run_analysis(input, opts);

  // --- output -------------------------------------------------------------
  const std::string sarif_arg = args.get_string("sarif", "");
  const std::string artifact = graph_path.empty() ? path : graph_path;
  if (sarif_arg == "true") {
    std::fputs(analysis::to_sarif(result, artifact).c_str(), stdout);
  } else if (!sarif_arg.empty()) {
    std::ofstream out(sarif_arg);
    if (!out.is_open()) {
      std::fprintf(stderr, "aislint: cannot write %s\n", sarif_arg.c_str());
      return 2;
    }
    out << analysis::to_sarif(result, artifact);
  } else {
    for (const analysis::Finding& f : result.findings) {
      if (f.severity == verify::Severity::kNote && (!notes || quiet)) {
        continue;
      }
      std::printf("%s\n", f.to_string().c_str());
    }
  }

  // --- --fix: proven transitive reduction ---------------------------------
  if (do_fix) {
    if (have_program && mode != "trace") {
      std::fprintf(stderr,
                   "aislint: --fix requires --mode trace or a --graph input "
                   "(the identity proof schedules through the trace "
                   "pipeline)\n");
      return 2;
    }
    const analysis::FixResult fixed =
        analysis::reduce_and_prove(graph, machine, window);
    if (!quiet) std::printf("fix: %s\n", fixed.detail.c_str());
    const std::string out_path = args.get_string("out", "");
    if (!out_path.empty()) {
      std::ofstream out(out_path);
      if (!out.is_open()) {
        std::fprintf(stderr, "aislint: cannot write %s\n", out_path.c_str());
        return 2;
      }
      out << analysis::write_graph_text(fixed.graph, "reduced");
    }
  }

  // --- the verify half (unchanged contract) -------------------------------
  verify::Report report;
  if (have_program) {
    // The program the schedule must be a reordering of: renaming changes
    // registers, so verification compares against the renamed input,
    // exactly as `aisc --rename` compiles it.
    Trace original{prog.blocks};
    if (do_rename) original = rename_trace(original);

    if (!against.empty()) {
      const Program compiled = parse_program(read_file(against));
      verify::VerifyOptions vopts;
      vopts.window = window == 0 ? machine.default_window() : window;
      vopts.check_optimality = optimal;
      report.merge(verify::check_emitted(original, Trace{compiled.blocks},
                                         machine, vopts));
    } else if (do_verify) {
      if (mode == "cfg") {
        const Cfg cfg(prog);
        const CompiledProgram compiled =
            compile_program(cfg, machine, window, /*verify=*/true);
        report.merge(compiled.verification);
      } else if (mode == "loop") {
        Loop loop;
        loop.body = original;
        const ScheduledLoop scheduled = schedule(loop, machine, window);
        report.merge(verify_schedule(loop, scheduled, machine));
      } else {
        const ScheduledTrace scheduled = schedule(original, machine, window);
        report.merge(verify_schedule(original, scheduled, machine, optimal));
      }
    }
    print_verify_report(report, quiet);
  }

  const bool verify_failed =
      !report.ok() ||
      (opts.warnings_as_errors && report.num_warnings() > 0);
  const bool failed = result.num_errors > 0 || verify_failed;
  // SARIF-on-stdout must stay pure JSON for downstream consumers.
  if (!quiet && sarif_arg != "true") {
    std::printf("aislint: %s — %zu error(s), %zu warning(s), %zu note(s)\n",
                failed ? "FAIL" : "ok",
                result.num_errors + report.num_errors(),
                result.num_warnings + report.num_warnings(),
                result.num_notes);
  }
  return failed ? 1 : 0;
}
