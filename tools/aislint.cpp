// aislint — independent linter and schedule verifier for toy-ISA assembly.
//
// The lint half flags structural and dataflow problems in an input program;
// the verify half re-derives every dependence from the IR (sharing no code
// with the scheduler's ir/depbuild.cpp) and checks that a compiled schedule
// respects them.
//
//   aislint --in prog.s                      # lint only
//   aislint --in prog.s --verify             # lint, schedule, verify oracle
//   aislint --in prog.s --against out.s      # verify out.s is a legal
//                                            # compilation of prog.s
//
// Flags:
//   --in FILE        input assembly (required)
//   --mode MODE      trace (default) | loop | cfg — how --verify schedules
//   --machine NAME   scalar01 | rs6000 (default) | deep | vliw4
//   --window N       lookahead window (0 = machine default)
//   --rename         rename the input first (mirror `aisc --rename`)
//   --verify         schedule the input in-process and verify the result
//   --against FILE   verify FILE instead of scheduling in-process
//   --optimal        also attempt an optimality certificate (restricted
//                    machines; brute-force bounded)
//   --werror         treat warnings as errors for the exit code
//   --quiet          suppress note-severity diagnostics and the summary
//
// Exit status: 0 clean, 1 findings, 2 usage or I/O error.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cfg/cfg.hpp"
#include "driver/anticipatory.hpp"
#include "driver/function_compiler.hpp"
#include "ir/asm_parser.hpp"
#include "ir/rename.hpp"
#include "machine/machine_model.hpp"
#include "support/cli.hpp"
#include "verify/lint.hpp"
#include "verify/verify.hpp"

namespace {

using namespace ais;

const MachineModel& machine_by_name(const std::string& name) {
  const MachineModel* m = machine_preset(name);
  if (m == nullptr) {
    std::fprintf(stderr, "aislint: unknown machine '%s'\n", name.c_str());
    std::exit(2);
  }
  return *m;
}

Program parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "aislint: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_program(text.str());
}

void print_report(const verify::Report& report, bool quiet) {
  for (const verify::Diagnostic& d : report.diagnostics()) {
    if (quiet && d.severity == verify::Severity::kNote) continue;
    std::printf("%s\n", d.to_string().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string path = args.get_string("in", "");
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: aislint --in FILE [--mode trace|loop|cfg] "
                 "[--machine NAME] [--window N] [--rename] [--verify] "
                 "[--against FILE] [--optimal] [--werror] [--quiet]\n");
    return 2;
  }

  const MachineModel& machine =
      machine_by_name(args.get_string("machine", "rs6000"));
  const int window = static_cast<int>(args.get_int("window", 0));
  const std::string mode = args.get_string("mode", "trace");
  if (mode != "trace" && mode != "loop" && mode != "cfg") {
    std::fprintf(stderr, "aislint: unknown mode '%s'\n", mode.c_str());
    return 2;
  }
  const bool do_rename = args.get_bool("rename", false);
  const bool do_verify = args.get_bool("verify", false);
  const std::string against = args.get_string("against", "");
  const bool optimal = args.get_bool("optimal", false);
  const bool werror = args.get_bool("werror", false);
  const bool quiet = args.get_bool("quiet", false);

  const Program prog = parse_file(path);
  verify::Report report = verify::lint_program(prog);

  // The program the schedule must be a reordering of: renaming changes
  // registers, so verification compares against the renamed input, exactly
  // as `aisc --rename` compiles it.
  Trace original{prog.blocks};
  if (do_rename) original = rename_trace(original);

  if (!against.empty()) {
    // External verification: FILE claims to be a compilation of --in.
    const Program compiled = parse_file(against);
    verify::VerifyOptions opts;
    opts.window = window == 0 ? machine.default_window() : window;
    opts.check_optimality = optimal;
    report.merge(verify::check_emitted(original, Trace{compiled.blocks},
                                       machine, opts));
  } else if (do_verify) {
    // In-process verification: schedule with the production pipeline, then
    // re-check every invariant from independently derived dependences.
    if (mode == "cfg") {
      const Cfg cfg(prog);
      const CompiledProgram compiled =
          compile_program(cfg, machine, window, /*verify=*/true);
      report.merge(compiled.verification);
    } else if (mode == "loop") {
      Loop loop;
      loop.body = original;
      const ScheduledLoop scheduled = schedule(loop, machine, window);
      report.merge(verify_schedule(loop, scheduled, machine));
    } else {
      const ScheduledTrace scheduled = schedule(original, machine, window);
      report.merge(verify_schedule(original, scheduled, machine, optimal));
    }
  }

  print_report(report, quiet);
  const bool failed =
      !report.ok() || (werror && report.num_warnings() > 0);
  if (!quiet) {
    std::printf("aislint: %s — %zu error(s), %zu warning(s)\n",
                failed ? "FAIL" : "ok", report.num_errors(),
                report.num_warnings());
  }
  return failed ? 1 : 0;
}
