# Empty dependencies file for bench_trace_length.
# This may be replaced when dependencies are built.
