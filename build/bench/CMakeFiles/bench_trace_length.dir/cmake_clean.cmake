file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_length.dir/bench_trace_length.cpp.o"
  "CMakeFiles/bench_trace_length.dir/bench_trace_length.cpp.o.d"
  "bench_trace_length"
  "bench_trace_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
