file(REMOVE_RECURSE
  "CMakeFiles/bench_general_machine.dir/bench_general_machine.cpp.o"
  "CMakeFiles/bench_general_machine.dir/bench_general_machine.cpp.o.d"
  "bench_general_machine"
  "bench_general_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_general_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
