# Empty dependencies file for bench_general_machine.
# This may be replaced when dependencies are built.
