# Empty dependencies file for bench_swp_postpass.
# This may be replaced when dependencies are built.
