file(REMOVE_RECURSE
  "CMakeFiles/bench_swp_postpass.dir/bench_swp_postpass.cpp.o"
  "CMakeFiles/bench_swp_postpass.dir/bench_swp_postpass.cpp.o.d"
  "bench_swp_postpass"
  "bench_swp_postpass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_swp_postpass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
