
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_optimality.cpp" "bench/CMakeFiles/bench_optimality.dir/bench_optimality.cpp.o" "gcc" "bench/CMakeFiles/bench_optimality.dir/bench_optimality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/ais_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/ais_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/ais_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ais_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ais_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ais_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ais_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ais_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ais_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ais_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ais_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
