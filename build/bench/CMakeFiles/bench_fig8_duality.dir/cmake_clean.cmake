file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_duality.dir/bench_fig8_duality.cpp.o"
  "CMakeFiles/bench_fig8_duality.dir/bench_fig8_duality.cpp.o.d"
  "bench_fig8_duality"
  "bench_fig8_duality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_duality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
