# Empty dependencies file for bench_fig8_duality.
# This may be replaced when dependencies are built.
