file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_deps.dir/bench_memory_deps.cpp.o"
  "CMakeFiles/bench_memory_deps.dir/bench_memory_deps.cpp.o.d"
  "bench_memory_deps"
  "bench_memory_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
