# Empty compiler generated dependencies file for bench_memory_deps.
# This may be replaced when dependencies are built.
