# Empty compiler generated dependencies file for bench_loops.
# This may be replaced when dependencies are built.
