file(REMOVE_RECURSE
  "CMakeFiles/bench_loops.dir/bench_loops.cpp.o"
  "CMakeFiles/bench_loops.dir/bench_loops.cpp.o.d"
  "bench_loops"
  "bench_loops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
