file(REMOVE_RECURSE
  "libais_workloads.a"
)
