# Empty compiler generated dependencies file for ais_workloads.
# This may be replaced when dependencies are built.
