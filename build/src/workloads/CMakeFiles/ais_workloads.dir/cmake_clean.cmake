file(REMOVE_RECURSE
  "CMakeFiles/ais_workloads.dir/kernels.cpp.o"
  "CMakeFiles/ais_workloads.dir/kernels.cpp.o.d"
  "CMakeFiles/ais_workloads.dir/paper_graphs.cpp.o"
  "CMakeFiles/ais_workloads.dir/paper_graphs.cpp.o.d"
  "CMakeFiles/ais_workloads.dir/random_graphs.cpp.o"
  "CMakeFiles/ais_workloads.dir/random_graphs.cpp.o.d"
  "CMakeFiles/ais_workloads.dir/random_ir.cpp.o"
  "CMakeFiles/ais_workloads.dir/random_ir.cpp.o.d"
  "libais_workloads.a"
  "libais_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ais_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
