file(REMOVE_RECURSE
  "libais_sim.a"
)
