# Empty compiler generated dependencies file for ais_sim.
# This may be replaced when dependencies are built.
