file(REMOVE_RECURSE
  "CMakeFiles/ais_sim.dir/lookahead_sim.cpp.o"
  "CMakeFiles/ais_sim.dir/lookahead_sim.cpp.o.d"
  "CMakeFiles/ais_sim.dir/loop_sim.cpp.o"
  "CMakeFiles/ais_sim.dir/loop_sim.cpp.o.d"
  "libais_sim.a"
  "libais_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ais_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
