file(REMOVE_RECURSE
  "CMakeFiles/ais_driver.dir/anticipatory.cpp.o"
  "CMakeFiles/ais_driver.dir/anticipatory.cpp.o.d"
  "CMakeFiles/ais_driver.dir/function_compiler.cpp.o"
  "CMakeFiles/ais_driver.dir/function_compiler.cpp.o.d"
  "libais_driver.a"
  "libais_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ais_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
