file(REMOVE_RECURSE
  "libais_driver.a"
)
