# Empty dependencies file for ais_driver.
# This may be replaced when dependencies are built.
