# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("graph")
subdirs("machine")
subdirs("ir")
subdirs("core")
subdirs("sim")
subdirs("baselines")
subdirs("workloads")
subdirs("cfg")
subdirs("pipeline")
subdirs("driver")
