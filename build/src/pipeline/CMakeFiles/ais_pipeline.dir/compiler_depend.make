# Empty compiler generated dependencies file for ais_pipeline.
# This may be replaced when dependencies are built.
