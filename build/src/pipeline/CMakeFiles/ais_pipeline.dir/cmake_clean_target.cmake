file(REMOVE_RECURSE
  "libais_pipeline.a"
)
