file(REMOVE_RECURSE
  "CMakeFiles/ais_pipeline.dir/modulo.cpp.o"
  "CMakeFiles/ais_pipeline.dir/modulo.cpp.o.d"
  "libais_pipeline.a"
  "libais_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ais_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
