# Empty dependencies file for ais_graph.
# This may be replaced when dependencies are built.
