file(REMOVE_RECURSE
  "CMakeFiles/ais_graph.dir/closure.cpp.o"
  "CMakeFiles/ais_graph.dir/closure.cpp.o.d"
  "CMakeFiles/ais_graph.dir/critpath.cpp.o"
  "CMakeFiles/ais_graph.dir/critpath.cpp.o.d"
  "CMakeFiles/ais_graph.dir/depgraph.cpp.o"
  "CMakeFiles/ais_graph.dir/depgraph.cpp.o.d"
  "CMakeFiles/ais_graph.dir/dot.cpp.o"
  "CMakeFiles/ais_graph.dir/dot.cpp.o.d"
  "CMakeFiles/ais_graph.dir/nodeset.cpp.o"
  "CMakeFiles/ais_graph.dir/nodeset.cpp.o.d"
  "CMakeFiles/ais_graph.dir/topo.cpp.o"
  "CMakeFiles/ais_graph.dir/topo.cpp.o.d"
  "libais_graph.a"
  "libais_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ais_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
