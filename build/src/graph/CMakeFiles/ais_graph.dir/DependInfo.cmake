
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/closure.cpp" "src/graph/CMakeFiles/ais_graph.dir/closure.cpp.o" "gcc" "src/graph/CMakeFiles/ais_graph.dir/closure.cpp.o.d"
  "/root/repo/src/graph/critpath.cpp" "src/graph/CMakeFiles/ais_graph.dir/critpath.cpp.o" "gcc" "src/graph/CMakeFiles/ais_graph.dir/critpath.cpp.o.d"
  "/root/repo/src/graph/depgraph.cpp" "src/graph/CMakeFiles/ais_graph.dir/depgraph.cpp.o" "gcc" "src/graph/CMakeFiles/ais_graph.dir/depgraph.cpp.o.d"
  "/root/repo/src/graph/dot.cpp" "src/graph/CMakeFiles/ais_graph.dir/dot.cpp.o" "gcc" "src/graph/CMakeFiles/ais_graph.dir/dot.cpp.o.d"
  "/root/repo/src/graph/nodeset.cpp" "src/graph/CMakeFiles/ais_graph.dir/nodeset.cpp.o" "gcc" "src/graph/CMakeFiles/ais_graph.dir/nodeset.cpp.o.d"
  "/root/repo/src/graph/topo.cpp" "src/graph/CMakeFiles/ais_graph.dir/topo.cpp.o" "gcc" "src/graph/CMakeFiles/ais_graph.dir/topo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ais_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
