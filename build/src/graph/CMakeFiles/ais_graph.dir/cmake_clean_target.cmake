file(REMOVE_RECURSE
  "libais_graph.a"
)
