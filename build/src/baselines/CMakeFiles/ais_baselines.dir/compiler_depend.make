# Empty compiler generated dependencies file for ais_baselines.
# This may be replaced when dependencies are built.
