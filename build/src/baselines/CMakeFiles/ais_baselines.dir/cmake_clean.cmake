file(REMOVE_RECURSE
  "CMakeFiles/ais_baselines.dir/block_schedulers.cpp.o"
  "CMakeFiles/ais_baselines.dir/block_schedulers.cpp.o.d"
  "CMakeFiles/ais_baselines.dir/bruteforce.cpp.o"
  "CMakeFiles/ais_baselines.dir/bruteforce.cpp.o.d"
  "libais_baselines.a"
  "libais_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ais_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
