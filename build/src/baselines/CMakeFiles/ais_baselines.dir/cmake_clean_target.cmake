file(REMOVE_RECURSE
  "libais_baselines.a"
)
