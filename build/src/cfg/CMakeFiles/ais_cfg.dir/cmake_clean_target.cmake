file(REMOVE_RECURSE
  "libais_cfg.a"
)
