
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/cfg.cpp" "src/cfg/CMakeFiles/ais_cfg.dir/cfg.cpp.o" "gcc" "src/cfg/CMakeFiles/ais_cfg.dir/cfg.cpp.o.d"
  "/root/repo/src/cfg/trace_select.cpp" "src/cfg/CMakeFiles/ais_cfg.dir/trace_select.cpp.o" "gcc" "src/cfg/CMakeFiles/ais_cfg.dir/trace_select.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ais_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ais_support.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ais_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ais_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
