file(REMOVE_RECURSE
  "CMakeFiles/ais_cfg.dir/cfg.cpp.o"
  "CMakeFiles/ais_cfg.dir/cfg.cpp.o.d"
  "CMakeFiles/ais_cfg.dir/trace_select.cpp.o"
  "CMakeFiles/ais_cfg.dir/trace_select.cpp.o.d"
  "libais_cfg.a"
  "libais_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ais_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
