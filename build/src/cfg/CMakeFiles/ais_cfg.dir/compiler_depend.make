# Empty compiler generated dependencies file for ais_cfg.
# This may be replaced when dependencies are built.
