# Empty compiler generated dependencies file for ais_ir.
# This may be replaced when dependencies are built.
