file(REMOVE_RECURSE
  "CMakeFiles/ais_ir.dir/asm_parser.cpp.o"
  "CMakeFiles/ais_ir.dir/asm_parser.cpp.o.d"
  "CMakeFiles/ais_ir.dir/depbuild.cpp.o"
  "CMakeFiles/ais_ir.dir/depbuild.cpp.o.d"
  "CMakeFiles/ais_ir.dir/instruction.cpp.o"
  "CMakeFiles/ais_ir.dir/instruction.cpp.o.d"
  "CMakeFiles/ais_ir.dir/interp.cpp.o"
  "CMakeFiles/ais_ir.dir/interp.cpp.o.d"
  "CMakeFiles/ais_ir.dir/rename.cpp.o"
  "CMakeFiles/ais_ir.dir/rename.cpp.o.d"
  "libais_ir.a"
  "libais_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ais_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
