
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/asm_parser.cpp" "src/ir/CMakeFiles/ais_ir.dir/asm_parser.cpp.o" "gcc" "src/ir/CMakeFiles/ais_ir.dir/asm_parser.cpp.o.d"
  "/root/repo/src/ir/depbuild.cpp" "src/ir/CMakeFiles/ais_ir.dir/depbuild.cpp.o" "gcc" "src/ir/CMakeFiles/ais_ir.dir/depbuild.cpp.o.d"
  "/root/repo/src/ir/instruction.cpp" "src/ir/CMakeFiles/ais_ir.dir/instruction.cpp.o" "gcc" "src/ir/CMakeFiles/ais_ir.dir/instruction.cpp.o.d"
  "/root/repo/src/ir/interp.cpp" "src/ir/CMakeFiles/ais_ir.dir/interp.cpp.o" "gcc" "src/ir/CMakeFiles/ais_ir.dir/interp.cpp.o.d"
  "/root/repo/src/ir/rename.cpp" "src/ir/CMakeFiles/ais_ir.dir/rename.cpp.o" "gcc" "src/ir/CMakeFiles/ais_ir.dir/rename.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ais_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ais_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ais_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
