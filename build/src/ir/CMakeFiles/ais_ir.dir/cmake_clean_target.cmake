file(REMOVE_RECURSE
  "libais_ir.a"
)
