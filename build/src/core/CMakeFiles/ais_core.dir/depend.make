# Empty dependencies file for ais_core.
# This may be replaced when dependencies are built.
