file(REMOVE_RECURSE
  "CMakeFiles/ais_core.dir/chop.cpp.o"
  "CMakeFiles/ais_core.dir/chop.cpp.o.d"
  "CMakeFiles/ais_core.dir/deadlines.cpp.o"
  "CMakeFiles/ais_core.dir/deadlines.cpp.o.d"
  "CMakeFiles/ais_core.dir/legality.cpp.o"
  "CMakeFiles/ais_core.dir/legality.cpp.o.d"
  "CMakeFiles/ais_core.dir/lookahead.cpp.o"
  "CMakeFiles/ais_core.dir/lookahead.cpp.o.d"
  "CMakeFiles/ais_core.dir/loop_single.cpp.o"
  "CMakeFiles/ais_core.dir/loop_single.cpp.o.d"
  "CMakeFiles/ais_core.dir/loop_trace.cpp.o"
  "CMakeFiles/ais_core.dir/loop_trace.cpp.o.d"
  "CMakeFiles/ais_core.dir/merge.cpp.o"
  "CMakeFiles/ais_core.dir/merge.cpp.o.d"
  "CMakeFiles/ais_core.dir/move_idle.cpp.o"
  "CMakeFiles/ais_core.dir/move_idle.cpp.o.d"
  "CMakeFiles/ais_core.dir/rank.cpp.o"
  "CMakeFiles/ais_core.dir/rank.cpp.o.d"
  "CMakeFiles/ais_core.dir/schedule.cpp.o"
  "CMakeFiles/ais_core.dir/schedule.cpp.o.d"
  "libais_core.a"
  "libais_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ais_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
