file(REMOVE_RECURSE
  "libais_core.a"
)
