
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chop.cpp" "src/core/CMakeFiles/ais_core.dir/chop.cpp.o" "gcc" "src/core/CMakeFiles/ais_core.dir/chop.cpp.o.d"
  "/root/repo/src/core/deadlines.cpp" "src/core/CMakeFiles/ais_core.dir/deadlines.cpp.o" "gcc" "src/core/CMakeFiles/ais_core.dir/deadlines.cpp.o.d"
  "/root/repo/src/core/legality.cpp" "src/core/CMakeFiles/ais_core.dir/legality.cpp.o" "gcc" "src/core/CMakeFiles/ais_core.dir/legality.cpp.o.d"
  "/root/repo/src/core/lookahead.cpp" "src/core/CMakeFiles/ais_core.dir/lookahead.cpp.o" "gcc" "src/core/CMakeFiles/ais_core.dir/lookahead.cpp.o.d"
  "/root/repo/src/core/loop_single.cpp" "src/core/CMakeFiles/ais_core.dir/loop_single.cpp.o" "gcc" "src/core/CMakeFiles/ais_core.dir/loop_single.cpp.o.d"
  "/root/repo/src/core/loop_trace.cpp" "src/core/CMakeFiles/ais_core.dir/loop_trace.cpp.o" "gcc" "src/core/CMakeFiles/ais_core.dir/loop_trace.cpp.o.d"
  "/root/repo/src/core/merge.cpp" "src/core/CMakeFiles/ais_core.dir/merge.cpp.o" "gcc" "src/core/CMakeFiles/ais_core.dir/merge.cpp.o.d"
  "/root/repo/src/core/move_idle.cpp" "src/core/CMakeFiles/ais_core.dir/move_idle.cpp.o" "gcc" "src/core/CMakeFiles/ais_core.dir/move_idle.cpp.o.d"
  "/root/repo/src/core/rank.cpp" "src/core/CMakeFiles/ais_core.dir/rank.cpp.o" "gcc" "src/core/CMakeFiles/ais_core.dir/rank.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/ais_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/ais_core.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ais_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ais_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ais_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
