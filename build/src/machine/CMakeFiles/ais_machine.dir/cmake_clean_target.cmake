file(REMOVE_RECURSE
  "libais_machine.a"
)
