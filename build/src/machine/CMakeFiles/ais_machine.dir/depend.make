# Empty dependencies file for ais_machine.
# This may be replaced when dependencies are built.
