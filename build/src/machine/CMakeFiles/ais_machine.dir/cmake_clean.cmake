file(REMOVE_RECURSE
  "CMakeFiles/ais_machine.dir/machine_model.cpp.o"
  "CMakeFiles/ais_machine.dir/machine_model.cpp.o.d"
  "CMakeFiles/ais_machine.dir/presets.cpp.o"
  "CMakeFiles/ais_machine.dir/presets.cpp.o.d"
  "libais_machine.a"
  "libais_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ais_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
