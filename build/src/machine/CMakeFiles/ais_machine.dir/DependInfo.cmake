
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/machine_model.cpp" "src/machine/CMakeFiles/ais_machine.dir/machine_model.cpp.o" "gcc" "src/machine/CMakeFiles/ais_machine.dir/machine_model.cpp.o.d"
  "/root/repo/src/machine/presets.cpp" "src/machine/CMakeFiles/ais_machine.dir/presets.cpp.o" "gcc" "src/machine/CMakeFiles/ais_machine.dir/presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ais_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
