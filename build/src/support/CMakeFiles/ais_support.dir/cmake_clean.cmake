file(REMOVE_RECURSE
  "CMakeFiles/ais_support.dir/assert.cpp.o"
  "CMakeFiles/ais_support.dir/assert.cpp.o.d"
  "CMakeFiles/ais_support.dir/bitset.cpp.o"
  "CMakeFiles/ais_support.dir/bitset.cpp.o.d"
  "CMakeFiles/ais_support.dir/cli.cpp.o"
  "CMakeFiles/ais_support.dir/cli.cpp.o.d"
  "CMakeFiles/ais_support.dir/csv.cpp.o"
  "CMakeFiles/ais_support.dir/csv.cpp.o.d"
  "CMakeFiles/ais_support.dir/prng.cpp.o"
  "CMakeFiles/ais_support.dir/prng.cpp.o.d"
  "CMakeFiles/ais_support.dir/str.cpp.o"
  "CMakeFiles/ais_support.dir/str.cpp.o.d"
  "CMakeFiles/ais_support.dir/table.cpp.o"
  "CMakeFiles/ais_support.dir/table.cpp.o.d"
  "libais_support.a"
  "libais_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ais_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
