# Empty compiler generated dependencies file for ais_support.
# This may be replaced when dependencies are built.
