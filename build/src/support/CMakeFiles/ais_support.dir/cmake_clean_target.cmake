file(REMOVE_RECURSE
  "libais_support.a"
)
