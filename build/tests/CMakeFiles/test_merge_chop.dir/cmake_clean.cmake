file(REMOVE_RECURSE
  "CMakeFiles/test_merge_chop.dir/test_merge_chop.cpp.o"
  "CMakeFiles/test_merge_chop.dir/test_merge_chop.cpp.o.d"
  "test_merge_chop"
  "test_merge_chop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merge_chop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
