# Empty compiler generated dependencies file for test_merge_chop.
# This may be replaced when dependencies are built.
