# Empty compiler generated dependencies file for test_move_idle.
# This may be replaced when dependencies are built.
