file(REMOVE_RECURSE
  "CMakeFiles/test_move_idle.dir/test_move_idle.cpp.o"
  "CMakeFiles/test_move_idle.dir/test_move_idle.cpp.o.d"
  "test_move_idle"
  "test_move_idle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_move_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
