file(REMOVE_RECURSE
  "CMakeFiles/window_explorer.dir/window_explorer.cpp.o"
  "CMakeFiles/window_explorer.dir/window_explorer.cpp.o.d"
  "window_explorer"
  "window_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
