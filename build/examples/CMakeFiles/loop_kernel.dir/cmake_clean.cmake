file(REMOVE_RECURSE
  "CMakeFiles/loop_kernel.dir/loop_kernel.cpp.o"
  "CMakeFiles/loop_kernel.dir/loop_kernel.cpp.o.d"
  "loop_kernel"
  "loop_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
