# Empty compiler generated dependencies file for loop_kernel.
# This may be replaced when dependencies are built.
