# Empty dependencies file for function_compiler.
# This may be replaced when dependencies are built.
