file(REMOVE_RECURSE
  "CMakeFiles/function_compiler.dir/function_compiler.cpp.o"
  "CMakeFiles/function_compiler.dir/function_compiler.cpp.o.d"
  "function_compiler"
  "function_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/function_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
