file(REMOVE_RECURSE
  "CMakeFiles/aisc.dir/aisc.cpp.o"
  "CMakeFiles/aisc.dir/aisc.cpp.o.d"
  "aisc"
  "aisc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aisc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
