# Empty compiler generated dependencies file for aisc.
# This may be replaced when dependencies are built.
