#include "workloads/kernels.hpp"

#include "ir/asm_parser.hpp"

namespace ais {
namespace {

Loop loop_from_asm(const std::string& text) {
  Loop loop;
  loop.body.blocks.push_back(parse_block(text));
  return loop;
}

}  // namespace

Loop partial_product_kernel() {
  return loop_from_asm(R"(
    block CL.18:
      LDU r6, x[r7+4]
      STU y[r5+4], r0
      CMP c1, r6, 0
      MUL r0, r6, r0
      BT  c1, CL.1
  )");
}

Loop daxpy_kernel() {
  return loop_from_asm(R"(
    block daxpy:
      LDU f1, x[r7+8]
      LDU f2, y[r8+8]
      FMA f3, f0, f1, f2
      STU y[r9+8], f3
      ADD r4, r4, 1
      CMP c1, r4
      BF  c1, daxpy
  )");
}

Loop dot_kernel() {
  return loop_from_asm(R"(
    block dot:
      LDU f1, x[r7+8]
      LDU f2, y[r8+8]
      FMA f0, f1, f2, f0
      ADD r4, r4, 1
      CMP c1, r4
      BF  c1, dot
  )");
}

Loop fir_kernel() {
  return loop_from_asm(R"(
    block fir:
      LD  f1, x[r7+0]
      LDU f2, x[r7+8]
      FMUL f3, f0, f1
      FMUL f4, f5, f2
      FADD f6, f3, f4
      STU out[r9+8], f6
      CMP c1, r7
      BF  c1, fir
  )");
}

Loop horner_kernel() {
  return loop_from_asm(R"(
    block horner:
      LDU f2, coef[r7+8]
      FMA f0, f0, f1, f2
      SUB r4, r4, 1
      CMP c1, r4
      BF  c1, horner
  )");
}

Loop sum_until_zero_kernel() {
  return loop_from_asm(R"(
    block sum:
      LDU r6, v[r7+4]
      ADD r3, r3, r6
      CMP c1, r6, 0
      BF  c1, sum
  )");
}

Loop matmul_inner_kernel() {
  return loop_from_asm(R"(
    block mm:
      LDU f1, a[r7+8]
      ADD r8, r8, r10
      LD  f2, b[r8+0]
      FMA f0, f1, f2, f0
      SUB r4, r4, 1
      CMP c1, r4, 0
      BF  c1, mm
  )");
}

Loop stencil3_kernel() {
  return loop_from_asm(R"(
    block st3:
      LD  f1, in[r7+0]
      LD  f2, in[r7+8]
      LD  f3, in[r7+16]
      FMUL f4, f1, f10
      FMA  f5, f2, f11, f4
      FMA  f6, f3, f12, f5
      STU out[r9+8], f6
      ADD r7, r7, 8
      CMP c1, r7, 0
      BF  c1, st3
  )");
}

Loop prefix_sum_kernel() {
  // out[i] = out[i-1] + in[i]: the recurrence runs through the out region
  // (store then load of the previous element next iteration).
  return loop_from_asm(R"(
    block ps:
      LDU r6, in[r7+8]
      LD  r8, out[r9+0]
      ADD r10, r8, r6
      STU out[r9+8], r10
      CMP c1, r6, 0
      BF  c1, ps
  )");
}

Trace sample_trace() {
  const Program prog = parse_program(R"(
    block head:
      LDU r6, a[r7+4]
      LDU r8, b[r9+4]
      MUL r10, r6, r8
      CMP c1, r6, 0
      BT  c1, tail
    block mid:
      ADD r11, r10, r6
      LD  r12, c[r11+0]
      SHL r13, r12, 2
      CMP c2, r13, 0
      BT  c2, tail
    block tail:
      ADD r14, r13, r11
      ST  d[r7+0], r14
      ADD r7, r7, 4
  )");
  return Trace{prog.blocks};
}

std::vector<NamedLoop> all_loop_kernels() {
  std::vector<NamedLoop> loops;
  loops.push_back({"partial-product", partial_product_kernel()});
  loops.push_back({"daxpy", daxpy_kernel()});
  loops.push_back({"dot", dot_kernel()});
  loops.push_back({"fir", fir_kernel()});
  loops.push_back({"horner", horner_kernel()});
  loops.push_back({"sum-until-zero", sum_until_zero_kernel()});
  loops.push_back({"matmul-inner", matmul_inner_kernel()});
  loops.push_back({"stencil3", stencil3_kernel()});
  loops.push_back({"prefix-sum", prefix_sum_kernel()});
  return loops;
}

}  // namespace ais
