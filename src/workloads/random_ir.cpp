#include "workloads/random_ir.hpp"

#include "support/assert.hpp"

namespace ais {
namespace {

Reg pick_gpr(Prng& prng, const RandomIrParams& p) {
  return gpr(static_cast<std::uint8_t>(prng.uniform(0, p.num_gprs - 1)));
}

Reg pick_fpr(Prng& prng, const RandomIrParams& p) {
  return fpr(static_cast<std::uint8_t>(prng.uniform(0, p.num_fprs - 1)));
}

std::string pick_tag(Prng& prng, const RandomIrParams& p) {
  if (prng.chance(0.1)) return "";  // untagged: may alias anything
  return "t" + std::to_string(prng.uniform(0, p.num_tags - 1));
}

Instruction random_inst(Prng& prng, const RandomIrParams& p) {
  if (prng.chance(p.mem_frac)) {
    MemRef m{pick_gpr(prng, p), static_cast<int>(prng.uniform(0, 3)) * 8,
             pick_tag(prng, p)};
    const bool update = prng.chance(0.3);
    if (prng.chance(0.5)) {
      return Instruction::load(pick_gpr(prng, p), m, update);
    }
    return Instruction::store(m, pick_gpr(prng, p), update);
  }
  switch (prng.uniform(0, 7)) {
    case 0:
      return Instruction::li(pick_gpr(prng, p), prng.uniform(-99, 99));
    case 1:
      return Instruction::mov(pick_gpr(prng, p), pick_gpr(prng, p));
    case 2: {
      static constexpr Opcode kOps[] = {Opcode::kAdd, Opcode::kSub,
                                        Opcode::kXor, Opcode::kAnd,
                                        Opcode::kOr};
      return Instruction::alu(kOps[prng.index(std::size(kOps))],
                              pick_gpr(prng, p), pick_gpr(prng, p),
                              pick_gpr(prng, p));
    }
    case 3:
      return Instruction::alu_imm(prng.chance(0.5) ? Opcode::kShl
                                                   : Opcode::kShr,
                                  pick_gpr(prng, p), pick_gpr(prng, p),
                                  prng.uniform(1, 7));
    case 4:
      return Instruction::alu(Opcode::kMul, pick_gpr(prng, p),
                              pick_gpr(prng, p), pick_gpr(prng, p));
    case 5:
      return Instruction::alu(prng.chance(0.5) ? Opcode::kFAdd
                                               : Opcode::kFMul,
                              pick_fpr(prng, p), pick_fpr(prng, p),
                              pick_fpr(prng, p));
    case 6:
      return Instruction::fma(pick_fpr(prng, p), pick_fpr(prng, p),
                              pick_fpr(prng, p), pick_fpr(prng, p));
    default:
      return Instruction::cmp(cr(static_cast<std::uint8_t>(prng.uniform(0, 3))),
                              pick_gpr(prng, p), prng.uniform(-3, 3));
  }
}

}  // namespace

BasicBlock random_ir_block(Prng& prng, const RandomIrParams& params,
                           const std::string& label) {
  AIS_CHECK(params.num_insts >= 1, "block needs at least one instruction");
  BasicBlock bb;
  bb.label = label;
  const int body = params.num_insts - (params.end_with_branch ? 2 : 0);
  for (int i = 0; i < std::max(1, body); ++i) {
    bb.insts.push_back(random_inst(prng, params));
  }
  if (params.end_with_branch) {
    const Reg c = cr(static_cast<std::uint8_t>(prng.uniform(0, 3)));
    bb.insts.push_back(
        Instruction::cmp(c, pick_gpr(prng, params), prng.uniform(-3, 3)));
    bb.insts.push_back(Instruction::branch(
        prng.chance(0.5) ? Opcode::kBt : Opcode::kBf, c, "L" + label));
  }
  return bb;
}

Trace random_ir_trace(Prng& prng, const RandomIrParams& params,
                      int num_blocks) {
  Trace trace;
  for (int b = 0; b < num_blocks; ++b) {
    RandomIrParams p = params;
    p.end_with_branch = params.end_with_branch && (b + 1 < num_blocks);
    trace.blocks.push_back(
        random_ir_block(prng, p, "bb" + std::to_string(b)));
  }
  return trace;
}

Loop random_ir_loop(Prng& prng, const RandomIrParams& params) {
  Loop loop;
  loop.body.blocks.push_back(random_ir_block(prng, params, "loop"));
  return loop;
}

}  // namespace ais
