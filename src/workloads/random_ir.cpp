#include "workloads/random_ir.hpp"

#include "support/assert.hpp"

namespace ais {
namespace {

Reg pick_gpr(Prng& prng, const RandomIrParams& p) {
  return gpr(static_cast<std::uint8_t>(prng.uniform(0, p.num_gprs - 1)));
}

Reg pick_fpr(Prng& prng, const RandomIrParams& p) {
  return fpr(static_cast<std::uint8_t>(prng.uniform(0, p.num_fprs - 1)));
}

std::string pick_tag(Prng& prng, const RandomIrParams& p) {
  if (prng.chance(0.1)) return "";  // untagged: may alias anything
  return "t" + std::to_string(prng.uniform(0, p.num_tags - 1));
}

Instruction random_inst(Prng& prng, const RandomIrParams& p) {
  if (prng.chance(p.mem_frac)) {
    MemRef m{pick_gpr(prng, p), static_cast<int>(prng.uniform(0, 3)) * 8,
             pick_tag(prng, p)};
    const bool update = prng.chance(0.3);
    if (prng.chance(0.5)) {
      return Instruction::load(pick_gpr(prng, p), m, update);
    }
    return Instruction::store(m, pick_gpr(prng, p), update);
  }
  switch (prng.uniform(0, 7)) {
    case 0:
      return Instruction::li(pick_gpr(prng, p), prng.uniform(-99, 99));
    case 1:
      return Instruction::mov(pick_gpr(prng, p), pick_gpr(prng, p));
    case 2: {
      static constexpr Opcode kOps[] = {Opcode::kAdd, Opcode::kSub,
                                        Opcode::kXor, Opcode::kAnd,
                                        Opcode::kOr};
      return Instruction::alu(kOps[prng.index(std::size(kOps))],
                              pick_gpr(prng, p), pick_gpr(prng, p),
                              pick_gpr(prng, p));
    }
    case 3:
      return Instruction::alu_imm(prng.chance(0.5) ? Opcode::kShl
                                                   : Opcode::kShr,
                                  pick_gpr(prng, p), pick_gpr(prng, p),
                                  prng.uniform(1, 7));
    case 4:
      return Instruction::alu(Opcode::kMul, pick_gpr(prng, p),
                              pick_gpr(prng, p), pick_gpr(prng, p));
    case 5:
      return Instruction::alu(prng.chance(0.5) ? Opcode::kFAdd
                                               : Opcode::kFMul,
                              pick_fpr(prng, p), pick_fpr(prng, p),
                              pick_fpr(prng, p));
    case 6:
      return Instruction::fma(pick_fpr(prng, p), pick_fpr(prng, p),
                              pick_fpr(prng, p), pick_fpr(prng, p));
    default:
      return Instruction::cmp(cr(static_cast<std::uint8_t>(prng.uniform(0, 3))),
                              pick_gpr(prng, p), prng.uniform(-3, 3));
  }
}

}  // namespace

BasicBlock random_ir_block(Prng& prng, const RandomIrParams& params,
                           const std::string& label) {
  AIS_CHECK(params.num_insts >= 1, "block needs at least one instruction");
  BasicBlock bb;
  bb.label = label;
  bb.insts.reserve(static_cast<std::size_t>(params.num_insts));
  const int body = params.num_insts - (params.end_with_branch ? 2 : 0);
  for (int i = 0; i < std::max(1, body); ++i) {
    bb.insts.push_back(random_inst(prng, params));
  }
  if (params.end_with_branch) {
    const Reg c = cr(static_cast<std::uint8_t>(prng.uniform(0, 3)));
    bb.insts.push_back(
        Instruction::cmp(c, pick_gpr(prng, params), prng.uniform(-3, 3)));
    bb.insts.push_back(Instruction::branch(
        prng.chance(0.5) ? Opcode::kBt : Opcode::kBf, c, "L" + label));
  }
  return bb;
}

Trace random_ir_trace(Prng& prng, const RandomIrParams& params,
                      int num_blocks) {
  Trace trace;
  trace.blocks.reserve(static_cast<std::size_t>(num_blocks));
  for (int b = 0; b < num_blocks; ++b) {
    RandomIrParams p = params;
    p.end_with_branch = params.end_with_branch && (b + 1 < num_blocks);
    trace.blocks.push_back(
        random_ir_block(prng, p, "bb" + std::to_string(b)));
  }
  return trace;
}

Loop random_ir_loop(Prng& prng, const RandomIrParams& params) {
  Loop loop;
  loop.body.blocks.push_back(random_ir_block(prng, params, "loop"));
  return loop;
}

std::size_t random_ir_program_chunks(
    const RandomIrProgramParams& params,
    const std::function<void(Program&&, std::size_t)>& emit) {
  AIS_CHECK(params.blocks_per_chunk >= 1, "chunk needs at least one block");
  AIS_CHECK(params.self_loop_prob + params.back_branch_prob <= 1.0,
            "branch-shape probabilities exceed 1");
  Prng prng(params.seed);
  std::size_t total_insts = 0;
  std::size_t emitted = 0;
  std::size_t chunk_index = 0;
  while (emitted < params.num_blocks) {
    const std::size_t chunk_blocks =
        std::min(params.blocks_per_chunk, params.num_blocks - emitted);
    Program prog;
    prog.blocks.reserve(chunk_blocks);
    for (std::size_t b = 0; b < chunk_blocks; ++b) {
      const std::string label = "bb" + std::to_string(emitted + b);
      // Body without the trailing cmp+branch; the branch shape is decided
      // here so targets stay chunk-local.
      RandomIrParams p = params.block;
      p.end_with_branch = false;
      BasicBlock bb = random_ir_block(prng, p, label);
      const double roll = prng.chance(params.self_loop_prob) ? 0.0 : 1.0;
      const bool last_in_chunk = b + 1 == chunk_blocks;
      if (!last_in_chunk && roll == 0.0) {
        // Hot self back edge: this block becomes its own trace seed.
        const Reg c = cr(static_cast<std::uint8_t>(prng.uniform(0, 3)));
        bb.insts.push_back(
            Instruction::cmp(c, pick_gpr(prng, params.block),
                             prng.uniform(-3, 3)));
        bb.insts.push_back(Instruction::branch(
            prng.chance(0.5) ? Opcode::kBt : Opcode::kBf, c, label));
      } else if (!last_in_chunk && b > 0 &&
                 prng.chance(params.back_branch_prob)) {
        // Short backward branch inside the chunk: a loop shape.
        const std::size_t span = std::min<std::size_t>(b, 8);
        const std::size_t target =
            b - static_cast<std::size_t>(
                    prng.uniform(1, static_cast<long>(span)));
        const Reg c = cr(static_cast<std::uint8_t>(prng.uniform(0, 3)));
        bb.insts.push_back(
            Instruction::cmp(c, pick_gpr(prng, params.block),
                             prng.uniform(-3, 3)));
        bb.insts.push_back(Instruction::branch(
            prng.chance(0.5) ? Opcode::kBt : Opcode::kBf, c,
            "bb" + std::to_string(emitted + target)));
      }
      total_insts += bb.insts.size();
      prog.blocks.push_back(std::move(bb));
    }
    emit(std::move(prog), chunk_index);
    emitted += chunk_blocks;
    ++chunk_index;
  }
  return total_insts;
}

}  // namespace ais
