// The exact dependence graphs of the paper's worked examples.
//
// The published text prints rank values, priority lists and schedules but
// the figure graphics did not survive OCR; these graphs were reconstructed
// from those numbers and verified to reproduce *all* of them (see
// DESIGN.md §2 and tests/test_paper_figures.cpp).
#pragma once

#include "graph/depgraph.hpp"

namespace ais {

/// Figure 1: basic block BB1 = {x, e, w, b, r, a}, unit exec times, all
/// latency-1 edges: x->w, x->b, x->r, e->w, e->b, w->a, b->a.
/// Ranks under D = 100: x = e = 95, w = b = 98, a = r = 100; optimal
/// makespan 7 with one idle slot, delayable from t = 2 to t = 5.
DepGraph fig1_bb1();

/// Figure 2: the two-block trace.  BB1 as above (block 0); BB2 =
/// {z, q, p, v, g} (block 1) with z->q<1>, z->v<1>, q->p<0>, p->g<1>; cross
/// edge w->z<1>.  Window W = 2.  Merged ranks under D = 100:
/// x=90, e=91, w=93, z=95, q=97, b=p=98, a=r=v=g=100; legal makespan 11.
DepGraph fig2_trace();

/// Figure 2 variant discussed in the text: the z->q latency lowered to 0,
/// which makes the naive merged schedule violate the Window Constraint for
/// W = 2 and the Ordering Constraint.
DepGraph fig2_trace_latency0();

/// Figure 3: the partial-product loop {L4, ST, C4, M, BT} with
/// L4->C4<1,0>, L4->M<1,0>, C4->BT<1,0>, M->ST<4,1>, control edges
/// {L4,ST,M}->BT<0,0>, anti edge ST->M<0,0>, and carried self-dependences
/// L4<1,1>, ST<1,1> (base-register updates) and M<4,1>.
DepGraph fig3_loop();

/// Figure 8: three-node single-block loop whose loop-independent subgraph
/// has two sources: nodes {1, 2, 3}, edges 1->3<1,0>, 2->3<1,0>, carried
/// 3->1<1,1> and 3->2<0,1>.  The §5.2.1 "equivalent acyclic graph" is
/// completely symmetric in nodes 1 and 2 (both carried edges collapse onto
/// the dummy sink), yet on an in-order machine order 2-1-3 runs n
/// iterations in 4n cycles while 1-2-3 needs 5n-1 — the duality (§5.2.2)
/// construction recovers the asymmetry.
DepGraph fig8_loop();

}  // namespace ais
