// Random *instruction-level* workloads (vs. random_graphs' graph-level
// ones): real toy-ISA programs with registers, memory and branches, used by
// the semantic-preservation oracle (tests/test_interp.cpp) and the
// register-pressure studies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "ir/asm_parser.hpp"
#include "ir/instruction.hpp"
#include "support/prng.hpp"

namespace ais {

struct RandomIrParams {
  int num_insts = 10;
  /// Size of the register pools; small pools create dense RAW/WAR/WAW webs.
  int num_gprs = 6;
  int num_fprs = 4;
  /// Distinct memory region tags (a small chance of untagged access that
  /// aliases everything is always mixed in).
  int num_tags = 2;
  /// Fraction of instructions that touch memory.
  double mem_frac = 0.3;
  /// End the block with CMP + conditional branch.
  bool end_with_branch = true;
};

/// One random basic block.
BasicBlock random_ir_block(Prng& prng, const RandomIrParams& params,
                           const std::string& label = "entry");

/// A trace of random blocks (registers flow across blocks naturally since
/// the pools are shared).
Trace random_ir_trace(Prng& prng, const RandomIrParams& params,
                      int num_blocks);

/// A single-block loop (the block's register reuse creates carried deps).
Loop random_ir_loop(Prng& prng, const RandomIrParams& params);

/// Shape of a corpus-scale streaming program (bench_corpus_scale).
struct RandomIrProgramParams {
  RandomIrParams block;
  /// Total blocks in the whole program (a million for the scale gate).
  std::size_t num_blocks = 1'000'000;
  /// Blocks per emitted chunk; peak memory is O(chunk), never O(program).
  std::size_t blocks_per_chunk = 4096;
  std::uint64_t seed = 1;
  /// Per block: probability the block ends in a conditional branch back to
  /// its own label (a hot back edge — caps the trace there), vs. falling
  /// through into the next block (grows the trace), vs. a short backward
  /// branch (a loop shape).  The three probabilities sum to <= 1; the
  /// remainder falls through without any branch.
  double self_loop_prob = 0.35;
  double back_branch_prob = 0.20;
};

/// Streams a `params.num_blocks`-block program as a sequence of
/// self-contained chunk Programs of at most `params.blocks_per_chunk`
/// blocks, calling `emit(chunk, chunk_index)` for each in order.  Block
/// labels are globally unique ("bb<global index>"); every branch targets a
/// label inside its own chunk, so each chunk compiles independently and the
/// whole corpus is processed with O(chunk) peak memory.  Deterministic in
/// `params.seed`.  Returns the total instruction count emitted.
std::size_t random_ir_program_chunks(
    const RandomIrProgramParams& params,
    const std::function<void(Program&&, std::size_t)>& emit);

}  // namespace ais
