// Random *instruction-level* workloads (vs. random_graphs' graph-level
// ones): real toy-ISA programs with registers, memory and branches, used by
// the semantic-preservation oracle (tests/test_interp.cpp) and the
// register-pressure studies.
#pragma once

#include "ir/instruction.hpp"
#include "support/prng.hpp"

namespace ais {

struct RandomIrParams {
  int num_insts = 10;
  /// Size of the register pools; small pools create dense RAW/WAR/WAW webs.
  int num_gprs = 6;
  int num_fprs = 4;
  /// Distinct memory region tags (a small chance of untagged access that
  /// aliases everything is always mixed in).
  int num_tags = 2;
  /// Fraction of instructions that touch memory.
  double mem_frac = 0.3;
  /// End the block with CMP + conditional branch.
  bool end_with_branch = true;
};

/// One random basic block.
BasicBlock random_ir_block(Prng& prng, const RandomIrParams& params,
                           const std::string& label = "entry");

/// A trace of random blocks (registers flow across blocks naturally since
/// the pools are shared).
Trace random_ir_trace(Prng& prng, const RandomIrParams& params,
                      int num_blocks);

/// A single-block loop (the block's register reuse creates carried deps).
Loop random_ir_loop(Prng& prng, const RandomIrParams& params);

}  // namespace ais
