// Loop and trace kernels in the toy IR, mirroring the workloads the paper's
// introduction motivates (RS/6000-style compiled inner loops).
#pragma once

#include "ir/instruction.hpp"

namespace ais {

/// The paper's Figure 3 partial-product loop, exactly as printed at label
/// CL.18 (software-pipelined: the store belongs to the previous iteration):
///   LDU r6, x[r7+4]; STU y[r5+4], r0; CMP c1, r6; MUL r0, r6, r0; BT c1.
Loop partial_product_kernel();

/// daxpy: y[i] = a * x[i] + y[i]  (a in f0).
Loop daxpy_kernel();

/// dot product: s += x[i] * y[i]  (accumulator in f0 -> carried FMA chain).
Loop dot_kernel();

/// 2-tap FIR: out[i] = c0 * x[i] + c1 * x[i+1].
Loop fir_kernel();

/// Horner polynomial evaluation: p = p * x + c[i]  (carried through f0).
Loop horner_kernel();

/// Running int sum with a flag test: s += v[i]; exit when v[i] == 0.
Loop sum_until_zero_kernel();

/// Matrix-multiply inner loop: acc += a[k] * b[k] with two strided loads
/// (b's stride lives in a register add).
Loop matmul_inner_kernel();

/// 3-point stencil: out[i] = c0*in[i-1] + c1*in[i] + c2*in[i+1].
Loop stencil3_kernel();

/// Prefix sum with store-to-load feeding: out[i] = out[i-1] + in[i]
/// (the carried dependence flows through memory, not a register).
Loop prefix_sum_kernel();

/// A three-block straight-line trace (compare-and-branch blocks feeding one
/// another through registers), used by the trace-scheduling examples.
Trace sample_trace();

/// All loop kernels with their names (for bench sweeps).
struct NamedLoop {
  const char* name;
  Loop loop;
};
std::vector<NamedLoop> all_loop_kernels();

}  // namespace ais
