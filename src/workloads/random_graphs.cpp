#include "workloads/random_graphs.hpp"

#include <string>

#include "support/assert.hpp"

namespace ais {
namespace {

int random_latency(Prng& prng, const RandomBlockParams& p) {
  if (p.max_latency <= 1) {
    return prng.chance(p.latency1_prob) ? 1 : 0;
  }
  return static_cast<int>(prng.uniform(0, p.max_latency));
}

/// Adds `params.num_nodes` nodes for one block and its intra-block edges;
/// returns the ids added.
std::vector<NodeId> add_block(DepGraph& g, Prng& prng,
                              const RandomBlockParams& params, int block) {
  AIS_CHECK(params.num_nodes >= 1, "block needs at least one node");
  std::vector<NodeId> ids;
  std::vector<int> layer(static_cast<std::size_t>(params.num_nodes), 0);
  const std::string prefix = "b" + std::to_string(block) + "n";
  for (int i = 0; i < params.num_nodes; ++i) {
    ids.push_back(g.add_node(prefix + std::to_string(i), 1, 0, block));
    if (params.layers > 0) {
      layer[static_cast<std::size_t>(i)] =
          i * params.layers / params.num_nodes;
    }
  }
  for (int i = 0; i < params.num_nodes; ++i) {
    for (int j = i + 1; j < params.num_nodes; ++j) {
      if (params.layers > 0 &&
          layer[static_cast<std::size_t>(j)] !=
              layer[static_cast<std::size_t>(i)] + 1) {
        continue;
      }
      if (prng.chance(params.edge_prob)) {
        g.add_edge(ids[static_cast<std::size_t>(i)],
                   ids[static_cast<std::size_t>(j)],
                   random_latency(prng, params));
      }
    }
  }
  return ids;
}

}  // namespace

DepGraph random_block(Prng& prng, const RandomBlockParams& params, int block) {
  DepGraph g;
  g.reserve(static_cast<std::size_t>(params.num_nodes));
  add_block(g, prng, params, block);
  return g;
}

DepGraph random_trace(Prng& prng, const RandomTraceParams& params) {
  AIS_CHECK(params.num_blocks >= 1, "trace needs at least one block");
  DepGraph g;
  g.reserve(static_cast<std::size_t>(params.num_blocks) *
            static_cast<std::size_t>(params.block.num_nodes));
  std::vector<std::vector<NodeId>> blocks;
  for (int b = 0; b < params.num_blocks; ++b) {
    blocks.push_back(add_block(g, prng, params.block, b));
  }
  for (int b = 0; b + 1 < params.num_blocks; ++b) {
    for (int k = 0; k < params.cross_edges; ++k) {
      const NodeId from =
          blocks[static_cast<std::size_t>(b)]
                [prng.index(blocks[static_cast<std::size_t>(b)].size())];
      const NodeId to =
          blocks[static_cast<std::size_t>(b) + 1]
                [prng.index(blocks[static_cast<std::size_t>(b) + 1].size())];
      g.add_edge(from, to, random_latency(prng, params.block));
    }
  }
  return g;
}

DepGraph random_loop(Prng& prng, const RandomLoopParams& params) {
  DepGraph g;
  g.reserve(static_cast<std::size_t>(params.block.num_nodes));
  const std::vector<NodeId> ids = add_block(g, prng, params.block, 0);
  for (int k = 0; k < params.carried_edges; ++k) {
    const NodeId from = ids[prng.index(ids.size())];
    const NodeId to = ids[prng.index(ids.size())];
    g.add_edge(from, to, random_latency(prng, params.block), /*distance=*/1);
  }
  return g;
}

DepGraph random_machine_block(Prng& prng, const MachineModel& machine,
                              int num_nodes, double edge_prob, int block) {
  DepGraph g;
  g.reserve(static_cast<std::size_t>(num_nodes));
  // Realistic opcode mix: mostly ALU, a fair share of loads, some FP and
  // stores, occasional multiplies.
  static constexpr OpClass kMix[] = {
      OpClass::kIntAlu, OpClass::kIntAlu, OpClass::kIntAlu, OpClass::kIntAlu,
      OpClass::kLoad,   OpClass::kLoad,   OpClass::kStore,  OpClass::kFpAdd,
      OpClass::kFpMul,  OpClass::kIntMul, OpClass::kCompare, OpClass::kMove,
  };
  std::vector<NodeId> ids;
  std::vector<OpClass> cls;
  for (int i = 0; i < num_nodes; ++i) {
    const OpClass op = kMix[prng.index(std::size(kMix))];
    const OpTiming& t = machine.timing(op);
    ids.push_back(g.add_node(std::string(op_class_name(op)) + "#" +
                                 std::to_string(i),
                             t.exec_time, t.fu_class, block));
    cls.push_back(op);
  }
  for (int i = 0; i < num_nodes; ++i) {
    for (int j = i + 1; j < num_nodes; ++j) {
      if (prng.chance(edge_prob)) {
        // True dependence: the producer's forwarding latency.
        g.add_edge(ids[static_cast<std::size_t>(i)],
                   ids[static_cast<std::size_t>(j)],
                   machine.timing(cls[static_cast<std::size_t>(i)]).latency);
      }
    }
  }
  return g;
}

DepGraph random_machine_trace(Prng& prng, const MachineModel& machine,
                              int num_blocks, int nodes_per_block,
                              double edge_prob, int cross_edges) {
  DepGraph g;
  g.reserve(static_cast<std::size_t>(num_blocks) *
            static_cast<std::size_t>(nodes_per_block));
  std::vector<std::pair<NodeId, NodeId>> block_spans;
  for (int b = 0; b < num_blocks; ++b) {
    const NodeId first = static_cast<NodeId>(g.num_nodes());
    DepGraph piece =
        random_machine_block(prng, machine, nodes_per_block, edge_prob, b);
    for (NodeId id = 0; id < piece.num_nodes(); ++id) {
      const NodeInfo& n = piece.node(id);
      g.add_node(n.name, n.exec_time, n.fu_class, n.block);
    }
    for (const DepEdge& e : piece.edges()) {
      g.add_edge(first + e.from, first + e.to, e.latency, e.distance);
    }
    block_spans.emplace_back(first, static_cast<NodeId>(g.num_nodes()));
  }
  for (int b = 0; b + 1 < num_blocks; ++b) {
    const auto [f0, l0] = block_spans[static_cast<std::size_t>(b)];
    const auto [f1, l1] = block_spans[static_cast<std::size_t>(b) + 1];
    for (int k = 0; k < cross_edges; ++k) {
      const NodeId from =
          f0 + static_cast<NodeId>(prng.index(static_cast<std::size_t>(l0 - f0)));
      const NodeId to =
          f1 + static_cast<NodeId>(prng.index(static_cast<std::size_t>(l1 - f1)));
      // Latency of the producing node's class is not recoverable here; use
      // a representative load-to-use latency.
      g.add_edge(from, to, machine.timing(OpClass::kLoad).latency);
    }
  }
  return g;
}

DepGraph boundary_trace(Prng& prng, const BoundaryTraceParams& params) {
  AIS_CHECK(params.num_blocks >= 2, "boundary trace needs >= 2 blocks");
  DepGraph g;
  g.reserve(static_cast<std::size_t>(params.num_blocks) *
            static_cast<std::size_t>(2 + params.chain_len +
                                     params.independents));
  NodeId prev_producer = kInvalidNode;
  for (int b = 0; b < params.num_blocks; ++b) {
    const std::string tag = "b" + std::to_string(b);
    // Consumer of the previous block's producer, heading a dependent chain.
    const NodeId consumer = g.add_node(tag + ".c", 1, 0, b);
    if (prev_producer != kInvalidNode) {
      g.add_edge(prev_producer, consumer, params.boundary_latency);
    }
    NodeId chain = consumer;
    for (int k = 0; k < params.chain_len; ++k) {
      const NodeId next = g.add_node(tag + ".d" + std::to_string(k), 1, 0, b);
      g.add_edge(chain, next, 1);
      chain = next;
    }
    // Independent filler; a random subset feeds the block's producer so the
    // instances are not all isomorphic (program order stays topological).
    std::vector<NodeId> fillers;
    for (int k = 0; k < params.independents; ++k) {
      fillers.push_back(g.add_node(tag + ".u" + std::to_string(k), 1, 0, b));
    }
    // The long-latency producer feeding the next block.
    prev_producer = g.add_node(tag + ".p", 1, 0, b);
    for (const NodeId u : fillers) {
      if (prng.chance(0.3)) g.add_edge(u, prev_producer, 0);
    }
  }
  return g;
}

}  // namespace ais
