// Reproducible random dependence-graph generators for the synthetic
// evaluation (experiments E5-E11 in DESIGN.md).
#pragma once

#include "graph/depgraph.hpp"
#include "machine/machine_model.hpp"
#include "support/prng.hpp"

namespace ais {

struct RandomBlockParams {
  int num_nodes = 8;
  /// Probability of an edge between each forward pair (Gilbert DAG); with
  /// layers > 0, applied between adjacent layers only.
  double edge_prob = 0.25;
  /// Number of layers; 0 = unlayered Gilbert DAG.
  int layers = 0;
  /// Probability that an edge carries latency 1 (vs 0) in restricted mode,
  /// or the maximum latency when max_latency > 1 (uniform in [0, max]).
  double latency1_prob = 0.5;
  int max_latency = 1;
};

/// Single-block graph with unit execution times on FU class 0.
DepGraph random_block(Prng& prng, const RandomBlockParams& params,
                      int block = 0);

struct RandomTraceParams {
  int num_blocks = 4;
  RandomBlockParams block;
  /// Cross-block edges per adjacent block pair (from a random node of block
  /// k to a random node of block k+1).
  int cross_edges = 2;
};

/// Trace graph: blocks with intra-block structure plus forward cross edges.
DepGraph random_trace(Prng& prng, const RandomTraceParams& params);

struct RandomLoopParams {
  RandomBlockParams block;
  /// Number of loop-carried (distance-1) edges added on top.
  int carried_edges = 2;
};

/// Single-block loop graph with carried edges (may include self-loops).
DepGraph random_loop(Prng& prng, const RandomLoopParams& params);

/// Block whose nodes draw realistic operation classes (loads, int/fp ops,
/// stores) with `machine`'s execution times, FU classes and producer
/// latencies — the workload for the general-machine heuristics (§4.2).
DepGraph random_machine_block(Prng& prng, const MachineModel& machine,
                              int num_nodes, double edge_prob, int block = 0);

/// Trace variant of random_machine_block.
DepGraph random_machine_trace(Prng& prng, const MachineModel& machine,
                              int num_blocks, int nodes_per_block,
                              double edge_prob, int cross_edges);

struct BoundaryTraceParams {
  int num_blocks = 4;
  /// Length of the dependent chain hanging off each block's consumer.
  int chain_len = 3;
  /// Independent (immediately ready) instructions per block.
  int independents = 3;
  /// Latency of the producer->consumer edge crossing each block boundary.
  int boundary_latency = 3;
};

/// Traces engineered around the paper's motivating pattern: each block ends
/// with a long-latency producer whose consumer heads the *next* block's
/// critical chain.  A lookahead-oblivious scheduler orders the consumer
/// first (it looks urgent), stalling the boundary; anticipatory scheduling
/// reorders the next block so its independent instructions hide the
/// latency.  `prng` only jitters which independents exist (sizes are
/// deterministic), keeping instances comparable across seeds.
DepGraph boundary_trace(Prng& prng, const BoundaryTraceParams& params);

}  // namespace ais
