#include "workloads/paper_graphs.hpp"

namespace ais {
namespace {

/// Adds BB1 of Figures 1/2; returns ids in declaration order
/// x, e, w, b, r, a (ids 0..5), all in `block`.
void add_bb1(DepGraph& g, int block) {
  const NodeId x = g.add_node("x", 1, 0, block);
  const NodeId e = g.add_node("e", 1, 0, block);
  const NodeId w = g.add_node("w", 1, 0, block);
  const NodeId b = g.add_node("b", 1, 0, block);
  const NodeId r = g.add_node("r", 1, 0, block);
  const NodeId a = g.add_node("a", 1, 0, block);
  g.add_edge(x, w, 1);
  g.add_edge(x, b, 1);
  g.add_edge(x, r, 1);
  g.add_edge(e, w, 1);
  g.add_edge(e, b, 1);
  g.add_edge(w, a, 1);
  g.add_edge(b, a, 1);
}

DepGraph make_fig2(int zq_latency) {
  DepGraph g = fig1_bb1();
  g.reserve(/*nodes=*/11, /*edges=*/12);
  const NodeId w = g.find("w");
  const NodeId z = g.add_node("z", 1, 0, 1);
  const NodeId q = g.add_node("q", 1, 0, 1);
  const NodeId p = g.add_node("p", 1, 0, 1);
  const NodeId v = g.add_node("v", 1, 0, 1);
  const NodeId gg = g.add_node("g", 1, 0, 1);
  g.add_edge(z, q, zq_latency);
  g.add_edge(z, v, 1);
  g.add_edge(q, p, 0);
  g.add_edge(p, gg, 1);
  g.add_edge(w, z, 1);  // the cross-block edge of Figure 2
  return g;
}

}  // namespace

DepGraph fig1_bb1() {
  DepGraph g;
  g.reserve(/*nodes=*/6, /*edges=*/7);
  add_bb1(g, 0);
  return g;
}

DepGraph fig2_trace() { return make_fig2(/*zq_latency=*/1); }

DepGraph fig2_trace_latency0() { return make_fig2(/*zq_latency=*/0); }

DepGraph fig3_loop() {
  DepGraph g;
  g.reserve(/*nodes=*/5, /*edges=*/11);
  const NodeId l4 = g.add_node("L4", 1, 0, 0);
  const NodeId st = g.add_node("ST", 1, 0, 0);
  const NodeId c4 = g.add_node("C4", 1, 0, 0);
  const NodeId m = g.add_node("M", 1, 0, 0);
  const NodeId bt = g.add_node("BT", 1, 0, 0);
  // Loop-independent data dependences (LOAD and COMPARE latency 1).
  g.add_edge(l4, c4, 1, 0);
  g.add_edge(l4, m, 1, 0);
  g.add_edge(c4, bt, 1, 0);
  // Anti dependence: ST reads gr0 that M overwrites.
  g.add_edge(st, m, 0, 0);
  // Control dependences: everything precedes the branch.
  g.add_edge(l4, bt, 0, 0);
  g.add_edge(st, bt, 0, 0);
  g.add_edge(m, bt, 0, 0);
  // Loop-carried: the software-pipelined store consumes the previous
  // iteration's MULTIPLY (latency 4); base-register updates and the gr0
  // accumulation are carried self-dependences.
  g.add_edge(m, st, 4, 1);
  g.add_edge(l4, l4, 1, 1);
  g.add_edge(st, st, 1, 1);
  g.add_edge(m, m, 4, 1);
  return g;
}

DepGraph fig8_loop() {
  DepGraph g;
  g.reserve(/*nodes=*/3, /*edges=*/4);
  const NodeId n1 = g.add_node("1", 1, 0, 0);
  const NodeId n2 = g.add_node("2", 1, 0, 0);
  const NodeId n3 = g.add_node("3", 1, 0, 0);
  g.add_edge(n1, n3, 1, 0);
  g.add_edge(n2, n3, 1, 0);
  // The asymmetry lives only in the carried latencies; the §5.2.1 surrogate
  // erases it, which is exactly the paper's counterexample.
  g.add_edge(n3, n1, 1, 1);
  g.add_edge(n3, n2, 0, 1);
  return g;
}

}  // namespace ais
