#include "server/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ais::server {

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool Client::connect(const std::string& socket_path, std::string* error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path empty or too long for AF_UNIX";
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    *error = "socket(): " + std::string(std::strerror(errno));
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "connect to '" + socket_path +
             "': " + std::string(std::strerror(errno));
    close();
    return false;
  }
  return true;
}

bool Client::send_payload(std::string_view payload, std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  std::string framed;
  framed.reserve(payload.size() + sizeof(std::uint32_t));
  append_frame(framed, payload);
  std::string_view data = framed;
  while (!data.empty()) {
    ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      *error = "send: " + std::string(std::strerror(errno));
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

bool Client::send(const Request& request, std::string* error) {
  return send_payload(request.encode(), error);
}

bool Client::receive(Response* response, std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  std::string payload;
  char chunk[65536];
  for (;;) {
    switch (take_frame(buffer_, kDefaultMaxFrameBytes, &payload)) {
      case FrameStatus::kFrame:
        return parse_response(payload, response, error);
      case FrameStatus::kOversized:
        *error = "oversized response frame";
        return false;
      case FrameStatus::kNeedMore:
        break;
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      *error = "recv: " + std::string(std::strerror(errno));
      return false;
    }
    if (n == 0) {
      *error = "connection closed by server";
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Client::call(const Request& request, Response* response,
                  std::string* error) {
  return send(request, error) && receive(response, error);
}

}  // namespace ais::server
