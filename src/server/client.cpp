#include "server/client.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace ais::server {
namespace {

/// A connect failure worth retrying while the daemon boots: the socket
/// path is not on disk yet (ENOENT), or the listener is not accepting
/// (ECONNREFUSED — also what a freshly unlinked stale unix path gives).
bool retryable_connect_errno(int err) {
  return err == ECONNREFUSED || err == ENOENT;
}

/// One unix-socket connect attempt.  Returns the connected fd or -1 with
/// errno set; *error is set only for non-errno (argument) failures.
int try_connect_unix(const std::string& socket_path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path empty or too long for AF_UNIX";
    errno = EINVAL;
    return -1;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = "socket(): " + std::string(std::strerror(errno));
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    *error = "connect to '" + socket_path +
             "': " + std::string(std::strerror(saved));
    errno = saved;
    return -1;
  }
  return fd;
}

/// One TCP connect attempt against every address "host:port" resolves to.
int try_connect_tcp(const std::string& host_port, std::string* error) {
  const std::size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == host_port.size()) {
    *error = "tcp endpoint '" + host_port + "' is not host:port";
    errno = EINVAL;
    return -1;
  }
  const std::string host = host_port.substr(0, colon);
  const std::string port = host_port.substr(colon + 1);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (gai != 0) {
    *error = "resolve '" + host_port + "': " + ::gai_strerror(gai);
    errno = ENOENT;
    return -1;
  }
  int last_errno = ECONNREFUSED;
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    *error = "connect to '" + host_port +
             "': " + std::string(std::strerror(last_errno));
    errno = last_errno;
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool Client::connect_with_retry(const std::string& target,
                                std::string* error, bool tcp) {
  close();
  int backoff_ms = 10;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(connect_retry_ms_);
  for (;;) {
    fd_ = tcp ? try_connect_tcp(target, error)
              : try_connect_unix(target, error);
    if (fd_ >= 0) return true;
    if (!retryable_connect_errno(errno) ||
        std::chrono::steady_clock::now() +
            std::chrono::milliseconds(backoff_ms) > deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    if (backoff_ms < 200) backoff_ms *= 2;
  }
}

bool Client::connect(const std::string& socket_path, std::string* error) {
  return connect_with_retry(socket_path, error, /*tcp=*/false);
}

bool Client::connect_tcp(const std::string& host_port, std::string* error) {
  return connect_with_retry(host_port, error, /*tcp=*/true);
}

bool Client::send_payload(std::string_view payload, std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  std::string framed;
  framed.reserve(payload.size() + sizeof(std::uint32_t));
  append_frame(framed, payload);
  std::string_view data = framed;
  while (!data.empty()) {
    ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      *error = "send: " + std::string(std::strerror(errno));
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

bool Client::send(const Request& request, std::string* error) {
  return send_payload(request.encode(), error);
}

bool Client::receive(Response* response, std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  std::string payload;
  char chunk[65536];
  for (;;) {
    switch (take_frame(buffer_, kDefaultMaxFrameBytes, &payload)) {
      case FrameStatus::kFrame:
        return parse_response(payload, response, error);
      case FrameStatus::kOversized:
        *error = "oversized response frame";
        return false;
      case FrameStatus::kNeedMore:
        break;
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      *error = "recv: " + std::string(std::strerror(errno));
      return false;
    }
    if (n == 0) {
      *error = "connection closed by server";
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Client::call(const Request& request, Response* response,
                  std::string* error) {
  return send(request, error) && receive(response, error);
}

}  // namespace ais::server
