// Blocking aisd client: connect to the daemon's unix socket, send framed
// requests, receive framed responses.  One Client per connection; a Client
// is not thread-safe (aisload gives each closed-loop worker its own), but
// send/receive may be driven from two cooperating threads for pipelined
// open-loop use (the socket itself is full-duplex).
#pragma once

#include <string>

#include "server/protocol.hpp"

namespace ais::server {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to the daemon at `socket_path`.  False with *error set when
  /// the path is invalid or the daemon is not listening.
  bool connect(const std::string& socket_path, std::string* error);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Sends one framed request payload.  False when the connection broke.
  bool send(const Request& request, std::string* error);
  bool send_payload(std::string_view payload, std::string* error);

  /// Blocks for the next response frame.  False on EOF/error or when the
  /// frame cannot be parsed.
  bool receive(Response* response, std::string* error);

  /// send + receive; the closed-loop convenience.
  bool call(const Request& request, Response* response, std::string* error);

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received beyond the last complete frame
};

}  // namespace ais::server
