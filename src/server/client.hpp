// Blocking aisd client: connect to the daemon over its unix socket or a
// TCP endpoint, send framed requests, receive framed responses.  One Client
// per connection; a Client is not thread-safe (aisload gives each
// closed-loop worker its own), but send/receive may be driven from two
// cooperating threads for pipelined open-loop use (the socket itself is
// full-duplex).
//
// Both connect paths retry a bounded backoff window on ECONNREFUSED /
// ENOENT (daemon still booting: the socket path does not exist yet, or the
// listener's backlog is not up) so a fast client start no longer races
// daemon boot — set_connect_retry_ms(0) restores fail-fast for callers
// probing liveness.
#pragma once

#include <string>

#include "server/protocol.hpp"

namespace ais::server {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to the daemon at `socket_path` (AF_UNIX).  False with
  /// *error set when the path is invalid or the daemon is not listening
  /// after the retry window.
  bool connect(const std::string& socket_path, std::string* error);

  /// Connects to a TCP endpoint "host:port" (numeric or resolvable host).
  /// Sets TCP_NODELAY — requests are latency-sensitive single frames, so
  /// Nagle coalescing only hurts.
  bool connect_tcp(const std::string& host_port, std::string* error);

  /// Total budget for connect retries on ECONNREFUSED/ENOENT, doubling
  /// backoff from 10 ms.  0 disables retry (single attempt).
  void set_connect_retry_ms(int ms) { connect_retry_ms_ = ms; }

  void close();
  bool connected() const { return fd_ >= 0; }

  /// Sends one framed request payload.  False when the connection broke.
  bool send(const Request& request, std::string* error);
  bool send_payload(std::string_view payload, std::string* error);

  /// Blocks for the next response frame.  False on EOF/error or when the
  /// frame cannot be parsed.
  bool receive(Response* response, std::string* error);

  /// send + receive; the closed-loop convenience.
  bool call(const Request& request, Response* response, std::string* error);

 private:
  bool connect_with_retry(const std::string& target, std::string* error,
                          bool tcp);

  int fd_ = -1;
  int connect_retry_ms_ = 2000;
  std::string buffer_;  // bytes received beyond the last complete frame
};

}  // namespace ais::server
