// QoS admission for the aisd daemon: a weighted multi-level queue with
// per-tenant token-bucket quotas and starvation-proof aging, replacing the
// PR 9 FIFO deque under the server's existing admission mutex.
//
// Policy
// ------
//  * Three priority levels — interactive (0), normal (1), bulk (2) — set
//    per request via the COMPILE `priority=` option.  pop() serves the
//    highest non-empty level, FIFO within a level.
//  * Per-tenant token buckets (`tenant=` option) meter admission: a
//    request whose tenant has no token is *deferred* — parked behind all
//    in-quota work, never dropped.  Deferred work re-enters its priority
//    level as tokens refill, runs anyway when the in-quota levels are
//    empty (work conservation — an idle server never holds work back),
//    and is force-admitted once it has waited `defer_max_us` (so a
//    mis-sized quota degrades to extra latency, not starvation).
//  * Aging defeats priority inversion: a request that has waited
//    `age_promote_us` at its level is promoted one level (bulk → normal →
//    interactive), so saturated interactive traffic can delay bulk work
//    but never park it forever.  The promotion clock restarts per level.
//
// The queue is NOT thread-safe — the server guards it with its admission
// mutex (it is declared AIS_GUARDED_BY(mu) there).  Every method takes the
// current time explicitly, which is what makes the policy unit-testable
// with a fake clock (tests/test_server.cpp drives seconds of aging in
// microseconds).  With `qos == false` the whole structure degrades to the
// PR 9 FIFO: one level, no quotas, no aging — the bench_server baseline.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ais::server {

/// Admission priority levels, highest first.  The wire values are the
/// names below or their numeric aliases "0"/"1"/"2".
enum class Priority : int { kInteractive = 0, kNormal = 1, kBulk = 2 };
inline constexpr int kPriorityLevels = 3;

/// Parses a COMPILE `priority=` value.  False on anything unknown (the
/// server answers ERR; an unvalidated value must never reach admission).
bool parse_priority(std::string_view text, Priority* out);
const char* priority_name(Priority p);

/// Tenant names become metric label values and quota keys: 1–64 chars of
/// [A-Za-z0-9_.-].  The empty string (option absent) is valid and maps to
/// the "default" tenant.
bool valid_tenant(std::string_view name);
inline constexpr const char* kDefaultTenant = "default";

struct TenantQuota {
  std::string tenant;
  double rps = 0;  // admission tokens per second; <= 0 = unlimited
};

struct AdmissionOptions {
  /// false = plain FIFO (priority/tenant still parsed and labeled in
  /// metrics, but ignored for ordering) — the PR 9 baseline.
  bool qos = true;
  /// Token-bucket rate for tenants not named in `quotas`; <= 0 = unlimited.
  double default_rps = 0;
  std::vector<TenantQuota> quotas;
  /// Wait at one level before promotion to the next-higher level.
  std::int64_t age_promote_us = 100'000;
  /// Deferred (over-quota) work is force-admitted past this wait.
  std::int64_t defer_max_us = 1'000'000;
};

/// Parses a "tenant=rps,tenant=rps" quota list (the aisd --quotas flag).
bool parse_quota_list(std::string_view text, std::vector<TenantQuota>* out,
                      std::string* error);

/// Counters the server folds into its metric registry after each
/// operation (monotone totals; the queue never touches obs itself).
struct AdmissionStats {
  std::uint64_t deferred = 0;        // pushes parked over-quota
  std::uint64_t redeemed = 0;        // deferred -> level via token refill
  std::uint64_t conserved = 0;       // deferred run via work conservation
  std::uint64_t force_admitted = 0;  // deferred run via defer_max_us
  std::uint64_t promoted = 0;        // level promotions via aging
  std::uint64_t requeued = 0;        // handed back via requeue_front
};

/// The admission queue.  T is the server's Job (moved in and out); tests
/// instantiate with a small payload and drive the clock by hand.
template <typename T>
class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionOptions options)
      : opts_(std::move(options)) {}

  /// Admits one item.  Returns true when the item was deferred (tenant
  /// over quota) rather than entering its priority level.
  bool push(T item, Priority priority, std::string_view tenant,
            std::int64_t now_us) {
    Entry entry;
    entry.item = std::move(item);
    entry.priority = opts_.qos ? priority : Priority::kNormal;
    entry.enqueue_us = now_us;
    entry.level_since_us = now_us;
    ++size_;
    if (opts_.qos && !take_token(tenant, now_us)) {
      Deferred& d = deferred_for(tenant);
      d.items.push_back(std::move(entry));
      ++stats_.deferred;
      return true;
    }
    levels_[static_cast<int>(entry.priority)].push_back(std::move(entry));
    return false;
  }

  /// Pops the next item per policy; false when empty.  *priority reports
  /// the level the item was finally served from (after aging).
  bool pop(std::int64_t now_us, T* out, Priority* priority = nullptr) {
    if (size_ == 0) return false;
    if (opts_.qos) {
      redeem_deferred(now_us);
      age_levels(now_us);
    }
    for (int level = 0; level < kPriorityLevels; ++level) {
      if (levels_[level].empty()) continue;
      take(levels_[level], out, priority);
      return true;
    }
    // Work conservation: the in-quota levels are dry, so run the oldest
    // deferred item rather than idling against a token clock.
    Deferred* oldest = nullptr;
    for (Deferred& d : deferred_) {
      if (d.items.empty()) continue;
      if (oldest == nullptr ||
          d.items.front().enqueue_us < oldest->items.front().enqueue_us) {
        oldest = &d;
      }
    }
    if (oldest == nullptr) return false;
    ++stats_.conserved;
    take(oldest->items, out, priority);
    return true;
  }

  /// Hands a previously popped item back to the FRONT of `priority`'s
  /// level — the dispatcher's anti-inversion escape hatch: when it is
  /// blocked on downstream room while holding lower-priority work and an
  /// interactive request arrives, it returns the held work here and
  /// re-pops, so the interactive item goes first and the returned work
  /// keeps its place ahead of everything queued behind it.  No quota
  /// token is charged (the item already paid on push).  `enqueue_us` is
  /// the item's original admission time; using it for the aging clock
  /// keeps the front-is-oldest invariant age_levels() relies on.
  void requeue_front(T item, Priority priority, std::int64_t enqueue_us) {
    Entry entry;
    entry.item = std::move(item);
    entry.priority = opts_.qos ? priority : Priority::kNormal;
    entry.enqueue_us = enqueue_us;
    entry.level_since_us = enqueue_us;
    ++size_;
    ++stats_.requeued;
    levels_[static_cast<int>(entry.priority)].push_front(std::move(entry));
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True when level-0 work is queued — the dispatcher's early-close
  /// signal for the micro-batch gather window.
  bool has_interactive() const {
    return !levels_[static_cast<int>(Priority::kInteractive)].empty();
  }

  const AdmissionStats& stats() const { return stats_; }
  const AdmissionOptions& options() const { return opts_; }

 private:
  struct Entry {
    T item;
    Priority priority = Priority::kNormal;
    std::int64_t enqueue_us = 0;
    std::int64_t level_since_us = 0;
  };
  struct Bucket {
    double rps = 0;
    double tokens = 0;
    std::int64_t refilled_us = 0;
  };
  struct Deferred {
    std::string tenant;
    std::deque<Entry> items;
  };

  void take(std::deque<Entry>& from, T* out, Priority* priority) {
    Entry& front = from.front();
    *out = std::move(front.item);
    if (priority != nullptr) *priority = front.priority;
    from.pop_front();
    --size_;
  }

  double quota_rps(std::string_view tenant) const {
    for (const TenantQuota& q : opts_.quotas) {
      if (q.tenant == tenant) return q.rps;
    }
    return opts_.default_rps;
  }

  /// Refills `tenant`'s bucket to `now_us` and consumes one token if
  /// available.  Unlimited tenants always succeed and own no bucket.
  bool take_token(std::string_view tenant, std::int64_t now_us) {
    const double rps = quota_rps(tenant);
    if (rps <= 0) return true;
    Bucket& bucket = bucket_for(tenant, rps, now_us);
    refill(bucket, now_us);
    if (bucket.tokens < 1.0) return false;
    bucket.tokens -= 1.0;
    return true;
  }

  Bucket& bucket_for(std::string_view tenant, double rps,
                     std::int64_t now_us) {
    for (std::size_t i = 0; i < bucket_tenants_.size(); ++i) {
      if (bucket_tenants_[i] == tenant) return buckets_[i];
    }
    bucket_tenants_.emplace_back(tenant);
    Bucket bucket;
    bucket.rps = rps;
    // A fresh bucket starts full: one second of burst (>= 1 token) before
    // the rate binds, matching classic token-bucket semantics.
    bucket.tokens = burst(rps);
    bucket.refilled_us = now_us;
    buckets_.push_back(bucket);
    return buckets_.back();
  }

  static double burst(double rps) { return rps < 1.0 ? 1.0 : rps; }

  static void refill(Bucket& bucket, std::int64_t now_us) {
    if (now_us <= bucket.refilled_us) return;
    const double elapsed_s =
        static_cast<double>(now_us - bucket.refilled_us) / 1e6;
    bucket.tokens += elapsed_s * bucket.rps;
    const double cap = burst(bucket.rps);
    if (bucket.tokens > cap) bucket.tokens = cap;
    bucket.refilled_us = now_us;
  }

  Deferred& deferred_for(std::string_view tenant) {
    for (Deferred& d : deferred_) {
      if (d.tenant == tenant) return d;
    }
    deferred_.emplace_back();
    deferred_.back().tenant = std::string(tenant);
    return deferred_.back();
  }

  /// Moves deferred items whose tenant has tokens again (or that have
  /// waited past defer_max_us) into their priority level.  FIFO per
  /// tenant; tenants are independent, so one starved bucket never blocks
  /// another tenant's redemption.
  void redeem_deferred(std::int64_t now_us) {
    for (Deferred& d : deferred_) {
      while (!d.items.empty()) {
        Entry& front = d.items.front();
        const bool overdue =
            now_us - front.enqueue_us >= opts_.defer_max_us;
        if (!overdue && !take_token(d.tenant, now_us)) break;
        if (overdue) {
          ++stats_.force_admitted;
        } else {
          ++stats_.redeemed;
        }
        front.level_since_us = now_us;
        levels_[static_cast<int>(front.priority)]
            .push_back(std::move(front));
        d.items.pop_front();
      }
    }
  }

  /// Promotes any item that has waited age_promote_us at its level.  Only
  /// fronts need checking: within a level, items behind the front are
  /// strictly younger at that level.
  void age_levels(std::int64_t now_us) {
    if (opts_.age_promote_us <= 0) return;
    for (int level = 1; level < kPriorityLevels; ++level) {
      while (!levels_[level].empty() &&
             now_us - levels_[level].front().level_since_us >=
                 opts_.age_promote_us) {
        Entry entry = std::move(levels_[level].front());
        levels_[level].pop_front();
        entry.priority = static_cast<Priority>(level - 1);
        entry.level_since_us = now_us;
        levels_[level - 1].push_back(std::move(entry));
        ++stats_.promoted;
      }
    }
  }

  AdmissionOptions opts_;
  std::deque<Entry> levels_[kPriorityLevels];
  std::vector<Deferred> deferred_;
  std::vector<std::string> bucket_tenants_;
  std::vector<Bucket> buckets_;
  std::size_t size_ = 0;
  AdmissionStats stats_;
};

}  // namespace ais::server
