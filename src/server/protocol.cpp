#include "server/protocol.hpp"

#include <charconv>
#include <cstring>

namespace ais::server {
namespace {

/// Splits `text` at the first '\n'.  Returns the first line; *rest points
/// past the newline (empty when there is none).
std::string_view first_line(std::string_view text, std::string_view* rest) {
  std::size_t nl = text.find('\n');
  if (nl == std::string_view::npos) {
    *rest = {};
    return text;
  }
  *rest = text.substr(nl + 1);
  return text.substr(0, nl);
}

/// Parses the space-separated `key=value` tokens after the leading word.
bool parse_options(std::string_view line,
                   std::map<std::string, std::string, std::less<>>* options,
                   std::string* error) {
  while (!line.empty()) {
    std::size_t sp = line.find(' ');
    std::string_view token = line.substr(0, sp);
    line = sp == std::string_view::npos ? std::string_view{}
                                        : line.substr(sp + 1);
    if (token.empty()) continue;  // tolerate doubled spaces
    std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      *error = "malformed option token '" + std::string(token) +
               "' (expected key=value)";
      return false;
    }
    (*options)[std::string(token.substr(0, eq))] =
        std::string(token.substr(eq + 1));
  }
  return true;
}

void append_options(
    std::string& out,
    const std::map<std::string, std::string, std::less<>>& options) {
  for (const auto& [key, value] : options) {
    out += ' ';
    out += key;
    out += '=';
    out += value;
  }
}

}  // namespace

void append_frame(std::string& out, std::string_view payload) {
  std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char prefix[sizeof(len)];
  std::memcpy(prefix, &len, sizeof(len));
  out.append(prefix, sizeof(len));
  out.append(payload);
}

FrameStatus take_frame(std::string& buffer, std::size_t max_frame_bytes,
                       std::string* payload) {
  if (buffer.size() < sizeof(std::uint32_t)) return FrameStatus::kNeedMore;
  std::uint32_t len = 0;
  std::memcpy(&len, buffer.data(), sizeof(len));
  if (len > max_frame_bytes) return FrameStatus::kOversized;
  if (buffer.size() < sizeof(len) + len) return FrameStatus::kNeedMore;
  payload->assign(buffer.data() + sizeof(len), len);
  buffer.erase(0, sizeof(len) + len);
  return FrameStatus::kFrame;
}

std::string_view Request::option(std::string_view key,
                                 std::string_view fallback) const {
  auto it = options.find(key);
  return it == options.end() ? fallback : std::string_view(it->second);
}

std::int64_t Request::option_int(std::string_view key, std::int64_t fallback,
                                 bool* ok) const {
  auto it = options.find(key);
  if (it == options.end()) return fallback;
  const std::string& text = it->second;
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    if (ok != nullptr) *ok = false;
    return fallback;
  }
  return value;
}

std::string Request::encode() const {
  std::string out = verb;
  append_options(out, options);
  out += '\n';
  out += body;
  return out;
}

bool parse_request(std::string_view payload, Request* request,
                   std::string* error) {
  *request = Request{};
  std::string_view rest;
  std::string_view line = first_line(payload, &rest);
  std::size_t sp = line.find(' ');
  std::string_view verb = line.substr(0, sp);
  if (verb.empty()) {
    *error = "empty request (missing verb)";
    return false;
  }
  request->verb = std::string(verb);
  std::string_view opts =
      sp == std::string_view::npos ? std::string_view{} : line.substr(sp + 1);
  if (!parse_options(opts, &request->options, error)) return false;
  request->body = std::string(rest);
  return true;
}

std::string_view Response::option(std::string_view key,
                                  std::string_view fallback) const {
  auto it = options.find(key);
  return it == options.end() ? fallback : std::string_view(it->second);
}

void Response::encode_head(std::string* out) const {
  if (!ok) {
    out->append("ERR ");
    out->append(message);
    out->push_back('\n');
    return;
  }
  out->append("OK");
  // asm= / diag= are derived from the section strings so they can never
  // disagree; encode them alongside the caller's options in sorted order
  // for a canonical wire form.  The map is small (a handful of status
  // keys), so the sorted copy costs a few string moves, not a body copy.
  auto sorted = options;
  sorted["asm"] = std::to_string(asm_text.size());
  if (!diag_text.empty()) sorted["diag"] = std::to_string(diag_text.size());
  append_options(*out, sorted);
  out->push_back('\n');
}

void Response::encode_tail(std::string* out) const {
  for (const auto& [name, value] : counters) {
    out->append("counter ");
    out->append(name);
    out->push_back(' ');
    out->append(std::to_string(value));
    out->push_back('\n');
  }
}

std::string Response::encode() const {
  std::string out;
  encode_head(&out);
  if (ok) {
    out += asm_text;
    out += diag_text;
    encode_tail(&out);
  }
  return out;
}

bool parse_response(std::string_view payload, Response* response,
                    std::string* error) {
  *response = Response{};
  std::string_view rest;
  std::string_view line = first_line(payload, &rest);
  if (line.rfind("ERR ", 0) == 0 || line == "ERR") {
    response->ok = false;
    response->message =
        std::string(line.size() > 4 ? line.substr(4) : std::string_view{});
    return true;
  }
  if (line != "OK" && line.rfind("OK ", 0) != 0) {
    *error = "malformed response status line";
    return false;
  }
  response->ok = true;
  if (line.size() > 2 &&
      !parse_options(line.substr(3), &response->options, error)) {
    return false;
  }
  auto section_len = [&](const char* key, std::size_t limit,
                         std::size_t* len) {
    *len = 0;
    auto it = response->options.find(key);
    if (it == response->options.end()) return true;
    const std::string& text = it->second;
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                     *len);
    return ec == std::errc{} && ptr == text.data() + text.size() &&
           *len <= limit;
  };
  std::size_t asm_len = 0;
  std::size_t diag_len = 0;
  if (!section_len("asm", rest.size(), &asm_len) ||
      !section_len("diag", rest.size() - asm_len, &diag_len)) {
    *error = "response section length does not match payload";
    return false;
  }
  response->asm_text = std::string(rest.substr(0, asm_len));
  response->diag_text = std::string(rest.substr(asm_len, diag_len));
  std::string_view tail = rest.substr(asm_len + diag_len);
  while (!tail.empty()) {
    std::string_view counter_line = first_line(tail, &tail);
    if (counter_line.empty()) continue;
    if (counter_line.rfind("counter ", 0) != 0) {
      *error = "malformed response trailer line";
      return false;
    }
    std::string_view entry = counter_line.substr(8);
    std::size_t sp = entry.rfind(' ');
    if (sp == std::string_view::npos) {
      *error = "malformed counter line";
      return false;
    }
    std::string_view value_text = entry.substr(sp + 1);
    std::uint64_t value = 0;
    auto [ptr, ec] = std::from_chars(
        value_text.data(), value_text.data() + value_text.size(), value);
    if (ec != std::errc{} || ptr != value_text.data() + value_text.size()) {
      *error = "malformed counter value";
      return false;
    }
    response->counters.emplace_back(std::string(entry.substr(0, sp)), value);
  }
  return true;
}

}  // namespace ais::server
