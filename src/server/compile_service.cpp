#include "server/compile_service.hpp"

#include <cstdio>

#include "baselines/block_schedulers.hpp"
#include "cfg/cfg.hpp"
#include "driver/anticipatory.hpp"
#include "driver/function_compiler.hpp"
#include "ir/asm_parser.hpp"
#include "ir/rename.hpp"
#include "machine/machine_model.hpp"
#include "obs/obs.hpp"

namespace ais::server {
namespace {

/// aisc's emit(), into a string: `block %s:\n` then `  %s\n` per
/// instruction.  Plain appends reproduce the printf output byte for byte.
void emit(const std::vector<BasicBlock>& blocks, std::string* out) {
  for (const BasicBlock& bb : blocks) {
    out->append("block ");
    out->append(bb.label);
    out->append(":\n");
    for (const Instruction& inst : bb.insts) {
      out->append("  ");
      out->append(inst.to_string());
      out->append("\n");
    }
  }
}

bool parse_bool(std::string_view value, bool* out) {
  if (value == "1" || value == "true") {
    *out = true;
    return true;
  }
  if (value == "0" || value == "false") {
    *out = false;
    return true;
  }
  return false;
}

/// Folds the oracle's findings into the reply: verified=ok, or
/// verified=fail with the report text (aisc's stderr bytes) in diag.
void attach_verification(const verify::Report& report, Response* reply) {
  if (report.ok()) {
    reply->options["verified"] = "ok";
    return;
  }
  reply->options["verified"] = "fail";
  reply->diag_text = report.to_string();
}

}  // namespace

std::size_t WorkerScratch::bytes_reserved() const {
  return sim.bytes_reserved() + asm_text.capacity() + head.capacity() +
         tail.capacity();
}

bool decode_compile_options(const Request& request, CompileOptions* options,
                            std::string* error) {
  *options = CompileOptions{};
  for (const auto& [key, value] : request.options) {
    bool ok = true;
    if (key == "mode") {
      options->mode = value;
    } else if (key == "machine") {
      options->machine = value;
    } else if (key == "window") {
      options->window =
          static_cast<int>(request.option_int("window", 0, &ok));
      if (options->window < 0) ok = false;
    } else if (key == "jobs") {
      options->jobs = static_cast<int>(request.option_int("jobs", 1, &ok));
    } else if (key == "rename") {
      ok = parse_bool(value, &options->rename);
    } else if (key == "report") {
      ok = parse_bool(value, &options->report);
    } else if (key == "verify") {
      ok = parse_bool(value, &options->verify);
    } else if (key == "profile") {
      ok = parse_bool(value, &options->profile);
    } else if (key == "file" || key == "id" || key == "priority" ||
               key == "tenant") {
      // Handled by the server before the compile: file= loads the body,
      // id= is echoed into the reply, priority=/tenant= drive admission
      // (validated before enqueue) and never change the compiled output.
    } else {
      *error = "unknown COMPILE option '" + key + "'";
      return false;
    }
    if (!ok) {
      *error = "bad value for COMPILE option '" + key + "': " + value;
      return false;
    }
  }
  return true;
}

void compile_ir(const std::string& ir_text, const CompileOptions& options,
                WorkerScratch& scratch, Response* reply) {
  *reply = Response{};
  scratch.asm_text.clear();

  const MachineModel* machine = machine_preset(options.machine);
  if (machine == nullptr) {
    reply->message = "unknown machine '" + options.machine + "'";
    return;
  }
  if (options.mode != "trace" && options.mode != "loop" &&
      options.mode != "cfg") {
    reply->message = "unknown mode '" + options.mode + "'";
    return;
  }

  std::string parse_error;
  std::optional<Program> prog = parse_program_or_error(ir_text, &parse_error);
  if (!prog.has_value()) {
    reply->message = "bad IR: " + parse_error;
    return;
  }

  // Capture this request's counter stream: the recorder sees every delta
  // the calling thread issues (including cache-hit replays) and filters
  // cache./time. — exactly the stream the differential tests compare.
  obs::CounterRecorder recorder(options.profile);

  if (options.mode == "cfg") {
    const Cfg cfg(*prog);
    const CompiledProgram compiled = compile_program(
        cfg, *machine, options.window, options.verify, options.jobs);
    emit(compiled.program.blocks, &scratch.asm_text);
    if (options.report) {
      reply->options["cycles_before"] =
          std::to_string(compiled.hot_trace_cycles_before);
      reply->options["cycles_after"] =
          std::to_string(compiled.hot_trace_cycles_after);
      reply->options["window"] = std::to_string(compiled.window);
    }
    if (options.verify) attach_verification(compiled.verification, reply);
  } else {
    Trace trace{prog->blocks};
    if (options.rename) trace = rename_trace(trace);

    if (options.mode == "loop") {
      Loop loop;
      loop.body = trace;
      const ScheduledLoop scheduled = schedule(loop, *machine, options.window);
      emit(scheduled.blocks, &scratch.asm_text);
      if (options.report) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f",
                      scheduled.cycles_per_iteration);
        reply->options["cycles_per_iter"] = buf;
        reply->options["window"] = std::to_string(scheduled.window);
      }
      if (options.verify) {
        attach_verification(verify_schedule(loop, scheduled, *machine), reply);
      }
    } else {
      const ScheduledTrace scheduled =
          schedule(trace, *machine, options.window, {}, options.jobs);
      emit(scheduled.blocks, &scratch.asm_text);
      if (options.report) {
        const auto before = schedule_trace_per_block(
            scheduled.graph, *machine, BlockScheduler::kSourceOrder);
        reply->options["cycles_before"] = std::to_string(simulated_completion(
            scheduled.graph, *machine, before, scheduled.window, scratch.sim));
        reply->options["cycles_after"] = std::to_string(simulated_completion(
            scheduled.graph, *machine, scheduled.detail.priority_list(),
            scheduled.window, scratch.sim));
        reply->options["window"] = std::to_string(scheduled.window);
      }
      if (options.verify) {
        attach_verification(verify_schedule(trace, scheduled, *machine),
                            reply);
      }
    }
  }

  if (options.profile) {
    for (const auto& [name, delta] : recorder.deltas()) {
      reply->counters.emplace_back(name, delta);
    }
  }
  reply->ok = true;
  reply->asm_text = scratch.asm_text;
}

}  // namespace ais::server
