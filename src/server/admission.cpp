#include "server/admission.hpp"

#include <charconv>

namespace ais::server {

bool parse_priority(std::string_view text, Priority* out) {
  if (text == "interactive" || text == "0") {
    *out = Priority::kInteractive;
    return true;
  }
  if (text == "normal" || text == "1" || text.empty()) {
    *out = Priority::kNormal;
    return true;
  }
  if (text == "bulk" || text == "2") {
    *out = Priority::kBulk;
    return true;
  }
  return false;
}

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kNormal:
      return "normal";
    case Priority::kBulk:
      return "bulk";
  }
  return "normal";
}

bool valid_tenant(std::string_view name) {
  if (name.empty()) return true;  // option absent -> kDefaultTenant
  if (name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

bool parse_quota_list(std::string_view text, std::vector<TenantQuota>* out,
                      std::string* error) {
  while (!text.empty()) {
    std::size_t comma = text.find(',');
    std::string_view token = text.substr(0, comma);
    text = comma == std::string_view::npos ? std::string_view{}
                                           : text.substr(comma + 1);
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0 ||
        eq + 1 == token.size()) {
      *error = "malformed quota '" + std::string(token) +
               "' (expected tenant=rps)";
      return false;
    }
    TenantQuota quota;
    quota.tenant = std::string(token.substr(0, eq));
    if (!valid_tenant(quota.tenant) || quota.tenant.empty()) {
      *error = "bad tenant name in quota '" + std::string(token) + "'";
      return false;
    }
    const std::string_view rate = token.substr(eq + 1);
    auto [ptr, ec] =
        std::from_chars(rate.data(), rate.data() + rate.size(), quota.rps);
    if (ec != std::errc{} || ptr != rate.data() + rate.size() ||
        quota.rps < 0) {
      *error = "bad rate in quota '" + std::string(token) + "'";
      return false;
    }
    out->push_back(std::move(quota));
  }
  return true;
}

}  // namespace ais::server
