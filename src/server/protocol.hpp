// The aisd wire protocol: length-prefixed frames over a unix-domain stream
// socket, carrying small text request/response payloads.
//
// Framing
// -------
// Every message is one frame: a native-endian uint32 payload length followed
// by that many payload bytes.  Frames never leave the machine (unix sockets
// only), so there is no endianness negotiation — the same stance the
// schedule cache's disk tier takes.  A declared length above the server's
// `max_frame_bytes` is unrecoverable (the stream offset is lost), so the
// server replies with an error frame and closes the connection; a malformed
// *payload* inside a well-formed frame is recoverable and gets an error
// reply on a connection that stays open.
//
// Requests
// --------
// The payload's first line is a verb plus space-separated key=value options;
// everything after the newline is the body (the IR text for COMPILE):
//
//   COMPILE mode=trace machine=rs6000 window=2 id=7\n<assembly...>
//   METRICS format=prom        (format=json for the JSON snapshot)
//   PING
//   SHUTDOWN
//
// COMPILE options mirror the aisc command line (mode, machine, window,
// rename, report, verify) plus `file=` (compile a server-side path instead
// of the body), `profile=1` (append the request's counter deltas to the
// reply) and `id=` (echoed back, for clients that pipeline).
//
// Responses
// ---------
// First line `OK key=value...` or `ERR <message>`; for COMPILE the `asm=N`
// option gives the byte length of the scheduled-assembly section that
// follows — byte-identical to offline aisc stdout for the same request.
// A `diag=N` option delimits a diagnostics section after the assembly (the
// verifier report when `verify=1` finds violations, byte-identical to what
// aisc prints to stderr), after which `profile=1` replies carry one
// "counter <name> <value>" line per delta.  See docs/SERVER.md.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ais::server {

/// Frames above this size are rejected by default (requests and replies are
/// kilobytes; a corpus chunk is still far below this).
inline constexpr std::size_t kDefaultMaxFrameBytes = 8u << 20;

/// Appends one frame (length prefix + payload) to `out`.
void append_frame(std::string& out, std::string_view payload);

/// Result of pulling one frame out of a byte buffer.
enum class FrameStatus {
  kFrame,      // *payload holds a complete frame's payload
  kNeedMore,   // the buffer holds a partial frame; read more bytes
  kOversized,  // declared length exceeds max_frame_bytes: close the stream
};

/// Consumes one frame from the front of `buffer` if complete, moving the
/// payload into *payload and erasing the consumed bytes.
FrameStatus take_frame(std::string& buffer, std::size_t max_frame_bytes,
                       std::string* payload);

/// A decoded request: verb, options and body.  Option order is dropped
/// (keys are unique); unknown keys are the *handler's* error, not a parse
/// error, so the error message can name the key.
struct Request {
  std::string verb;
  std::map<std::string, std::string, std::less<>> options;
  std::string body;

  std::string_view option(std::string_view key,
                          std::string_view fallback = "") const;
  /// Integer option; `fallback` when absent.  Sets *ok=false (never true)
  /// when present but unparseable.
  std::int64_t option_int(std::string_view key, std::int64_t fallback,
                          bool* ok) const;

  std::string encode() const;
};

/// Parses a request payload.  Returns false (with *error set) only for
/// structural problems: an empty payload, an option token without '=' or
/// with an empty key.
bool parse_request(std::string_view payload, Request* request,
                   std::string* error);

/// A decoded response.  `ok == false` carries only `message`.
struct Response {
  bool ok = false;
  std::string message;  // ERR text
  std::map<std::string, std::string, std::less<>> options;
  std::string asm_text;   // COMPILE: the scheduled assembly section
  std::string diag_text;  // verifier report / METRICS exposition body
  /// `profile=1` replies: (counter name, delta) pairs in name order.
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  std::string_view option(std::string_view key,
                          std::string_view fallback = "") const;

  std::string encode() const;

  /// The scatter-gather split of encode(): the payload is exactly
  /// head + asm_text + diag_text + tail, so a worker can writev the four
  /// pieces (plus the frame length prefix) without ever joining them into
  /// one buffer.  Both append into caller-owned strings — the per-worker
  /// scratch reuses their capacity across requests.
  void encode_head(std::string* out) const;  // status line incl. '\n'
  void encode_tail(std::string* out) const;  // "counter ..." trailer lines
};

bool parse_response(std::string_view payload, Response* response,
                    std::string* error);

/// Canonical verbs.
inline constexpr const char* kVerbCompile = "COMPILE";
inline constexpr const char* kVerbMetrics = "METRICS";
inline constexpr const char* kVerbPing = "PING";
inline constexpr const char* kVerbShutdown = "SHUTDOWN";

}  // namespace ais::server
