// aisd's daemon core: a unix-domain stream socket accepting framed compile
// requests from many concurrent clients, admitted through a bounded queue
// with a micro-batching window onto one shared ThreadPool.
//
// Threading model
// ---------------
//  * one accept thread (poll + accept, so stop() never races a blocking
//    accept),
//  * one reader thread per connection (blocking recv; control verbs — PING,
//    METRICS/STATS, SHUTDOWN — are answered inline; COMPILE is enqueued),
//  * one dispatcher thread draining the bounded queue in micro-batches (up
//    to batch_max requests or batch_window_us, whichever first) onto the
//    pool,
//  * pool workers compiling and writing replies (per-connection write mutex
//    keeps frames atomic; replies may interleave across requests, matched
//    by the id= echo).
//
// Back-pressure: a full queue blocks the reader — the client's socket fills
// and its sends stall, which is the admission control.  Per-request
// isolation: each worker owns a thread-local WorkerScratch (arena-backed
// simulator scratch + reply buffers) reused across requests; the shared
// schedule cache provides cross-tenant warm hits and is itself responsible
// for counter-identical replay.  Responses are byte-identical to offline
// aisc at every concurrency level (tests/test_server.cpp).
//
// Graceful shutdown (`stop()`, or the SHUTDOWN verb via `wait()`): stop
// accepting, shut down connection read sides, drain every admitted request
// (replies are still written), then join all threads and flush the cache's
// disk tier.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace ais::server {

struct ServerOptions {
  std::string socket_path;
  /// Pool workers compiling requests; <= 0 = one per hardware thread.
  int threads = 0;
  /// Bounded admission queue: readers block (back-pressure) when full.
  std::size_t queue_cap = 1024;
  /// Micro-batch: the dispatcher forwards once it holds batch_max requests
  /// or the oldest has waited batch_window_us, whichever comes first.
  std::size_t batch_max = 32;
  std::int64_t batch_window_us = 200;
  std::size_t max_frame_bytes = 8u << 20;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  // calls stop()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and starts serving.  False with *error set when the socket
  /// cannot be created (path too long, bind/listen failure).
  bool start(std::string* error);

  /// Blocks until a client issues SHUTDOWN (or another thread calls
  /// stop()), then performs the graceful stop.  The aisd main loop.
  void wait();

  /// Graceful stop, idempotent: drains admitted requests, joins every
  /// thread, flushes the cache disk tier.  Must not be called from a
  /// server-owned thread (use the SHUTDOWN verb there).
  void stop();

  const ServerOptions& options() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ais::server
