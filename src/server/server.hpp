// aisd's daemon core: unix-domain and/or TCP stream listeners accepting
// framed compile requests from many concurrent clients, admitted through a
// QoS-aware bounded queue with a micro-batching window onto one shared
// ThreadPool.
//
// Threading model
// ---------------
//  * one accept thread (poll over up to two listen fds — unix and TCP — so
//    stop() never races a blocking accept; accepted TCP sockets get
//    TCP_NODELAY),
//  * one reader thread per connection (poll + recv with a per-connection
//    read deadline: a peer stalled mid-frame past read_deadline_ms is
//    disconnected, an idle connection between frames is left alone;
//    control verbs — PING, METRICS/STATS, SHUTDOWN — are answered inline;
//    COMPILE is enqueued),
//  * one dispatcher thread draining the admission queue in micro-batches
//    (up to batch_max requests or batch_window_us, whichever first; a
//    batch closes early the moment it holds an interactive-priority
//    request) onto the pool, never letting more than dispatch_ahead
//    unfinished jobs past admission — the pool's own FIFO cannot reorder,
//    so keeping its backlog shallow is what makes admission priority
//    bind; held work is given back (front-of-level) when an interactive
//    request arrives behind it,
//  * pool workers compiling and writing replies (per-connection write
//    mutex keeps frames atomic; replies may interleave across requests,
//    matched by the id= echo).  Replies are never joined into one buffer:
//    the worker writev()s the frame prefix, status head, assembly,
//    diagnostics and counter trailer straight from their own storage.
//
// Admission (src/server/admission.hpp): COMPILE requests carry optional
// priority= (interactive|normal|bulk) and tenant= options feeding a
// weighted multi-level queue with per-tenant token-bucket quotas —
// over-quota work is deferred behind in-quota work (never dropped) and
// starvation-proofed by aging.  Back-pressure is unchanged from PR 9: a
// full queue blocks the reader, the client's socket fills and its sends
// stall.  Responses are byte-identical to offline aisc on both transports
// at every concurrency level and priority mix (tests/test_server.cpp).
//
// Graceful shutdown (`stop()`, or the SHUTDOWN verb via `wait()`): stop
// accepting, shut down connection read sides, drain every admitted request
// including deferred over-quota work (replies are still written), then
// join all threads and flush the cache's disk tier.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "server/admission.hpp"

namespace ais::server {

struct ServerOptions {
  /// Unix listener path; empty = no unix listener.
  std::string socket_path;
  /// TCP listener "host:port" (port 0 = kernel-assigned, see
  /// Server::tcp_port()); empty = no TCP listener.  At least one of
  /// socket_path / tcp_addr must be set.
  std::string tcp_addr;
  /// Pool workers compiling requests; <= 0 = one per hardware thread.
  int threads = 0;
  /// Bounded admission queue (levels + deferred): readers block
  /// (back-pressure) when full.
  std::size_t queue_cap = 1024;
  /// Micro-batch: the dispatcher forwards once it holds batch_max requests
  /// or the oldest has waited batch_window_us, whichever comes first; an
  /// interactive-priority arrival closes the batch immediately.
  std::size_t batch_max = 32;
  std::int64_t batch_window_us = 200;
  /// Max jobs submitted to the pool but not yet picked up by a worker;
  /// 0 = auto (2x pool size).  Small values keep ordering authority in
  /// the admission queue (tail latency), large ones approach PR 9's
  /// unbounded hand-off (throughput is unaffected either way: workers
  /// always have the next batch waiting).
  std::size_t dispatch_ahead = 0;
  /// A peer stalled mid-frame longer than this is disconnected; idle
  /// connections between frames are unaffected.  <= 0 disables.
  std::int64_t read_deadline_ms = 30'000;
  std::size_t max_frame_bytes = 8u << 20;
  /// QoS admission policy (priorities, quotas, aging).  admission.qos =
  /// false restores the PR 9 FIFO — the bench_server baseline arm.
  AdmissionOptions admission;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  // calls stop()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and starts serving.  False with *error set when no listener is
  /// configured or a socket cannot be created (path too long, bind/listen
  /// failure, unresolvable TCP address).
  bool start(std::string* error);

  /// Blocks until a client issues SHUTDOWN (or another thread calls
  /// stop()), then performs the graceful stop.  The aisd main loop.
  void wait();

  /// Graceful stop, idempotent: drains admitted requests, joins every
  /// thread, flushes the cache disk tier.  Must not be called from a
  /// server-owned thread (use the SHUTDOWN verb there).
  void stop();

  const ServerOptions& options() const;

  /// The TCP listener's bound port after start() (resolves tcp_addr port
  /// 0 to the kernel's choice); 0 when no TCP listener is configured.
  int tcp_port() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ais::server
