#include "server/server.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "core/schedule_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/process_stats.hpp"
#include "obs/stats.hpp"
#include "server/admission.hpp"
#include "server/compile_service.hpp"
#include "server/protocol.hpp"
#include "support/mutex.hpp"
#include "support/thread_pool.hpp"

namespace ais::server {
namespace {

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    // MSG_NOSIGNAL: a vanished peer is EPIPE, not process death.  A failed
    // send drops the reply — the client is gone.
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return;
    data.remove_prefix(static_cast<std::size_t>(n));
  }
}

/// Scatter-gather send: writev semantics via sendmsg (which takes the same
/// iovec array but accepts MSG_NOSIGNAL).  Advances the iovec list across
/// partial writes — a slow peer's socket buffer can split any frame.
void sendv_all(int fd, iovec* iov, int iovcnt) {
  while (iovcnt > 0) {
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n <= 0) return;
    while (iovcnt > 0 && static_cast<std::size_t>(n) >= iov->iov_len) {
      n -= static_cast<ssize_t>(iov->iov_len);
      ++iov;
      --iovcnt;
    }
    if (iovcnt > 0 && n > 0) {
      iov->iov_base = static_cast<char*>(iov->iov_base) + n;
      iov->iov_len -= static_cast<std::size_t>(n);
    }
  }
}

/// One client connection.  The fd stays open until the last reference
/// drops: pending worker replies hold a shared_ptr, so a reader exiting at
/// EOF never yanks the fd from under an in-flight response.
struct Conn {
  explicit Conn(int f) : fd(f) {}
  ~Conn() { ::close(fd); }
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  void write_payload(std::string_view payload) {
    std::string framed;
    framed.reserve(payload.size() + sizeof(std::uint32_t));
    append_frame(framed, payload);
    MutexLock lock(write_mu);
    send_all(fd, framed);
  }

  /// The worker hot path: one frame whose payload is the concatenation of
  /// `parts`, written scatter-gather — the length prefix and each part go
  /// out as iovecs straight from their owning buffers, with no join copy.
  void write_frame_parts(std::initializer_list<std::string_view> parts) {
    std::size_t total = 0;
    for (std::string_view p : parts) total += p.size();
    const std::uint32_t len = static_cast<std::uint32_t>(total);
    char prefix[sizeof(len)];
    std::memcpy(prefix, &len, sizeof(len));
    iovec iov[8];
    int iovcnt = 0;
    iov[iovcnt].iov_base = prefix;
    iov[iovcnt].iov_len = sizeof(prefix);
    ++iovcnt;
    for (std::string_view p : parts) {
      if (p.empty()) continue;
      iov[iovcnt].iov_base = const_cast<char*>(p.data());
      iov[iovcnt].iov_len = p.size();
      ++iovcnt;
    }
    MutexLock lock(write_mu);
    sendv_all(fd, iov, iovcnt);
  }

  const int fd;
  Mutex write_mu;  // frames must hit the stream atomically
};

/// The per-worker reusable state (satellite: scratch pooling).  Pool
/// workers are dedicated threads, so thread_local gives exactly one scratch
/// per worker, reused across every request it serves.
WorkerScratch& worker_scratch() {
  thread_local WorkerScratch scratch;
  return scratch;
}

struct Job {
  std::shared_ptr<Conn> conn;
  Request request;
  std::int64_t enqueue_us = 0;
  Priority priority = Priority::kNormal;  // as requested, for metric labels
  std::string tenant_label;               // cardinality-capped, see below
};

/// Tenant names are client-controlled, so a per-worker memo caps how many
/// distinct label pairs the queue-wait histogram family can grow.
obs::Histogram* queue_wait_hist(Priority prio,
                                const std::string& tenant_label) {
  struct Entry {
    int prio;
    std::string tenant;
    obs::Histogram* hist;
  };
  thread_local std::vector<Entry> memo;
  for (const Entry& e : memo) {
    if (e.prio == static_cast<int>(prio) && e.tenant == tenant_label) {
      return e.hist;
    }
  }
  obs::Histogram* hist = obs::MetricRegistry::global().histogram(
      "server_queue_wait_us", {"prio", priority_name(prio)},
      {"tenant", tenant_label});
  memo.push_back(Entry{static_cast<int>(prio), tenant_label, hist});
  return hist;
}

/// Distinct tenant label values the server will ever emit; every tenant
/// past the cap shares the "other" label (quotas still apply per tenant —
/// only the metric label collapses).
constexpr std::size_t kMaxTenantLabels = 64;

}  // namespace

struct Server::Impl {
  explicit Impl(ServerOptions o)
      : opts(std::move(o)), queue(opts.admission) {
    auto& reg = obs::MetricRegistry::global();
    request_us_ok = reg.histogram("server_request_us", {"outcome", "ok"});
    request_us_error =
        reg.histogram("server_request_us", {"outcome", "error"});
    batch_size = reg.histogram("server_batch_size");
    queue_depth = reg.gauge("server_queue_depth");
    connections = reg.gauge("server_connections");
  }

  ServerOptions opts;
  int unix_fd = -1;
  int tcp_fd = -1;
  int tcp_port_ = 0;

  std::atomic<bool> stop_accept{false};
  std::thread accept_thread;
  std::thread dispatch_thread;
  std::unique_ptr<ThreadPool> pool;
  std::size_t dispatch_ahead_cap = 0;  // resolved in start()

  Mutex mu;
  CondVar queue_cv;         // dispatcher wake: work or stopping
  CondVar queue_not_full;   // reader back-pressure release
  CondVar pool_room;        // dispatcher flow control: a job completed (or
                            // an interactive request arrived — see enqueue)
  CondVar drained_cv;       // stop(): in_flight reached zero
  CondVar wait_cv;          // wait(): SHUTDOWN verb arrived
  AdmissionQueue<Job> queue AIS_GUARDED_BY(mu);
  std::size_t in_flight AIS_GUARDED_BY(mu) = 0;  // enqueued, reply not sent
  /// Jobs submitted to the pool and not yet COMPLETED (in the pool FIFO or
  /// running).  Capped at dispatch_ahead_cap so the pool's FIFO stays
  /// shallow and the admission queue keeps ordering authority over nearly
  /// all waiting work; the auto cap of 2x pool size leaves one queued job
  /// per worker, so workers never idle between hand-offs.  Counting until
  /// completion (not start) is what makes `--dispatch-ahead 1` strict:
  /// exactly one request past admission at a time.
  std::size_t pool_backlog AIS_GUARDED_BY(mu) = 0;
  bool stopping AIS_GUARDED_BY(mu) = false;
  bool shutdown_requested AIS_GUARDED_BY(mu) = false;
  std::vector<std::shared_ptr<Conn>> conns AIS_GUARDED_BY(mu);
  std::vector<std::thread> readers AIS_GUARDED_BY(mu);
  std::vector<std::string> tenant_labels AIS_GUARDED_BY(mu);
  AdmissionStats folded AIS_GUARDED_BY(mu);  // already in the registry

  std::mutex lifecycle_mu;  // start/stop idempotence; never nested in mu
  bool started = false;
  bool stopped = false;

  obs::Histogram* request_us_ok = nullptr;
  obs::Histogram* request_us_error = nullptr;
  obs::Histogram* batch_size = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Gauge* connections = nullptr;

  void count_request(std::string_view verb, bool ok) {
    obs::MetricRegistry::global()
        .counter("server_requests_total", {"verb", verb},
                 {"outcome", ok ? "ok" : "error"})
        ->add(1);
  }

  /// The metric label for `tenant`, interning up to kMaxTenantLabels
  /// distinct values; everything beyond shares "other".
  std::string tenant_label(std::string_view tenant) AIS_REQUIRES(mu) {
    for (const std::string& t : tenant_labels) {
      if (t == tenant) return t;
    }
    if (tenant_labels.size() < kMaxTenantLabels) {
      tenant_labels.emplace_back(tenant);
      return tenant_labels.back();
    }
    return "other";
  }

  /// Publishes AdmissionQueue stats growth since the last fold as counters.
  void fold_admission_stats() AIS_REQUIRES(mu) {
    const AdmissionStats& s = queue.stats();
    auto& reg = obs::MetricRegistry::global();
    auto fold = [&](const char* event, std::uint64_t cur,
                    std::uint64_t& prev) {
      if (cur > prev) {
        reg.counter("server_admission_total", {"event", event})
            ->add(cur - prev);
        prev = cur;
      }
    };
    fold("redeemed", s.redeemed, folded.redeemed);
    fold("conserved", s.conserved, folded.conserved);
    fold("force_admitted", s.force_admitted, folded.force_admitted);
    fold("promoted", s.promoted, folded.promoted);
    fold("requeued", s.requeued, folded.requeued);
  }

  void accept_loop() {
    pollfd pfds[2];
    bool tcp[2];
    int nfds = 0;
    if (unix_fd >= 0) {
      pfds[nfds] = pollfd{unix_fd, POLLIN, 0};
      tcp[nfds++] = false;
    }
    if (tcp_fd >= 0) {
      pfds[nfds] = pollfd{tcp_fd, POLLIN, 0};
      tcp[nfds++] = true;
    }
    while (!stop_accept.load(std::memory_order_relaxed)) {
      for (int i = 0; i < nfds; ++i) pfds[i].revents = 0;
      int ready = ::poll(pfds, static_cast<nfds_t>(nfds),
                         /*timeout_ms=*/100);
      if (ready <= 0) continue;
      for (int i = 0; i < nfds; ++i) {
        if ((pfds[i].revents & POLLIN) == 0) continue;
        int cfd = ::accept(pfds[i].fd, nullptr, nullptr);
        if (cfd < 0) continue;
        if (tcp[i]) {
          // Replies are latency-sensitive single frames; Nagle coalescing
          // against a peer's delayed ACK costs milliseconds per response.
          int one = 1;
          ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        }
        auto conn = std::make_shared<Conn>(cfd);
        connections->add(1);
        MutexLock lock(mu);
        if (stopping) {
          connections->add(-1);
          continue;  // conn closes via dtor
        }
        conns.push_back(conn);
        readers.emplace_back([this, conn] { reader_loop(conn); });
      }
    }
  }

  void reader_loop(std::shared_ptr<Conn> conn) AIS_EXCLUDES(mu) {
    std::string buffer;
    std::string payload;
    char chunk[65536];
    bool close_conn = false;
    // Read-deadline state: armed only while a partial frame is buffered and
    // re-armed on every byte of progress, so idle connections and slow but
    // moving peers live while a peer stalled mid-frame is cut loose (its
    // buffered prefix would otherwise pin reader memory forever).
    std::int64_t stall_deadline_us = -1;
    pollfd pfd{conn->fd, POLLIN, 0};
    while (!close_conn) {
      int timeout_ms = -1;
      if (stall_deadline_us >= 0) {
        const std::int64_t remaining_ms =
            (stall_deadline_us - now_us()) / 1000 + 1;
        timeout_ms = remaining_ms < 1
                         ? 0
                         : static_cast<int>(std::min<std::int64_t>(
                               remaining_ms, INT_MAX));
      }
      pfd.revents = 0;
      int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (ready == 0) {
        if (stall_deadline_us >= 0 && now_us() >= stall_deadline_us) {
          close_conn = true;  // peer stalled mid-frame past the deadline
        }
        continue;
      }
      ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      for (;;) {
        FrameStatus status =
            take_frame(buffer, opts.max_frame_bytes, &payload);
        if (status == FrameStatus::kNeedMore) break;
        if (status == FrameStatus::kOversized) {
          // The stream offset is unrecoverable: error out and hang up.
          Response reply;
          reply.message = "frame exceeds max_frame_bytes";
          conn->write_payload(reply.encode());
          count_request("unknown", false);
          close_conn = true;
          break;
        }
        handle_payload(conn, payload);
      }
      stall_deadline_us = !close_conn && !buffer.empty() &&
                                  opts.read_deadline_ms > 0
                              ? now_us() + opts.read_deadline_ms * 1000
                              : -1;
    }
    // A protocol-level hangup still owes the client a FIN: the Conn's fd
    // stays open until the last in-flight reply drops its reference, so
    // shutdown() is what the client actually observes as the close.
    if (close_conn) ::shutdown(conn->fd, SHUT_RDWR);
    // Deregister so churning clients do not accumulate open fds for the
    // life of the daemon; queued jobs keep the Conn alive via shared_ptr.
    {
      MutexLock lock(mu);
      const auto it = std::find(conns.begin(), conns.end(), conn);
      if (it != conns.end()) conns.erase(it);
    }
    connections->add(-1);
  }

  void handle_payload(const std::shared_ptr<Conn>& conn,
                      const std::string& payload) AIS_EXCLUDES(mu) {
    Request request;
    Response reply;
    std::string error;
    if (!parse_request(payload, &request, &error)) {
      reply.message = error;
      conn->write_payload(reply.encode());
      count_request("unknown", false);
      return;
    }
    if (request.verb == kVerbCompile) {
      // Admission options are validated here, before the queue: an unknown
      // priority or tenant must never reach scheduling state.  The ERR
      // carries the id echo so pipelining clients can match it.
      auto reject = [&](std::string message) {
        std::string_view id = request.option("id");
        if (!id.empty()) message += " (id=" + std::string(id) + ")";
        reply.message = std::move(message);
        conn->write_payload(reply.encode());
        count_request("compile", false);
      };
      Priority priority = Priority::kNormal;
      if (!parse_priority(request.option("priority"), &priority)) {
        reject("unknown priority '" +
               std::string(request.option("priority")) +
               "' (want interactive|normal|bulk)");
        return;
      }
      std::string_view tenant = request.option("tenant");
      if (!valid_tenant(tenant)) {
        reject("invalid tenant '" + std::string(tenant) +
               "' (1-64 chars of [A-Za-z0-9_.-])");
        return;
      }
      if (tenant.empty()) tenant = kDefaultTenant;
      if (!enqueue(conn, std::move(request), priority, tenant)) {
        reject("server is shutting down");
      }
      return;
    }
    if (request.verb == kVerbPing) {
      reply.ok = true;
      conn->write_payload(reply.encode());
      count_request("ping", true);
      return;
    }
    if (request.verb == kVerbMetrics || request.verb == "STATS") {
      obs::record_process_gauges();
      reply.ok = true;
      std::string_view format = request.option("format", "prom");
      auto& reg = obs::MetricRegistry::global();
      reply.diag_text =
          format == "json" ? reg.json_text() : reg.prometheus_text();
      conn->write_payload(reply.encode());
      count_request("metrics", true);
      return;
    }
    if (request.verb == kVerbShutdown) {
      reply.ok = true;
      conn->write_payload(reply.encode());
      count_request("shutdown", true);
      MutexLock lock(mu);
      shutdown_requested = true;
      wait_cv.notify_all();
      return;
    }
    reply.message = "unknown verb '" + request.verb + "'";
    conn->write_payload(reply.encode());
    count_request("unknown", false);
  }

  /// Admission: blocks while the queue is full (back-pressure — the
  /// client's sends stall behind this reader).  False once stopping.
  bool enqueue(const std::shared_ptr<Conn>& conn, Request request,
               Priority priority, std::string_view tenant)
      AIS_EXCLUDES(mu) {
    MutexLock lock(mu);
    while (queue.size() >= opts.queue_cap && !stopping) {
      queue_not_full.wait(mu);
    }
    if (stopping) return false;
    const std::int64_t now = now_us();
    Job job{conn, std::move(request), now, priority, tenant_label(tenant)};
    const std::string label = job.tenant_label;
    const bool deferred = queue.push(std::move(job), priority, tenant, now);
    if (deferred) {
      obs::MetricRegistry::global()
          .counter("server_quota_deferred_total", {"tenant", label})
          ->add(1);
    }
    ++in_flight;
    queue_depth->set(static_cast<std::int64_t>(queue.size()));
    queue_cv.notify_one();
    // An interactive arrival must also wake a dispatcher blocked on pool
    // room so it can requeue held lower-priority work (see dispatch_loop).
    if (priority == Priority::kInteractive) pool_room.notify_one();
    return true;
  }

  struct Batched {
    Job job;
    Priority served = Priority::kNormal;  // level actually served from
  };

  void dispatch_loop() AIS_EXCLUDES(mu) {
    std::vector<Batched> batch;
    for (;;) {
      batch.clear();
      {
        MutexLock lock(mu);
        while (queue.empty() && !stopping) queue_cv.wait(mu);
        if (queue.empty() && stopping) return;
        // Micro-batch: gather until batch_max or until the first request
        // has waited batch_window_us — but close the window immediately
        // once the batch holds an interactive request (its wait budget is
        // the whole point of the priority).  While stopping, flush.
        const std::int64_t deadline = now_us() + opts.batch_window_us;
        bool interactive = false;
        for (;;) {
          Job job;
          Priority served = Priority::kNormal;
          while (batch.size() < opts.batch_max &&
                 queue.pop(now_us(), &job, &served)) {
            if (served == Priority::kInteractive) interactive = true;
            batch.push_back(Batched{std::move(job), served});
          }
          if (batch.size() >= opts.batch_max || interactive || stopping) {
            break;
          }
          const std::int64_t remaining = deadline - now_us();
          if (remaining <= 0) break;
          if (!queue_cv.wait_for(mu,
                                 std::chrono::microseconds(remaining))) {
            // Timed out: take anything that raced in, then flush.
            while (batch.size() < opts.batch_max &&
                   queue.pop(now_us(), &job, &served)) {
              batch.push_back(Batched{std::move(job), served});
            }
            break;
          }
        }
        queue_depth->set(static_cast<std::int64_t>(queue.size()));
        queue_not_full.notify_all();
        fold_admission_stats();
      }
      batch_size->record(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        // Flow control: the pool's internal FIFO cannot reorder, so every
        // job handed over early is beyond the admission policy's reach.
        // Cap the handover backlog and let waiting work keep aging,
        // promoting and redeeming in the admission queue instead.
        bool requeued = false;
        {
          MutexLock lock(mu);
          while (pool_backlog >= dispatch_ahead_cap && !stopping) {
            // Anti-inversion: blocked on pool room while holding
            // non-interactive work and an interactive request just
            // arrived — hand the undispatched remainder back to the
            // front of its levels (reverse order preserves FIFO) and
            // re-gather, so the interactive request goes next instead
            // of waiting behind work that left admission early.
            if (batch[i].served != Priority::kInteractive &&
                queue.has_interactive()) {
              for (std::size_t j = batch.size(); j-- > i;) {
                const std::int64_t admitted = batch[j].job.enqueue_us;
                queue.requeue_front(std::move(batch[j].job),
                                    batch[j].served, admitted);
              }
              queue_depth->set(static_cast<std::int64_t>(queue.size()));
              fold_admission_stats();
              requeued = true;
              break;
            }
            pool_room.wait(mu);
          }
          if (!requeued) ++pool_backlog;
        }
        if (requeued) break;
        pool->submit([this, job = std::move(batch[i].job)]() mutable {
          process(std::move(job));
        });
      }
    }
  }

  void process(Job job) AIS_EXCLUDES(mu) {
    const std::int64_t start = now_us();
    queue_wait_hist(job.priority, job.tenant_label)
        ->record(static_cast<std::uint64_t>(start - job.enqueue_us));
    WorkerScratch& scratch = worker_scratch();

    Response reply;
    CompileOptions copts;
    std::string error;
    if (!decode_compile_options(job.request, &copts, &error)) {
      reply.message = error;
    } else {
      const std::string* body = &job.request.body;
      std::string file_body;
      std::string_view file = job.request.option("file");
      if (!file.empty()) {
        std::ifstream in{std::string(file)};
        if (!in.is_open()) {
          reply.message = "cannot open file '" + std::string(file) + "'";
          body = nullptr;
        } else {
          std::ostringstream text;
          text << in.rdbuf();
          file_body = text.str();
          body = &file_body;
        }
      }
      if (body != nullptr) compile_ir(*body, copts, scratch, &reply);
    }

    std::string_view id = job.request.option("id");
    if (!id.empty()) {
      if (reply.ok) {
        reply.options["id"] = std::string(id);
      } else {
        reply.message += " (id=" + std::string(id) + ")";
      }
    }
    // Scatter-gather reply: status head and counter trailer build in the
    // worker's reused scratch buffers, the assembly/diagnostic sections go
    // out of their owning strings — one frame, zero join copies, written
    // off the dispatcher's thread.
    scratch.head.clear();
    scratch.tail.clear();
    reply.encode_head(&scratch.head);
    if (reply.ok) reply.encode_tail(&scratch.tail);
    job.conn->write_frame_parts(
        {scratch.head, reply.ok ? std::string_view(reply.asm_text) : "",
         reply.ok ? std::string_view(reply.diag_text) : "", scratch.tail});

    const std::int64_t elapsed = now_us() - start;
    (reply.ok ? request_us_ok : request_us_error)
        ->record(static_cast<std::uint64_t>(elapsed));
    count_request("compile", reply.ok);
    obs::record_arena_high_water(
        "server_worker",
        static_cast<std::int64_t>(scratch.bytes_reserved()));

    MutexLock lock(mu);
    --pool_backlog;  // completion, not start: the cap counts unfinished work
    pool_room.notify_one();
    if (--in_flight == 0) drained_cv.notify_all();
  }
};

namespace {

/// Binds and listens on an AF_UNIX stream socket at `path`.
int bind_unix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path empty or too long for AF_UNIX";
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = "socket(): " + std::string(std::strerror(errno));
    return -1;
  }
  ::unlink(path.c_str());  // stale path from a past run
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0) {
    *error = "bind/listen on '" + path +
             "': " + std::string(std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Binds and listens on a TCP "host:port" endpoint; *port gets the bound
/// port (resolving a requested port 0 to the kernel's pick).
int bind_tcp(const std::string& host_port, int* port, std::string* error) {
  const std::size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == host_port.size()) {
    *error = "tcp endpoint '" + host_port + "' is not host:port";
    return -1;
  }
  const std::string host = host_port.substr(0, colon);
  const std::string port_text = host_port.substr(colon + 1);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const int gai =
      ::getaddrinfo(host.c_str(), port_text.c_str(), &hints, &res);
  if (gai != 0) {
    *error = "resolve '" + host_port + "': " + ::gai_strerror(gai);
    return -1;
  }
  int fd = -1;
  int last_errno = EADDRNOTAVAIL;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 128) == 0) {
      break;
    }
    last_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    *error = "bind/listen on '" + host_port +
             "': " + std::string(std::strerror(last_errno));
    return -1;
  }
  sockaddr_storage bound{};
  socklen_t bound_len = sizeof(bound);
  *port = 0;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    if (bound.ss_family == AF_INET) {
      *port = ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
    } else if (bound.ss_family == AF_INET6) {
      *port = ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
    }
  }
  return fd;
}

}  // namespace

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() { stop(); }

const ServerOptions& Server::options() const { return impl_->opts; }

int Server::tcp_port() const { return impl_->tcp_port_; }

bool Server::start(std::string* error) {
  {
    std::lock_guard<std::mutex> guard(impl_->lifecycle_mu);
    if (impl_->started) {
      *error = "server already started";
      return false;
    }
    impl_->started = true;
  }

  if (impl_->opts.socket_path.empty() && impl_->opts.tcp_addr.empty()) {
    *error = "no listener configured (need socket_path and/or tcp_addr)";
    return false;
  }
  if (!impl_->opts.socket_path.empty()) {
    impl_->unix_fd = bind_unix(impl_->opts.socket_path, error);
    if (impl_->unix_fd < 0) return false;
  }
  if (!impl_->opts.tcp_addr.empty()) {
    impl_->tcp_fd =
        bind_tcp(impl_->opts.tcp_addr, &impl_->tcp_port_, error);
    if (impl_->tcp_fd < 0) {
      if (impl_->unix_fd >= 0) {
        ::close(impl_->unix_fd);
        impl_->unix_fd = -1;
        ::unlink(impl_->opts.socket_path.c_str());
      }
      return false;
    }
  }

  // Counters and latency histograms must be live for METRICS regardless of
  // the environment; mirrors what aisc does under --metrics-out.
  obs::init_from_env();
  obs::set_enabled(true);
  obs::register_builtin_counters();

  impl_->pool = std::make_unique<ThreadPool>(clamp_jobs(impl_->opts.threads));
  impl_->dispatch_ahead_cap = impl_->opts.dispatch_ahead > 0
                                  ? impl_->opts.dispatch_ahead
                                  : 2 * impl_->pool->size();
  impl_->dispatch_thread = std::thread([this] { impl_->dispatch_loop(); });
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
  return true;
}

void Server::wait() {
  {
    MutexLock lock(impl_->mu);
    while (!impl_->shutdown_requested && !impl_->stopping) {
      impl_->wait_cv.wait(impl_->mu);
    }
  }
  stop();
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> guard(impl_->lifecycle_mu);
    if (!impl_->started || impl_->stopped) return;
    impl_->stopped = true;
  }

  // 1. No new connections.
  impl_->stop_accept.store(true, std::memory_order_relaxed);
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();

  // 2. No new admissions; wake every blocked thread; shut down connection
  //    read sides so readers run dry (write sides stay open for replies).
  {
    MutexLock lock(impl_->mu);
    impl_->stopping = true;
    impl_->queue_cv.notify_all();
    impl_->queue_not_full.notify_all();
    impl_->pool_room.notify_all();
    impl_->wait_cv.notify_all();
    for (const auto& conn : impl_->conns) ::shutdown(conn->fd, SHUT_RD);
  }

  // 3. Drain: every admitted request — including deferred over-quota work,
  //    which the dispatcher's stopping flush pulls via work conservation —
  //    gets its reply.
  {
    MutexLock lock(impl_->mu);
    while (impl_->in_flight > 0) impl_->drained_cv.wait(impl_->mu);
  }
  if (impl_->dispatch_thread.joinable()) impl_->dispatch_thread.join();
  if (impl_->pool) {
    impl_->pool->wait_idle();
    impl_->pool.reset();
  }

  // 4. Join readers and release connections.
  std::vector<std::thread> readers;
  std::vector<std::shared_ptr<Conn>> conns;
  {
    MutexLock lock(impl_->mu);
    readers.swap(impl_->readers);
    conns.swap(impl_->conns);
  }
  for (std::thread& t : readers) t.join();
  conns.clear();

  if (impl_->unix_fd >= 0) {
    ::close(impl_->unix_fd);
    impl_->unix_fd = -1;
  }
  if (impl_->tcp_fd >= 0) {
    ::close(impl_->tcp_fd);
    impl_->tcp_fd = -1;
  }
  if (!impl_->opts.socket_path.empty()) {
    ::unlink(impl_->opts.socket_path.c_str());
  }

  // 5. Persist what the run learned.
  ScheduleCache::global().flush_disk();
}

}  // namespace ais::server
