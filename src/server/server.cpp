#include "server/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "core/schedule_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/process_stats.hpp"
#include "obs/stats.hpp"
#include "server/compile_service.hpp"
#include "server/protocol.hpp"
#include "support/mutex.hpp"
#include "support/thread_pool.hpp"

namespace ais::server {
namespace {

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    // MSG_NOSIGNAL: a vanished peer is EPIPE, not process death.  A failed
    // send drops the reply — the client is gone.
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return;
    data.remove_prefix(static_cast<std::size_t>(n));
  }
}

/// One client connection.  The fd stays open until the last reference
/// drops: pending worker replies hold a shared_ptr, so a reader exiting at
/// EOF never yanks the fd from under an in-flight response.
struct Conn {
  explicit Conn(int f) : fd(f) {}
  ~Conn() { ::close(fd); }
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  void write_payload(std::string_view payload) {
    std::string framed;
    framed.reserve(payload.size() + sizeof(std::uint32_t));
    append_frame(framed, payload);
    MutexLock lock(write_mu);
    send_all(fd, framed);
  }

  const int fd;
  Mutex write_mu;  // frames must hit the stream atomically
};

/// The per-worker reusable state (satellite: scratch pooling).  Pool
/// workers are dedicated threads, so thread_local gives exactly one scratch
/// per worker, reused across every request it serves.
WorkerScratch& worker_scratch() {
  thread_local WorkerScratch scratch;
  return scratch;
}

struct Job {
  std::shared_ptr<Conn> conn;
  Request request;
  std::int64_t enqueue_us = 0;
};

}  // namespace

struct Server::Impl {
  explicit Impl(ServerOptions o) : opts(std::move(o)) {
    auto& reg = obs::MetricRegistry::global();
    request_us_ok = reg.histogram("server_request_us", {"outcome", "ok"});
    request_us_error =
        reg.histogram("server_request_us", {"outcome", "error"});
    queue_wait_us = reg.histogram("server_queue_wait_us");
    batch_size = reg.histogram("server_batch_size");
    queue_depth = reg.gauge("server_queue_depth");
    connections = reg.gauge("server_connections");
  }

  ServerOptions opts;
  int listen_fd = -1;

  std::atomic<bool> stop_accept{false};
  std::thread accept_thread;
  std::thread dispatch_thread;
  std::unique_ptr<ThreadPool> pool;

  Mutex mu;
  CondVar queue_cv;         // dispatcher wake: work or stopping
  CondVar queue_not_full;   // reader back-pressure release
  CondVar drained_cv;       // stop(): in_flight reached zero
  CondVar wait_cv;          // wait(): SHUTDOWN verb arrived
  std::deque<Job> queue AIS_GUARDED_BY(mu);
  std::size_t in_flight AIS_GUARDED_BY(mu) = 0;  // enqueued, reply not sent
  bool stopping AIS_GUARDED_BY(mu) = false;
  bool shutdown_requested AIS_GUARDED_BY(mu) = false;
  std::vector<std::shared_ptr<Conn>> conns AIS_GUARDED_BY(mu);
  std::vector<std::thread> readers AIS_GUARDED_BY(mu);

  std::mutex lifecycle_mu;  // start/stop idempotence; never nested in mu
  bool started = false;
  bool stopped = false;

  obs::Histogram* request_us_ok = nullptr;
  obs::Histogram* request_us_error = nullptr;
  obs::Histogram* queue_wait_us = nullptr;
  obs::Histogram* batch_size = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Gauge* connections = nullptr;

  void count_request(std::string_view verb, bool ok) {
    obs::MetricRegistry::global()
        .counter("server_requests_total", {"verb", verb},
                 {"outcome", ok ? "ok" : "error"})
        ->add(1);
  }

  void accept_loop() {
    pollfd pfd{listen_fd, POLLIN, 0};
    while (!stop_accept.load(std::memory_order_relaxed)) {
      pfd.revents = 0;
      int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
      if (ready <= 0) continue;
      int cfd = ::accept(listen_fd, nullptr, nullptr);
      if (cfd < 0) continue;
      auto conn = std::make_shared<Conn>(cfd);
      connections->add(1);
      MutexLock lock(mu);
      if (stopping) {
        connections->add(-1);
        continue;  // conn closes via dtor
      }
      conns.push_back(conn);
      readers.emplace_back([this, conn] { reader_loop(conn); });
    }
  }

  void reader_loop(std::shared_ptr<Conn> conn) AIS_EXCLUDES(mu) {
    std::string buffer;
    std::string payload;
    char chunk[65536];
    bool close_conn = false;
    while (!close_conn) {
      ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      for (;;) {
        FrameStatus status =
            take_frame(buffer, opts.max_frame_bytes, &payload);
        if (status == FrameStatus::kNeedMore) break;
        if (status == FrameStatus::kOversized) {
          // The stream offset is unrecoverable: error out and hang up.
          Response reply;
          reply.message = "frame exceeds max_frame_bytes";
          conn->write_payload(reply.encode());
          count_request("unknown", false);
          close_conn = true;
          break;
        }
        handle_payload(conn, payload);
      }
    }
    // A protocol-level hangup still owes the client a FIN: the Conn's fd
    // stays open until the last in-flight reply drops its reference, so
    // shutdown() is what the client actually observes as the close.
    if (close_conn) ::shutdown(conn->fd, SHUT_RDWR);
    // Deregister so churning clients do not accumulate open fds for the
    // life of the daemon; queued jobs keep the Conn alive via shared_ptr.
    {
      MutexLock lock(mu);
      const auto it = std::find(conns.begin(), conns.end(), conn);
      if (it != conns.end()) conns.erase(it);
    }
    connections->add(-1);
  }

  void handle_payload(const std::shared_ptr<Conn>& conn,
                      const std::string& payload) AIS_EXCLUDES(mu) {
    Request request;
    Response reply;
    std::string error;
    if (!parse_request(payload, &request, &error)) {
      reply.message = error;
      conn->write_payload(reply.encode());
      count_request("unknown", false);
      return;
    }
    if (request.verb == kVerbCompile) {
      if (!enqueue(conn, std::move(request))) {
        reply.message = "server is shutting down";
        conn->write_payload(reply.encode());
        count_request("compile", false);
      }
      return;
    }
    if (request.verb == kVerbPing) {
      reply.ok = true;
      conn->write_payload(reply.encode());
      count_request("ping", true);
      return;
    }
    if (request.verb == kVerbMetrics || request.verb == "STATS") {
      obs::record_process_gauges();
      reply.ok = true;
      std::string_view format = request.option("format", "prom");
      auto& reg = obs::MetricRegistry::global();
      reply.diag_text =
          format == "json" ? reg.json_text() : reg.prometheus_text();
      conn->write_payload(reply.encode());
      count_request("metrics", true);
      return;
    }
    if (request.verb == kVerbShutdown) {
      reply.ok = true;
      conn->write_payload(reply.encode());
      count_request("shutdown", true);
      MutexLock lock(mu);
      shutdown_requested = true;
      wait_cv.notify_all();
      return;
    }
    reply.message = "unknown verb '" + request.verb + "'";
    conn->write_payload(reply.encode());
    count_request("unknown", false);
  }

  /// Admission: blocks while the queue is full (back-pressure — the
  /// client's sends stall behind this reader).  False once stopping.
  bool enqueue(const std::shared_ptr<Conn>& conn, Request request)
      AIS_EXCLUDES(mu) {
    Job job{conn, std::move(request), now_us()};
    MutexLock lock(mu);
    while (queue.size() >= opts.queue_cap && !stopping) {
      queue_not_full.wait(mu);
    }
    if (stopping) return false;
    queue.push_back(std::move(job));
    ++in_flight;
    queue_depth->set(static_cast<std::int64_t>(queue.size()));
    queue_cv.notify_one();
    return true;
  }

  void dispatch_loop() AIS_EXCLUDES(mu) {
    std::vector<Job> batch;
    for (;;) {
      batch.clear();
      {
        MutexLock lock(mu);
        while (queue.empty() && !stopping) queue_cv.wait(mu);
        if (queue.empty() && stopping) return;
        // Micro-batch: gather until batch_max or until the first request
        // has waited batch_window_us.  While stopping, flush immediately.
        const std::int64_t deadline = now_us() + opts.batch_window_us;
        for (;;) {
          while (!queue.empty() && batch.size() < opts.batch_max) {
            batch.push_back(std::move(queue.front()));
            queue.pop_front();
          }
          if (batch.size() >= opts.batch_max || stopping) break;
          const std::int64_t remaining = deadline - now_us();
          if (remaining <= 0) break;
          if (!queue_cv.wait_for(mu,
                                 std::chrono::microseconds(remaining))) {
            // Timed out: take anything that raced in, then flush.
            while (!queue.empty() && batch.size() < opts.batch_max) {
              batch.push_back(std::move(queue.front()));
              queue.pop_front();
            }
            break;
          }
        }
        queue_depth->set(static_cast<std::int64_t>(queue.size()));
        queue_not_full.notify_all();
      }
      batch_size->record(batch.size());
      for (Job& job : batch) {
        pool->submit([this, job = std::move(job)]() mutable {
          process(std::move(job));
        });
      }
    }
  }

  void process(Job job) AIS_EXCLUDES(mu) {
    const std::int64_t start = now_us();
    queue_wait_us->record(
        static_cast<std::uint64_t>(start - job.enqueue_us));
    WorkerScratch& scratch = worker_scratch();

    Response reply;
    CompileOptions copts;
    std::string error;
    if (!decode_compile_options(job.request, &copts, &error)) {
      reply.message = error;
    } else {
      const std::string* body = &job.request.body;
      std::string file_body;
      std::string_view file = job.request.option("file");
      if (!file.empty()) {
        std::ifstream in{std::string(file)};
        if (!in.is_open()) {
          reply.message = "cannot open file '" + std::string(file) + "'";
          body = nullptr;
        } else {
          std::ostringstream text;
          text << in.rdbuf();
          file_body = text.str();
          body = &file_body;
        }
      }
      if (body != nullptr) compile_ir(*body, copts, scratch, &reply);
    }

    std::string_view id = job.request.option("id");
    if (!id.empty()) {
      if (reply.ok) {
        reply.options["id"] = std::string(id);
      } else {
        reply.message += " (id=" + std::string(id) + ")";
      }
    }
    job.conn->write_payload(reply.encode());

    const std::int64_t elapsed = now_us() - start;
    (reply.ok ? request_us_ok : request_us_error)
        ->record(static_cast<std::uint64_t>(elapsed));
    count_request("compile", reply.ok);
    obs::record_arena_high_water(
        "server_worker",
        static_cast<std::int64_t>(scratch.bytes_reserved()));

    MutexLock lock(mu);
    if (--in_flight == 0) drained_cv.notify_all();
  }
};

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() { stop(); }

const ServerOptions& Server::options() const { return impl_->opts; }

bool Server::start(std::string* error) {
  {
    std::lock_guard<std::mutex> guard(impl_->lifecycle_mu);
    if (impl_->started) {
      *error = "server already started";
      return false;
    }
    impl_->started = true;
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (impl_->opts.socket_path.empty() ||
      impl_->opts.socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path empty or too long for AF_UNIX";
    return false;
  }
  std::memcpy(addr.sun_path, impl_->opts.socket_path.c_str(),
              impl_->opts.socket_path.size() + 1);

  impl_->listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (impl_->listen_fd < 0) {
    *error = "socket(): " + std::string(std::strerror(errno));
    return false;
  }
  ::unlink(impl_->opts.socket_path.c_str());  // stale path from a past run
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(impl_->listen_fd, 128) != 0) {
    *error = "bind/listen on '" + impl_->opts.socket_path +
             "': " + std::string(std::strerror(errno));
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
    return false;
  }

  // Counters and latency histograms must be live for METRICS regardless of
  // the environment; mirrors what aisc does under --metrics-out.
  obs::init_from_env();
  obs::set_enabled(true);
  obs::register_builtin_counters();

  impl_->pool = std::make_unique<ThreadPool>(clamp_jobs(impl_->opts.threads));
  impl_->dispatch_thread = std::thread([this] { impl_->dispatch_loop(); });
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
  return true;
}

void Server::wait() {
  {
    MutexLock lock(impl_->mu);
    while (!impl_->shutdown_requested && !impl_->stopping) {
      impl_->wait_cv.wait(impl_->mu);
    }
  }
  stop();
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> guard(impl_->lifecycle_mu);
    if (!impl_->started || impl_->stopped) return;
    impl_->stopped = true;
  }

  // 1. No new connections.
  impl_->stop_accept.store(true, std::memory_order_relaxed);
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();

  // 2. No new admissions; wake every blocked thread; shut down connection
  //    read sides so readers run dry (write sides stay open for replies).
  {
    MutexLock lock(impl_->mu);
    impl_->stopping = true;
    impl_->queue_cv.notify_all();
    impl_->queue_not_full.notify_all();
    impl_->wait_cv.notify_all();
    for (const auto& conn : impl_->conns) ::shutdown(conn->fd, SHUT_RD);
  }

  // 3. Drain: every admitted request gets its reply.
  {
    MutexLock lock(impl_->mu);
    while (impl_->in_flight > 0) impl_->drained_cv.wait(impl_->mu);
  }
  if (impl_->dispatch_thread.joinable()) impl_->dispatch_thread.join();
  if (impl_->pool) {
    impl_->pool->wait_idle();
    impl_->pool.reset();
  }

  // 4. Join readers and release connections.
  std::vector<std::thread> readers;
  std::vector<std::shared_ptr<Conn>> conns;
  {
    MutexLock lock(impl_->mu);
    readers.swap(impl_->readers);
    conns.swap(impl_->conns);
  }
  for (std::thread& t : readers) t.join();
  conns.clear();

  if (impl_->listen_fd >= 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
  }
  ::unlink(impl_->opts.socket_path.c_str());

  // 5. Persist what the run learned.
  ScheduleCache::global().flush_disk();
}

}  // namespace ais::server
