// The request-to-reply core of aisd: one COMPILE request in, one reply out,
// byte-identical to what offline `aisc` would print for the same input.
//
// The service is a pure function of (request, scratch) — it owns no locks
// and no global state beyond what the compile pipeline itself uses (the
// shared schedule cache, the obs registry) — so the server can run any
// number of calls concurrently, one per pool worker, each with its own
// reusable WorkerScratch.  Byte-identity with aisc holds because the exact
// same pipeline entry points run in the exact same order (cfg mode before
// renaming, then trace/loop), and the assembly emitter reproduces aisc's
// `block %s:\n` / `  %s\n` format character for character.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "server/protocol.hpp"
#include "sim/lookahead_sim.hpp"

namespace ais::server {

/// Decoded COMPILE options (the aisc command line, minus I/O paths).
struct CompileOptions {
  std::string mode = "trace";      // trace | loop | cfg
  std::string machine = "rs6000";  // machine_preset name
  int window = 0;
  int jobs = 1;
  bool rename = false;
  bool report = false;   // cycle counts into the reply's status options
  bool verify = false;   // run the independent oracle; findings into diag
  bool profile = false;  // counter deltas into the reply trailer
};

/// Per-worker reusable state: the simulator scratch (arena-backed, converges
/// on the peak instance size) plus the string buffers replies are built in.
/// One per pool worker, reused across every request that worker serves —
/// the per-request allocation profile is what a warmed-up aisc run does, not
/// a cold process start.
struct WorkerScratch {
  SimScratch sim;
  std::string asm_text;
  std::string head;  // reply status line (Response::encode_head target)
  std::string tail;  // reply counter trailer (encode_tail target)

  /// Bytes currently reserved by the reusable buffers (high-water gauge).
  std::size_t bytes_reserved() const;
};

/// Parses the COMPILE request's options.  Returns false with *error set on
/// an unknown key or unparseable value (the caller turns it into an ERR
/// reply; nothing has been compiled).
bool decode_compile_options(const Request& request, CompileOptions* options,
                            std::string* error);

/// Compiles `ir_text` per `options` into `reply`.  On success `reply->ok`
/// with the assembly section and status options filled; on any request
/// error (bad IR, unknown machine/mode, verification failure is NOT an
/// error — it lands in diag_text with verified=fail) `reply->ok == false`
/// and `reply->message` says why.  Never terminates the process.
void compile_ir(const std::string& ir_text, const CompileOptions& options,
                WorkerScratch& scratch, Response* reply);

}  // namespace ais::server
