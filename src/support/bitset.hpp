// Dynamic bitset used for descendant-closure sets in dependence graphs.
//
// std::vector<bool> lacks word-level OR which dominates transitive-closure
// time; this is a minimal fixed-capacity-after-construction bitset with the
// operations the graph layer needs.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

namespace ais {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t nbits);

  std::size_t size() const { return nbits_; }

  void set(std::size_t i);
  void reset(std::size_t i);
  /// Clears every bit (word fill; size unchanged).
  void reset_all();
  bool test(std::size_t i) const;

  /// Word-parallel union; both operands must have the same size.
  DynamicBitset& operator|=(const DynamicBitset& other);
  /// Word-parallel intersection; both operands must have the same size.
  DynamicBitset& operator&=(const DynamicBitset& other);

  bool operator==(const DynamicBitset& other) const = default;

  /// Number of set bits.
  std::size_t count() const;

  /// True iff no bit is set.
  bool none() const;

  /// True iff (*this & other) is nonempty.  Sizes must match.
  bool intersects(const DynamicBitset& other) const;

  /// Calls fn(i) for every set bit i in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Indices of set bits, ascending.
  std::vector<std::size_t> to_indices() const;

  /// Backing words, bit i at words()[i / 64] >> (i % 64); lets word-parallel
  /// consumers (ClosureMatrix row ops) mask against a bitset directly.
  std::span<const std::uint64_t> words() const { return words_; }

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ais
