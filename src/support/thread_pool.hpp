// A small fixed-size worker pool plus the parallel_for used by the driver
// and tools layers to compile independent traces concurrently (aisc --jobs,
// aisprof --jobs).
//
// Scope is deliberately narrow: tasks must not throw (scheduling code
// reports errors via AIS_CHECK, which aborts), and result hand-off is the
// caller's business — the driver writes disjoint output slots per task, so
// the only synchronization the pool provides is the completion barrier.
// Telemetry stays correct under concurrency because obs counters/spans are
// already thread-safe (see src/obs/obs.hpp).
//
// Lock discipline is statically proven: all shared state is
// AIS_GUARDED_BY(mu_) and the gating `-Wthread-safety` build (CMake
// AIS_THREAD_SAFETY, CI job `thread-safety`) rejects any unlocked access.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "support/mutex.hpp"

namespace ais {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  /// Waits for all queued tasks, then joins the workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; runs on some worker in FIFO order.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle() AIS_EXCLUDES(mu_);

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop() AIS_EXCLUDES(mu_);

  Mutex mu_;
  CondVar task_ready_;
  CondVar all_idle_;
  std::deque<std::function<void()>> queue_ AIS_GUARDED_BY(mu_);
  std::size_t busy_ AIS_GUARDED_BY(mu_) = 0;
  bool stopping_ AIS_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// Normalizes a user-facing --jobs value: <= 0 means "one per hardware
/// thread" (at least 1).
int clamp_jobs(int jobs);

/// Runs fn(0) … fn(n-1), distributing indices over up to `jobs` workers
/// (atomic self-scheduling, so uneven tasks balance).  jobs <= 1 or n <= 1
/// degrades to a plain serial loop on the calling thread — callers use one
/// code path for both modes.  Blocks until every index completed.
void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace ais
