// Monotonic wall-clock stopwatch for coarse compile-time measurements.
// (Fine-grained scheduler timing uses google-benchmark in bench/.)
#pragma once

#include <chrono>

namespace ais {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ais
