// Monotonic wall-clock timing, shared by every layer that measures time:
// obs phase spans, aisprof/bench compile-ms numbers, and ad-hoc experiment
// timing.  Microbenchmark-grade statistics (warmup, repetition, complexity
// fits) stay with google-benchmark in bench/bench_compile_time; everything
// else goes through this header so there is exactly one clock in the tree.
#pragma once

#include <chrono>
#include <cstdint>
#include <utility>

namespace ais {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

  std::int64_t elapsed_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                                 start_)
        .count();
  }

  /// Microseconds since an arbitrary process-wide epoch (first call).
  /// Monotonic; the timestamp base for obs trace events.
  static std::int64_t now_us() {
    static const clock::time_point epoch = clock::now();
    return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                                 epoch)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Wall time of one call to `fn`, in milliseconds.
template <typename Fn>
double timed_ms(Fn&& fn) {
  Stopwatch sw;
  std::forward<Fn>(fn)();
  return sw.elapsed_ms();
}

}  // namespace ais
