#include "support/csv.hpp"

#include "support/assert.hpp"
#include "support/str.hpp"

namespace ais {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), arity_(header.size()) {
  AIS_CHECK(out_.is_open(), "cannot open CSV output: " + path);
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  AIS_CHECK(cells.size() == arity_, "CSV row arity mismatch");
  std::vector<std::string> escaped;
  escaped.reserve(cells.size());
  for (const auto& cell : cells) escaped.push_back(escape(cell));
  out_ << join(escaped, ",") << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace ais
