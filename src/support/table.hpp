// Aligned ASCII table printer used by every bench binary.
//
// Bench binaries print the rows/series the paper's figures imply; a uniform
// renderer keeps bench_output.txt diffable across runs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ais {

class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: renders each cell via to_string/fmt where needed.
  std::size_t num_rows() const { return rows_.size(); }

  /// Renders with column alignment and a header rule.
  std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ais
