#include "support/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace ais {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  AIS_CHECK(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  AIS_CHECK(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  auto emit_rule = [&]() {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
    }
    os << "-|\n";
  };

  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

}  // namespace ais
