#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "support/stopwatch.hpp"
#include "support/telemetry_hook.hpp"

namespace ais {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(threads, 1);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  // Wrap tasks with queue-wait/run timing when a telemetry sink is live
  // (obs installs one; see support/telemetry_hook.hpp for the layering).
  // Checked per submit so an AIS_OBS=OFF build or a disabled run pays only
  // one relaxed load here and nothing per task.
  if (const TelemetrySink* sink = telemetry_sink();
      sink != nullptr && sink->enabled()) {
    task = [sink, enqueue_us = Stopwatch::now_us(),
            inner = std::move(task)] {
      const std::int64_t start_us = Stopwatch::now_us();
      sink->value(kPoolQueueWaitUs,
                  static_cast<std::uint64_t>(start_us - enqueue_us));
      inner();
      sink->value(kPoolRunUs, static_cast<std::uint64_t>(
                                  Stopwatch::now_us() - start_us));
    };
  }
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mu_);
  while (!queue_.empty() || busy_ != 0) all_idle_.wait(mu_);
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) task_ready_.wait(mu_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
    }
    task();
    {
      MutexLock lock(mu_);
      --busy_;
      if (queue_.empty() && busy_ == 0) all_idle_.notify_all();
    }
  }
}

int clamp_jobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  jobs = clamp_jobs(jobs);
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const int workers =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(jobs), n));
  std::atomic<std::size_t> next{0};
  ThreadPool pool(workers);
  for (int w = 0; w < workers; ++w) {
    pool.submit([&next, n, &fn] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace ais
