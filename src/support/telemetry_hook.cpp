#include "support/telemetry_hook.hpp"

namespace ais {
namespace {

std::atomic<const TelemetrySink*> g_sink{nullptr};

}  // namespace

void set_telemetry_sink(const TelemetrySink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

const TelemetrySink* telemetry_sink() {
  return g_sink.load(std::memory_order_relaxed);
}

}  // namespace ais
