// Tiny command-line flag parser for bench binaries and examples.
//
// Supports `--name value` and `--name=value`; unknown flags are a hard error
// so typos in experiment scripts do not silently fall back to defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace ais {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;
  bool has(const std::string& name) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace ais
