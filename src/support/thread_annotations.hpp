// Clang thread-safety-analysis annotation macros.
//
// These turn the repo's concurrency invariants — which state is guarded by
// which mutex, which functions require a lock to be held — into compile-time
// proofs: a Clang build with `-Wthread-safety -Werror=thread-safety-analysis`
// (CMake option AIS_THREAD_SAFETY, a gating CI job) rejects any access to a
// `AIS_GUARDED_BY` member outside a critical section the analysis can see.
// The dynamic TSan job still runs — the static analysis proves lock
// discipline, TSan catches what the annotations cannot express (ordering
// through atomics, publication protocols).
//
// The macros expand to nothing under compilers without the attribute (GCC
// builds the tree unannotated), so they are safe to use everywhere.  They
// only do something on the annotated ais::Mutex / ais::MutexLock / ais::CondVar
// primitives from support/mutex.hpp — std::mutex carries no capability
// attributes, so code still on std::mutex is simply not analyzed.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define AIS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AIS_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

/// Declares a class to be a capability (a lockable resource).
#define AIS_CAPABILITY(x) AIS_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability.
#define AIS_SCOPED_CAPABILITY AIS_THREAD_ANNOTATION(scoped_lockable)

/// A data member readable/writable only while holding the given mutex(es).
#define AIS_GUARDED_BY(x) AIS_THREAD_ANNOTATION(guarded_by(x))

/// A pointer member whose *pointee* is guarded by the given mutex.
#define AIS_PT_GUARDED_BY(x) AIS_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while holding the given mutex(es).
#define AIS_REQUIRES(...) \
  AIS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define AIS_REQUIRES_SHARED(...) \
  AIS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the given capability.
#define AIS_ACQUIRE(...) \
  AIS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define AIS_ACQUIRE_SHARED(...) \
  AIS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define AIS_RELEASE(...) \
  AIS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define AIS_RELEASE_SHARED(...) \
  AIS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`.
#define AIS_TRY_ACQUIRE(b, ...) \
  AIS_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// The function must be called while NOT holding the given mutex(es).
#define AIS_EXCLUDES(...) AIS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability.
#define AIS_ASSERT_CAPABILITY(x) AIS_THREAD_ANNOTATION(assert_capability(x))

/// The function returns a reference to the given capability.
#define AIS_RETURN_CAPABILITY(x) AIS_THREAD_ANNOTATION(lock_returned(x))

/// Lock-ordering documentation (deadlock detection).
#define AIS_ACQUIRED_BEFORE(...) \
  AIS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define AIS_ACQUIRED_AFTER(...) \
  AIS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Escape hatch: the function is exempt from analysis (use sparingly and
/// document why at the call site).
#define AIS_NO_THREAD_SAFETY_ANALYSIS \
  AIS_THREAD_ANNOTATION(no_thread_safety_analysis)
