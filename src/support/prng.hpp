// Deterministic pseudo-random number generation for workload synthesis.
//
// All random workloads in the benchmark harness are seeded explicitly so
// every experiment in EXPERIMENTS.md is reproducible bit-for-bit.  We use
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64, which is the
// recommended seeding procedure and avoids correlated low-entropy seeds.
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace ais {

/// SplitMix64 step; used for seeding and as a cheap standalone mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator so it can be
/// plugged into <random> distributions when needed.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()();

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Uniformly selects an index in [0, n).  Requires n > 0.
  std::size_t index(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Splits off an independently-seeded child generator; useful to give each
  /// trial of a sweep its own stream without coupling to iteration order.
  Prng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace ais
