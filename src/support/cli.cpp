#include "support/cli.hpp"

#include <cstdlib>

#include "support/assert.hpp"
#include "support/str.hpp"

namespace ais {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    AIS_CHECK(starts_with(arg, "--"), "unexpected positional argument: " + arg);
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag
    }
  }
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) != 0;
}

}  // namespace ais
