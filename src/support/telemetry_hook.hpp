// Layering escape hatch for support-level telemetry.
//
// src/obs depends on src/support (mutex, stopwatch), so support-level
// primitives like ThreadPool cannot include obs headers without a cycle.
// Instead they publish latency samples through this indirection: src/obs
// installs a sink at static-initialization time (only in AIS_OBS builds),
// and a null sink means telemetry is compiled out or not yet linked.  The
// disabled cost at a call site is one relaxed atomic load of the sink
// pointer; the runtime-off cost adds the sink's own enabled() gate (one
// more relaxed load).
//
// The sample names live here, next to the emitting code, so obs's metric
// glossary (obs.hpp, docs/OBSERVABILITY.md) can alias rather than restate
// them.  The "time." prefix marks wall-clock distributions: they describe
// the run, not the schedule, so obs::CounterRecorder excludes them from
// cache replay (see src/obs/obs.hpp).
#pragma once

#include <atomic>
#include <cstdint>

namespace ais {

struct TelemetrySink {
  /// Runtime gate, e.g. obs::enabled.  Never null in an installed sink.
  bool (*enabled)();
  /// Value-distribution sample, e.g. obs::record_value.
  void (*value)(const char* name, std::uint64_t v);
};

/// Installs (or clears, with nullptr) the process-wide sink.  The sink must
/// outlive every call site — obs installs a static.
void set_telemetry_sink(const TelemetrySink* sink);

/// The installed sink, or nullptr.  One relaxed load.
const TelemetrySink* telemetry_sink();

/// ThreadPool task latency distributions, in microseconds.
inline constexpr const char* kPoolQueueWaitUs = "time.pool_queue_wait_us";
inline constexpr const char* kPoolRunUs = "time.pool_run_us";

}  // namespace ais
