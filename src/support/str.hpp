// Small string helpers shared by the table/CSV writers and the asm parser.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ais {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits `s` on runs of whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing whitespace.
std::string trim(std::string_view s);

/// True iff `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Fixed-precision double formatting ("%.*f").
std::string fmt_double(double v, int precision = 2);

}  // namespace ais
