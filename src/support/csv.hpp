// Minimal CSV emitter for machine-readable benchmark output.
//
// Benches print ASCII tables to stdout for humans and, when given an output
// path, mirror the same rows as CSV so plots can be regenerated offline.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ais {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.  A failure to open
  /// is a hard error (benches should not silently drop data).
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);

 private:
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t arity_;
};

}  // namespace ais
