// Capability-annotated mutual-exclusion primitives.
//
// std::mutex carries no Clang thread-safety attributes, so code locking one
// cannot be statically analyzed.  These thin wrappers add the annotations
// (support/thread_annotations.hpp) while keeping std::mutex semantics and
// cost; the concurrent core (ThreadPool, the schedule-cache shards, the obs
// registry, the block prescheduler) locks through them so the
// `-Wthread-safety -Werror=thread-safety-analysis` CI build is a
// compile-time proof of its lock discipline.
//
// CondVar is a std::condition_variable_any over Mutex (Mutex is
// BasicLockable).  Its wait() takes the Mutex itself and REQUIRES it held,
// which forces the annotated idiom
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.wait(mu_);   // ready_ is AIS_GUARDED_BY(mu_)
//
// — the predicate is re-checked in a scope the analysis can see, instead of
// inside a lambda it cannot.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "support/thread_annotations.hpp"

namespace ais {

class AIS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AIS_ACQUIRE() { mu_.lock(); }
  void unlock() AIS_RELEASE() { mu_.unlock(); }
  bool try_lock() AIS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII critical section (the annotated std::lock_guard).
class AIS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AIS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() AIS_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over Mutex.  wait() releases `mu` while blocked and
/// reacquires it before returning, exactly like std::condition_variable —
/// callers hold `mu` (typically via MutexLock) and loop on their predicate.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) AIS_REQUIRES(mu) { cv_.wait(mu); }
  /// wait() with a timeout; returns false when the wait timed out.  Used by
  /// the deadline loops (micro-batch gather window, disk-write flusher),
  /// which re-check their predicate under `mu` either way.
  bool wait_for(Mutex& mu, std::chrono::microseconds timeout)
      AIS_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout) == std::cv_status::no_timeout;
  }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace ais
