#include "support/bitset.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ais {

DynamicBitset::DynamicBitset(std::size_t nbits)
    : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

void DynamicBitset::set(std::size_t i) {
  AIS_CHECK(i < nbits_, "bit index out of range");
  words_[i / 64] |= 1ull << (i % 64);
}

void DynamicBitset::reset(std::size_t i) {
  AIS_CHECK(i < nbits_, "bit index out of range");
  words_[i / 64] &= ~(1ull << (i % 64));
}

void DynamicBitset::reset_all() {
  std::fill(words_.begin(), words_.end(), 0);
}

bool DynamicBitset::test(std::size_t i) const {
  AIS_CHECK(i < nbits_, "bit index out of range");
  return (words_[i / 64] >> (i % 64)) & 1u;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  AIS_CHECK(nbits_ == other.nbits_, "bitset size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  AIS_CHECK(nbits_ == other.nbits_, "bitset size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  return *this;
}

std::size_t DynamicBitset::count() const {
  std::size_t total = 0;
  for (const auto word : words_) {
    total += static_cast<std::size_t>(__builtin_popcountll(word));
  }
  return total;
}

bool DynamicBitset::none() const {
  for (const auto word : words_) {
    if (word != 0) return false;
  }
  return true;
}

bool DynamicBitset::intersects(const DynamicBitset& other) const {
  AIS_CHECK(nbits_ == other.nbits_, "bitset size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if ((words_[w] & other.words_[w]) != 0) return true;
  }
  return false;
}

std::vector<std::size_t> DynamicBitset::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each([&out](std::size_t i) { out.push_back(i); });
  return out;
}

}  // namespace ais
