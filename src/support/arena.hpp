// Chunked bump allocator for hot-path scratch memory.
//
// The compile-time profile of small-block compiles is dominated by malloc
// traffic: graph build makes two heap allocations per node (adjacency
// vectors) plus a realloc per few edges, and every RankSession construction
// allocates a dozen scratch vectors that die with the session.  An Arena
// replaces those with pointer bumps inside a few large chunks: allocation is
// an add + compare, deallocation is free (memory is reclaimed wholesale by
// reset() or the destructor).
//
// Use it through alloc_array<T>() for fixed-size scratch, through
// ArenaAllocator<T> / ArenaVector<T> for std::vector-shaped scratch whose
// growth should stop hitting malloc, or through raw allocate() for anything
// else.  Only trivially destructible element types make sense: the arena
// never runs destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace ais {

class Arena {
 public:
  /// `chunk_bytes` caps the size of regular backing chunks; allocations
  /// larger than it get a dedicated chunk of exactly their size.  Chunks
  /// grow geometrically from `initial_chunk_bytes` up to the cap, so an
  /// arena that only ever serves a few KiB (a tiny trace graph — corpus
  /// compiles hold thousands alive at once) reserves a few KiB, not
  /// `chunk_bytes`.  Hot scratch arenas that always reach tens of KiB
  /// (RankSession) pass initial == cap to skip the ramp-up mallocs.
  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes,
                 std::size_t initial_chunk_bytes = kInitialChunkBytes);

  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&& other) noexcept;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() = default;

  /// `bytes` of storage aligned to `align` (a power of two).  Never returns
  /// nullptr; a zero-byte request yields a valid unique pointer.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Uninitialized storage for `n` objects of trivially destructible T.
  template <typename T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "the arena never runs destructors");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds every chunk to empty without releasing any memory, so a reused
  /// arena (e.g. a thread-local scratch arena) stops allocating from the OS
  /// once it has seen its peak load.
  void reset();

  /// Bytes handed out since construction / the last reset().
  std::size_t bytes_allocated() const { return bytes_allocated_; }
  /// Bytes of backing memory currently held (survives reset()).
  std::size_t bytes_reserved() const { return bytes_reserved_; }

  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;
  static constexpr std::size_t kInitialChunkBytes = 4 * 1024;

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  /// Chunk with at least `bytes` free at alignment `align`, bumping
  /// current_ past exhausted chunks (reset() rewinds it).
  Chunk& chunk_for(std::size_t bytes, std::size_t align);

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // index of the chunk being bumped
  std::size_t chunk_bytes_;
  std::size_t next_chunk_bytes_;  // next regular chunk; doubles to the cap
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

/// std-compatible allocator over an Arena.  deallocate() is a no-op: memory
/// comes back only via Arena::reset() or arena destruction, so containers
/// that grow abandon their old blocks (bounded waste — reserve() up front
/// where the final size is known).  The arena must outlive every container.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace ais
