#include "support/prng.hpp"

namespace ais {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Prng::Prng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Prng::result_type Prng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Prng::uniform(std::int64_t lo, std::int64_t hi) {
  AIS_CHECK(lo <= hi, "uniform() requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t r;
  do {
    r = (*this)();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

double Prng::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Prng::chance(double p) { return uniform01() < p; }

std::size_t Prng::index(std::size_t n) {
  AIS_CHECK(n > 0, "index() requires n > 0");
  return static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(n) - 1));
}

Prng Prng::split() { return Prng((*this)() ^ 0xd1b54a32d192ed03ull); }

}  // namespace ais
