// Always-on checked assertions for the AIS library.
//
// Scheduling code is full of internal invariants (topological orders,
// deadline monotonicity, slot exclusivity).  We keep these checks enabled in
// all build types: the library is a compile-time tool, not an inner loop, and
// a wrong schedule is far more expensive than the branch.
#pragma once

#include <string>

namespace ais {

/// Aborts the process after printing `msg` with source location context.
/// Used by AIS_CHECK; never returns.
[[noreturn]] void panic(const char* file, int line, const std::string& msg);

}  // namespace ais

/// Always-enabled invariant check.  `msg` is a std::string expression
/// evaluated only on failure.
#define AIS_CHECK(cond, msg)                            \
  do {                                                  \
    if (!(cond)) [[unlikely]] {                         \
      ::ais::panic(__FILE__, __LINE__,                  \
                   std::string("AIS_CHECK(" #cond ") failed: ") + (msg)); \
    }                                                   \
  } while (0)

/// Shorthand for checks whose condition is self-explanatory.
#define AIS_REQUIRE(cond) AIS_CHECK(cond, "requirement violated")
