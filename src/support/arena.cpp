#include "support/arena.hpp"

#include <utility>

#include "support/assert.hpp"

namespace ais {

Arena::Arena(std::size_t chunk_bytes, std::size_t initial_chunk_bytes)
    : chunk_bytes_(chunk_bytes), next_chunk_bytes_(initial_chunk_bytes) {
  AIS_CHECK(chunk_bytes > 0, "arena chunk size must be positive");
  AIS_CHECK(initial_chunk_bytes > 0, "arena initial chunk must be positive");
  if (next_chunk_bytes_ > chunk_bytes_) next_chunk_bytes_ = chunk_bytes_;
}

Arena::Arena(Arena&& other) noexcept
    : chunks_(std::move(other.chunks_)),
      current_(other.current_),
      chunk_bytes_(other.chunk_bytes_),
      next_chunk_bytes_(other.next_chunk_bytes_),
      bytes_allocated_(other.bytes_allocated_),
      bytes_reserved_(other.bytes_reserved_) {
  other.chunks_.clear();
  other.current_ = 0;
  other.bytes_allocated_ = 0;
  other.bytes_reserved_ = 0;
}

Arena& Arena::operator=(Arena&& other) noexcept {
  if (this != &other) {
    chunks_ = std::move(other.chunks_);
    current_ = other.current_;
    chunk_bytes_ = other.chunk_bytes_;
    next_chunk_bytes_ = other.next_chunk_bytes_;
    bytes_allocated_ = other.bytes_allocated_;
    bytes_reserved_ = other.bytes_reserved_;
    other.chunks_.clear();
    other.current_ = 0;
    other.bytes_allocated_ = 0;
    other.bytes_reserved_ = 0;
  }
  return *this;
}

Arena::Chunk& Arena::chunk_for(std::size_t bytes, std::size_t align) {
  for (; current_ < chunks_.size(); ++current_) {
    Chunk& c = chunks_[current_];
    const std::size_t aligned = (c.used + align - 1) & ~(align - 1);
    if (aligned + bytes <= c.size) return c;
  }
  // No existing chunk fits: open a fresh one.  Oversized requests get a
  // dedicated chunk so they never poison the bump pattern of regular ones;
  // regular chunks double from kInitialChunkBytes up to chunk_bytes_ so a
  // mostly-idle arena stays small.
  std::size_t size;
  if (bytes > chunk_bytes_) {
    size = bytes;
  } else {
    size = next_chunk_bytes_;
    while (size < bytes) size *= 2;
    next_chunk_bytes_ = size * 2 < chunk_bytes_ ? size * 2 : chunk_bytes_;
  }
  chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size, 0});
  bytes_reserved_ += size;
  return chunks_.back();
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  AIS_CHECK(align > 0 && (align & (align - 1)) == 0,
            "arena alignment must be a power of two");
  // new[] storage is aligned for std::max_align_t; larger alignments would
  // need aligned allocation, which nothing in the tree requests.
  AIS_CHECK(align <= alignof(std::max_align_t),
            "arena does not support over-aligned allocations");
  Chunk& c = chunk_for(bytes, align);
  const std::size_t aligned = (c.used + align - 1) & ~(align - 1);
  void* p = c.data.get() + aligned;
  c.used = aligned + bytes;
  bytes_allocated_ += bytes;
  return p;
}

void Arena::reset() {
  for (Chunk& c : chunks_) c.used = 0;
  current_ = 0;
  bytes_allocated_ = 0;
}

}  // namespace ais
