// Machine models: functional-unit classes, per-operation timings, issue
// width and the default hardware lookahead window size.
//
// The paper's exact results assume the "restricted case": a single
// functional unit, unit execution times and latencies in {0, 1}.  The
// heuristic extensions of §4.2 target the "assigned processor model":
// typed functional units, non-unit execution times and latencies > 1.
// A MachineModel instance describes one such machine.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace ais {

/// Operation classes the timing table is keyed on.  The IR maps each opcode
/// to one of these; workload generators may also use them directly.
enum class OpClass : std::uint8_t {
  kIntAlu,
  kIntMul,
  kIntDiv,
  kLoad,
  kStore,
  kFpAdd,
  kFpMul,
  kFpDiv,
  kCompare,
  kBranch,
  kMove,
  kNop,
};

inline constexpr std::size_t kNumOpClasses = 12;

const char* op_class_name(OpClass cls);

/// Timing of one operation class on a particular machine.
struct OpTiming {
  /// Index into MachineModel::fu_classes of the unit type that executes it.
  int fu_class = 0;
  /// Cycles the instruction occupies its functional unit.
  int exec_time = 1;
  /// Cycles consumers must wait after completion before starting (the
  /// paper's edge latency for true dependences).
  int latency = 0;
};

struct FuClassInfo {
  std::string name;
  /// Number of identical units of this class.
  int count = 1;
};

class MachineModel {
 public:
  MachineModel(std::string name, std::vector<FuClassInfo> fu_classes,
               int issue_width, int default_window);

  const std::string& name() const { return name_; }
  const std::vector<FuClassInfo>& fu_classes() const { return fu_classes_; }
  int num_fu_classes() const { return static_cast<int>(fu_classes_.size()); }

  /// Units of a given class.
  int fu_count(int fu_class) const;

  /// Total units across classes.
  int total_units() const;

  /// Maximum instructions issued per cycle.
  int issue_width() const { return issue_width_; }

  /// Default hardware lookahead window size W (paper §2.3 notes W is
  /// "usually very small, typically < 10").  Simulators accept overrides.
  int default_window() const { return default_window_; }

  void set_timing(OpClass cls, OpTiming t);
  const OpTiming& timing(OpClass cls) const;

  /// True iff this machine satisfies the paper's restricted (provably
  /// optimal) case: one unit, unit exec times, latencies in {0, 1}.
  bool is_restricted_case() const;

 private:
  std::string name_;
  std::vector<FuClassInfo> fu_classes_;
  int issue_width_;
  int default_window_;
  std::array<OpTiming, kNumOpClasses> timings_{};
};

/// --- Presets -------------------------------------------------------------

/// Single FU, unit exec times, 0/1 latencies: the paper's exact model.
MachineModel scalar01();

/// RS/6000-flavoured single-issue machine with typed units and the Fig. 3
/// latencies (load 1, compare 1, fixed-point multiply 4).
MachineModel rs6000_like();

/// Single FU but deeper pipeline: latencies up to 4 (heuristic regime of
/// §4.2 "longer latencies").
MachineModel deep_pipeline();

/// 4-wide machine (2 integer, 1 memory, 1 FP unit): the "assigned processor
/// model" / VLIW special case discussed in §6.
MachineModel vliw4();

/// Memoized preset lookup by CLI name (the short tool spellings and the
/// models' own names are both accepted: "scalar01", "rs6000" /
/// "rs6000-like", "deep" / "deep-pipeline", "vliw4").  The four presets are
/// built once per process and shared — tools that construct one scheduler
/// per random trace stop re-parsing the timing table in their hot loop.
/// Returns nullptr for an unknown name.  Callers needing their own mutable
/// copy can copy the referenced model (it is small).
///
/// Thread-safety: the registry is one function-local static built on first
/// use; [stmt.dcl] guarantees exactly-once initialization even when pool
/// workers race on the first call, and after that every call is a read of
/// immutable data.  See docs/ANALYSIS.md ("thread-safety proofs").
const MachineModel* machine_preset(const std::string& name);

/// The canonical preset names accepted by machine_preset(), in registry
/// order (aliases excluded).
std::vector<std::string> machine_preset_names();

}  // namespace ais
