#include <array>
#include <initializer_list>
#include <string_view>

#include "machine/machine_model.hpp"

namespace ais {
namespace {

/// Applies the same timing to a list of op classes.
void set_all(MachineModel& m, std::initializer_list<OpClass> classes,
             OpTiming t) {
  for (const OpClass cls : classes) m.set_timing(cls, t);
}

/// One memoized preset: the canonical name, accepted aliases, and the
/// built model.
struct PresetEntry {
  std::string_view name;
  std::array<std::string_view, 2> aliases;
  MachineModel model;
};

/// The preset registry.  A single function-local static: [stmt.dcl]/4
/// guarantees exactly-once, race-free initialization even when the first
/// callers are concurrent pool workers (BlockPrescheduler, aisprof --jobs),
/// and after initialization every access is a read of const data — no lock
/// needed, nothing for TSan or the thread-safety analysis to flag.
const std::array<PresetEntry, 4>& preset_registry() {
  static const std::array<PresetEntry, 4> kPresets = {{
      {"scalar01", {"", ""}, scalar01()},
      {"rs6000", {"rs6000-like", ""}, rs6000_like()},
      {"deep", {"deep-pipeline", ""}, deep_pipeline()},
      {"vliw4", {"", ""}, vliw4()},
  }};
  return kPresets;
}

}  // namespace

MachineModel scalar01() {
  MachineModel m("scalar01", {{"u", 1}}, /*issue_width=*/1,
                 /*default_window=*/4);
  // Latency-1 producers: loads, compares and multiplies (capped at 1 to stay
  // inside the provably-optimal regime).  Everything else forwards in 0.
  set_all(m, {OpClass::kLoad, OpClass::kCompare, OpClass::kIntMul,
              OpClass::kFpAdd, OpClass::kFpMul},
          OpTiming{0, 1, 1});
  set_all(m, {OpClass::kIntAlu, OpClass::kIntDiv, OpClass::kStore,
              OpClass::kFpDiv, OpClass::kBranch, OpClass::kMove,
              OpClass::kNop},
          OpTiming{0, 1, 0});
  return m;
}

MachineModel rs6000_like() {
  // Fixed-point, floating-point and branch units; single-issue, as in the
  // Fig. 3 schedules (one instruction per cycle).
  MachineModel m("rs6000-like", {{"fxu", 1}, {"fpu", 1}, {"bu", 1}},
                 /*issue_width=*/1, /*default_window=*/6);
  const int kFxu = 0;
  const int kFpu = 1;
  const int kBu = 2;
  m.set_timing(OpClass::kIntAlu, {kFxu, 1, 0});
  m.set_timing(OpClass::kIntMul, {kFxu, 1, 4});  // Fig. 3: MULTIPLY latency 4
  m.set_timing(OpClass::kIntDiv, {kFxu, 1, 19});
  m.set_timing(OpClass::kLoad, {kFxu, 1, 1});    // Fig. 3: LOAD latency 1
  m.set_timing(OpClass::kStore, {kFxu, 1, 0});
  m.set_timing(OpClass::kCompare, {kFxu, 1, 1});  // Fig. 3: COMPARE latency 1
  m.set_timing(OpClass::kFpAdd, {kFpu, 1, 2});
  m.set_timing(OpClass::kFpMul, {kFpu, 1, 2});
  m.set_timing(OpClass::kFpDiv, {kFpu, 1, 17});
  m.set_timing(OpClass::kBranch, {kBu, 1, 0});
  m.set_timing(OpClass::kMove, {kFxu, 1, 0});
  m.set_timing(OpClass::kNop, {kFxu, 1, 0});
  return m;
}

MachineModel deep_pipeline() {
  MachineModel m("deep-pipeline", {{"u", 1}}, /*issue_width=*/1,
                 /*default_window=*/8);
  m.set_timing(OpClass::kIntAlu, {0, 1, 1});
  m.set_timing(OpClass::kIntMul, {0, 1, 4});
  m.set_timing(OpClass::kIntDiv, {0, 4, 4});
  m.set_timing(OpClass::kLoad, {0, 1, 3});
  m.set_timing(OpClass::kStore, {0, 1, 0});
  m.set_timing(OpClass::kCompare, {0, 1, 1});
  m.set_timing(OpClass::kFpAdd, {0, 1, 3});
  m.set_timing(OpClass::kFpMul, {0, 1, 4});
  m.set_timing(OpClass::kFpDiv, {0, 4, 4});
  m.set_timing(OpClass::kBranch, {0, 1, 0});
  m.set_timing(OpClass::kMove, {0, 1, 0});
  m.set_timing(OpClass::kNop, {0, 1, 0});
  return m;
}

MachineModel vliw4() {
  MachineModel m("vliw4", {{"int", 2}, {"mem", 1}, {"fp", 1}},
                 /*issue_width=*/4, /*default_window=*/8);
  const int kInt = 0;
  const int kMem = 1;
  const int kFp = 2;
  m.set_timing(OpClass::kIntAlu, {kInt, 1, 0});
  m.set_timing(OpClass::kIntMul, {kInt, 1, 2});
  m.set_timing(OpClass::kIntDiv, {kInt, 4, 4});
  m.set_timing(OpClass::kLoad, {kMem, 1, 2});
  m.set_timing(OpClass::kStore, {kMem, 1, 0});
  m.set_timing(OpClass::kCompare, {kInt, 1, 1});
  m.set_timing(OpClass::kFpAdd, {kFp, 1, 2});
  m.set_timing(OpClass::kFpMul, {kFp, 1, 3});
  m.set_timing(OpClass::kFpDiv, {kFp, 4, 4});
  m.set_timing(OpClass::kBranch, {kInt, 1, 0});
  m.set_timing(OpClass::kMove, {kInt, 1, 0});
  m.set_timing(OpClass::kNop, {kInt, 1, 0});
  return m;
}

const MachineModel* machine_preset(const std::string& name) {
  for (const PresetEntry& p : preset_registry()) {
    if (name == p.name) return &p.model;
    for (const std::string_view alias : p.aliases) {
      if (!alias.empty() && name == alias) return &p.model;
    }
  }
  return nullptr;
}

std::vector<std::string> machine_preset_names() {
  std::vector<std::string> names;
  for (const PresetEntry& p : preset_registry()) {
    names.emplace_back(p.name);
  }
  return names;
}

}  // namespace ais
