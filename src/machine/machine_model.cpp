#include "machine/machine_model.hpp"

#include "support/assert.hpp"

namespace ais {

const char* op_class_name(OpClass cls) {
  switch (cls) {
    case OpClass::kIntAlu: return "int-alu";
    case OpClass::kIntMul: return "int-mul";
    case OpClass::kIntDiv: return "int-div";
    case OpClass::kLoad: return "load";
    case OpClass::kStore: return "store";
    case OpClass::kFpAdd: return "fp-add";
    case OpClass::kFpMul: return "fp-mul";
    case OpClass::kFpDiv: return "fp-div";
    case OpClass::kCompare: return "compare";
    case OpClass::kBranch: return "branch";
    case OpClass::kMove: return "move";
    case OpClass::kNop: return "nop";
  }
  return "?";
}

MachineModel::MachineModel(std::string name,
                           std::vector<FuClassInfo> fu_classes,
                           int issue_width, int default_window)
    : name_(std::move(name)),
      fu_classes_(std::move(fu_classes)),
      issue_width_(issue_width),
      default_window_(default_window) {
  AIS_CHECK(!fu_classes_.empty(), "machine needs at least one FU class");
  for (const auto& fu : fu_classes_) {
    AIS_CHECK(fu.count >= 1, "FU class must have at least one unit");
  }
  AIS_CHECK(issue_width_ >= 1, "issue width must be positive");
  AIS_CHECK(default_window_ >= 1, "window size must be positive");
}

int MachineModel::fu_count(int fu_class) const {
  AIS_CHECK(fu_class >= 0 && fu_class < num_fu_classes(),
            "fu_class out of range");
  return fu_classes_[static_cast<std::size_t>(fu_class)].count;
}

int MachineModel::total_units() const {
  int total = 0;
  for (const auto& fu : fu_classes_) total += fu.count;
  return total;
}

void MachineModel::set_timing(OpClass cls, OpTiming t) {
  AIS_CHECK(t.fu_class >= 0 && t.fu_class < num_fu_classes(),
            "timing references unknown FU class");
  AIS_CHECK(t.exec_time >= 1, "exec_time must be positive");
  AIS_CHECK(t.latency >= 0, "latency must be nonnegative");
  timings_[static_cast<std::size_t>(cls)] = t;
}

const OpTiming& MachineModel::timing(OpClass cls) const {
  return timings_[static_cast<std::size_t>(cls)];
}

bool MachineModel::is_restricted_case() const {
  if (total_units() != 1 || issue_width_ != 1) return false;
  for (const auto& t : timings_) {
    if (t.exec_time != 1 || t.latency > 1) return false;
  }
  return true;
}

}  // namespace ais
