// Profile-guided trace selection (Fisher's mutual-most-likely heuristic).
//
// Partitions the CFG's blocks into traces: starting from the heaviest
// unvisited block, a trace grows forward along the most likely outgoing
// edge — but only if that edge is also the most likely *incoming* edge of
// its target (mutual most likely) and the target is unvisited — and then
// grows backward symmetrically.  Every block lands in exactly one trace.
// Traces feed Algorithm Lookahead; code layout (block order in the emitted
// program) is never changed, preserving the paper's serviceability claim.
#pragma once

#include <vector>

#include "cfg/cfg.hpp"

namespace ais {

struct SelectedTrace {
  /// Block ids along the trace, in control-flow order.
  std::vector<BlockId> blocks;
  /// Profile weight of the trace's seed block.
  double weight = 0;
};

/// Partitions all blocks into traces, heaviest seed first.
std::vector<SelectedTrace> select_traces(const Cfg& cfg);

/// Materializes a selected trace as scheduling input.
Trace materialize(const Cfg& cfg, const SelectedTrace& trace);

}  // namespace ais
