#include "cfg/trace_select.hpp"

#include <algorithm>
#include <optional>

#include "support/assert.hpp"

namespace ais {
namespace {

/// Heaviest outgoing edge of `id`, or nullopt.
std::optional<CfgEdge> best_out(const Cfg& cfg, BlockId id) {
  std::optional<CfgEdge> best;
  for (const CfgEdge& e : cfg.out_edges(id)) {
    if (!best || e.weight > best->weight) best = e;
  }
  return best;
}

std::optional<CfgEdge> best_in(const Cfg& cfg, BlockId id) {
  std::optional<CfgEdge> best;
  for (const CfgEdge& e : cfg.in_edges(id)) {
    if (!best || e.weight > best->weight) best = e;
  }
  return best;
}

}  // namespace

std::vector<SelectedTrace> select_traces(const Cfg& cfg) {
  const std::size_t n = cfg.num_blocks();
  std::vector<bool> visited(n, false);

  // Seeds in decreasing weight order (ties: program order).
  std::vector<BlockId> seeds;
  for (BlockId id = 0; id < static_cast<BlockId>(n); ++id) seeds.push_back(id);
  std::stable_sort(seeds.begin(), seeds.end(), [&cfg](BlockId a, BlockId b) {
    return cfg.block_weight(a) > cfg.block_weight(b);
  });

  std::vector<SelectedTrace> traces;
  for (const BlockId seed : seeds) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    SelectedTrace trace;
    trace.weight = cfg.block_weight(seed);
    trace.blocks = {seed};
    visited[static_cast<std::size_t>(seed)] = true;

    // Grow forward.
    BlockId cur = seed;
    while (true) {
      const auto out = best_out(cfg, cur);
      if (!out || visited[static_cast<std::size_t>(out->to)]) break;
      const auto in = best_in(cfg, out->to);
      // Mutual most likely: our edge must also be the target's best entry.
      if (!in || in->from != cur) break;
      cur = out->to;
      trace.blocks.push_back(cur);
      visited[static_cast<std::size_t>(cur)] = true;
    }
    // Grow backward.
    cur = seed;
    while (true) {
      const auto in = best_in(cfg, cur);
      if (!in || visited[static_cast<std::size_t>(in->from)]) break;
      const auto out = best_out(cfg, in->from);
      if (!out || out->to != cur) break;
      cur = in->from;
      trace.blocks.insert(trace.blocks.begin(), cur);
      visited[static_cast<std::size_t>(cur)] = true;
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

Trace materialize(const Cfg& cfg, const SelectedTrace& trace) {
  Trace out;
  for (const BlockId id : trace.blocks) out.blocks.push_back(cfg.block(id));
  AIS_CHECK(!out.blocks.empty(), "empty trace");
  return out;
}

}  // namespace ais
