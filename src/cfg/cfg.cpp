#include "cfg/cfg.hpp"

#include <cmath>
#include <limits>

#include "support/assert.hpp"

namespace ais {

Cfg::Cfg(const Program& prog, double entry_weight)
    : prog_(prog),
      taken_probability_(prog.blocks.size(),
                         std::numeric_limits<double>::quiet_NaN()),
      entry_weight_(entry_weight) {
  AIS_CHECK(!prog_.blocks.empty(), "CFG needs at least one block");
  for (BlockId id = 0; id < static_cast<BlockId>(prog_.blocks.size()); ++id) {
    const BasicBlock& bb = prog_.blocks[static_cast<std::size_t>(id)];
    const Instruction* last = bb.insts.empty() ? nullptr : &bb.insts.back();
    const bool has_branch = last != nullptr && last->is_branch();
    const bool conditional =
        has_branch && (last->op == Opcode::kBt || last->op == Opcode::kBf);

    if (has_branch) {
      const BlockId target = find_label(last->target);
      if (target != kNoBlock) {
        edges_.push_back(CfgEdge{id, target, 0, /*taken=*/true});
      }
    }
    const bool falls_through =
        (!has_branch || conditional) &&
        id + 1 < static_cast<BlockId>(prog_.blocks.size());
    if (falls_through) {
      edges_.push_back(CfgEdge{id, id + 1, 0, /*taken=*/false});
    }
    if (conditional) taken_probability_[static_cast<std::size_t>(id)] = 0.5;
  }
  recompute_weights();
}

const BasicBlock& Cfg::block(BlockId id) const {
  AIS_CHECK(id >= 0 && id < static_cast<BlockId>(prog_.blocks.size()),
            "block id out of range");
  return prog_.blocks[static_cast<std::size_t>(id)];
}

BlockId Cfg::find_label(const std::string& label) const {
  for (BlockId id = 0; id < static_cast<BlockId>(prog_.blocks.size()); ++id) {
    if (prog_.blocks[static_cast<std::size_t>(id)].label == label) return id;
  }
  return kNoBlock;
}

std::vector<CfgEdge> Cfg::out_edges(BlockId id) const {
  std::vector<CfgEdge> out;
  for (const CfgEdge& e : edges_) {
    if (e.from == id) out.push_back(e);
  }
  return out;
}

std::vector<CfgEdge> Cfg::in_edges(BlockId id) const {
  std::vector<CfgEdge> in;
  for (const CfgEdge& e : edges_) {
    if (e.to == id) in.push_back(e);
  }
  return in;
}

void Cfg::set_branch_probability(BlockId id, double taken_probability) {
  AIS_CHECK(id >= 0 && id < static_cast<BlockId>(prog_.blocks.size()),
            "block id out of range");
  AIS_CHECK(taken_probability >= 0 && taken_probability <= 1,
            "probability out of range");
  AIS_CHECK(!std::isnan(taken_probability_[static_cast<std::size_t>(id)]),
            "block has no conditional branch");
  taken_probability_[static_cast<std::size_t>(id)] = taken_probability;
  recompute_weights();
}

double Cfg::block_weight(BlockId id) const {
  double w = (id == 0) ? entry_weight_ : 0;
  for (const CfgEdge& e : edges_) {
    if (e.to == id) w += e.weight;
  }
  return w;
}

void Cfg::recompute_weights() {
  // Forward-only propagation: weights flow along forward edges in block
  // order; back edges receive weight but do not re-inject it (keeps the
  // estimate finite for loops — relative magnitudes are all the trace
  // selector needs).
  std::vector<double> in_weight(prog_.blocks.size(), 0);
  in_weight[0] = entry_weight_;
  for (BlockId id = 0; id < static_cast<BlockId>(prog_.blocks.size()); ++id) {
    const double w = in_weight[static_cast<std::size_t>(id)];
    std::vector<std::size_t> out_idx;
    for (std::size_t k = 0; k < edges_.size(); ++k) {
      if (edges_[k].from == id) out_idx.push_back(k);
    }
    const double p = taken_probability_[static_cast<std::size_t>(id)];
    for (const std::size_t k : out_idx) {
      CfgEdge& e = edges_[k];
      double share = 1.0;
      if (out_idx.size() > 1) {
        AIS_CHECK(!std::isnan(p), "multiple successors need a conditional");
        share = e.taken ? p : 1.0 - p;
      }
      e.weight = w * share;
      if (e.to > id) in_weight[static_cast<std::size_t>(e.to)] += e.weight;
    }
  }
}

}  // namespace ais
