#include "cfg/cfg.hpp"

#include <cmath>
#include <cstdint>
#include <limits>

#include "support/assert.hpp"

namespace ais {

Cfg::Cfg(const Program& prog, double entry_weight)
    : prog_(prog),
      taken_probability_(prog.blocks.size(),
                         std::numeric_limits<double>::quiet_NaN()),
      entry_weight_(entry_weight) {
  AIS_CHECK(!prog_.blocks.empty(), "CFG needs at least one block");
  label_index_.reserve(prog_.blocks.size());
  for (BlockId id = 0; id < static_cast<BlockId>(prog_.blocks.size()); ++id) {
    // First definition wins, matching the original linear search.
    label_index_.emplace(prog_.blocks[static_cast<std::size_t>(id)].label, id);
  }
  for (BlockId id = 0; id < static_cast<BlockId>(prog_.blocks.size()); ++id) {
    const BasicBlock& bb = prog_.blocks[static_cast<std::size_t>(id)];
    const Instruction* last = bb.insts.empty() ? nullptr : &bb.insts.back();
    const bool has_branch = last != nullptr && last->is_branch();
    const bool conditional =
        has_branch && (last->op == Opcode::kBt || last->op == Opcode::kBf);

    if (has_branch) {
      const BlockId target = find_label(last->target);
      if (target != kNoBlock) {
        edges_.push_back(CfgEdge{id, target, 0, /*taken=*/true});
      }
    }
    const bool falls_through =
        (!has_branch || conditional) &&
        id + 1 < static_cast<BlockId>(prog_.blocks.size());
    if (falls_through) {
      edges_.push_back(CfgEdge{id, id + 1, 0, /*taken=*/false});
    }
    if (conditional) taken_probability_[static_cast<std::size_t>(id)] = 0.5;
  }
  build_edge_index();
  recompute_weights();
}

void Cfg::build_edge_index() {
  const std::size_t n = prog_.blocks.size();
  out_begin_.assign(n + 1, 0);
  in_begin_.assign(n + 1, 0);
  for (const CfgEdge& e : edges_) {
    ++out_begin_[static_cast<std::size_t>(e.from) + 1];
    ++in_begin_[static_cast<std::size_t>(e.to) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    out_begin_[i + 1] += out_begin_[i];
    in_begin_[i + 1] += in_begin_[i];
  }
  out_idx_.resize(edges_.size());
  in_idx_.resize(edges_.size());
  std::vector<std::uint32_t> out_fill(out_begin_.begin(), out_begin_.end() - 1);
  std::vector<std::uint32_t> in_fill(in_begin_.begin(), in_begin_.end() - 1);
  for (std::uint32_t k = 0; k < static_cast<std::uint32_t>(edges_.size());
       ++k) {
    out_idx_[out_fill[static_cast<std::size_t>(edges_[k].from)]++] = k;
    in_idx_[in_fill[static_cast<std::size_t>(edges_[k].to)]++] = k;
  }
}

const BasicBlock& Cfg::block(BlockId id) const {
  AIS_CHECK(id >= 0 && id < static_cast<BlockId>(prog_.blocks.size()),
            "block id out of range");
  return prog_.blocks[static_cast<std::size_t>(id)];
}

BlockId Cfg::find_label(const std::string& label) const {
  const auto it = label_index_.find(label);
  return it == label_index_.end() ? kNoBlock : it->second;
}

std::vector<CfgEdge> Cfg::out_edges(BlockId id) const {
  AIS_CHECK(id >= 0 && id < static_cast<BlockId>(prog_.blocks.size()),
            "block id out of range");
  std::vector<CfgEdge> out;
  const std::size_t i = static_cast<std::size_t>(id);
  out.reserve(out_begin_[i + 1] - out_begin_[i]);
  for (std::uint32_t k = out_begin_[i]; k < out_begin_[i + 1]; ++k) {
    out.push_back(edges_[out_idx_[k]]);
  }
  return out;
}

std::vector<CfgEdge> Cfg::in_edges(BlockId id) const {
  AIS_CHECK(id >= 0 && id < static_cast<BlockId>(prog_.blocks.size()),
            "block id out of range");
  std::vector<CfgEdge> in;
  const std::size_t i = static_cast<std::size_t>(id);
  in.reserve(in_begin_[i + 1] - in_begin_[i]);
  for (std::uint32_t k = in_begin_[i]; k < in_begin_[i + 1]; ++k) {
    in.push_back(edges_[in_idx_[k]]);
  }
  return in;
}

void Cfg::set_branch_probability(BlockId id, double taken_probability) {
  AIS_CHECK(id >= 0 && id < static_cast<BlockId>(prog_.blocks.size()),
            "block id out of range");
  AIS_CHECK(taken_probability >= 0 && taken_probability <= 1,
            "probability out of range");
  AIS_CHECK(!std::isnan(taken_probability_[static_cast<std::size_t>(id)]),
            "block has no conditional branch");
  taken_probability_[static_cast<std::size_t>(id)] = taken_probability;
  recompute_weights();
}

double Cfg::block_weight(BlockId id) const {
  AIS_CHECK(id >= 0 && id < static_cast<BlockId>(prog_.blocks.size()),
            "block id out of range");
  return block_weight_[static_cast<std::size_t>(id)];
}

void Cfg::recompute_weights() {
  // Forward-only propagation: weights flow along forward edges in block
  // order; back edges receive weight but do not re-inject it (keeps the
  // estimate finite for loops — relative magnitudes are all the trace
  // selector needs).
  std::vector<double> in_weight(prog_.blocks.size(), 0);
  in_weight[0] = entry_weight_;
  for (BlockId id = 0; id < static_cast<BlockId>(prog_.blocks.size()); ++id) {
    const std::size_t i = static_cast<std::size_t>(id);
    const double w = in_weight[i];
    const std::uint32_t deg = out_begin_[i + 1] - out_begin_[i];
    const double p = taken_probability_[i];
    for (std::uint32_t k = out_begin_[i]; k < out_begin_[i + 1]; ++k) {
      CfgEdge& e = edges_[out_idx_[k]];
      double share = 1.0;
      if (deg > 1) {
        AIS_CHECK(!std::isnan(p), "multiple successors need a conditional");
        share = e.taken ? p : 1.0 - p;
      }
      e.weight = w * share;
      if (e.to > id) in_weight[static_cast<std::size_t>(e.to)] += e.weight;
    }
  }
  // Cache the per-block entry weight: entry weight for block 0 plus every
  // incoming edge, back edges included — the same sum the old O(E)
  // block_weight() scan produced, now one pass for all blocks.
  block_weight_.assign(prog_.blocks.size(), 0);
  block_weight_[0] = entry_weight_;
  for (const CfgEdge& e : edges_) {
    block_weight_[static_cast<std::size_t>(e.to)] += e.weight;
  }
}

}  // namespace ais
