// Control-flow graph over toy-IR programs, with edge execution profiles.
//
// The paper's unit of work is a *trace*: "a sequence of basic blocks
// obtained by following a simple path in the program's control flow graph"
// (footnote 2), selected by profiling as in Fisher's trace scheduling (§6).
// This module builds the CFG from a Program and carries the profile the
// trace selector consumes.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ir/asm_parser.hpp"
#include "ir/instruction.hpp"

namespace ais {

using BlockId = int;
inline constexpr BlockId kNoBlock = -1;

struct CfgEdge {
  BlockId from = kNoBlock;
  BlockId to = kNoBlock;
  /// Execution frequency (profile weight); defaults split conditional
  /// branches 50/50 until a profile is applied.
  double weight = 0;
  /// True for the branch-taken edge, false for fall-through.
  bool taken = false;
};

class Cfg {
 public:
  /// Builds the CFG of `prog`:
  ///  * a conditional branch adds a taken edge to its target label and a
  ///    fall-through edge to the next block,
  ///  * an unconditional branch adds only the taken edge,
  ///  * a block without a branch falls through.
  /// Entry is block 0 with weight `entry_weight`; edge weights propagate by
  /// splitting each block's weight across its successors (50/50 for
  /// conditionals) until overridden by set_branch_probability.
  explicit Cfg(const Program& prog, double entry_weight = 100.0);

  std::size_t num_blocks() const { return prog_.blocks.size(); }
  const BasicBlock& block(BlockId id) const;
  const Program& program() const { return prog_; }

  /// O(1) via the label index built at construction.
  BlockId find_label(const std::string& label) const;

  const std::vector<CfgEdge>& edges() const { return edges_; }
  std::vector<CfgEdge> out_edges(BlockId id) const;
  std::vector<CfgEdge> in_edges(BlockId id) const;

  /// Sets the probability of taking block `id`'s conditional branch and
  /// recomputes all edge weights by propagation from the entry.
  void set_branch_probability(BlockId id, double taken_probability);

  /// Total profile weight entering `id`; O(1) (cached whenever edge weights
  /// are recomputed).
  double block_weight(BlockId id) const;

 private:
  void build_edge_index();
  void recompute_weights();

  Program prog_;
  std::vector<CfgEdge> edges_;
  std::vector<double> taken_probability_;  // per block; NaN = no conditional
  double entry_weight_;

  // Structure indexes, built once (edge *structure* is fixed after
  // construction; only weights change).  The CSR arrays make per-block edge
  // queries O(degree) and keep trace selection linear — a million-block
  // corpus never survives the O(V * E) scans they replace.
  std::unordered_map<std::string, BlockId> label_index_;
  std::vector<std::uint32_t> out_begin_, out_idx_;  // CSR into edges_
  std::vector<std::uint32_t> in_begin_, in_idx_;
  std::vector<double> block_weight_;  // cached block_weight() per block
};

}  // namespace ais
