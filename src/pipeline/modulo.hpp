// Software pipelining: iterative modulo scheduling (Rau-style, simplified).
//
// The paper positions anticipatory instruction scheduling as a *post-pass*
// to software pipelining (§2.4): the Fig. 3 loop was already
// software-pipelined (the store belongs to the previous iteration) and AIS
// then picks the kernel order that sustains the initiation interval on the
// lookahead machine.  This module supplies the missing front half:
//
//   * MII bounds: resource MII (unit occupancy per FU class, issue width)
//     and recurrence MII (smallest II with no positive cycle in the
//     II-adjusted constraint graph, via Bellman-Ford),
//   * iterative modulo scheduling with a modulo reservation table and
//     eviction-based backtracking,
//   * the *kernel graph*: the scheduled loop re-expressed as a new
//     single-block loop whose <latency, distance> edges are in kernel
//     (stage-adjusted) iteration space — ready for §5.2.3 post-scheduling
//     and for the loop simulator.
#pragma once

#include <vector>

#include "graph/depgraph.hpp"
#include "machine/machine_model.hpp"

namespace ais {

struct ModuloScheduleOptions {
  /// Highest II tried is MII + max_ii_slack.
  int max_ii_slack = 48;
  /// Scheduling operations budget per II attempt, as a multiple of n.
  int budget_factor = 16;
};

struct ModuloSchedule {
  bool found = false;
  /// Initiation interval achieved.
  int ii = 0;
  /// Absolute start time per node; stage = start / ii, slot = start % ii.
  std::vector<Time> start;
  /// Kernel emission order: nodes by (slot, stage, id).
  std::vector<NodeId> kernel_order;

  int stage(NodeId id) const { return static_cast<int>(start[id] / ii); }
  int slot(NodeId id) const { return static_cast<int>(start[id] % ii); }
  /// Number of pipeline stages (depth of the prolog/epilog).
  int num_stages() const;
};

/// ceil(per-class occupancy / units), also bounded by issue width.
int resource_mii(const DepGraph& g, const MachineModel& machine);

/// Smallest II such that the constraint graph (edge weight
/// exec(u) + latency - II * distance) has no positive cycle.
int recurrence_mii(const DepGraph& g);

/// Schedules the loop graph `g`; returns found = false if no schedule
/// exists within the II / budget limits.
ModuloSchedule modulo_schedule(const DepGraph& g, const MachineModel& machine,
                               const ModuloScheduleOptions& opts = {});

/// Rebuilds `g` in kernel iteration space: node k of the result is
/// schedule.kernel_order[k]'s instruction, and each original edge
/// (u, v, lat, dist) becomes (u, v, lat, stage(v) - stage(u) + dist).
/// The result is a valid loop graph (acyclic loop-independent subgraph)
/// whose per-iteration work equals the kernel; feeding its natural order to
/// the loop simulator measures the pipeline's real steady state, and
/// §5.2.3 over it realizes "AIS as a post-pass to software pipelining".
DepGraph kernel_graph(const DepGraph& g, const ModuloSchedule& schedule,
                      std::vector<NodeId>* kernel_to_original = nullptr);

}  // namespace ais
