#include "pipeline/modulo.hpp"

#include <algorithm>
#include <tuple>

#include "graph/critpath.hpp"
#include "graph/nodeset.hpp"
#include "support/assert.hpp"

namespace ais {
namespace {

/// True iff the II-adjusted constraint graph has a positive cycle
/// (Bellman-Ford longest-path relaxation fails to settle).
bool has_positive_cycle(const DepGraph& g, int ii) {
  std::vector<Time> dist(g.num_nodes(), 0);
  for (std::size_t round = 0; round <= g.num_nodes(); ++round) {
    bool relaxed = false;
    for (const DepEdge& e : g.edges()) {
      const Time w = g.node(e.from).exec_time + e.latency -
                     static_cast<Time>(ii) * e.distance;
      if (dist[e.from] + w > dist[e.to]) {
        dist[e.to] = dist[e.from] + w;
        relaxed = true;
      }
    }
    if (!relaxed) return false;
  }
  return true;
}

/// Modulo reservation table: per FU class and slot-in-II, the occupancy.
class ReservationTable {
 public:
  ReservationTable(const MachineModel& machine, int ii)
      : machine_(machine),
        ii_(ii),
        class_use_(static_cast<std::size_t>(machine.num_fu_classes()),
                   std::vector<int>(static_cast<std::size_t>(ii), 0)),
        issue_use_(static_cast<std::size_t>(ii), 0) {}

  /// A node starting at `t` occupies its class for exec_time consecutive
  /// slots (mod II) and one issue slot at t mod II.
  bool fits(const NodeInfo& n, Time t) const {
    const int base = static_cast<int>(((t % ii_) + ii_) % ii_);
    if (issue_use_[static_cast<std::size_t>(base)] >=
        machine_.issue_width()) {
      return false;
    }
    for (int k = 0; k < n.exec_time; ++k) {
      const int slot = (base + k) % ii_;
      if (class_use_[static_cast<std::size_t>(n.fu_class)]
                    [static_cast<std::size_t>(slot)] >=
          machine_.fu_count(n.fu_class)) {
        return false;
      }
    }
    return true;
  }

  void add(const NodeInfo& n, Time t) { bump(n, t, +1); }
  void remove(const NodeInfo& n, Time t) { bump(n, t, -1); }

 private:
  void bump(const NodeInfo& n, Time t, int delta) {
    const int base = static_cast<int>(((t % ii_) + ii_) % ii_);
    issue_use_[static_cast<std::size_t>(base)] += delta;
    for (int k = 0; k < n.exec_time; ++k) {
      const int slot = (base + k) % ii_;
      class_use_[static_cast<std::size_t>(n.fu_class)]
                [static_cast<std::size_t>(slot)] += delta;
    }
  }

  const MachineModel& machine_;
  int ii_;
  std::vector<std::vector<int>> class_use_;
  std::vector<int> issue_use_;
};

/// One iterative-modulo-scheduling attempt at a fixed II.
bool try_ii(const DepGraph& g, const MachineModel& machine, int ii,
            int budget, std::vector<Time>* out_start) {
  const std::size_t n = g.num_nodes();
  // Height-based priority: critical path over the loop-independent
  // subgraph, descending.
  const auto height = critical_path_lengths(g, NodeSet::all(n));
  std::vector<NodeId> priority(n);
  for (NodeId id = 0; id < n; ++id) priority[id] = id;
  std::sort(priority.begin(), priority.end(), [&height](NodeId a, NodeId b) {
    return std::tie(height[b], a) < std::tie(height[a], b);
  });

  std::vector<Time> start(n, -1);
  std::vector<Time> never_before(n, 0);  // monotone restart floor (Rau)
  ReservationTable table(machine, ii);

  // Work stack seeded in priority order (stack => LIFO re-schedule of
  // evicted ops, as in iterative modulo scheduling).
  std::vector<NodeId> work(priority.rbegin(), priority.rend());

  int ops = 0;
  while (!work.empty()) {
    if (++ops > budget) return false;
    const NodeId u = work.back();
    work.pop_back();

    // Earliest start from *scheduled* predecessors.
    Time est = never_before[u];
    for (const auto eidx : g.in_edges(u)) {
      const DepEdge& e = g.edge(eidx);
      if (e.from == u || start[e.from] < 0) continue;
      est = std::max(est, start[e.from] + g.node(e.from).exec_time +
                              e.latency - static_cast<Time>(ii) * e.distance);
    }
    est = std::max<Time>(est, 0);

    // First resource-free slot in [est, est + ii).
    Time chosen = -1;
    for (Time t = est; t < est + ii; ++t) {
      if (table.fits(g.node(u), t)) {
        chosen = t;
        break;
      }
    }
    if (chosen < 0) chosen = est;  // force placement; evict the conflicts

    // Evict potential resource conflicts at the chosen slot until u fits.
    if (!table.fits(g.node(u), chosen)) {
      for (NodeId v = 0; v < n && !table.fits(g.node(u), chosen); ++v) {
        if (v == u || start[v] < 0) continue;
        const bool same_class = g.node(v).fu_class == g.node(u).fu_class;
        const bool same_issue = ((start[v] % ii) + ii) % ii ==
                                ((chosen % ii) + ii) % ii;
        if (!same_class && !same_issue) continue;
        table.remove(g.node(v), start[v]);
        start[v] = -1;
        work.push_back(v);
      }
      if (!table.fits(g.node(u), chosen)) return false;
    }

    start[u] = chosen;
    never_before[u] = chosen + 1;
    table.add(g.node(u), chosen);

    // Evict successors whose dependence constraint is now violated (they
    // will be re-scheduled later from the stack).
    for (const auto eidx : g.out_edges(u)) {
      const DepEdge& e = g.edge(eidx);
      if (e.to == u || start[e.to] < 0) continue;
      const Time need = chosen + g.node(u).exec_time + e.latency -
                        static_cast<Time>(ii) * e.distance;
      if (start[e.to] < need) {
        table.remove(g.node(e.to), start[e.to]);
        start[e.to] = -1;
        work.push_back(e.to);
      }
    }
  }

  // Normalize so the earliest start is stage 0.
  Time min_start = *std::min_element(start.begin(), start.end());
  const Time base = (min_start / ii) * ii - (min_start % ii < 0 ? ii : 0);
  for (Time& t : start) t -= base;

  // Final verification: every constraint holds.
  for (const DepEdge& e : g.edges()) {
    if (start[e.to] < start[e.from] + g.node(e.from).exec_time + e.latency -
                          static_cast<Time>(ii) * e.distance) {
      return false;
    }
  }
  *out_start = std::move(start);
  return true;
}

}  // namespace

int ModuloSchedule::num_stages() const {
  int stages = 1;
  for (std::size_t id = 0; id < start.size(); ++id) {
    stages = std::max(stages, stage(static_cast<NodeId>(id)) + 1);
  }
  return stages;
}

int resource_mii(const DepGraph& g, const MachineModel& machine) {
  std::vector<Time> class_work(
      static_cast<std::size_t>(machine.num_fu_classes()), 0);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    class_work[static_cast<std::size_t>(g.node(id).fu_class)] +=
        g.node(id).exec_time;
  }
  Time mii = (static_cast<Time>(g.num_nodes()) + machine.issue_width() - 1) /
             machine.issue_width();
  for (int c = 0; c < machine.num_fu_classes(); ++c) {
    const Time units = machine.fu_count(c);
    mii = std::max(mii, (class_work[static_cast<std::size_t>(c)] + units - 1) /
                            units);
  }
  return static_cast<int>(std::max<Time>(mii, 1));
}

int recurrence_mii(const DepGraph& g) {
  // Upper bound: any cycle's latency sum with distance >= 1.
  int hi = 1;
  for (const DepEdge& e : g.edges()) hi += g.node(e.from).exec_time + e.latency;
  int lo = 1;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (has_positive_cycle(g, mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

ModuloSchedule modulo_schedule(const DepGraph& g, const MachineModel& machine,
                               const ModuloScheduleOptions& opts) {
  ModuloSchedule result;
  if (g.num_nodes() == 0) return result;
  const int mii = std::max(resource_mii(g, machine), recurrence_mii(g));
  const int budget =
      opts.budget_factor * static_cast<int>(g.num_nodes()) + 16;

  for (int ii = mii; ii <= mii + opts.max_ii_slack; ++ii) {
    std::vector<Time> start;
    if (!try_ii(g, machine, ii, budget, &start)) continue;
    result.found = true;
    result.ii = ii;
    result.start = std::move(start);
    result.kernel_order.resize(g.num_nodes());
    for (NodeId id = 0; id < g.num_nodes(); ++id) {
      result.kernel_order[id] = id;
    }
    std::sort(result.kernel_order.begin(), result.kernel_order.end(),
              [&result](NodeId a, NodeId b) {
                return std::make_tuple(result.slot(a), result.stage(a), a) <
                       std::make_tuple(result.slot(b), result.stage(b), b);
              });
    return result;
  }
  return result;
}

DepGraph kernel_graph(const DepGraph& g, const ModuloSchedule& schedule,
                      std::vector<NodeId>* kernel_to_original) {
  AIS_CHECK(schedule.found, "kernel graph needs a successful schedule");
  DepGraph out;
  std::vector<NodeId> new_id(g.num_nodes(), kInvalidNode);
  for (const NodeId id : schedule.kernel_order) {
    const NodeInfo& n = g.node(id);
    new_id[id] = out.add_node(n.name, n.exec_time, n.fu_class, n.block);
  }
  for (const DepEdge& e : g.edges()) {
    const int d = schedule.stage(e.to) - schedule.stage(e.from) + e.distance;
    AIS_CHECK(d >= 0, "kernel-space distance must be nonnegative");
    if (d == 0 && new_id[e.from] == new_id[e.to]) continue;
    out.add_edge(new_id[e.from], new_id[e.to], e.latency, d);
  }
  if (kernel_to_original != nullptr) {
    *kernel_to_original = schedule.kernel_order;
  }
  return out;
}

}  // namespace ais
