// A subset of a DepGraph's nodes.
//
// Algorithm Lookahead repeatedly schedules subsets ("old" suffix nodes plus
// the "new" block), so every scheduling routine takes a NodeSet view rather
// than copying subgraphs.
#pragma once

#include <vector>

#include "graph/depgraph.hpp"
#include "support/bitset.hpp"

namespace ais {

class NodeSet {
 public:
  /// Empty set over a domain of `domain_size` node ids.
  explicit NodeSet(std::size_t domain_size);

  /// Set containing exactly `ids` (duplicates collapse).
  NodeSet(std::size_t domain_size, const std::vector<NodeId>& ids);

  /// The full domain [0, domain_size).
  static NodeSet all(std::size_t domain_size);

  void insert(NodeId id);
  void erase(NodeId id);
  bool contains(NodeId id) const { return bits_.test(id); }
  std::size_t size() const { return bits_.count(); }
  bool empty() const { return bits_.none(); }
  std::size_t domain_size() const { return bits_.size(); }

  NodeSet& operator|=(const NodeSet& other);

  bool operator==(const NodeSet& other) const = default;

  /// Member ids in ascending order.
  std::vector<NodeId> ids() const;

  const DynamicBitset& bits() const { return bits_; }

 private:
  DynamicBitset bits_;
};

/// Union of two sets over the same domain.
NodeSet set_union(const NodeSet& a, const NodeSet& b);

}  // namespace ais
