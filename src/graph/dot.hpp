// Graphviz DOT export for debugging and documentation.
#pragma once

#include <string>

#include "graph/depgraph.hpp"

namespace ais {

/// Renders the whole graph.  Loop-carried edges are dashed and annotated
/// with their <latency, distance> label; loop-independent edges show just
/// the latency.
std::string to_dot(const DepGraph& g, const std::string& title = "depgraph");

}  // namespace ais
