// Critical-path (longest-path) metrics over the loop-independent subgraph.
//
// Used as (a) the priority function of the classic list-scheduling baseline
// and (b) a lower bound on makespan for sanity checks.
#pragma once

#include <vector>

#include "graph/depgraph.hpp"
#include "graph/nodeset.hpp"

namespace ais {

/// For each active node, the length of the longest latency-weighted path
/// from that node to any sink, *including* the node's own execution time.
/// Entries for non-active nodes are 0.
std::vector<Time> critical_path_lengths(const DepGraph& g,
                                        const NodeSet& active);

/// Longest path length over the whole active set: a makespan lower bound.
Time critical_path(const DepGraph& g, const NodeSet& active);

}  // namespace ais
