#include "graph/critpath.hpp"

#include <algorithm>

#include "graph/topo.hpp"
#include "support/assert.hpp"

namespace ais {

std::vector<Time> critical_path_lengths(const DepGraph& g,
                                        const NodeSet& active) {
  const auto order = topo_order(g, active);
  AIS_CHECK(order.has_value(), "critical path requires an acyclic subgraph");
  std::vector<Time> len(g.num_nodes(), 0);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId id = *it;
    Time best = 0;
    for (const auto eidx : g.out_edges(id)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance != 0 || !active.contains(e.to)) continue;
      best = std::max(best, static_cast<Time>(e.latency) + len[e.to]);
    }
    len[id] = best + g.node(id).exec_time;
  }
  return len;
}

Time critical_path(const DepGraph& g, const NodeSet& active) {
  const auto len = critical_path_lengths(g, active);
  Time best = 0;
  for (const NodeId id : active.ids()) best = std::max(best, len[id]);
  return best;
}

}  // namespace ais
