#include "graph/depgraph.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ais {

NodeId DepGraph::add_node(std::string name, int exec_time, int fu_class,
                          int block) {
  AIS_CHECK(exec_time >= 1, "exec_time must be positive");
  AIS_CHECK(fu_class >= 0, "fu_class must be nonnegative");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeInfo{std::move(name), exec_time, fu_class, block});
  out_.emplace_back();
  in_.emplace_back();
  max_exec_time_ = std::max(max_exec_time_, exec_time);
  total_work_ += exec_time;
  return id;
}

void DepGraph::add_edge(NodeId from, NodeId to, int latency, int distance) {
  AIS_CHECK(from < nodes_.size() && to < nodes_.size(),
            "edge endpoint out of range");
  AIS_CHECK(latency >= 0, "latency must be nonnegative");
  AIS_CHECK(distance >= 0, "distance must be nonnegative");
  AIS_CHECK(from != to || distance > 0,
            "loop-independent self-dependence is a cycle");
  const auto idx = static_cast<std::uint32_t>(edges_.size());
  edges_.push_back(DepEdge{from, to, latency, distance});
  out_[from].push_back(idx);
  in_[to].push_back(idx);
  if (distance > 0) ++carried_edge_count_;
  max_latency_ = std::max(max_latency_, latency);
}

const NodeInfo& DepGraph::node(NodeId id) const {
  AIS_CHECK(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

NodeInfo& DepGraph::node(NodeId id) {
  AIS_CHECK(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

const DepEdge& DepGraph::edge(std::size_t idx) const {
  AIS_CHECK(idx < edges_.size(), "edge index out of range");
  return edges_[idx];
}

const std::vector<std::uint32_t>& DepGraph::out_edges(NodeId id) const {
  AIS_CHECK(id < nodes_.size(), "node id out of range");
  return out_[id];
}

const std::vector<std::uint32_t>& DepGraph::in_edges(NodeId id) const {
  AIS_CHECK(id < nodes_.size(), "node id out of range");
  return in_[id];
}

NodeId DepGraph::find(const std::string& name) const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].name == name) return id;
  }
  return kInvalidNode;
}

}  // namespace ais
