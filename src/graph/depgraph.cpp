#include "graph/depgraph.hpp"

#include <algorithm>
#include <cstring>
#include <functional>
#include <ostream>
#include <utility>

#include "support/assert.hpp"

namespace ais {

std::ostream& operator<<(std::ostream& os, NameRef n) {
  return os << n.view();
}

DepGraph::DepGraph(const DepGraph& other)
    : exec_time_(other.exec_time_),
      fu_class_(other.fu_class_),
      block_(other.block_),
      edges_(other.edges_),
      out_(other.num_nodes()),
      in_(other.num_nodes()),
      carried_edge_count_(other.carried_edge_count_),
      max_latency_(other.max_latency_),
      max_exec_time_(other.max_exec_time_),
      total_work_(other.total_work_) {
  // Re-intern in id order so duplicate names keep resolving to the first id.
  names_.reserve(other.names_.size());
  for (NodeId id = 0; id < other.names_.size(); ++id) {
    names_.push_back(intern(other.names_[id].view(), id));
  }
  for (std::uint32_t idx = 0; idx < edges_.size(); ++idx) {
    adj_push(out_[edges_[idx].from], idx);
    adj_push(in_[edges_[idx].to], idx);
  }
}

DepGraph& DepGraph::operator=(const DepGraph& other) {
  if (this != &other) {
    DepGraph copy(other);
    *this = std::move(copy);
  }
  return *this;
}

void DepGraph::adj_push(AdjList& adj, std::uint32_t edge_idx) {
  if (adj.size == adj.cap) {
    const std::uint32_t new_cap = adj.cap == 0 ? 4 : 2 * adj.cap;
    auto* grown = adj_arena_.alloc_array<std::uint32_t>(new_cap);
    if (adj.size > 0) {
      std::memcpy(grown, adj.data, adj.size * sizeof(std::uint32_t));
    }
    adj.data = grown;
    adj.cap = new_cap;
  }
  adj.data[adj.size++] = edge_idx;
}

void DepGraph::index_insert(std::uint32_t slot_count, NodeId id) {
  const std::uint64_t mask = slot_count - 1;
  std::uint64_t slot = std::hash<std::string_view>{}(names_[id].view()) & mask;
  while (index_slots_[slot] != kInvalidNode) slot = (slot + 1) & mask;
  index_slots_[slot] = id;
}

void DepGraph::index_grow() {
  const auto new_count =
      static_cast<std::uint32_t>(index_slots_.empty() ? 16
                                                      : 2 * index_slots_.size());
  std::vector<NodeId> old = std::move(index_slots_);
  index_slots_.assign(new_count, kInvalidNode);
  for (const NodeId id : old) {
    if (id != kInvalidNode) index_insert(new_count, id);
  }
}

NameRef DepGraph::intern(std::string_view name, NodeId id) {
  if (2 * (index_used_ + 1) > index_slots_.size()) index_grow();
  const std::uint64_t mask = index_slots_.size() - 1;
  std::uint64_t slot = std::hash<std::string_view>{}(name) & mask;
  while (index_slots_[slot] != kInvalidNode) {
    const NodeId first = index_slots_[slot];
    if (names_[first].view() == name) return names_[first];  // first id wins
    slot = (slot + 1) & mask;
  }
  char* bytes = name_pool_.alloc_array<char>(name.size() + 1);
  std::memcpy(bytes, name.data(), name.size());
  bytes[name.size()] = '\0';
  index_slots_[slot] = id;
  ++index_used_;
  return NameRef(bytes, static_cast<std::uint32_t>(name.size()));
}

NodeId DepGraph::add_node(std::string_view name, int exec_time, int fu_class,
                          int block) {
  AIS_CHECK(exec_time >= 1, "exec_time must be positive");
  AIS_CHECK(fu_class >= 0, "fu_class must be nonnegative");
  const NodeId id = static_cast<NodeId>(exec_time_.size());
  names_.push_back(intern(name, id));
  exec_time_.push_back(exec_time);
  fu_class_.push_back(fu_class);
  block_.push_back(block);
  out_.emplace_back();
  in_.emplace_back();
  max_exec_time_ = std::max(max_exec_time_, exec_time);
  total_work_ += exec_time;
  return id;
}

void DepGraph::add_edge(NodeId from, NodeId to, int latency, int distance) {
  AIS_CHECK(from < num_nodes() && to < num_nodes(),
            "edge endpoint out of range");
  AIS_CHECK(latency >= 0, "latency must be nonnegative");
  AIS_CHECK(distance >= 0, "distance must be nonnegative");
  AIS_CHECK(from != to || distance > 0,
            "loop-independent self-dependence is a cycle");
  const auto idx = static_cast<std::uint32_t>(edges_.size());
  edges_.push_back(DepEdge{from, to, latency, distance});
  adj_push(out_[from], idx);
  adj_push(in_[to], idx);
  if (distance > 0) ++carried_edge_count_;
  max_latency_ = std::max(max_latency_, latency);
}

void DepGraph::reserve(std::size_t nodes, std::size_t edges) {
  exec_time_.reserve(nodes);
  fu_class_.reserve(nodes);
  block_.reserve(nodes);
  names_.reserve(nodes);
  out_.reserve(nodes);
  in_.reserve(nodes);
  if (edges > 0) edges_.reserve(edges);
}

NodeId DepGraph::find(std::string_view name) const {
  if (index_slots_.empty()) return kInvalidNode;
  const std::uint64_t mask = index_slots_.size() - 1;
  std::uint64_t slot = std::hash<std::string_view>{}(name) & mask;
  while (index_slots_[slot] != kInvalidNode) {
    const NodeId first = index_slots_[slot];
    if (names_[first].view() == name) return first;
    slot = (slot + 1) & mask;
  }
  return kInvalidNode;
}

std::size_t DepGraph::arena_bytes_reserved() const {
  return adj_arena_.bytes_reserved() + name_pool_.bytes_reserved();
}

}  // namespace ais
