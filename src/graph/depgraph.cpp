#include "graph/depgraph.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "support/assert.hpp"

namespace ais {

DepGraph::DepGraph(const DepGraph& other)
    : nodes_(other.nodes_),
      edges_(other.edges_),
      out_(other.nodes_.size()),
      in_(other.nodes_.size()),
      carried_edge_count_(other.carried_edge_count_),
      max_latency_(other.max_latency_),
      max_exec_time_(other.max_exec_time_),
      total_work_(other.total_work_) {
  for (std::uint32_t idx = 0; idx < edges_.size(); ++idx) {
    adj_push(out_[edges_[idx].from], idx);
    adj_push(in_[edges_[idx].to], idx);
  }
}

DepGraph& DepGraph::operator=(const DepGraph& other) {
  if (this != &other) {
    DepGraph copy(other);
    *this = std::move(copy);
  }
  return *this;
}

void DepGraph::adj_push(AdjList& adj, std::uint32_t edge_idx) {
  if (adj.size == adj.cap) {
    const std::uint32_t new_cap = adj.cap == 0 ? 4 : 2 * adj.cap;
    auto* grown = adj_arena_.alloc_array<std::uint32_t>(new_cap);
    if (adj.size > 0) {
      std::memcpy(grown, adj.data, adj.size * sizeof(std::uint32_t));
    }
    adj.data = grown;
    adj.cap = new_cap;
  }
  adj.data[adj.size++] = edge_idx;
}

NodeId DepGraph::add_node(std::string name, int exec_time, int fu_class,
                          int block) {
  AIS_CHECK(exec_time >= 1, "exec_time must be positive");
  AIS_CHECK(fu_class >= 0, "fu_class must be nonnegative");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeInfo{std::move(name), exec_time, fu_class, block});
  out_.emplace_back();
  in_.emplace_back();
  max_exec_time_ = std::max(max_exec_time_, exec_time);
  total_work_ += exec_time;
  return id;
}

void DepGraph::add_edge(NodeId from, NodeId to, int latency, int distance) {
  AIS_CHECK(from < nodes_.size() && to < nodes_.size(),
            "edge endpoint out of range");
  AIS_CHECK(latency >= 0, "latency must be nonnegative");
  AIS_CHECK(distance >= 0, "distance must be nonnegative");
  AIS_CHECK(from != to || distance > 0,
            "loop-independent self-dependence is a cycle");
  const auto idx = static_cast<std::uint32_t>(edges_.size());
  edges_.push_back(DepEdge{from, to, latency, distance});
  adj_push(out_[from], idx);
  adj_push(in_[to], idx);
  if (distance > 0) ++carried_edge_count_;
  max_latency_ = std::max(max_latency_, latency);
}

const NodeInfo& DepGraph::node(NodeId id) const {
  AIS_CHECK(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

NodeInfo& DepGraph::node(NodeId id) {
  AIS_CHECK(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

const DepEdge& DepGraph::edge(std::size_t idx) const {
  AIS_CHECK(idx < edges_.size(), "edge index out of range");
  return edges_[idx];
}

std::span<const std::uint32_t> DepGraph::out_edges(NodeId id) const {
  AIS_CHECK(id < nodes_.size(), "node id out of range");
  return {out_[id].data, out_[id].size};
}

std::span<const std::uint32_t> DepGraph::in_edges(NodeId id) const {
  AIS_CHECK(id < nodes_.size(), "node id out of range");
  return {in_[id].data, in_[id].size};
}

NodeId DepGraph::find(const std::string& name) const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].name == name) return id;
  }
  return kInvalidNode;
}

}  // namespace ais
