#include "graph/nodeset.hpp"

#include "support/assert.hpp"

namespace ais {

NodeSet::NodeSet(std::size_t domain_size) : bits_(domain_size) {}

NodeSet::NodeSet(std::size_t domain_size, const std::vector<NodeId>& ids)
    : bits_(domain_size) {
  for (const NodeId id : ids) insert(id);
}

NodeSet NodeSet::all(std::size_t domain_size) {
  NodeSet s(domain_size);
  for (std::size_t i = 0; i < domain_size; ++i) s.insert(static_cast<NodeId>(i));
  return s;
}

void NodeSet::insert(NodeId id) { bits_.set(id); }
void NodeSet::erase(NodeId id) { bits_.reset(id); }

NodeSet& NodeSet::operator|=(const NodeSet& other) {
  bits_ |= other.bits_;
  return *this;
}

std::vector<NodeId> NodeSet::ids() const {
  std::vector<NodeId> out;
  out.reserve(size());
  bits_.for_each([&out](std::size_t i) { out.push_back(static_cast<NodeId>(i)); });
  return out;
}

NodeSet set_union(const NodeSet& a, const NodeSet& b) {
  AIS_CHECK(a.domain_size() == b.domain_size(), "node set domain mismatch");
  NodeSet out = a;
  out |= b;
  return out;
}

}  // namespace ais
