#include "graph/topo.hpp"

#include "support/assert.hpp"

namespace ais {

std::optional<std::vector<NodeId>> topo_order(const DepGraph& g,
                                              const NodeSet& active) {
  AIS_CHECK(active.domain_size() == g.num_nodes(), "node set domain mismatch");
  const std::vector<NodeId> members = active.ids();
  std::vector<std::uint32_t> indegree(g.num_nodes(), 0);
  for (const NodeId id : members) {
    for (const auto eidx : g.in_edges(id)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance == 0 && active.contains(e.from)) ++indegree[id];
    }
  }

  std::vector<NodeId> ready;
  for (const NodeId id : members) {
    if (indegree[id] == 0) ready.push_back(id);
  }

  std::vector<NodeId> order;
  order.reserve(members.size());
  // Process smallest-id-first for determinism (ready acts as a stack; we
  // sort lazily only when determinism matters for tie-breaking elsewhere, so
  // a plain FIFO via index is sufficient and stable).
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const NodeId id = ready[head];
    order.push_back(id);
    for (const auto eidx : g.out_edges(id)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance != 0 || !active.contains(e.to)) continue;
      if (--indegree[e.to] == 0) ready.push_back(e.to);
    }
  }
  if (order.size() != members.size()) return std::nullopt;  // cycle
  return order;
}

std::vector<NodeId> topo_order_all(const DepGraph& g) {
  auto order = topo_order(g, NodeSet::all(g.num_nodes()));
  AIS_CHECK(order.has_value(), "loop-independent subgraph has a cycle");
  return *order;
}

bool is_acyclic(const DepGraph& g, const NodeSet& active) {
  return topo_order(g, active).has_value();
}

}  // namespace ais
