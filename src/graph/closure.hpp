// Descendant closure over the loop-independent subgraph.
//
// The Rank Algorithm's backward-scheduling step needs, for each node x, the
// set of all (transitive) descendants of x among the active nodes.  We
// compute these as bitset rows in reverse topological order: O(V * E / 64).
//
// Rows live in a ClosureMatrix: one contiguous row-major uint64_t buffer
// (arena-backed when the caller provides an arena, e.g. a RankSession's),
// so a whole session's closure is a single allocation and row operations
// are word-parallel over adjacent memory — the pre-SoA layout's
// vector<DynamicBitset> paid one heap allocation and one indirection per
// row.  tests/test_differential.cpp keeps that old layout verbatim as an
// oracle and requires byte-identical rows.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "graph/depgraph.hpp"
#include "graph/nodeset.hpp"
#include "support/arena.hpp"
#include "support/bitset.hpp"

namespace ais {

/// Read-only view of one closure row: `bits` bits backed by `words[0..]`,
/// bit i of the row at words[i / 64] >> (i % 64).
class ClosureRow {
 public:
  ClosureRow(const std::uint64_t* words, std::size_t bits)
      : words_(words), bits_(bits) {}

  std::size_t size() const { return bits_; }

  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  std::span<const std::uint64_t> words() const {
    return {words_, (bits_ + 63) / 64};
  }

  std::size_t count() const {
    std::size_t n = 0;
    for (const std::uint64_t w : words()) {
      n += static_cast<std::size_t>(__builtin_popcountll(w));
    }
    return n;
  }

  /// True iff this row and `mask` share a set bit.  Sizes must match.
  bool intersects(const DynamicBitset& mask) const;

  /// Calls fn(i) for every set bit i in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t nwords = (bits_ + 63) / 64;
    for (std::size_t w = 0; w < nwords; ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

 private:
  const std::uint64_t* words_;
  std::size_t bits_;
};

/// Dense rows x bits bit matrix in one contiguous row-major uint64_t
/// buffer.  With an Arena the buffer is carved from it (one bump, freed
/// wholesale with the arena); without one the matrix owns heap storage.
class ClosureMatrix {
 public:
  ClosureMatrix() = default;

  ClosureMatrix(std::size_t rows, std::size_t bits, Arena* arena)
      : rows_(rows), bits_(bits), words_per_row_((bits + 63) / 64) {
    const std::size_t total = rows_ * words_per_row_;
    if (arena != nullptr) {
      data_ = arena->alloc_array<std::uint64_t>(total);
      std::memset(data_, 0, total * sizeof(std::uint64_t));
    } else {
      owned_.assign(total, 0);
      data_ = owned_.data();
    }
  }

  // Arena-backed storage is not copied with the matrix; DescendantClosure
  // (the only owner) copies explicitly when it must.
  ClosureMatrix(ClosureMatrix&&) noexcept = default;
  ClosureMatrix& operator=(ClosureMatrix&&) noexcept = default;
  ClosureMatrix(const ClosureMatrix&) = delete;
  ClosureMatrix& operator=(const ClosureMatrix&) = delete;

  std::size_t rows() const { return rows_; }
  std::size_t bits() const { return bits_; }
  std::size_t words_per_row() const { return words_per_row_; }

  std::uint64_t* row_data(std::size_t r) { return data_ + r * words_per_row_; }
  const std::uint64_t* row_data(std::size_t r) const {
    return data_ + r * words_per_row_;
  }
  ClosureRow row(std::size_t r) const { return {row_data(r), bits_}; }

  void set(std::size_t r, std::size_t bit) {
    row_data(r)[bit >> 6] |= std::uint64_t{1} << (bit & 63);
  }
  bool test(std::size_t r, std::size_t bit) const {
    return row(r).test(bit);
  }

  /// row dst |= row src (word-parallel).
  void row_or(std::size_t dst, std::size_t src) {
    std::uint64_t* d = row_data(dst);
    const std::uint64_t* s = row_data(src);
    for (std::size_t w = 0; w < words_per_row_; ++w) d[w] |= s[w];
  }

  /// row dst = donor's row src (the matrices must share `bits`).
  void row_copy_from(std::size_t dst, const ClosureMatrix& donor,
                     std::size_t src) {
    std::memcpy(row_data(dst), donor.row_data(src),
                words_per_row_ * sizeof(std::uint64_t));
  }

  /// True iff row r and `mask` share a set bit.
  bool intersects(std::size_t r, const DynamicBitset& mask) const {
    return row(r).intersects(mask);
  }

  /// Calls fn(i) for every bit i set in both row r and `mask`, ascending.
  template <typename Fn>
  void for_each_set_in(std::size_t r, const DynamicBitset& mask,
                       Fn&& fn) const {
    const std::uint64_t* d = row_data(r);
    const std::span<const std::uint64_t> m = mask.words();
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t word = d[w] & m[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

 private:
  std::uint64_t* data_ = nullptr;
  std::vector<std::uint64_t> owned_;
  std::size_t rows_ = 0;
  std::size_t bits_ = 0;
  std::size_t words_per_row_ = 0;
};

class DescendantClosure {
 public:
  /// Computes closures for every node in `active` using distance-0 edges
  /// between active nodes.  The induced subgraph must be acyclic.  With an
  /// `arena` the row matrix is carved from it (the RankSession passes its
  /// session arena); otherwise the closure owns its storage.
  DescendantClosure(const DepGraph& g, const NodeSet& active,
                    Arena* arena = nullptr);

  /// Same, but the rows of `donor_nodes` (a subset of `active`) are copied
  /// out of `donor` instead of recomputed.  The caller must guarantee each
  /// donated node's descendant set within `active` equals its `donor` row —
  /// in the lookahead prescheduler that holds because no distance-0 edge
  /// leaves the donated block into the rest of the active set.
  DescendantClosure(const DepGraph& g, const NodeSet& active,
                    const DescendantClosure& donor, const NodeSet& donor_nodes,
                    Arena* arena = nullptr);

  /// Row view of the descendants of `id` (excluding `id` itself).  `id`
  /// must be a member of the active set this closure was built from.
  ClosureRow descendants(NodeId id) const;

  /// True iff `descendant` is reachable from `ancestor` (strictly).
  bool reaches(NodeId ancestor, NodeId descendant) const;

  const ClosureMatrix& matrix() const { return matrix_; }

 private:
  DescendantClosure(const DepGraph& g, const NodeSet& active,
                    const DescendantClosure* donor, const NodeSet* donor_nodes,
                    Arena* arena);

  std::size_t domain_;
  ClosureMatrix matrix_;
  std::vector<bool> member_;
};

}  // namespace ais
