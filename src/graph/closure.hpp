// Descendant closure over the loop-independent subgraph.
//
// The Rank Algorithm's backward-scheduling step needs, for each node x, the
// set of all (transitive) descendants of x among the active nodes.  We
// compute these as bitsets in reverse topological order: O(V * E / 64).
#pragma once

#include <vector>

#include "graph/depgraph.hpp"
#include "graph/nodeset.hpp"
#include "support/bitset.hpp"

namespace ais {

class DescendantClosure {
 public:
  /// Computes closures for every node in `active` using distance-0 edges
  /// between active nodes.  The induced subgraph must be acyclic.
  DescendantClosure(const DepGraph& g, const NodeSet& active);

  /// Same, but the rows of `donor_nodes` (a subset of `active`) are copied
  /// out of `donor` instead of recomputed.  The caller must guarantee each
  /// donated node's descendant set within `active` equals its `donor` row —
  /// in the lookahead prescheduler that holds because no distance-0 edge
  /// leaves the donated block into the rest of the active set.
  DescendantClosure(const DepGraph& g, const NodeSet& active,
                    const DescendantClosure& donor, const NodeSet& donor_nodes);

  /// Bitset of descendants of `id` (excluding `id` itself).  `id` must be a
  /// member of the active set this closure was built from.
  const DynamicBitset& descendants(NodeId id) const;

  /// True iff `descendant` is reachable from `ancestor` (strictly).
  bool reaches(NodeId ancestor, NodeId descendant) const;

 private:
  DescendantClosure(const DepGraph& g, const NodeSet& active,
                    const DescendantClosure* donor, const NodeSet* donor_nodes);

  std::size_t domain_;
  std::vector<DynamicBitset> desc_;
  std::vector<bool> member_;
};

}  // namespace ais
