// Topological ordering over the loop-independent subgraph.
//
// All scheduling passes consider only distance-0 edges between the active
// nodes; loop modules first rewrite carried edges into an acyclic graph
// (paper §5.2), so acyclicity of the loop-independent subgraph is an
// invariant we check rather than assume.
#pragma once

#include <optional>
#include <vector>

#include "graph/depgraph.hpp"
#include "graph/nodeset.hpp"

namespace ais {

/// Topological order of `active` nodes using distance-0 edges only.
/// Returns std::nullopt if the induced subgraph has a cycle.
std::optional<std::vector<NodeId>> topo_order(const DepGraph& g,
                                              const NodeSet& active);

/// Topological order over all nodes.  Hard error on a cycle.
std::vector<NodeId> topo_order_all(const DepGraph& g);

/// True iff the loop-independent subgraph induced by `active` is acyclic.
bool is_acyclic(const DepGraph& g, const NodeSet& active);

}  // namespace ais
