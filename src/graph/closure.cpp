#include "graph/closure.hpp"

#include "graph/topo.hpp"
#include "support/assert.hpp"

namespace ais {

bool ClosureRow::intersects(const DynamicBitset& mask) const {
  const std::span<const std::uint64_t> m = mask.words();
  const std::size_t nwords = (bits_ + 63) / 64;
  for (std::size_t w = 0; w < nwords; ++w) {
    if ((words_[w] & m[w]) != 0) return true;
  }
  return false;
}

DescendantClosure::DescendantClosure(const DepGraph& g, const NodeSet& active,
                                     Arena* arena)
    : DescendantClosure(g, active, nullptr, nullptr, arena) {}

DescendantClosure::DescendantClosure(const DepGraph& g, const NodeSet& active,
                                     const DescendantClosure& donor,
                                     const NodeSet& donor_nodes, Arena* arena)
    : DescendantClosure(g, active, &donor, &donor_nodes, arena) {}

DescendantClosure::DescendantClosure(const DepGraph& g, const NodeSet& active,
                                     const DescendantClosure* donor,
                                     const NodeSet* donor_nodes, Arena* arena)
    : domain_(g.num_nodes()),
      matrix_(g.num_nodes(), g.num_nodes(), arena),
      member_(g.num_nodes(), false) {
  const auto order = topo_order(g, active);
  AIS_CHECK(order.has_value(),
            "descendant closure requires an acyclic loop-independent subgraph");
  for (const NodeId id : *order) member_[id] = true;

  // Reverse topological order: successors' closures are complete first.
  // Donated rows never read other rows, so copying them in this order is
  // trivially safe; computed rows may read donated ones, which is exactly
  // the point of the donation.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId id = *it;
    if (donor != nullptr && donor_nodes->contains(id)) {
      matrix_.row_copy_from(id, donor->matrix_, id);
      continue;
    }
    for (const auto eidx : g.out_edges(id)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance != 0 || !active.contains(e.to)) continue;
      matrix_.set(id, e.to);
      matrix_.row_or(id, e.to);
    }
  }
}

ClosureRow DescendantClosure::descendants(NodeId id) const {
  AIS_CHECK(id < domain_ && member_[id], "node not in closure's active set");
  return matrix_.row(id);
}

bool DescendantClosure::reaches(NodeId ancestor, NodeId descendant) const {
  return descendants(ancestor).test(descendant);
}

}  // namespace ais
