#include "graph/closure.hpp"

#include "graph/topo.hpp"
#include "support/assert.hpp"

namespace ais {

DescendantClosure::DescendantClosure(const DepGraph& g, const NodeSet& active)
    : DescendantClosure(g, active, nullptr, nullptr) {}

DescendantClosure::DescendantClosure(const DepGraph& g, const NodeSet& active,
                                     const DescendantClosure& donor,
                                     const NodeSet& donor_nodes)
    : DescendantClosure(g, active, &donor, &donor_nodes) {}

DescendantClosure::DescendantClosure(const DepGraph& g, const NodeSet& active,
                                     const DescendantClosure* donor,
                                     const NodeSet* donor_nodes)
    : domain_(g.num_nodes()),
      desc_(g.num_nodes(), DynamicBitset(g.num_nodes())),
      member_(g.num_nodes(), false) {
  const auto order = topo_order(g, active);
  AIS_CHECK(order.has_value(),
            "descendant closure requires an acyclic loop-independent subgraph");
  for (const NodeId id : *order) member_[id] = true;

  // Reverse topological order: successors' closures are complete first.
  // Donated rows never read other rows, so copying them in this order is
  // trivially safe; computed rows may read donated ones, which is exactly
  // the point of the donation.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId id = *it;
    if (donor != nullptr && donor_nodes->contains(id)) {
      desc_[id] = donor->descendants(id);
      continue;
    }
    DynamicBitset& mine = desc_[id];
    for (const auto eidx : g.out_edges(id)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance != 0 || !active.contains(e.to)) continue;
      mine.set(e.to);
      mine |= desc_[e.to];
    }
  }
}

const DynamicBitset& DescendantClosure::descendants(NodeId id) const {
  AIS_CHECK(id < domain_ && member_[id], "node not in closure's active set");
  return desc_[id];
}

bool DescendantClosure::reaches(NodeId ancestor, NodeId descendant) const {
  return descendants(ancestor).test(descendant);
}

}  // namespace ais
