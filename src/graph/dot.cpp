#include "graph/dot.hpp"

#include <sstream>

namespace ais {

std::string to_dot(const DepGraph& g, const std::string& title) {
  std::ostringstream os;
  os << "digraph \"" << title << "\" {\n";
  os << "  rankdir=TB;\n";
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    const NodeInfo& n = g.node(id);
    os << "  n" << id << " [label=\"" << n.name;
    if (n.exec_time != 1) os << " (" << n.exec_time << "c)";
    os << "\"];\n";
  }
  for (const DepEdge& e : g.edges()) {
    os << "  n" << e.from << " -> n" << e.to << " [label=\"<" << e.latency
       << "," << e.distance << ">\"";
    if (e.carried()) os << ", style=dashed";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace ais
