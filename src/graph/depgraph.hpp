// Dependence graph: the paper's program representation.
//
// Nodes are instructions; directed edges carry a <latency, distance> label
// (paper §5): an edge (x, y) with latency l and distance k means instance
// y[i + k] may start no earlier than l cycles after x[i] completes.
// distance == 0 is a loop-independent dependence; distance > 0 is
// loop-carried.  For straight-line (trace) scheduling only distance-0 edges
// exist and the graph restricted to them must be acyclic.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "support/arena.hpp"

namespace ais {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Integral cycle count.  Signed so deadline arithmetic can go negative
/// (a rank <= 0 signals infeasibility, per the Rank Algorithm).
using Time = std::int64_t;

struct DepEdge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  /// Cycles that must elapse between completion of `from` and start of `to`.
  /// 0 means `to` may start the cycle `from` completes.
  int latency = 0;
  /// Iteration distance; 0 for loop-independent dependences.
  int distance = 0;

  bool carried() const { return distance > 0; }
};

struct NodeInfo {
  std::string name;
  /// Execution time in cycles (1 in the paper's exact model).
  int exec_time = 1;
  /// Functional-unit class index into the machine model (0 = default).
  int fu_class = 0;
  /// Basic-block index within the enclosing trace; kept on the node so the
  /// legality checkers (Definitions 2.1-2.3) can recover subpermutations.
  int block = 0;
};

class DepGraph {
 public:
  /// Adds a node and returns its id (ids are dense, starting at 0).
  NodeId add_node(std::string name, int exec_time = 1, int fu_class = 0,
                  int block = 0);

  /// Adds a dependence edge.  Self-edges are only meaningful when carried.
  void add_edge(NodeId from, NodeId to, int latency, int distance = 0);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  const NodeInfo& node(NodeId id) const;
  NodeInfo& node(NodeId id);
  const DepEdge& edge(std::size_t idx) const;

  /// Indices into edges() of edges leaving / entering `id`.  Views into
  /// arena-backed adjacency storage; invalidated by add_edge on that node.
  std::span<const std::uint32_t> out_edges(NodeId id) const;
  std::span<const std::uint32_t> in_edges(NodeId id) const;

  const std::vector<DepEdge>& edges() const { return edges_; }

  /// First node named `name`, or kInvalidNode.
  NodeId find(const std::string& name) const;

  /// True iff any edge has distance > 0.
  bool has_carried_edges() const { return carried_edge_count_ > 0; }

  /// Largest latency over all edges (0 for an edge-free graph).
  int max_latency() const { return max_latency_; }

  /// Largest execution time over all nodes (1 for an empty graph).
  int max_exec_time() const { return max_exec_time_; }

  /// Sum of execution times; the serial lower bound on any 1-FU makespan.
  Time total_work() const { return total_work_; }

  DepGraph() = default;
  DepGraph(DepGraph&&) noexcept = default;
  DepGraph& operator=(DepGraph&&) noexcept = default;
  /// Copies rebuild the adjacency lists in the copy's own arena (the lists
  /// are derived data — a replay of edges_ — so deep-copying chunks would
  /// only clone abandoned growth blocks).
  DepGraph(const DepGraph& other);
  DepGraph& operator=(const DepGraph& other);
  ~DepGraph() = default;

 private:
  /// One node's adjacency: a doubling array carved from adj_arena_.  Growth
  /// abandons the old block (bounded 2x waste), which turns the two heap
  /// allocations per node + realloc-per-few-edges of the vector-of-vectors
  /// representation into pointer bumps — the dominant malloc traffic of
  /// small-block compiles (see support/arena.hpp).
  struct AdjList {
    std::uint32_t* data = nullptr;
    std::uint32_t size = 0;
    std::uint32_t cap = 0;
  };
  void adj_push(AdjList& adj, std::uint32_t edge_idx);

  std::vector<NodeInfo> nodes_;
  std::vector<DepEdge> edges_;
  Arena adj_arena_;
  std::vector<AdjList> out_;
  std::vector<AdjList> in_;
  std::size_t carried_edge_count_ = 0;
  int max_latency_ = 0;
  int max_exec_time_ = 1;
  Time total_work_ = 0;
};

}  // namespace ais
