// Dependence graph: the paper's program representation.
//
// Nodes are instructions; directed edges carry a <latency, distance> label
// (paper §5): an edge (x, y) with latency l and distance k means instance
// y[i + k] may start no earlier than l cycles after x[i] completes.
// distance == 0 is a loop-independent dependence; distance > 0 is
// loop-carried.  For straight-line (trace) scheduling only distance-0 edges
// exist and the graph restricted to them must be acyclic.
//
// Storage is structure-of-arrays: the per-node fields the schedulers touch
// (exec_time / fu_class / block) live in dense int32 columns with span
// accessors, node names are interned once in an arena-backed string pool
// (they are only needed for diagnostics and find()), and the in/out
// adjacency lists are doubling arrays carved from an arena.  node() stays
// as a thin accessor assembling a NodeInfo view by value, so existing call
// sites — including `const NodeInfo& n = g.node(id)` bindings, which C++
// lifetime extension keeps valid — compile unchanged.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/arena.hpp"
#include "support/assert.hpp"

namespace ais {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Integral cycle count.  Signed so deadline arithmetic can go negative
/// (a rank <= 0 signals infeasibility, per the Rank Algorithm).
using Time = std::int64_t;

struct DepEdge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  /// Cycles that must elapse between completion of `from` and start of `to`.
  /// 0 means `to` may start the cycle `from` completes.
  int latency = 0;
  /// Iteration distance; 0 for loop-independent dependences.
  int distance = 0;

  bool carried() const { return distance > 0; }
};

/// A node name interned in its graph's string pool: NUL-terminated, valid
/// for the life of the graph (and of moved-from graphs' successors — the
/// pool's chunks never move).  Converts to std::string_view / std::string
/// and concatenates with both, so the std::string-member call sites the
/// pre-SoA NodeInfo had keep compiling; basic_string's own templated
/// operators do not deduce through user conversions, hence the explicit
/// friend overloads.
class NameRef {
 public:
  NameRef() = default;
  NameRef(const char* data, std::uint32_t size) : data_(data), size_(size) {}

  const char* c_str() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::string_view view() const { return {data_, size_}; }
  std::string str() const { return {data_, size_}; }

  operator std::string_view() const { return view(); }
  operator std::string() const { return str(); }

  friend bool operator==(NameRef a, NameRef b) { return a.view() == b.view(); }
  friend bool operator==(NameRef a, std::string_view b) {
    return a.view() == b;
  }
  friend std::string operator+(NameRef a, const char* b) {
    return a.str() += b;
  }
  friend std::string operator+(const char* a, NameRef b) {
    return std::string(a) += b.view();
  }
  friend std::string operator+(std::string a, NameRef b) {
    return std::move(a) += b.view();
  }
  friend std::string operator+(NameRef a, const std::string& b) {
    return a.str() += b;
  }
  friend std::ostream& operator<<(std::ostream& os, NameRef n);

 private:
  const char* data_ = "";
  std::uint32_t size_ = 0;
};

/// Per-node view assembled by DepGraph::node() from the flat columns.
/// Cheap to copy; returned by value (the columns are the storage).
struct NodeInfo {
  NameRef name;
  /// Execution time in cycles (1 in the paper's exact model).
  int exec_time = 1;
  /// Functional-unit class index into the machine model (0 = default).
  int fu_class = 0;
  /// Basic-block index within the enclosing trace; kept on the node so the
  /// legality checkers (Definitions 2.1-2.3) can recover subpermutations.
  int block = 0;
};

class DepGraph {
 public:
  /// Adds a node and returns its id (ids are dense, starting at 0).  The
  /// name is interned: duplicate names share pool bytes, and find() resolves
  /// to the *first* node added under a name.
  NodeId add_node(std::string_view name, int exec_time = 1, int fu_class = 0,
                  int block = 0);

  /// Adds a dependence edge.  Self-edges are only meaningful when carried.
  void add_edge(NodeId from, NodeId to, int latency, int distance = 0);

  /// Pre-sizes the node columns (and edge list, when `edges` is given) so
  /// bulk builders grow without reallocation.
  void reserve(std::size_t nodes, std::size_t edges = 0);

  std::size_t num_nodes() const { return exec_time_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  /// Node view by value; `const NodeInfo& n = g.node(id)` stays valid via
  /// lifetime extension.
  NodeInfo node(NodeId id) const;
  const DepEdge& edge(std::size_t idx) const;

  /// Flat per-node columns, indexed by NodeId.  The hot paths (RankSession,
  /// greedy scheduling, simulators) read these directly instead of
  /// assembling NodeInfo views.
  std::span<const std::int32_t> exec_times() const { return exec_time_; }
  std::span<const std::int32_t> fu_classes() const { return fu_class_; }
  std::span<const std::int32_t> blocks() const { return block_; }
  NameRef name(NodeId id) const;

  /// Indices into edges() of edges leaving / entering `id`.  Views into
  /// arena-backed adjacency storage; invalidated by add_edge on that node.
  std::span<const std::uint32_t> out_edges(NodeId id) const;
  std::span<const std::uint32_t> in_edges(NodeId id) const;

  const std::vector<DepEdge>& edges() const { return edges_; }

  /// First node named `name`, or kInvalidNode.  O(1): backed by the interned
  /// name pool's hash index.
  NodeId find(std::string_view name) const;

  /// True iff any edge has distance > 0.
  bool has_carried_edges() const { return carried_edge_count_ > 0; }

  /// Largest latency over all edges (0 for an edge-free graph).
  int max_latency() const { return max_latency_; }

  /// Largest execution time over all nodes (1 for an empty graph).
  int max_exec_time() const { return max_exec_time_; }

  /// Sum of execution times; the serial lower bound on any 1-FU makespan.
  Time total_work() const { return total_work_; }

  /// Bytes of arena-backed storage held (adjacency + name pool); feeds the
  /// arena_high_water{arena="graph"} obs gauge.
  std::size_t arena_bytes_reserved() const;

  DepGraph() = default;
  DepGraph(DepGraph&&) noexcept = default;
  DepGraph& operator=(DepGraph&&) noexcept = default;
  /// Copies rebuild the adjacency lists and the name pool in the copy's own
  /// arenas (both are derived data — a replay of edges_ / names_ — so
  /// deep-copying chunks would only clone abandoned growth blocks).
  DepGraph(const DepGraph& other);
  DepGraph& operator=(const DepGraph& other);
  ~DepGraph() = default;

 private:
  /// One node's adjacency: a doubling array carved from adj_arena_.  Growth
  /// abandons the old block (bounded 2x waste), which turns the two heap
  /// allocations per node + realloc-per-few-edges of the vector-of-vectors
  /// representation into pointer bumps — the dominant malloc traffic of
  /// small-block compiles (see support/arena.hpp).
  struct AdjList {
    std::uint32_t* data = nullptr;
    std::uint32_t size = 0;
    std::uint32_t cap = 0;
  };
  void adj_push(AdjList& adj, std::uint32_t edge_idx);

  /// Interns `name`: returns the pooled ref (shared with earlier nodes of
  /// the same name) and records `id` in the hash index when the name is new.
  NameRef intern(std::string_view name, NodeId id);
  void index_insert(std::uint32_t slot_count, NodeId id);
  void index_grow();

  // Per-node columns (SoA): dense, indexed by NodeId.
  std::vector<std::int32_t> exec_time_;
  std::vector<std::int32_t> fu_class_;
  std::vector<std::int32_t> block_;
  std::vector<NameRef> names_;

  // Interned-name pool + open-addressing index of first ids.  Slots hold a
  // NodeId or kInvalidNode; capacity is a power of two kept at most half
  // full.  string_view keys live in name_pool_, whose chunks never move.
  Arena name_pool_;
  std::vector<NodeId> index_slots_;
  std::size_t index_used_ = 0;

  std::vector<DepEdge> edges_;
  Arena adj_arena_;
  std::vector<AdjList> out_;
  std::vector<AdjList> in_;
  std::size_t carried_edge_count_ = 0;
  int max_latency_ = 0;
  int max_exec_time_ = 1;
  Time total_work_ = 0;
};

// Per-node / per-edge accessors, inline: the simulators and schedulers call
// these once per issued node and once per traversed edge, so an out-of-line
// definition puts a call boundary inside every hot loop.

inline NodeInfo DepGraph::node(NodeId id) const {
  AIS_CHECK(id < num_nodes(), "node id out of range");
  return NodeInfo{names_[id], exec_time_[id], fu_class_[id], block_[id]};
}

inline NameRef DepGraph::name(NodeId id) const {
  AIS_CHECK(id < num_nodes(), "node id out of range");
  return names_[id];
}

inline const DepEdge& DepGraph::edge(std::size_t idx) const {
  AIS_CHECK(idx < edges_.size(), "edge index out of range");
  return edges_[idx];
}

inline std::span<const std::uint32_t> DepGraph::out_edges(NodeId id) const {
  AIS_CHECK(id < num_nodes(), "node id out of range");
  return {out_[id].data, out_[id].size};
}

inline std::span<const std::uint32_t> DepGraph::in_edges(NodeId id) const {
  AIS_CHECK(id < num_nodes(), "node id out of range");
  return {in_[id].data, in_[id].size};
}

}  // namespace ais
