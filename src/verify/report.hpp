// Structured diagnostics for the independent verifier (aislint).
//
// Every check in src/verify emits Diagnostics into a Report instead of
// asserting, so callers (the aislint CLI, the --verify driver flag, tests)
// can distinguish *which* invariant failed: mutation tests demand a specific
// diagnostic code, not just "something went wrong".
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ais::verify {

enum class Severity { kError, kWarning, kNote };

const char* severity_name(Severity s);

/// One finding.  `code` is a stable kebab-case identifier (e.g. "dep-order",
/// "cross-block-motion") that tests and tooling key on; `message` is the
/// human explanation.  `block` and `subject` locate the finding when they
/// apply (-1 / empty otherwise).
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;
  std::string message;
  int block = -1;
  std::string subject;

  /// "error[dep-order] block 1 (MUL r0, r6, r0): ..." rendering.
  std::string to_string() const;
};

class Report {
 public:
  void add(Severity severity, std::string code, std::string message,
           int block = -1, std::string subject = {});
  void error(std::string code, std::string message, int block = -1,
             std::string subject = {});
  void warning(std::string code, std::string message, int block = -1,
               std::string subject = {});
  void note(std::string code, std::string message, int block = -1,
            std::string subject = {});

  /// Appends all of `other`'s diagnostics.
  void merge(const Report& other);

  /// True when no error-severity diagnostic was recorded (warnings/notes
  /// do not fail verification).
  bool ok() const { return num_errors_ == 0; }

  std::size_t num_errors() const { return num_errors_; }
  std::size_t num_warnings() const { return num_warnings_; }

  /// True when some diagnostic (any severity) carries `code`.
  bool has(std::string_view code) const;

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// One diagnostic per line; empty string for a clean report.
  std::string to_string() const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t num_errors_ = 0;
  std::size_t num_warnings_ = 0;
};

}  // namespace ais::verify
