#include "verify/schedule_check.hpp"

#include <algorithm>
#include <tuple>

#include "baselines/bruteforce.hpp"
#include "graph/critpath.hpp"

namespace ais::verify {
namespace {

std::string node_label(const DepGraph& g, NodeId id) {
  return g.node(id).name + " (node " + std::to_string(id) + ")";
}

}  // namespace

Report check_order(const DepGraph& g, const std::vector<NodeId>& order) {
  Report report;
  const std::size_t n = g.num_nodes();
  if (order.size() != n) {
    report.error("order-coverage",
                 "order lists " + std::to_string(order.size()) + " nodes, graph has " +
                     std::to_string(n));
    return report;
  }
  std::vector<int> pos(n, -1);
  for (std::size_t p = 0; p < order.size(); ++p) {
    const NodeId id = order[p];
    if (id >= n) {
      report.error("order-coverage",
                   "node id " + std::to_string(id) + " out of range");
      return report;
    }
    if (pos[id] >= 0) {
      report.error("order-coverage", node_label(g, id) + " listed twice");
      return report;
    }
    pos[id] = static_cast<int>(p);
  }
  for (const DepEdge& e : g.edges()) {
    if (e.distance != 0) continue;
    if (pos[e.from] > pos[e.to]) {
      report.error("dep-order",
                   node_label(g, e.from) + " must precede " +
                       node_label(g, e.to) + " but is listed after it",
                   g.node(e.to).block, g.node(e.to).name);
    }
  }
  return report;
}

Report check_schedule(const Schedule& s, const MachineModel& machine) {
  Report report;
  const DepGraph& g = s.graph();

  for (const NodeId id : s.active().ids()) {
    if (!s.placed(id)) {
      report.error("incomplete", node_label(g, id) + " was never placed",
                   g.node(id).block, g.node(id).name);
    }
  }
  if (!report.ok()) return report;

  // Unit typing uses the class-major global unit layout (class 0's units
  // first) that greedy scheduling and validate_schedule agree on.
  std::vector<int> class_of_unit;
  for (int c = 0; c < machine.num_fu_classes(); ++c) {
    for (int k = 0; k < machine.fu_count(c); ++k) class_of_unit.push_back(c);
  }
  if (static_cast<int>(class_of_unit.size()) != s.total_units()) {
    report.error("unit-count",
                 "schedule has " + std::to_string(s.total_units()) +
                     " units, machine has " +
                     std::to_string(class_of_unit.size()));
    return report;
  }

  // Rebuild per-unit occupancy from the per-node assignments alone.
  std::vector<std::vector<std::tuple<Time, Time, NodeId>>> occupancy(
      static_cast<std::size_t>(s.total_units()));
  std::vector<int> issued_at;
  for (const NodeId id : s.active().ids()) {
    const int unit = s.unit_of(id);
    const Time start = s.start(id);
    occupancy[static_cast<std::size_t>(unit)].emplace_back(
        start, s.completion(id), id);
    if (class_of_unit[static_cast<std::size_t>(unit)] != g.node(id).fu_class) {
      report.error("unit-class",
                   node_label(g, id) + " runs on a unit of class " +
                       std::to_string(class_of_unit[static_cast<std::size_t>(unit)]) +
                       ", needs class " + std::to_string(g.node(id).fu_class),
                   g.node(id).block, g.node(id).name);
    }
    if (start >= static_cast<Time>(issued_at.size())) {
      issued_at.resize(static_cast<std::size_t>(start) + 1, 0);
    }
    ++issued_at[static_cast<std::size_t>(start)];
  }
  for (auto& lane : occupancy) {
    std::sort(lane.begin(), lane.end());
    for (std::size_t i = 1; i < lane.size(); ++i) {
      const auto& [prev_start, prev_end, prev_id] = lane[i - 1];
      const auto& [start, end, id] = lane[i];
      if (start < prev_end) {
        report.error("unit-overlap",
                     node_label(g, id) + " starts at " + std::to_string(start) +
                         " while " + node_label(g, prev_id) +
                         " occupies the unit until " + std::to_string(prev_end),
                     g.node(id).block, g.node(id).name);
      }
    }
  }
  for (std::size_t t = 0; t < issued_at.size(); ++t) {
    if (issued_at[t] > machine.issue_width()) {
      report.error("issue-width",
                   std::to_string(issued_at[t]) + " instructions issue at cycle " +
                       std::to_string(t) + ", issue width is " +
                       std::to_string(machine.issue_width()));
    }
  }

  for (const DepEdge& e : g.edges()) {
    if (e.distance != 0) continue;
    if (!s.active().contains(e.from) || !s.active().contains(e.to)) continue;
    const Time earliest = s.completion(e.from) + e.latency;
    if (s.start(e.to) < earliest) {
      report.error("dep-latency",
                   node_label(g, e.to) + " starts at " +
                       std::to_string(s.start(e.to)) + ", but " +
                       node_label(g, e.from) + " + latency " +
                       std::to_string(e.latency) + " allows " +
                       std::to_string(earliest) + " at the earliest",
                   g.node(e.to).block, g.node(e.to).name);
    }
  }
  return report;
}

Report check_window(const DepGraph& g, const std::vector<NodeId>& perm,
                    int window, Severity severity) {
  Report report;
  int num_blocks = 0;
  for (const NodeId id : perm) {
    if (id >= g.num_nodes()) {
      report.error("order-coverage",
                   "node id " + std::to_string(id) + " out of range");
      return report;
    }
    num_blocks = std::max(num_blocks, g.node(id).block + 1);
  }

  // One forward pass.  earliest[b] is the first position where block b
  // appears; the worst inversion ending at position j pairs perm[j] with the
  // earliest earlier occurrence of any later block.
  constexpr std::size_t kUnseen = static_cast<std::size_t>(-1);
  std::vector<std::size_t> earliest(static_cast<std::size_t>(num_blocks),
                                    kUnseen);
  std::size_t worst_i = 0;
  std::size_t worst_j = 0;
  std::size_t worst_span = 0;
  for (std::size_t j = 0; j < perm.size(); ++j) {
    const int b = g.node(perm[j]).block;
    std::size_t first_later = kUnseen;
    for (int later = b + 1; later < num_blocks; ++later) {
      first_later =
          std::min(first_later, earliest[static_cast<std::size_t>(later)]);
    }
    if (first_later != kUnseen && j - first_later + 1 > worst_span) {
      worst_span = j - first_later + 1;
      worst_i = first_later;
      worst_j = j;
    }
    std::size_t& seen = earliest[static_cast<std::size_t>(b)];
    if (seen == kUnseen) seen = j;
  }

  if (worst_span > static_cast<std::size_t>(window)) {
    const NodeId early = perm[worst_i];
    const NodeId late = perm[worst_j];
    report.add(severity, "window-span",
               "inversion (" + g.node(early).name + " @" +
                   std::to_string(worst_i) + " of block " +
                   std::to_string(g.node(early).block) + ", " +
                   g.node(late).name + " @" + std::to_string(worst_j) +
                   " of block " + std::to_string(g.node(late).block) +
                   ") spans " + std::to_string(worst_span) + " > W = " +
                   std::to_string(window),
               g.node(late).block, g.node(late).name);
  }
  return report;
}

Report check_merge_fill(const Schedule& merged, const NodeSet& old_nodes,
                        const DeadlineMap& deadlines, Time t_old) {
  Report report;
  const DepGraph& g = merged.graph();
  for (const NodeId id : old_nodes.ids()) {
    if (!merged.placed(id)) {
      report.error("incomplete",
                   node_label(g, id) + " of the retained suffix was never placed",
                   g.node(id).block, g.node(id).name);
      continue;
    }
    const Time cap = std::min(deadlines[id], t_old);
    if (merged.completion(id) > cap) {
      report.error("merge-displaced",
                   node_label(g, id) + " of the retained suffix completes at " +
                       std::to_string(merged.completion(id)) +
                       ", past its cap " + std::to_string(cap) +
                       " — a new-block node displaced it instead of filling an "
                       "idle slot",
                   g.node(id).block, g.node(id).name);
    }
  }
  return report;
}

OptimalityCertificate certify_trace_completion(const DepGraph& g,
                                               const MachineModel& machine,
                                               int window, Time achieved,
                                               std::size_t enumeration_cap) {
  OptimalityCertificate cert;
  cert.achieved = achieved;

  const NodeSet all = NodeSet::all(g.num_nodes());
  const Time cp = critical_path(g, all);
  const Time units = machine.total_units();
  const Time work = (g.total_work() + units - 1) / units;
  const Time issue = (static_cast<Time>(g.num_nodes()) +
                      machine.issue_width() - 1) /
                     machine.issue_width();
  cert.bound = std::max({cp, work, issue});
  cert.method = cp >= std::max(work, issue) ? "critical-path" : "serial-work";

  if (achieved < cert.bound) {
    cert.status = OptimalityCertificate::Status::kViolated;
    return cert;
  }
  if (achieved == cert.bound) {
    cert.status = OptimalityCertificate::Status::kCertified;
    return cert;
  }
  if (!machine.is_restricted_case()) {
    cert.status = OptimalityCertificate::Status::kUnknown;
    cert.method = "heuristic-machine";
    return cert;
  }
  const Time opt = optimal_trace_completion(g, machine, window,
                                            enumeration_cap);
  if (opt < 0) {
    cert.status = OptimalityCertificate::Status::kUnknown;
    cert.method = "enumeration-capped";
    return cert;
  }
  if (achieved < opt) {
    // The simulated completion beat an exhaustive optimum: impossible
    // unless the simulator or the oracle is broken.
    cert.bound = opt;
    cert.method = "bruteforce";
    cert.status = OptimalityCertificate::Status::kViolated;
    return cert;
  }
  cert.bound = opt;
  cert.method = "bruteforce";
  cert.status = achieved == opt ? OptimalityCertificate::Status::kCertified
                                : OptimalityCertificate::Status::kSuboptimal;
  return cert;
}

OptimalityCertificate certify_block_makespan(const DepGraph& g,
                                             const NodeSet& block,
                                             Time achieved,
                                             std::size_t max_nodes) {
  OptimalityCertificate cert;
  cert.achieved = achieved;
  if (block.size() > max_nodes) {
    cert.status = OptimalityCertificate::Status::kUnknown;
    cert.method = "size-capped";
    return cert;
  }
  cert.bound = optimal_block_makespan(g, block);
  cert.method = "bruteforce";
  if (achieved == cert.bound) {
    cert.status = OptimalityCertificate::Status::kCertified;
  } else if (achieved < cert.bound) {
    cert.status = OptimalityCertificate::Status::kViolated;
  } else {
    cert.status = OptimalityCertificate::Status::kSuboptimal;
  }
  return cert;
}

void report_certificate(Report& report, const OptimalityCertificate& cert) {
  const std::string detail = "achieved " + std::to_string(cert.achieved) +
                             ", bound " + std::to_string(cert.bound) +
                             " via " + cert.method;
  switch (cert.status) {
    case OptimalityCertificate::Status::kViolated:
      report.error("optimality",
                   "completion beats a valid lower bound: " + detail);
      break;
    case OptimalityCertificate::Status::kSuboptimal:
      report.warning("optimality-gap",
                     "completion is provably suboptimal: " + detail);
      break;
    case OptimalityCertificate::Status::kCertified:
      report.note("optimality-certified", detail);
      break;
    case OptimalityCertificate::Status::kUnknown:
      report.note("optimality-unverified", detail);
      break;
  }
}

}  // namespace ais::verify
