// Independent dependence re-derivation from the IR.
//
// The scheduler consumes the DepGraph built by ir/depbuild.cpp; if that
// builder drops an edge, every downstream legality check silently agrees
// with the bug.  This module re-derives the loop-independent dependences of
// a trace with a deliberately different algorithm — a pairwise O(n^2) scan
// with explicit kill checks instead of depbuild's forward state machine —
// so the two implementations can cross-certify each other.
//
// For every ordered pair of flat instruction indices i < j it asks directly:
//  * true (RAW):   j reads a register whose last writer before j is i,
//  * anti (WAR):   i reads a register j writes, with no write in between,
//  * output (WAW): i and j write the same register, with no write in between,
//  * memory:       both touch memory, not both loads, and their region tags
//                  may alias (store->load carries the store's latency),
//  * control:      i precedes the branch that ends i's own block.
//
// The resulting (from, to, max latency) pair set is provably identical to
// the distance-0 edge set of build_trace_graph (tests/test_verify.cpp checks
// exact agreement on random programs), but no code is shared.
#pragma once

#include <vector>

#include "ir/instruction.hpp"
#include "machine/machine_model.hpp"

namespace ais::verify {

enum class DepKind { kTrue, kAnti, kOutput, kMemory, kControl };

const char* dep_kind_name(DepKind kind);

/// One required ordering between two instructions of a trace, identified by
/// their flat indices (blocks concatenated in trace order — the same
/// numbering ir/depbuild.cpp assigns to DepGraph nodes).
struct IrDep {
  int from = 0;
  int to = 0;
  DepKind kind = DepKind::kTrue;
  /// Cycles `to` must wait after `from` completes (0 = pure ordering).
  int latency = 0;
};

/// All loop-independent dependences of `trace`, from < to.
/// `disambiguate_memory` mirrors DepBuildOptions: when false, every
/// load/store pair with a store conflicts regardless of region tags.
std::vector<IrDep> derive_trace_deps(const Trace& trace,
                                     const MachineModel& machine,
                                     bool disambiguate_memory = true);

}  // namespace ais::verify
