#include "verify/lint.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace ais::verify {
namespace {

/// Dense key across the three register files.
int reg_key(const Reg& r) {
  return static_cast<int>(r.cls) * 256 + static_cast<int>(r.idx);
}

void lint_branches(const Program& prog, Report& report) {
  for (int b = 0; b < static_cast<int>(prog.blocks.size()); ++b) {
    const BasicBlock& bb = prog.blocks[static_cast<std::size_t>(b)];
    if (bb.insts.empty()) {
      report.warning("empty-block", "block has no instructions", b, bb.label);
      continue;
    }
    for (std::size_t i = 0; i < bb.insts.size(); ++i) {
      const Instruction& inst = bb.insts[i];
      if (!inst.is_branch()) continue;
      if (i + 1 != bb.insts.size()) {
        report.error("branch-position",
                     "branch is followed by " +
                         std::to_string(bb.insts.size() - i - 1) +
                         " instruction(s); a branch must end its block",
                     b, inst.to_string());
      }
      if (inst.op == Opcode::kB) {
        if (!inst.uses.empty()) {
          report.error("branch-operand",
                       "unconditional branch must not read registers", b,
                       inst.to_string());
        }
      } else if (inst.uses.size() != 1 ||
                 inst.uses[0].cls != RegClass::kCr) {
        report.error("branch-operand",
                     "conditional branch must read exactly one condition "
                     "register",
                     b, inst.to_string());
      }
      if (inst.target.empty()) {
        report.error("branch-no-target", "branch has no target label", b,
                     inst.to_string());
      } else if (std::none_of(prog.blocks.begin(), prog.blocks.end(),
                              [&](const BasicBlock& other) {
                                return other.label == inst.target;
                              })) {
        report.warning("branch-target-unknown",
                       "target '" + inst.target +
                           "' is not defined in this program (external or "
                           "missing)",
                       b, inst.to_string());
      }
    }
  }
}

void lint_labels(const Program& prog, Report& report) {
  std::map<std::string, int> first_block;
  for (int b = 0; b < static_cast<int>(prog.blocks.size()); ++b) {
    const std::string& label = prog.blocks[static_cast<std::size_t>(b)].label;
    const auto [it, inserted] = first_block.emplace(label, b);
    if (!inserted) {
      report.error("duplicate-label",
                   "label also names block " + std::to_string(it->second), b,
                   label);
    }
  }
}

/// Reachability from block 0 under the same successor rules the CFG uses:
/// an unconditional branch goes only to its target; a conditional branch
/// adds the fall-through edge; no branch falls through.  Re-derived here so
/// the lint does not trust src/cfg.
void lint_reachability(const Program& prog, Report& report) {
  const int n = static_cast<int>(prog.blocks.size());
  if (n == 0) return;
  std::vector<bool> reached(static_cast<std::size_t>(n), false);
  std::vector<int> work{0};
  reached[0] = true;
  while (!work.empty()) {
    const int b = work.back();
    work.pop_back();
    const BasicBlock& bb = prog.blocks[static_cast<std::size_t>(b)];
    const Instruction* last = bb.insts.empty() ? nullptr : &bb.insts.back();
    const bool has_branch = last != nullptr && last->is_branch();
    if (has_branch) {
      for (int t = 0; t < n; ++t) {
        if (prog.blocks[static_cast<std::size_t>(t)].label == last->target &&
            !reached[static_cast<std::size_t>(t)]) {
          reached[static_cast<std::size_t>(t)] = true;
          work.push_back(t);
        }
      }
    }
    const bool falls_through = !has_branch || last->op == Opcode::kBt ||
                               last->op == Opcode::kBf;
    if (falls_through && b + 1 < n && !reached[static_cast<std::size_t>(b + 1)]) {
      reached[static_cast<std::size_t>(b + 1)] = true;
      work.push_back(b + 1);
    }
  }
  for (int b = 0; b < n; ++b) {
    if (!reached[static_cast<std::size_t>(b)]) {
      report.warning("unreachable-block",
                     "no control-flow path from the entry block reaches it", b,
                     prog.blocks[static_cast<std::size_t>(b)].label);
    }
  }
}

void lint_dataflow(const Program& prog, Report& report) {
  // Flat walk in layout order.  Each register's access history decides
  // use-before-def (first access is a read, a write exists later) and
  // dead-write (write followed by write with no read in between).
  struct Access {
    bool is_def;
    int block;
    const Instruction* inst;
  };
  std::map<int, std::vector<Access>> history;
  std::map<int, Reg> reg_of;
  for (int b = 0; b < static_cast<int>(prog.blocks.size()); ++b) {
    for (const Instruction& inst :
         prog.blocks[static_cast<std::size_t>(b)].insts) {
      // Reads happen before writes within one instruction (update-form
      // loads/stores read the base they then overwrite).
      for (const Reg& r : inst.uses) {
        reg_of.emplace(reg_key(r), r);
        history[reg_key(r)].push_back(Access{false, b, &inst});
      }
      for (const Reg& r : inst.defs) {
        reg_of.emplace(reg_key(r), r);
        history[reg_key(r)].push_back(Access{true, b, &inst});
      }
    }
  }
  for (const auto& [key, accesses] : history) {
    const std::string reg = reg_of.at(key).to_string();
    const bool ever_defined =
        std::any_of(accesses.begin(), accesses.end(),
                    [](const Access& a) { return a.is_def; });
    if (!accesses.empty() && !accesses.front().is_def && ever_defined) {
      const Access& first = accesses.front();
      report.warning("use-before-def",
                     reg +
                         " is read before its first write in this program "
                         "(live-in being shadowed, or a loop-carried value)",
                     first.block, first.inst->to_string());
    }
    for (std::size_t i = 0; i + 1 < accesses.size(); ++i) {
      // Same-block only: across blocks the two writes may sit on mutually
      // exclusive CFG paths, which this flat walk cannot see.
      if (accesses[i].is_def && accesses[i + 1].is_def &&
          accesses[i].block == accesses[i + 1].block &&
          accesses[i].inst != accesses[i + 1].inst) {
        report.warning("dead-write",
                       reg + " is overwritten by '" +
                           accesses[i + 1].inst->to_string() +
                           "' before anything reads it",
                       accesses[i].block, accesses[i].inst->to_string());
      }
    }
  }
}

}  // namespace

Report lint_program(const Program& prog) {
  Report report;
  lint_branches(prog, report);
  lint_labels(prog, report);
  lint_reachability(prog, report);
  lint_dataflow(prog, report);
  return report;
}

}  // namespace ais::verify
