// Top-level verification entry points: the oracle run by `aislint`, by
// `aisc --verify`, and by the test suites after every compile.
//
// Everything here re-derives its ground truth from the IR via
// verify/ir_deps.hpp — it shares no dependence-analysis code with the
// scheduler's pipeline (ir/depbuild.cpp), so a bug there cannot
// self-certify.
#pragma once

#include <vector>

#include "graph/depgraph.hpp"
#include "ir/instruction.hpp"
#include "machine/machine_model.hpp"
#include "verify/ir_deps.hpp"
#include "verify/report.hpp"
#include "verify/schedule_check.hpp"

namespace ais::verify {

struct VerifyOptions {
  /// Hardware lookahead window W the emitted code targets.
  int window = 1;
  /// Attempt an optimality certificate (restricted machines only).
  bool check_optimality = false;
  /// Brute-force enumeration budget for the certificate.
  std::size_t enumeration_cap = 50000;
  /// Mirrors DepBuildOptions::disambiguate_memory.
  bool disambiguate_memory = true;
};

/// Builds a DepGraph from independently re-derived dependences; node i is
/// flat instruction i of `trace`.  The verifier's own program representation
/// (never touches ir/depbuild.cpp).
DepGraph graph_from_ir(const Trace& trace, const MachineModel& machine,
                       const std::vector<IrDep>& deps);

/// End-to-end check that `scheduled` is a legal anticipatory compilation of
/// `original`: same blocks with the same labels, every block a permutation
/// of its original instructions (nothing crosses a block boundary), branches
/// still last, and every re-derived dependence ordered correctly in the
/// emitted stream.  With opts.check_optimality set, additionally simulates
/// the emitted priority list at opts.window and certifies its completion.
/// Codes: "block-structure", "cross-block-motion", "branch-position",
/// "dep-order", "optimality*".
Report check_emitted(const Trace& original, const Trace& scheduled,
                     const MachineModel& machine,
                     const VerifyOptions& opts = {});

/// Checks a planning permutation and its per-block split (the shape
/// Algorithm Lookahead emits): coverage + dependences (check_order), the
/// window constraint (check_window, warning severity — the planning order
/// is advisory and may promise more overlap than a W-deep window realizes),
/// and that `per_block[b]` is exactly the block-b subpermutation of
/// `order`.
/// Codes: "order-coverage", "dep-order", "window-span" (warning),
/// "subpermutation".
Report check_planning(const DepGraph& g, const std::vector<NodeId>& order,
                      const std::vector<std::vector<NodeId>>& per_block,
                      int window);

}  // namespace ais::verify
