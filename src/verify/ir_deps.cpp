#include "verify/ir_deps.hpp"

namespace ais::verify {
namespace {

/// Flat view of one instruction: pointer plus its block index.
struct FlatInst {
  const Instruction* inst;
  int block;
};

std::vector<FlatInst> flatten(const Trace& trace) {
  std::vector<FlatInst> flat;
  for (int b = 0; b < static_cast<int>(trace.blocks.size()); ++b) {
    for (const Instruction& inst :
         trace.blocks[static_cast<std::size_t>(b)].insts) {
      flat.push_back(FlatInst{&inst, b});
    }
  }
  return flat;
}

bool writes(const Instruction& inst, const Reg& r) {
  for (const Reg& d : inst.defs) {
    if (d == r) return true;
  }
  return false;
}

bool reads(const Instruction& inst, const Reg& r) {
  for (const Reg& u : inst.uses) {
    if (u == r) return true;
  }
  return false;
}

/// True when no instruction strictly between `lo` and `hi` writes `r`.
bool no_write_between(const std::vector<FlatInst>& flat, int lo, int hi,
                      const Reg& r) {
  for (int k = lo + 1; k < hi; ++k) {
    if (writes(*flat[static_cast<std::size_t>(k)].inst, r)) return false;
  }
  return true;
}

/// Region-tag disambiguation, restated from first principles: references
/// conflict when at least one writes and their regions may overlap.  An
/// empty tag is an unknown region that may overlap anything; two distinct
/// non-empty tags are disjoint by definition.
bool may_alias(const MemRef& a, const MemRef& b, bool disambiguate) {
  if (!disambiguate) return true;
  if (a.tag.empty() || b.tag.empty()) return true;
  return a.tag == b.tag;
}

int result_latency(const Instruction& inst, const MachineModel& machine) {
  return machine.timing(op_class(inst.op)).latency;
}

}  // namespace

const char* dep_kind_name(DepKind kind) {
  switch (kind) {
    case DepKind::kTrue: return "true";
    case DepKind::kAnti: return "anti";
    case DepKind::kOutput: return "output";
    case DepKind::kMemory: return "memory";
    case DepKind::kControl: return "control";
  }
  return "unknown";
}

std::vector<IrDep> derive_trace_deps(const Trace& trace,
                                     const MachineModel& machine,
                                     bool disambiguate_memory) {
  const std::vector<FlatInst> flat = flatten(trace);
  const int n = static_cast<int>(flat.size());
  std::vector<IrDep> deps;

  for (int j = 0; j < n; ++j) {
    const Instruction& b = *flat[static_cast<std::size_t>(j)].inst;
    for (int i = 0; i < j; ++i) {
      const Instruction& a = *flat[static_cast<std::size_t>(i)].inst;

      // True dependence: i is the last writer of a register j reads.
      for (const Reg& r : b.uses) {
        if (writes(a, r) && no_write_between(flat, i, j, r)) {
          deps.push_back(IrDep{i, j, DepKind::kTrue,
                               result_latency(a, machine)});
          break;  // one edge per pair suffices for this kind
        }
      }

      // Anti dependence: i reads a register j overwrites before any other
      // writer intervenes.  When i also writes the register the pair is
      // covered by the output rule below (the write supersedes the read).
      for (const Reg& r : b.defs) {
        if (reads(a, r) && !writes(a, r) && no_write_between(flat, i, j, r)) {
          deps.push_back(IrDep{i, j, DepKind::kAnti, 0});
          break;
        }
      }

      // Output dependence: consecutive writers of the same register.
      for (const Reg& r : b.defs) {
        if (writes(a, r) && no_write_between(flat, i, j, r)) {
          deps.push_back(IrDep{i, j, DepKind::kOutput, 0});
          break;
        }
      }

      // Memory ordering: all conflicting pairs, not just adjacent ones
      // (region tags are may-alias information, so no reference kills
      // earlier ones).
      if (a.is_mem() && b.is_mem() && !(a.is_load() && b.is_load()) &&
          may_alias(*a.mem, *b.mem, disambiguate_memory)) {
        const int latency =
            (a.is_store() && b.is_load()) ? result_latency(a, machine) : 0;
        deps.push_back(IrDep{i, j, DepKind::kMemory, latency});
      }

      // Control dependence: everything in a block precedes its branch.
      if (b.is_branch() &&
          flat[static_cast<std::size_t>(i)].block ==
              flat[static_cast<std::size_t>(j)].block) {
        deps.push_back(IrDep{i, j, DepKind::kControl, 0});
      }
    }
  }
  return deps;
}

}  // namespace ais::verify
