// IR lints for toy-ISA assembly programs (the `aislint` front half).
//
// Structural problems are errors (they break scheduling or control flow):
//   branch-position       a branch that is not the final instruction
//   branch-operand        BT/BF without a condition-register source, or an
//                         unconditional B with operands
//   branch-no-target      a branch with an empty target label
//   duplicate-label       two blocks sharing a label
//
// Suspicious-but-legal patterns are warnings (fragments and loop bodies
// routinely trigger them):
//   branch-target-unknown target label not defined in this program
//   unreachable-block     block with no path from the entry block
//   use-before-def        register read before its first write, but written
//                         later (a live-in being shadowed, or a loop carry)
//   dead-write            register written, then overwritten in the same
//                         block with no read in between
//   empty-block           block with no instructions
#pragma once

#include "ir/asm_parser.hpp"
#include "verify/report.hpp"

namespace ais::verify {

Report lint_program(const Program& prog);

}  // namespace ais::verify
