// Schedule-level invariant checks, independent of src/core.
//
// These re-verify emitted schedules from scratch: occupancy is rebuilt from
// per-node (start, unit) data instead of trusting Schedule's internal lane
// bookkeeping, the window bound is a fresh single-pass max-span scan rather
// than core/legality's pair enumeration, and the optimality certificate is
// cross-checked against the brute-force oracles in src/baselines.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/deadlines.hpp"
#include "core/schedule.hpp"
#include "graph/depgraph.hpp"
#include "graph/nodeset.hpp"
#include "machine/machine_model.hpp"
#include "verify/report.hpp"

namespace ais::verify {

/// Checks that `order` lists every node of `g` exactly once and respects
/// every distance-0 dependence edge (from before to).
/// Codes: "order-coverage", "dep-order".
Report check_order(const DepGraph& g, const std::vector<NodeId>& order);

/// Full re-check of a timed schedule: completeness, per-unit exclusivity
/// (occupancy rebuilt from scratch), class-major unit typing, issue width,
/// and distance-0 dependences with latencies.
/// Codes: "incomplete", "unit-overlap", "unit-class", "issue-width",
/// "dep-latency".
Report check_schedule(const Schedule& s, const MachineModel& machine);

/// Largest window-constraint violation of `perm` (Definition 2.2): an
/// inversion (i, j) — perm[i] in a later block than perm[j], i < j — must
/// satisfy j - i + 1 <= W.  Single forward pass.  `severity` is kError for
/// a realized schedule permutation (a hardware window of W cannot have
/// produced it); check_planning passes kWarning because the scheduler's
/// *planning* order is advisory — Merge may pack more than W new-block
/// nodes into early idle slots, and the emitted priority list remains
/// legal regardless (the hardware realizes only window-feasible overlap).
/// Code: "window-span".
Report check_window(const DepGraph& g, const std::vector<NodeId>& perm,
                    int window, Severity severity = Severity::kError);

/// Procedure Merge's idle-slot-fill invariant: in the merged schedule, every
/// old node still completes by min(its pre-merge deadline, t_old) — new
/// nodes may only fill slots the retained suffix left idle, never displace
/// it.  `deadlines` are the deadlines in force for `old_nodes` before the
/// merge.
/// Codes: "incomplete", "merge-displaced".
Report check_merge_fill(const Schedule& merged, const NodeSet& old_nodes,
                        const DeadlineMap& deadlines, Time t_old);

/// Outcome of an optimality-certificate attempt.
struct OptimalityCertificate {
  enum class Status {
    kCertified,   // achieved == a proven lower bound or brute-force optimum
    kUnknown,     // heuristic regime or enumeration cap exceeded
    kSuboptimal,  // achieved > brute-force optimum: true, but not a bug —
                  // Algorithm Lookahead is only optimal-within-1 on traces
    kViolated,    // achieved beats a valid lower bound: the simulator or
                  // the accounting lied
  };
  Status status = Status::kUnknown;
  Time achieved = 0;
  Time bound = 0;      // tightest bound established
  std::string method;  // "critical-path", "serial-work", "bruteforce", ...
};

/// Certificate for a trace completion time `achieved` at window `window`.
/// Always checks the critical-path and work lower bounds; on restricted
/// machines (0/1 latencies, unit exec times, one FU — the paper's provable
/// case) additionally cross-checks the brute-force trace optimum when the
/// enumeration fits under `enumeration_cap`.
OptimalityCertificate certify_trace_completion(
    const DepGraph& g, const MachineModel& machine, int window, Time achieved,
    std::size_t enumeration_cap = 50000);

/// Certificate for a single-block, single-unit makespan via the
/// branch-and-bound oracle; kUnknown for blocks larger than `max_nodes`.
OptimalityCertificate certify_block_makespan(const DepGraph& g,
                                             const NodeSet& block,
                                             Time achieved,
                                             std::size_t max_nodes = 12);

/// Folds a certificate into a report: kViolated becomes an "optimality"
/// error, kSuboptimal an "optimality-gap" warning, kCertified / kUnknown
/// notes.
void report_certificate(Report& report, const OptimalityCertificate& cert);

}  // namespace ais::verify
