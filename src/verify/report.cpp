#include "verify/report.hpp"

#include <sstream>

#include "obs/obs.hpp"

namespace ais::verify {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << severity_name(severity) << '[' << code << ']';
  if (block >= 0) os << " block " << block;
  if (!subject.empty()) os << " (" << subject << ')';
  os << ": " << message;
  return os.str();
}

void Report::add(Severity severity, std::string code, std::string message,
                 int block, std::string subject) {
  if (severity == Severity::kError) ++num_errors_;
  if (severity == Severity::kWarning) ++num_warnings_;
  // Telemetry: findings per diagnostic code ("verify.diag.<code>").
  AIS_OBS_COUNT_DYN(std::string(obs::ctr::kVerifyDiagPrefix) + code, 1);
  diags_.push_back(Diagnostic{severity, std::move(code), std::move(message),
                              block, std::move(subject)});
}

void Report::error(std::string code, std::string message, int block,
                   std::string subject) {
  add(Severity::kError, std::move(code), std::move(message), block,
      std::move(subject));
}

void Report::warning(std::string code, std::string message, int block,
                     std::string subject) {
  add(Severity::kWarning, std::move(code), std::move(message), block,
      std::move(subject));
}

void Report::note(std::string code, std::string message, int block,
                  std::string subject) {
  add(Severity::kNote, std::move(code), std::move(message), block,
      std::move(subject));
}

void Report::merge(const Report& other) {
  for (const Diagnostic& d : other.diags_) {
    add(d.severity, d.code, d.message, d.block, d.subject);
  }
}

bool Report::has(std::string_view code) const {
  for (const Diagnostic& d : diags_) {
    if (d.code == code) return true;
  }
  return false;
}

std::string Report::to_string() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) os << d.to_string() << '\n';
  return os.str();
}

}  // namespace ais::verify
