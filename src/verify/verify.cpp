#include "verify/verify.hpp"

#include <map>
#include <string>

#include "obs/obs.hpp"
#include "sim/lookahead_sim.hpp"

namespace ais::verify {
namespace {

std::vector<const Instruction*> flatten(const Trace& trace) {
  std::vector<const Instruction*> flat;
  for (const BasicBlock& bb : trace.blocks) {
    for (const Instruction& inst : bb.insts) flat.push_back(&inst);
  }
  return flat;
}

/// Matches each scheduled instruction to a distinct original flat index
/// within the same block (textual identity; equal renderings are matched in
/// order, which is sound because identical instructions are interchangeable
/// in any schedule).  Returns false and diagnoses when matching fails.
bool match_blocks(const Trace& original, const Trace& scheduled,
                  std::vector<int>& scheduled_to_original, Report& report) {
  int flat_base = 0;
  bool ok = true;
  for (int b = 0; b < static_cast<int>(original.blocks.size()); ++b) {
    const BasicBlock& obb = original.blocks[static_cast<std::size_t>(b)];
    const BasicBlock& sbb = scheduled.blocks[static_cast<std::size_t>(b)];
    if (obb.label != sbb.label) {
      report.error("block-structure",
                   "label changed from '" + obb.label + "' to '" + sbb.label +
                       "'",
                   b, sbb.label);
      ok = false;
    }
    // Unmatched original slots, by rendering, in block order.
    std::map<std::string, std::vector<int>> free_slots;
    for (int i = 0; i < static_cast<int>(obb.insts.size()); ++i) {
      free_slots[obb.insts[static_cast<std::size_t>(i)].to_string()]
          .push_back(flat_base + i);
    }
    for (const Instruction& inst : sbb.insts) {
      const std::string text = inst.to_string();
      auto it = free_slots.find(text);
      if (it == free_slots.end() || it->second.empty()) {
        // Does the instruction exist (unconsumed) in some other block?
        bool elsewhere = false;
        for (const BasicBlock& other : original.blocks) {
          if (&other == &obb) continue;
          for (const Instruction& cand : other.insts) {
            if (cand.to_string() == text) elsewhere = true;
          }
        }
        report.error(elsewhere ? "cross-block-motion" : "block-structure",
                     elsewhere
                         ? "instruction belongs to a different block of the "
                           "original trace"
                         : "instruction does not occur (often enough) in the "
                           "original block",
                     b, text);
        ok = false;
        scheduled_to_original.push_back(-1);
        continue;
      }
      scheduled_to_original.push_back(it->second.front());
      it->second.erase(it->second.begin());
    }
    for (const auto& [text, slots] : free_slots) {
      for (std::size_t k = 0; k < slots.size(); ++k) {
        report.error("block-structure",
                     "original instruction is missing from the scheduled "
                     "block",
                     b, text);
        ok = false;
      }
    }
    flat_base += static_cast<int>(obb.insts.size());
  }
  return ok;
}

}  // namespace

DepGraph graph_from_ir(const Trace& trace, const MachineModel& machine,
                       const std::vector<IrDep>& deps) {
  DepGraph g;
  std::size_t num_insts = 0;
  for (const BasicBlock& bb : trace.blocks) num_insts += bb.insts.size();
  g.reserve(num_insts);
  int b = 0;
  for (const BasicBlock& bb : trace.blocks) {
    for (const Instruction& inst : bb.insts) {
      const OpTiming& t = machine.timing(op_class(inst.op));
      g.add_node(inst.to_string(), t.exec_time, t.fu_class, b);
    }
    ++b;
  }
  // Collapse multiple dependence kinds per pair to the strictest latency.
  std::map<std::pair<int, int>, int> strongest;
  for (const IrDep& d : deps) {
    auto [it, inserted] = strongest.emplace(std::make_pair(d.from, d.to),
                                            d.latency);
    if (!inserted) it->second = std::max(it->second, d.latency);
  }
  for (const auto& [pair, latency] : strongest) {
    g.add_edge(static_cast<NodeId>(pair.first),
               static_cast<NodeId>(pair.second), latency, /*distance=*/0);
  }
  return g;
}

Report check_emitted(const Trace& original, const Trace& scheduled,
                     const MachineModel& machine, const VerifyOptions& opts) {
  AIS_OBS_SPAN("verify.emitted");
  Report report;
  if (original.blocks.size() != scheduled.blocks.size()) {
    report.error("block-structure",
                 "trace has " + std::to_string(scheduled.blocks.size()) +
                     " blocks, original has " +
                     std::to_string(original.blocks.size()));
    return report;
  }

  // Branches must still terminate their blocks.
  for (int b = 0; b < static_cast<int>(scheduled.blocks.size()); ++b) {
    const BasicBlock& bb = scheduled.blocks[static_cast<std::size_t>(b)];
    for (std::size_t i = 0; i + 1 < bb.insts.size(); ++i) {
      if (bb.insts[i].is_branch()) {
        report.error("branch-position",
                     "branch was scheduled before the end of its block", b,
                     bb.insts[i].to_string());
      }
    }
  }

  std::vector<int> scheduled_to_original;
  if (!match_blocks(original, scheduled, scheduled_to_original, report)) {
    return report;  // dependence positions are meaningless without a bijection
  }

  // Every re-derived dependence must point forward in the emitted stream.
  const std::size_t n = scheduled_to_original.size();
  std::vector<int> position(n, -1);
  for (std::size_t p = 0; p < n; ++p) {
    position[static_cast<std::size_t>(scheduled_to_original[p])] =
        static_cast<int>(p);
  }
  const std::vector<const Instruction*> flat = flatten(original);
  const std::vector<IrDep> deps =
      derive_trace_deps(original, machine, opts.disambiguate_memory);
  for (const IrDep& d : deps) {
    if (position[static_cast<std::size_t>(d.from)] >
        position[static_cast<std::size_t>(d.to)]) {
      report.error(
          "dep-order",
          std::string(dep_kind_name(d.kind)) + " dependence '" +
              flat[static_cast<std::size_t>(d.from)]->to_string() + "' -> '" +
              flat[static_cast<std::size_t>(d.to)]->to_string() +
              "' points backwards in the emitted code",
          -1, flat[static_cast<std::size_t>(d.to)]->to_string());
    }
  }
  if (!report.ok()) return report;

  if (opts.check_optimality) {
    // Simulate the emitted priority list on the verifier's own graph and
    // certify its completion time.
    const DepGraph g = graph_from_ir(original, machine, deps);
    std::vector<NodeId> list;
    for (const int orig : scheduled_to_original) {
      list.push_back(static_cast<NodeId>(orig));
    }
    SimScratch scratch;
    const Time achieved =
        simulated_completion(g, machine, list, opts.window, scratch);
    report_certificate(report,
                       certify_trace_completion(g, machine, opts.window,
                                                achieved,
                                                opts.enumeration_cap));
  }
  return report;
}

Report check_planning(const DepGraph& g, const std::vector<NodeId>& order,
                      const std::vector<std::vector<NodeId>>& per_block,
                      int window) {
  AIS_OBS_SPAN("verify.planning");
  Report report;
  report.merge(check_order(g, order));
  // Advisory severity: the planning order may promise more overlap than a
  // W-deep window can realize (see check_window's contract) — the emitted
  // per-block code stays legal either way.
  report.merge(check_window(g, order, window, Severity::kWarning));

  // per_block[b] must be exactly the block-b subsequence of `order`.
  std::vector<std::vector<NodeId>> expected(per_block.size());
  bool blocks_in_range = true;
  for (const NodeId id : order) {
    const int b = id < g.num_nodes() ? g.node(id).block : -1;
    if (b < 0 || b >= static_cast<int>(expected.size())) {
      report.error("subpermutation",
                   "node " + std::to_string(id) + " has block index " +
                       std::to_string(b) + ", outside the emitted blocks");
      blocks_in_range = false;
      continue;
    }
    expected[static_cast<std::size_t>(b)].push_back(id);
  }
  if (blocks_in_range) {
    for (std::size_t b = 0; b < per_block.size(); ++b) {
      if (per_block[b] != expected[b]) {
        report.error("subpermutation",
                     "emitted block order is not the planning order's "
                     "subpermutation",
                     static_cast<int>(b));
      }
    }
  }
  return report;
}

}  // namespace ais::verify
