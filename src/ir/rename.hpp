// Local register renaming: breaks anti (WAR) and output (WAW) dependences
// inside a block by giving every non-final definition of a register a fresh
// temporary.
//
// The paper's related work (§6) notes that schedulers either carry
// allocator-induced anti-dependences in the graph (Gibbons-Muchnick) or
// assume they were avoided upstream; this pass realizes the latter.  The
// block's register *interface* is preserved exactly: the last write to each
// architectural register still lands in that register, and reads of
// incoming values still read it — so cross-block dataflow, memory and
// branch behaviour are untouched (verified by the interpreter oracle).
#pragma once

#include "ir/instruction.hpp"

namespace ais {

struct RenameOptions {
  /// Temporaries are allocated upward from this index in each register
  /// file; program registers are assumed to live below it.  Condition
  /// registers are never renamed (the file is tiny and branch-coupled).
  std::uint8_t temp_base = 128;
};

struct RenameStats {
  /// Definitions moved to temporaries (= WAW chains broken).
  int defs_renamed = 0;
  /// Renaming stopped early because a register file ran out of temps.
  bool pool_exhausted = false;
};

/// Renames one block.  Instruction count and order are unchanged.
BasicBlock rename_block(const BasicBlock& bb, const RenameOptions& opts = {},
                        RenameStats* stats = nullptr);

/// Renames every block of a trace independently.
Trace rename_trace(const Trace& trace, const RenameOptions& opts = {},
                   RenameStats* stats = nullptr);

}  // namespace ais
