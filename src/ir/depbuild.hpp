// Dependence analysis: IR -> DepGraph.
//
// Builds the <latency, distance>-labelled dependence graph (paper §2, §5)
// from a basic block, a trace, or a loop body:
//
//  * true (RAW) register dependences carry the producer's latency from the
//    machine model; anti (WAR) and output (WAW) dependences carry latency 0,
//  * memory dependences are disambiguated by symbolic region tags
//    (store→load true dependences carry the store latency),
//  * control dependences force every instruction of a block to precede the
//    block-ending branch (latency 0), exactly as in Fig. 3,
//  * loop-carried dependences (distance 1) are found by analysing two
//    concatenated copies of the body and folding copy-1 → copy-2 edges.
//
// Note on traces: register/memory dependences are computed across block
// boundaries as well (the w→z edge of Fig. 2 is such an edge), but control
// dependences never cross blocks — the lookahead hardware is responsible
// for rolling back eagerly-executed instructions of a mispredicted block.
#pragma once

#include "graph/depgraph.hpp"
#include "ir/instruction.hpp"
#include "machine/machine_model.hpp"

namespace ais {

struct DepBuildOptions {
  /// Add latency-0 edges from every instruction to the block-ending branch.
  bool control_deps = true;
  /// Treat distinct non-empty memory tags as provably disjoint regions.
  bool disambiguate_memory = true;
};

/// Dependence graph of a single basic block (all nodes have block = 0).
DepGraph build_block_graph(const BasicBlock& bb, const MachineModel& machine,
                           const DepBuildOptions& opts = {});

/// Dependence graph of a trace; node i of block b gets NodeInfo::block = b.
DepGraph build_trace_graph(const Trace& trace, const MachineModel& machine,
                           const DepBuildOptions& opts = {});

/// Dependence graph of a loop body: the trace graph plus loop-carried
/// (distance-1) edges between iterations.
DepGraph build_loop_graph(const Loop& loop, const MachineModel& machine,
                          const DepBuildOptions& opts = {});

}  // namespace ais
