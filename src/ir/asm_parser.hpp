// Line-oriented parser for the toy assembly used by examples and tests.
//
// Grammar (one instruction per line; '#' or ';' start comments):
//
//   block CL.18:          -- starts a new basic block with that label
//     LDU r6, x[r7+4]     -- load with base-register update, region "x"
//     STU y[r5+4], r0     -- store with update
//     CMP c1, r6          -- compare (immediate operands may be appended
//                            and are ignored: "CMP c1, r6, 0" also parses)
//     MUL r0, r6, r0
//     BT  c1, CL.1        -- conditional branch on condition register c1
//
// Memory operands are  tag[rB+off]  or  [rB+off]  (empty tag = may alias
// anything).  Registers are rN (general), fN (float), cN (condition).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/instruction.hpp"

namespace ais {

struct Program {
  std::vector<BasicBlock> blocks;
};

/// Parses a whole program.  Throws no exceptions; malformed input is a hard
/// error with the offending line number (assembly here is test fixture data,
/// not user input).
Program parse_program(const std::string& text);

/// Parses a single (possibly unlabelled) basic block.
BasicBlock parse_block(const std::string& text);

/// Non-aborting variant for untrusted input (the aisd request path): returns
/// nullopt with *error set instead of terminating the process on malformed
/// text.  Successful parses are identical to parse_program.
std::optional<Program> parse_program_or_error(const std::string& text,
                                              std::string* error);

}  // namespace ais
