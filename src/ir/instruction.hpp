// A small RS/6000-flavoured RISC IR.
//
// The paper evaluates on RS/6000 target instructions (Fig. 3); this IR is a
// toy rendition with enough structure for realistic dependence analysis:
// three register files (general, floating, condition), load/store with
// optional base-register update (L4U/ST4U in the paper), and symbolic
// memory region tags for disambiguation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "machine/machine_model.hpp"

namespace ais {

enum class RegClass : std::uint8_t { kGpr, kFpr, kCr };

struct Reg {
  RegClass cls = RegClass::kGpr;
  std::uint8_t idx = 0;

  bool operator==(const Reg&) const = default;
  /// "r5", "f2" or "c1".
  std::string to_string() const;
};

inline Reg gpr(std::uint8_t i) { return Reg{RegClass::kGpr, i}; }
inline Reg fpr(std::uint8_t i) { return Reg{RegClass::kFpr, i}; }
inline Reg cr(std::uint8_t i) { return Reg{RegClass::kCr, i}; }

enum class Opcode : std::uint8_t {
  kLi,    // load immediate
  kMov,
  kAdd, kSub, kAnd, kOr, kXor, kShl, kShr,
  kMul, kDiv,
  kLoad, kLoadU,     // LoadU updates the base register (L4U)
  kStore, kStoreU,   // StoreU updates the base register (ST4U)
  kFAdd, kFMul, kFDiv, kFMa,
  kCmp,              // writes a condition register
  kBt, kBf,          // conditional branches on a condition register
  kB,                // unconditional branch
  kNop,
};

const char* opcode_name(Opcode op);
OpClass op_class(Opcode op);
bool opcode_is_branch(Opcode op);

/// A memory operand: base register, constant displacement and a symbolic
/// region tag.  Two references conflict when at least one is a store and
/// their tags may alias (equal tags, or either tag empty = "may be
/// anything").  Distinct non-empty tags are disjoint regions by definition.
struct MemRef {
  Reg base;
  int offset = 0;
  std::string tag;  // empty = unknown region
};

class Instruction {
 public:
  Opcode op = Opcode::kNop;

  /// Registers written / read.  Update-form loads/stores list the base
  /// register in both defs and uses.
  std::vector<Reg> defs;
  std::vector<Reg> uses;

  std::optional<MemRef> mem;

  /// Immediate operand (LI value, second source of immediate-form ALU ops,
  /// comparison constant).  Irrelevant to scheduling; the interpreter uses
  /// it to give programs deterministic semantics.
  std::int64_t imm = 0;

  /// Branch target label (branches only; informational).
  std::string target;

  bool is_branch() const { return opcode_is_branch(op); }
  bool is_load() const { return op == Opcode::kLoad || op == Opcode::kLoadU; }
  bool is_store() const {
    return op == Opcode::kStore || op == Opcode::kStoreU;
  }
  bool is_mem() const { return mem.has_value(); }

  /// Assembly-ish rendering, e.g. "LDU r6, x[r7+4]".
  std::string to_string() const;

  // Factory helpers (keep examples and workload generators readable).
  static Instruction li(Reg d, std::int64_t imm = 0);
  static Instruction mov(Reg d, Reg s);
  static Instruction alu(Opcode op, Reg d, Reg a, Reg b);
  static Instruction alu_imm(Opcode op, Reg d, Reg a, std::int64_t imm = 0);
  static Instruction load(Reg d, MemRef m, bool update = false);
  static Instruction store(MemRef m, Reg s, bool update = false);
  static Instruction fma(Reg d, Reg a, Reg b, Reg c);
  static Instruction cmp(Reg crd, Reg a, std::int64_t imm = 0);
  static Instruction branch(Opcode op, Reg crs, std::string target);
  static Instruction jump(std::string target);
  static Instruction nop();
};

/// Single-entry single-exit instruction sequence.  At most one branch, and
/// only as the final instruction (checked by DependenceAnalyzer).
struct BasicBlock {
  std::string label;
  std::vector<Instruction> insts;
};

/// A sequence of basic blocks along one control-flow path (paper footnote 2).
struct Trace {
  std::vector<BasicBlock> blocks;

  std::size_t num_insts() const {
    std::size_t n = 0;
    for (const auto& bb : blocks) n += bb.insts.size();
    return n;
  }
};

/// A trace enclosed in a loop: the last block branches back to the first.
struct Loop {
  Trace body;
};

}  // namespace ais
