#include "ir/interp.hpp"

#include "support/assert.hpp"
#include "support/prng.hpp"

namespace ais {
namespace {

/// Deterministic "uninitialized memory" contents.
std::int64_t phantom_value(const std::string& tag, std::int64_t addr) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^ static_cast<std::uint64_t>(addr);
  for (const char ch : tag) h = (h ^ static_cast<std::uint64_t>(ch)) * 31;
  return static_cast<std::int64_t>(splitmix64(h));
}

std::uint64_t u(std::int64_t v) { return static_cast<std::uint64_t>(v); }
std::int64_t s(std::uint64_t v) { return static_cast<std::int64_t>(v); }

}  // namespace

std::int64_t InterpState::get(Reg r) const {
  switch (r.cls) {
    case RegClass::kGpr: return gpr_[r.idx];
    case RegClass::kFpr: return fpr_[r.idx];
    case RegClass::kCr: return cr_[r.idx % cr_.size()];
  }
  return 0;
}

void InterpState::set(Reg r, std::int64_t v) {
  switch (r.cls) {
    case RegClass::kGpr: gpr_[r.idx] = v; return;
    case RegClass::kFpr: fpr_[r.idx] = v; return;
    case RegClass::kCr: cr_[r.idx % cr_.size()] = v; return;
  }
}

std::int64_t InterpState::load(const std::string& tag,
                               std::int64_t addr) const {
  const auto it = memory_.find({tag, addr});
  return it == memory_.end() ? phantom_value(tag, addr) : it->second;
}

void InterpState::store(const std::string& tag, std::int64_t addr,
                        std::int64_t v) {
  memory_[{tag, addr}] = v;
}

bool InterpState::equal_architectural(const InterpState& other,
                                      std::uint8_t temp_base) const {
  for (std::size_t i = 0; i < temp_base; ++i) {
    if (gpr_[i] != other.gpr_[i] || fpr_[i] != other.fpr_[i]) return false;
  }
  return cr_ == other.cr_ && memory_ == other.memory_ &&
         last_branch_taken_ == other.last_branch_taken_;
}

InterpState InterpState::random(std::uint64_t seed) {
  Prng prng(seed);
  InterpState state;
  for (int i = 0; i < 256; ++i) {
    state.gpr_[static_cast<std::size_t>(i)] =
        prng.uniform(-1000, 1000);
    state.fpr_[static_cast<std::size_t>(i)] =
        prng.uniform(-1000, 1000);
  }
  for (auto& c : state.cr_) c = prng.uniform(0, 1);
  return state;
}

void execute(const Instruction& inst, InterpState& state) {
  auto src = [&](std::size_t i) { return state.get(inst.uses[i]); };

  switch (inst.op) {
    case Opcode::kLi:
      state.set(inst.defs[0], inst.imm);
      return;
    case Opcode::kMov:
      state.set(inst.defs[0], src(0));
      return;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kFAdd:
    case Opcode::kFMul:
    case Opcode::kFDiv: {
      const std::int64_t a = src(0);
      const std::int64_t b = inst.uses.size() > 1 ? src(1) : inst.imm;
      std::int64_t r = 0;
      switch (inst.op) {
        case Opcode::kAdd: r = s(u(a) + u(b)); break;
        case Opcode::kSub: r = s(u(a) - u(b)); break;
        case Opcode::kAnd: r = a & b; break;
        case Opcode::kOr: r = a | b; break;
        case Opcode::kXor: r = a ^ b; break;
        case Opcode::kShl: r = s(u(a) << (u(b) & 63)); break;
        case Opcode::kShr: r = s(u(a) >> (u(b) & 63)); break;
        case Opcode::kMul: r = s(u(a) * u(b)); break;
        case Opcode::kDiv: r = (b == 0) ? 0 : a / b; break;
        // FP ops: distinct deterministic mixers (dataflow fidelity only).
        case Opcode::kFAdd: r = s(u(a) + u(b) + 0x5f5eull); break;
        case Opcode::kFMul: r = s(u(a) * (u(b) | 1) + 0xfabull); break;
        case Opcode::kFDiv: r = (b == 0) ? 1 : s(u(a / b) ^ 0xd1ull); break;
        default: break;
      }
      state.set(inst.defs[0], r);
      return;
    }
    case Opcode::kFMa:
      state.set(inst.defs[0], s(u(src(0)) * (u(src(1)) | 1) + u(src(2))));
      return;
    case Opcode::kLoad:
    case Opcode::kLoadU: {
      const MemRef& m = *inst.mem;
      const std::int64_t addr = s(u(state.get(m.base)) + u(m.offset));
      state.set(inst.defs[0], state.load(m.tag, addr));
      if (inst.op == Opcode::kLoadU) state.set(m.base, addr);
      return;
    }
    case Opcode::kStore:
    case Opcode::kStoreU: {
      const MemRef& m = *inst.mem;
      const std::int64_t addr = s(u(state.get(m.base)) + u(m.offset));
      state.store(m.tag, addr, src(0));
      if (inst.op == Opcode::kStoreU) state.set(m.base, addr);
      return;
    }
    case Opcode::kCmp:
      state.set(inst.defs[0], src(0) == inst.imm ? 1 : 0);
      return;
    case Opcode::kBt:
      state.set_last_branch_taken(src(0) != 0);
      return;
    case Opcode::kBf:
      state.set_last_branch_taken(src(0) == 0);
      return;
    case Opcode::kB:
      state.set_last_branch_taken(true);
      return;
    case Opcode::kNop:
      return;
  }
  AIS_CHECK(false, "unhandled opcode in interpreter");
}

InterpState run_block(const BasicBlock& bb, InterpState state) {
  for (const Instruction& inst : bb.insts) execute(inst, state);
  return state;
}

InterpState run_trace(const Trace& trace, InterpState state) {
  for (const BasicBlock& bb : trace.blocks) state = run_block(bb, state);
  return state;
}

}  // namespace ais
