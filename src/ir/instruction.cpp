#include "ir/instruction.hpp"

#include <sstream>

#include "support/assert.hpp"

namespace ais {

std::string Reg::to_string() const {
  const char prefix = cls == RegClass::kGpr ? 'r'
                      : cls == RegClass::kFpr ? 'f'
                                              : 'c';
  return prefix + std::to_string(idx);
}

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kLi: return "LI";
    case Opcode::kMov: return "MOV";
    case Opcode::kAdd: return "ADD";
    case Opcode::kSub: return "SUB";
    case Opcode::kAnd: return "AND";
    case Opcode::kOr: return "OR";
    case Opcode::kXor: return "XOR";
    case Opcode::kShl: return "SHL";
    case Opcode::kShr: return "SHR";
    case Opcode::kMul: return "MUL";
    case Opcode::kDiv: return "DIV";
    case Opcode::kLoad: return "LD";
    case Opcode::kLoadU: return "LDU";
    case Opcode::kStore: return "ST";
    case Opcode::kStoreU: return "STU";
    case Opcode::kFAdd: return "FADD";
    case Opcode::kFMul: return "FMUL";
    case Opcode::kFDiv: return "FDIV";
    case Opcode::kFMa: return "FMA";
    case Opcode::kCmp: return "CMP";
    case Opcode::kBt: return "BT";
    case Opcode::kBf: return "BF";
    case Opcode::kB: return "B";
    case Opcode::kNop: return "NOP";
  }
  return "?";
}

OpClass op_class(Opcode op) {
  switch (op) {
    case Opcode::kLi:
    case Opcode::kMov: return OpClass::kMove;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr: return OpClass::kIntAlu;
    case Opcode::kMul: return OpClass::kIntMul;
    case Opcode::kDiv: return OpClass::kIntDiv;
    case Opcode::kLoad:
    case Opcode::kLoadU: return OpClass::kLoad;
    case Opcode::kStore:
    case Opcode::kStoreU: return OpClass::kStore;
    case Opcode::kFAdd: return OpClass::kFpAdd;
    case Opcode::kFMul:
    case Opcode::kFMa: return OpClass::kFpMul;
    case Opcode::kFDiv: return OpClass::kFpDiv;
    case Opcode::kCmp: return OpClass::kCompare;
    case Opcode::kBt:
    case Opcode::kBf:
    case Opcode::kB: return OpClass::kBranch;
    case Opcode::kNop: return OpClass::kNop;
  }
  return OpClass::kNop;
}

bool opcode_is_branch(Opcode op) {
  return op == Opcode::kBt || op == Opcode::kBf || op == Opcode::kB;
}

namespace {

std::string mem_to_string(const MemRef& m) {
  std::ostringstream os;
  if (!m.tag.empty()) os << m.tag;
  os << '[' << m.base.to_string();
  if (m.offset >= 0) {
    os << '+' << m.offset;
  } else {
    os << m.offset;
  }
  os << ']';
  return os.str();
}

}  // namespace

std::string Instruction::to_string() const {
  std::ostringstream os;
  os << opcode_name(op);
  if (is_store()) {
    os << ' ' << mem_to_string(*mem) << ", " << uses[0].to_string();
    return os.str();
  }
  if (is_load()) {
    os << ' ' << defs[0].to_string() << ", " << mem_to_string(*mem);
    return os.str();
  }
  if (is_branch()) {
    os << ' ';
    if (!uses.empty()) os << uses[0].to_string() << ", ";
    os << target;
    return os.str();
  }
  bool first = true;
  for (const Reg& d : defs) {
    os << (first ? " " : ", ") << d.to_string();
    first = false;
  }
  for (const Reg& u : uses) {
    os << (first ? " " : ", ") << u.to_string();
    first = false;
  }
  // Immediate-consuming forms print their constant so the rendering parses
  // back to the same instruction (aisc round-trips its own output).
  const bool imm_form =
      op == Opcode::kLi || op == Opcode::kCmp ||
      (uses.size() == 1 && defs.size() == 1 &&
       (op_class(op) == OpClass::kIntAlu || op_class(op) == OpClass::kIntMul ||
        op_class(op) == OpClass::kIntDiv || op_class(op) == OpClass::kFpAdd ||
        op_class(op) == OpClass::kFpMul || op_class(op) == OpClass::kFpDiv));
  if (imm_form) {
    os << (first ? " " : ", ") << imm;
  }
  return os.str();
}

Instruction Instruction::li(Reg d, std::int64_t imm) {
  Instruction i;
  i.op = Opcode::kLi;
  i.defs = {d};
  i.imm = imm;
  return i;
}

Instruction Instruction::mov(Reg d, Reg s) {
  Instruction i;
  i.op = Opcode::kMov;
  i.defs = {d};
  i.uses = {s};
  return i;
}

Instruction Instruction::alu(Opcode op, Reg d, Reg a, Reg b) {
  Instruction i;
  i.op = op;
  i.defs = {d};
  i.uses = {a, b};
  return i;
}

Instruction Instruction::alu_imm(Opcode op, Reg d, Reg a, std::int64_t imm) {
  Instruction i;
  i.op = op;
  i.defs = {d};
  i.uses = {a};
  i.imm = imm;
  return i;
}

Instruction Instruction::load(Reg d, MemRef m, bool update) {
  Instruction i;
  i.op = update ? Opcode::kLoadU : Opcode::kLoad;
  i.defs = {d};
  i.uses = {m.base};
  if (update) i.defs.push_back(m.base);
  i.mem = std::move(m);
  return i;
}

Instruction Instruction::store(MemRef m, Reg s, bool update) {
  Instruction i;
  i.op = update ? Opcode::kStoreU : Opcode::kStore;
  i.uses = {s, m.base};
  if (update) i.defs.push_back(m.base);
  i.mem = std::move(m);
  return i;
}

Instruction Instruction::fma(Reg d, Reg a, Reg b, Reg c) {
  Instruction i;
  i.op = Opcode::kFMa;
  i.defs = {d};
  i.uses = {a, b, c};
  return i;
}

Instruction Instruction::cmp(Reg crd, Reg a, std::int64_t imm) {
  AIS_CHECK(crd.cls == RegClass::kCr, "CMP destination must be a cr");
  Instruction i;
  i.op = Opcode::kCmp;
  i.defs = {crd};
  i.uses = {a};
  i.imm = imm;
  return i;
}

Instruction Instruction::branch(Opcode op, Reg crs, std::string target) {
  AIS_CHECK(op == Opcode::kBt || op == Opcode::kBf,
            "conditional branch opcode expected");
  AIS_CHECK(crs.cls == RegClass::kCr, "branch condition must be a cr");
  Instruction i;
  i.op = op;
  i.uses = {crs};
  i.target = std::move(target);
  return i;
}

Instruction Instruction::jump(std::string target) {
  Instruction i;
  i.op = Opcode::kB;
  i.target = std::move(target);
  return i;
}

Instruction Instruction::nop() { return Instruction{}; }

}  // namespace ais
