// A functional interpreter for the toy ISA.
//
// Purpose: *semantic verification of schedules*.  Instruction scheduling is
// only correct if the reordered code computes the same final state as the
// original; running both orders through this interpreter from the same
// initial state is an end-to-end oracle over the dependence analyzer and
// every scheduler (tests/test_interp.cpp).
//
// Semantics are deterministic and total: integer arithmetic wraps, division
// by zero yields 0, floating ops are modelled as distinct integer mixers
// (we care about dataflow equivalence, not IEEE), and loads from
// never-written addresses return a fixed hash of the address so both runs
// observe identical "uninitialized" memory.  Each memory tag is its own
// address space (matching the disambiguation model: distinct tags are
// provably disjoint regions); the empty tag is one shared default space.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "ir/instruction.hpp"

namespace ais {

class InterpState {
 public:
  std::int64_t get(Reg r) const;
  void set(Reg r, std::int64_t v);

  std::int64_t load(const std::string& tag, std::int64_t addr) const;
  void store(const std::string& tag, std::int64_t addr, std::int64_t v);

  /// Whether the last conditional branch evaluated taken.
  bool last_branch_taken() const { return last_branch_taken_; }
  void set_last_branch_taken(bool taken) { last_branch_taken_ = taken; }

  /// Deep equality (registers, memory, branch outcome).
  bool operator==(const InterpState&) const = default;

  /// Equality over the architectural state only: general/float registers
  /// below `temp_base`, all condition registers, memory, branch outcome.
  /// Used to compare register-renamed code, whose temporaries (>= temp_base)
  /// are scratch.
  bool equal_architectural(const InterpState& other,
                           std::uint8_t temp_base) const;

  /// Seeds registers with reproducible pseudo-random values.
  static InterpState random(std::uint64_t seed);

 private:
  std::array<std::int64_t, 256> gpr_{};
  std::array<std::int64_t, 256> fpr_{};
  std::array<std::int64_t, 8> cr_{};
  std::map<std::pair<std::string, std::int64_t>, std::int64_t> memory_;
  bool last_branch_taken_ = false;
};

/// Executes one instruction.
void execute(const Instruction& inst, InterpState& state);

/// Executes a basic block front to back.
InterpState run_block(const BasicBlock& bb, InterpState state);

/// Executes the blocks of a trace in order (the fall-through path).
InterpState run_trace(const Trace& trace, InterpState state);

}  // namespace ais
