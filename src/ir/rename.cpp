#include "ir/rename.hpp"

#include <array>
#include <map>
#include <set>
#include <vector>

#include "support/assert.hpp"

namespace ais {
namespace {

int reg_key(const Reg& r) {
  return static_cast<int>(r.cls) * 256 + static_cast<int>(r.idx);
}

bool renameable(const Reg& r, const RenameOptions& opts) {
  return r.cls != RegClass::kCr && r.idx < opts.temp_base;
}

}  // namespace

namespace {

/// Core renamer; `counters` carries the next free temp per register file so
/// consecutive blocks of a trace draw from disjoint temps (block-crossing
/// temp reuse would add false WAW edges between unrelated blocks).
BasicBlock rename_block_impl(const BasicBlock& bb, const RenameOptions& opts,
                             RenameStats* stats,
                             std::array<int, 2>& next_temp) {
  // Pass 1a: update-form loads/stores write back through their (tied) base
  // register; renaming such a register would redirect the update.  Exempt
  // every register that ever serves as an update-form base.
  std::set<int> exempt;
  for (const Instruction& inst : bb.insts) {
    if (inst.mem.has_value() &&
        (inst.op == Opcode::kLoadU || inst.op == Opcode::kStoreU)) {
      exempt.insert(reg_key(inst.mem->base));
    }
  }

  // Pass 1b: index of the last definition of each architectural register.
  std::map<int, std::size_t> last_def;
  for (std::size_t i = 0; i < bb.insts.size(); ++i) {
    for (const Reg& d : bb.insts[i].defs) {
      if (renameable(d, opts) && exempt.count(reg_key(d)) == 0) {
        last_def[reg_key(d)] = i;
      }
    }
  }

  // Pass 2: rewrite.  current[] maps an architectural register to the name
  // holding its current value (itself, or a temp for non-final defs).
  std::map<int, Reg> current;
  RenameStats local;

  auto rewrite_use = [&current](Reg& r) {
    const auto it = current.find(reg_key(r));
    if (it != current.end()) r = it->second;
  };

  BasicBlock out;
  out.label = bb.label;
  for (std::size_t i = 0; i < bb.insts.size(); ++i) {
    Instruction inst = bb.insts[i];
    // Uses read the current name (including memory base registers).
    for (Reg& u : inst.uses) rewrite_use(u);
    if (inst.mem.has_value()) rewrite_use(inst.mem->base);

    for (Reg& d : inst.defs) {
      if (!renameable(d, opts)) continue;
      const int key = reg_key(d);
      if (exempt.count(key) != 0) continue;
      if (last_def.at(key) == i) {
        current.erase(key);  // the final def lands in the real register
        continue;
      }
      auto& counter =
          next_temp[d.cls == RegClass::kGpr ? 0 : 1];
      if (counter > 255) {
        local.pool_exhausted = true;
        current.erase(key);
        continue;
      }
      const Reg temp{d.cls, static_cast<std::uint8_t>(counter++)};
      current[key] = temp;
      d = temp;
      ++local.defs_renamed;
    }
    out.insts.push_back(std::move(inst));
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace

BasicBlock rename_block(const BasicBlock& bb, const RenameOptions& opts,
                        RenameStats* stats) {
  std::array<int, 2> counters = {opts.temp_base, opts.temp_base};
  return rename_block_impl(bb, opts, stats, counters);
}

Trace rename_trace(const Trace& trace, const RenameOptions& opts,
                   RenameStats* stats) {
  Trace out;
  RenameStats total;
  std::array<int, 2> counters = {opts.temp_base, opts.temp_base};
  for (const BasicBlock& bb : trace.blocks) {
    // Temp chains are block-local, so once a register file's counter nears
    // the top it is safe to wrap for the *next* block (within-block
    // exhaustion is still reported via pool_exhausted).
    for (auto& c : counters) {
      if (c > 224) c = opts.temp_base;
    }
    RenameStats s;
    out.blocks.push_back(rename_block_impl(bb, opts, &s, counters));
    total.defs_renamed += s.defs_renamed;
    total.pool_exhausted = total.pool_exhausted || s.pool_exhausted;
  }
  if (stats != nullptr) *stats = total;
  return out;
}

}  // namespace ais
