#include "ir/depbuild.hpp"

#include <algorithm>
#include <map>

#include "support/assert.hpp"

namespace ais {
namespace {

/// Dense register index across the three register files.
int reg_key(const Reg& r) {
  return static_cast<int>(r.cls) * 256 + static_cast<int>(r.idx);
}

/// One instruction occurrence in the (possibly doubled) analysis sequence.
struct Occurrence {
  const Instruction* inst;
  int block;  // block index within the trace
  int copy;   // 0 = current iteration, 1 = next iteration (loop analysis)
  NodeId node;  // node id in the output graph (same for both copies)
};

/// Collects dependence edges with (from, to, distance) dedup keeping the
/// maximum latency, then emits them into the graph.
class EdgeSink {
 public:
  explicit EdgeSink(DepGraph& g) : g_(g) {}

  void add(NodeId from, NodeId to, int latency, int distance) {
    if (distance == 0 && from == to) return;  // degenerate; nothing to order
    const auto key = std::make_tuple(from, to, distance);
    auto [it, inserted] = best_.emplace(key, latency);
    if (!inserted) it->second = std::max(it->second, latency);
  }

  void flush() {
    for (const auto& [key, latency] : best_) {
      const auto& [from, to, distance] = key;
      g_.add_edge(from, to, latency, distance);
    }
  }

 private:
  DepGraph& g_;
  std::map<std::tuple<NodeId, NodeId, int>, int> best_;
};

/// True when references a and b may touch the same memory and at least one
/// writes.
bool mem_conflict(const Instruction& a, const Instruction& b,
                  bool disambiguate) {
  if (!a.is_mem() || !b.is_mem()) return false;
  if (a.is_load() && b.is_load()) return false;
  if (!disambiguate) return true;
  const std::string& ta = a.mem->tag;
  const std::string& tb = b.mem->tag;
  if (ta.empty() || tb.empty()) return true;  // unknown region aliases all
  return ta == tb;
}

int producer_latency(const Instruction& inst, const MachineModel& machine) {
  return machine.timing(op_class(inst.op)).latency;
}

/// Scans `seq` in order adding register, memory and control dependences.
/// An edge between occurrences of different copies becomes distance 1.
void scan(const std::vector<Occurrence>& seq, const MachineModel& machine,
          const DepBuildOptions& opts, EdgeSink& sink) {
  struct RegState {
    int last_def = -1;                // index into seq
    std::vector<int> uses_since_def;  // reads after last_def
  };
  std::map<int, RegState> regs;
  std::vector<int> mem_refs;  // indices of prior loads/stores

  auto emit = [&](int from_idx, int to_idx, int latency) {
    const Occurrence& a = seq[static_cast<std::size_t>(from_idx)];
    const Occurrence& b = seq[static_cast<std::size_t>(to_idx)];
    const int distance = b.copy - a.copy;
    AIS_CHECK(distance >= 0, "dependence cannot point backwards in copies");
    // Copy-1 internal edges duplicate copy-0 internal edges; drop them.
    if (a.copy == 1 && b.copy == 1) return;
    sink.add(a.node, b.node, latency, distance);
  };

  for (int j = 0; j < static_cast<int>(seq.size()); ++j) {
    const Instruction& inst = *seq[static_cast<std::size_t>(j)].inst;

    // RAW: latest def of each used register.
    for (const Reg& r : inst.uses) {
      RegState& st = regs[reg_key(r)];
      if (st.last_def >= 0) {
        const Instruction& def =
            *seq[static_cast<std::size_t>(st.last_def)].inst;
        emit(st.last_def, j, producer_latency(def, machine));
      }
      st.uses_since_def.push_back(j);
    }

    // WAW + WAR for each defined register.
    for (const Reg& r : inst.defs) {
      RegState& st = regs[reg_key(r)];
      if (st.last_def >= 0 && st.last_def != j) emit(st.last_def, j, 0);
      for (const int u : st.uses_since_def) {
        if (u != j) emit(u, j, 0);
      }
      st.last_def = j;
      st.uses_since_def.clear();
    }

    // Memory ordering.
    if (inst.is_mem()) {
      for (const int prior : mem_refs) {
        const Instruction& p = *seq[static_cast<std::size_t>(prior)].inst;
        if (!mem_conflict(p, inst, opts.disambiguate_memory)) continue;
        // store→load is a true dependence through memory and carries the
        // store's forwarding latency; load→store / store→store order only.
        const int latency =
            (p.is_store() && inst.is_load()) ? producer_latency(p, machine) : 0;
        emit(prior, j, latency);
      }
      mem_refs.push_back(j);
    }
  }

  // Control dependences: within each (block, copy), everything precedes the
  // final branch.
  if (opts.control_deps) {
    for (std::size_t j = 0; j < seq.size(); ++j) {
      const Occurrence& br = seq[j];
      if (!br.inst->is_branch()) continue;
      for (std::size_t i = 0; i < j; ++i) {
        const Occurrence& prev = seq[i];
        if (prev.block == br.block && prev.copy == br.copy) {
          emit(static_cast<int>(i), static_cast<int>(j), 0);
        }
      }
    }
  }
}

/// Validates block structure: at most one branch, and only at the end.
void check_block(const BasicBlock& bb) {
  for (std::size_t i = 0; i < bb.insts.size(); ++i) {
    if (bb.insts[i].is_branch()) {
      AIS_CHECK(i + 1 == bb.insts.size(),
                "branch must be the final instruction of block " + bb.label);
    }
  }
}

DepGraph build(const Trace& trace, const MachineModel& machine,
               const DepBuildOptions& opts, bool loop_carried) {
  DepGraph g;
  std::size_t num_insts = 0;
  for (const BasicBlock& bb : trace.blocks) num_insts += bb.insts.size();
  g.reserve(num_insts);
  std::vector<Occurrence> seq;
  seq.reserve(loop_carried ? 2 * num_insts : num_insts);

  for (int b = 0; b < static_cast<int>(trace.blocks.size()); ++b) {
    const BasicBlock& bb = trace.blocks[static_cast<std::size_t>(b)];
    check_block(bb);
    for (std::size_t i = 0; i < bb.insts.size(); ++i) {
      const Instruction& inst = bb.insts[i];
      const OpTiming& t = machine.timing(op_class(inst.op));
      const NodeId node = g.add_node(inst.to_string(), t.exec_time, t.fu_class,
                                     /*block=*/b);
      seq.push_back(Occurrence{&inst, b, /*copy=*/0, node});
    }
  }

  if (loop_carried) {
    // Second copy of the body; nodes reuse the copy-0 ids so copy-0→copy-1
    // edges fold into distance-1 edges.
    const std::size_t body_size = seq.size();
    for (std::size_t k = 0; k < body_size; ++k) {
      Occurrence occ = seq[k];
      occ.copy = 1;
      seq.push_back(occ);
    }
  }

  EdgeSink sink(g);
  scan(seq, machine, opts, sink);
  sink.flush();
  return g;
}

}  // namespace

DepGraph build_block_graph(const BasicBlock& bb, const MachineModel& machine,
                           const DepBuildOptions& opts) {
  Trace t;
  t.blocks.push_back(bb);
  return build(t, machine, opts, /*loop_carried=*/false);
}

DepGraph build_trace_graph(const Trace& trace, const MachineModel& machine,
                           const DepBuildOptions& opts) {
  return build(trace, machine, opts, /*loop_carried=*/false);
}

DepGraph build_loop_graph(const Loop& loop, const MachineModel& machine,
                          const DepBuildOptions& opts) {
  return build(loop.body, machine, opts, /*loop_carried=*/true);
}

}  // namespace ais
