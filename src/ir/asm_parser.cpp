#include "ir/asm_parser.hpp"

#include <cctype>
#include <exception>
#include <map>
#include <optional>

#include "support/assert.hpp"
#include "support/str.hpp"

namespace ais {
namespace {

const std::map<std::string, Opcode>& opcode_table() {
  static const std::map<std::string, Opcode> table = {
      {"LI", Opcode::kLi},     {"MOV", Opcode::kMov},
      {"ADD", Opcode::kAdd},   {"SUB", Opcode::kSub},
      {"AND", Opcode::kAnd},   {"OR", Opcode::kOr},
      {"XOR", Opcode::kXor},   {"SHL", Opcode::kShl},
      {"SHR", Opcode::kShr},   {"MUL", Opcode::kMul},
      {"DIV", Opcode::kDiv},   {"LD", Opcode::kLoad},
      {"LDU", Opcode::kLoadU}, {"ST", Opcode::kStore},
      {"STU", Opcode::kStoreU},{"FADD", Opcode::kFAdd},
      {"FMUL", Opcode::kFMul}, {"FDIV", Opcode::kFDiv},
      {"FMA", Opcode::kFMa},   {"CMP", Opcode::kCmp},
      {"BT", Opcode::kBt},     {"BF", Opcode::kBf},
      {"B", Opcode::kB},       {"NOP", Opcode::kNop},
  };
  return table;
}

struct Operand {
  enum Kind { kReg, kImm, kMem, kLabel } kind;
  Reg reg{};
  MemRef mem{};
  std::string label;
  std::int64_t imm = 0;
};

/// Thrown instead of panicking while a parse_program_or_error call is on
/// the stack (daemon requests must not abort the process).
struct ParseError {
  std::string message;
};
thread_local bool g_recoverable = false;

[[noreturn]] void fail(int line_no, const std::string& why) {
  if (g_recoverable) {
    throw ParseError{"line " + std::to_string(line_no) + ": " + why};
  }
  panic("asm", line_no, "parse error: " + why);
}

std::optional<Reg> try_reg(const std::string& tok) {
  if (tok.size() < 2) return std::nullopt;
  RegClass cls;
  switch (tok[0]) {
    case 'r': cls = RegClass::kGpr; break;
    case 'f': cls = RegClass::kFpr; break;
    case 'c': cls = RegClass::kCr; break;
    default: return std::nullopt;
  }
  for (std::size_t i = 1; i < tok.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(tok[i]))) return std::nullopt;
  }
  const int idx = std::stoi(tok.substr(1));
  if (idx < 0 || idx > 255) return std::nullopt;
  return Reg{cls, static_cast<std::uint8_t>(idx)};
}

bool is_imm(const std::string& tok) {
  if (tok.empty()) return false;
  std::size_t i = (tok[0] == '-') ? 1 : 0;
  if (i == tok.size()) return false;
  for (; i < tok.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(tok[i]))) return false;
  }
  return true;
}

Operand parse_operand(const std::string& raw, int line_no) {
  const std::string tok = trim(raw);
  if (tok.empty()) fail(line_no, "empty operand");

  const std::size_t lb = tok.find('[');
  if (lb != std::string::npos) {
    if (tok.back() != ']') fail(line_no, "unterminated memory operand: " + tok);
    Operand op;
    op.kind = Operand::kMem;
    op.mem.tag = trim(tok.substr(0, lb));
    std::string inner = tok.substr(lb + 1, tok.size() - lb - 2);
    int offset = 0;
    const std::size_t plus = inner.find_first_of("+-");
    if (plus != std::string::npos && plus > 0) {
      offset = std::stoi(inner.substr(plus));
      inner = inner.substr(0, plus);
    }
    const auto base = try_reg(trim(inner));
    if (!base) fail(line_no, "bad memory base register: " + tok);
    op.mem.base = *base;
    op.mem.offset = offset;
    return op;
  }

  if (const auto reg = try_reg(tok)) {
    Operand op;
    op.kind = Operand::kReg;
    op.reg = *reg;
    return op;
  }
  if (is_imm(tok)) {
    Operand op;
    op.kind = Operand::kImm;
    op.imm = std::stoll(tok);
    return op;
  }
  Operand op;
  op.kind = Operand::kLabel;
  op.label = tok;
  return op;
}

Instruction assemble(Opcode op, const std::vector<Operand>& ops, int line_no) {
  auto want_reg = [&](std::size_t i) -> Reg {
    if (i >= ops.size() || ops[i].kind != Operand::kReg) {
      fail(line_no, "operand " + std::to_string(i) + " must be a register");
    }
    return ops[i].reg;
  };
  auto want_mem = [&](std::size_t i) -> MemRef {
    if (i >= ops.size() || ops[i].kind != Operand::kMem) {
      fail(line_no, "operand " + std::to_string(i) + " must be a memory ref");
    }
    return ops[i].mem;
  };
  auto want_label = [&](std::size_t i) -> std::string {
    if (i >= ops.size() || ops[i].kind != Operand::kLabel) {
      fail(line_no, "operand " + std::to_string(i) + " must be a label");
    }
    return ops[i].label;
  };

  auto imm_at = [&](std::size_t i) -> std::int64_t {
    return (i < ops.size() && ops[i].kind == Operand::kImm) ? ops[i].imm : 0;
  };

  switch (op) {
    case Opcode::kLi:
      return Instruction::li(want_reg(0), imm_at(1));
    case Opcode::kMov:
      return Instruction::mov(want_reg(0), want_reg(1));
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kFAdd:
    case Opcode::kFMul:
    case Opcode::kFDiv: {
      // Second source may be an immediate ("ADD r1, r2, 1").
      if (ops.size() >= 3 && ops[2].kind == Operand::kReg) {
        return Instruction::alu(op, want_reg(0), want_reg(1), want_reg(2));
      }
      return Instruction::alu_imm(op, want_reg(0), want_reg(1), imm_at(2));
    }
    case Opcode::kFMa:
      return Instruction::fma(want_reg(0), want_reg(1), want_reg(2),
                              want_reg(3));
    case Opcode::kLoad:
      return Instruction::load(want_reg(0), want_mem(1), /*update=*/false);
    case Opcode::kLoadU:
      return Instruction::load(want_reg(0), want_mem(1), /*update=*/true);
    case Opcode::kStore:
      return Instruction::store(want_mem(0), want_reg(1), /*update=*/false);
    case Opcode::kStoreU:
      return Instruction::store(want_mem(0), want_reg(1), /*update=*/true);
    case Opcode::kCmp:
      return Instruction::cmp(want_reg(0), want_reg(1), imm_at(2));
    case Opcode::kBt:
    case Opcode::kBf:
      return Instruction::branch(op, want_reg(0), want_label(1));
    case Opcode::kB:
      return Instruction::jump(want_label(0));
    case Opcode::kNop:
      return Instruction::nop();
  }
  fail(line_no, "unhandled opcode");
}

}  // namespace

Program parse_program(const std::string& text) {
  Program prog;
  int line_no = 0;
  for (const std::string& raw_line : split(text, '\n')) {
    ++line_no;
    std::string line = raw_line;
    const std::size_t comment = line.find_first_of("#;");
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;

    if (starts_with(line, "block ")) {
      std::string label = trim(line.substr(6));
      if (!label.empty() && label.back() == ':') label.pop_back();
      if (label.empty()) fail(line_no, "block needs a label");
      prog.blocks.push_back(BasicBlock{label, {}});
      continue;
    }

    if (prog.blocks.empty()) prog.blocks.push_back(BasicBlock{"entry", {}});

    // Mnemonic, then comma-separated operands.
    const std::size_t sp = line.find_first_of(" \t");
    const std::string mnemonic =
        sp == std::string::npos ? line : line.substr(0, sp);
    const auto it = opcode_table().find(mnemonic);
    if (it == opcode_table().end()) {
      fail(line_no, "unknown opcode: " + mnemonic);
    }
    std::vector<Operand> operands;
    if (sp != std::string::npos) {
      for (const std::string& part : split(line.substr(sp + 1), ',')) {
        const std::string t = trim(part);
        if (!t.empty()) operands.push_back(parse_operand(t, line_no));
      }
    }
    // Drop trailing immediates so "CMP c1, r6, 0" works uniformly.
    prog.blocks.back().insts.push_back(assemble(it->second, operands, line_no));
  }
  AIS_CHECK(!prog.blocks.empty(), "empty program");
  return prog;
}

BasicBlock parse_block(const std::string& text) {
  const Program prog = parse_program(text);
  AIS_CHECK(prog.blocks.size() == 1, "expected exactly one block");
  return prog.blocks[0];
}

std::optional<Program> parse_program_or_error(const std::string& text,
                                              std::string* error) {
  // Pre-check emptiness: parse_program's empty-program AIS_CHECK panics
  // outside fail()'s reach.
  bool has_content = false;
  for (const std::string& raw_line : split(text, '\n')) {
    std::string line = raw_line;
    const std::size_t comment = line.find_first_of("#;");
    if (comment != std::string::npos) line = line.substr(0, comment);
    if (!trim(line).empty()) {
      has_content = true;
      break;
    }
  }
  if (!has_content) {
    *error = "empty program";
    return std::nullopt;
  }
  g_recoverable = true;
  try {
    Program prog = parse_program(text);
    g_recoverable = false;
    return prog;
  } catch (const ParseError& e) {
    g_recoverable = false;
    *error = e.message;
  } catch (const std::exception& e) {  // e.g. std::stoi range errors
    g_recoverable = false;
    *error = std::string("parse error: ") + e.what();
  }
  return std::nullopt;
}

}  // namespace ais
