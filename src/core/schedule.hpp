// Schedule: assignment of start times and functional units to instructions.
//
// The paper's §3 terminology is implemented directly: idle slots, the
// partition into "u sets" (maximal runs terminated by idle slots), tail
// nodes, and the permutation a single-unit schedule corresponds to.
#pragma once

#include <vector>

#include "graph/depgraph.hpp"
#include "graph/nodeset.hpp"
#include "machine/machine_model.hpp"

namespace ais {

/// An idle slot: a (unit, time) pair where a unit is neither starting nor
/// running an instruction (paper §3), with time < makespan.
struct IdleSlot {
  int unit = 0;
  Time time = 0;

  bool operator==(const IdleSlot&) const = default;
  auto operator<=>(const IdleSlot&) const = default;
};

class Schedule {
 public:
  /// An empty schedule over `active` nodes of `g`, on `total_units` units.
  Schedule(const DepGraph* g, NodeSet active, int total_units);

  /// Places `id` starting at `start` (completing at start + exec_time) on
  /// global unit index `unit`.  The slot range must be free on that unit.
  void place(NodeId id, Time start, int unit);

  bool placed(NodeId id) const;
  Time start(NodeId id) const;
  Time completion(NodeId id) const;
  int unit_of(NodeId id) const;

  const NodeSet& active() const { return active_; }
  const DepGraph& graph() const { return *graph_; }
  int total_units() const { return static_cast<int>(units_.size()); }

  /// True when every active node has been placed.
  bool complete() const;

  /// Completion time of the last instruction (0 for an empty schedule).
  Time makespan() const { return makespan_; }

  /// Node occupying `unit` whose execution covers `time`, or kInvalidNode.
  NodeId node_at(int unit, Time time) const;

  /// All idle slots, ordered by (time, unit).  Memoized: the first call
  /// after a place() computes the list, later calls return the cached copy
  /// (Delay_Idle_Slots re-reads it once per slot attempt).  The reference
  /// is invalidated by the next place().
  const std::vector<IdleSlot>& idle_slots() const;

  /// Position of `slot` in idle_slots() (binary search; the list is sorted
  /// by (time, unit)).  Aborts when the slot is not idle — callers pass
  /// slots read back from idle_slots() of this very schedule.
  std::size_t idle_slot_index(IdleSlot slot) const;

  /// Idle slots of a single unit, ascending by time.
  std::vector<Time> idle_times(int unit) const;

  /// Nodes ordered by (start time, unit): the permutation P the legality
  /// definitions (Def. 2.1) are phrased over.
  std::vector<NodeId> permutation() const;

  /// The u-set partition of a single-unit schedule: runs of nodes separated
  /// by idle slots (paper §3).  result[i] = nodes of u_{i+1} in time order.
  std::vector<std::vector<NodeId>> u_sets() const;

  /// Tail node of the u set ending at idle time `t` (the node completing at
  /// exactly t on `unit`), or kInvalidNode if the slot is preceded by idle.
  NodeId tail_node(int unit, Time t) const;

 private:
  const DepGraph* graph_;
  NodeSet active_;
  /// Per unit: (start, node) pairs kept sorted by start.
  std::vector<std::vector<std::pair<Time, NodeId>>> units_;
  std::vector<Time> start_;   // indexed by NodeId; -1 = unplaced
  std::vector<int> unit_;     // indexed by NodeId
  Time makespan_ = 0;
  // idle_slots() memo; place() invalidates.
  mutable std::vector<IdleSlot> idle_cache_;
  mutable bool idle_cache_valid_ = false;
};

/// Checks that `s` is complete and respects every distance-0 dependence
/// between active nodes (start(to) >= completion(from) + latency), unit
/// exclusivity, unit typing against `machine`, and the issue-width limit.
/// Returns an explanation for the first violation, or empty if valid.
std::string validate_schedule(const Schedule& s, const MachineModel& machine);

/// Renders a single-unit schedule as the paper draws them:
/// "| x | e | . | w | b | r | a |" with '.' for idle slots.
std::string format_timeline(const Schedule& s, int unit = 0);

}  // namespace ais
