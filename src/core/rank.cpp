#include "core/rank.hpp"

#include <algorithm>
#include <limits>
#include <tuple>

#include "graph/closure.hpp"
#include "graph/topo.hpp"
#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace ais {
namespace {

constexpr Time kInf = std::numeric_limits<Time>::max() / 4;

/// Backward packer: one lane per physical unit of each class, each lane
/// available arbitrarily late initially; nodes are inserted in nonincreasing
/// rank order, each at the latest completion <= its rank its class allows.
class BackwardPacker {
 public:
  explicit BackwardPacker(const MachineModel& machine) {
    avail_.resize(static_cast<std::size_t>(machine.num_fu_classes()));
    for (int c = 0; c < machine.num_fu_classes(); ++c) {
      avail_[static_cast<std::size_t>(c)].assign(
          static_cast<std::size_t>(machine.fu_count(c)), kInf);
    }
  }

  /// Inserts a node with the given class/exec/rank; returns its start time.
  Time insert(int fu_class, int exec_time, Time rank, bool split) {
    auto& lanes = avail_[static_cast<std::size_t>(fu_class)];
    if (!split || exec_time == 1) {
      auto best = std::max_element(lanes.begin(), lanes.end());
      const Time completion = std::min(rank, *best);
      *best = completion - exec_time;
      return completion - exec_time;
    }
    // §4.2 unit-splitting: schedule each unit piece at the latest possible
    // time <= rank; the earliest piece start stands in for the node's start.
    Time earliest = kInf;
    for (int piece = 0; piece < exec_time; ++piece) {
      auto best = std::max_element(lanes.begin(), lanes.end());
      const Time completion = std::min(rank, *best);
      *best = completion - 1;
      earliest = std::min(earliest, completion - 1);
    }
    return earliest;
  }

 private:
  std::vector<std::vector<Time>> avail_;  // [class][lane] -> free-before time
};

}  // namespace

RankScheduler::RankScheduler(const DepGraph& g, MachineModel machine)
    : graph_(g), machine_(std::move(machine)) {
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    AIS_CHECK(g.node(id).fu_class < machine_.num_fu_classes(),
              "node uses an FU class the machine does not have");
  }
}

std::vector<Time> RankScheduler::compute_ranks(
    const NodeSet& active, const DeadlineMap& deadlines,
    const RankOptions& opts, bool* structurally_feasible) const {
  AIS_CHECK(deadlines.size() == graph_.num_nodes(), "deadline map size");
  const auto order = topo_order(graph_, active);
  AIS_CHECK(order.has_value(), "rank computation requires an acyclic graph");
  const DescendantClosure closure(graph_, active);

  std::vector<Time> rank(graph_.num_nodes(), kInf);
  bool ok = true;

  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId x = *it;
    Time r = deadlines[x];

    // Descendants in nonincreasing rank order (ties: ascending id, making
    // the backward pass deterministic).
    std::vector<NodeId> desc;
    closure.descendants(x).for_each(
        [&desc](std::size_t i) { desc.push_back(static_cast<NodeId>(i)); });
    std::sort(desc.begin(), desc.end(), [&rank](NodeId a, NodeId b) {
      return std::tie(rank[b], a) < std::tie(rank[a], b);
    });

    BackwardPacker packer(machine_);
    std::vector<Time> back_start(graph_.num_nodes(), kInf);
    for (const NodeId y : desc) {
      const NodeInfo& info = graph_.node(y);
      back_start[y] = packer.insert(info.fu_class, info.exec_time, rank[y],
                                    opts.split_long_ops);
      // x completes no later than any descendant starts.
      r = std::min(r, back_start[y]);
    }
    // Latency gaps to immediate successors.
    for (const auto eidx : graph_.out_edges(x)) {
      const DepEdge& e = graph_.edge(eidx);
      if (e.distance != 0 || !active.contains(e.to)) continue;
      r = std::min(r, back_start[e.to] - e.latency);
    }

    rank[x] = r;
    if (r < graph_.node(x).exec_time) ok = false;  // cannot start at t >= 0
  }

  if (structurally_feasible != nullptr) *structurally_feasible = ok;
  return rank;
}

Schedule RankScheduler::greedy_from_list(const NodeSet& active,
                                         const std::vector<NodeId>& list) const {
  AIS_CHECK(list.size() == active.size(),
            "priority list must cover the active set exactly");
  for (const NodeId id : list) {
    AIS_CHECK(active.contains(id), "priority list node outside active set");
  }

  // Global unit indexing is class-major, matching validate_schedule.
  std::vector<int> unit_base(
      static_cast<std::size_t>(machine_.num_fu_classes()), 0);
  int total_units = 0;
  for (int c = 0; c < machine_.num_fu_classes(); ++c) {
    unit_base[static_cast<std::size_t>(c)] = total_units;
    total_units += machine_.fu_count(c);
  }

  Schedule sched(&graph_, active, total_units);
  std::vector<Time> unit_free(static_cast<std::size_t>(total_units), 0);

  // earliest dependence-legal start per node; -1 until all preds placed.
  std::vector<int> preds_left(graph_.num_nodes(), 0);
  std::vector<Time> est(graph_.num_nodes(), 0);
  for (const NodeId id : list) {
    for (const auto eidx : graph_.in_edges(id)) {
      const DepEdge& e = graph_.edge(eidx);
      if (e.distance == 0 && active.contains(e.from)) ++preds_left[id];
    }
  }

  std::size_t unplaced = list.size();
  Time t = 0;
  const Time t_limit = graph_.total_work() +
                       static_cast<Time>(list.size() + 1) *
                           (graph_.max_latency() + 1) +
                       1;
  while (unplaced > 0) {
    AIS_CHECK(t <= t_limit, "greedy scheduler failed to make progress");
    int issued = 0;
    bool progressed = true;
    while (progressed && issued < machine_.issue_width()) {
      progressed = false;
      for (const NodeId id : list) {
        if (sched.placed(id)) continue;
        if (preds_left[id] != 0 || est[id] > t) continue;
        const NodeInfo& info = graph_.node(id);
        // A unit of this node's class free for [t, t + exec)?
        const int base = unit_base[static_cast<std::size_t>(info.fu_class)];
        int chosen = -1;
        for (int k = 0; k < machine_.fu_count(info.fu_class); ++k) {
          if (unit_free[static_cast<std::size_t>(base + k)] <= t) {
            chosen = base + k;
            break;
          }
        }
        if (chosen < 0) continue;
        sched.place(id, t, chosen);
        unit_free[static_cast<std::size_t>(chosen)] = t + info.exec_time;
        --unplaced;
        ++issued;
        // Release successors.
        for (const auto eidx : graph_.out_edges(id)) {
          const DepEdge& e = graph_.edge(eidx);
          if (e.distance != 0 || !active.contains(e.to)) continue;
          est[e.to] =
              std::max(est[e.to], t + info.exec_time + e.latency);
          --preds_left[e.to];
        }
        progressed = true;
        break;  // rescan the list from the front (greedy list semantics)
      }
    }
    ++t;
  }
  return sched;
}

RankResult RankScheduler::run(const NodeSet& active,
                              const DeadlineMap& deadlines,
                              const RankOptions& opts) const {
  AIS_OBS_SPAN("rank");
  AIS_OBS_COUNT(obs::ctr::kRankRuns);
  AIS_OBS_COUNT(obs::ctr::kRankNodesRanked, active.size());
  bool structurally_feasible = true;
  std::vector<Time> rank =
      compute_ranks(active, deadlines, opts, &structurally_feasible);

  // Priority list: nondecreasing rank, ties by opts.tie_break then id.
  std::vector<NodeId> list = active.ids();
  const auto tie_value = [&opts](NodeId id) {
    return opts.tie_break.empty() ? static_cast<int>(id)
                                  : opts.tie_break[id];
  };
  std::sort(list.begin(), list.end(), [&](NodeId a, NodeId b) {
    return std::make_tuple(rank[a], tie_value(a), a) <
           std::make_tuple(rank[b], tie_value(b), b);
  });

  // Feasibility is decided by the constructed schedule against the original
  // deadlines.  The rank values are priorities and bounds; a rank below the
  // node's execution time usually signals infeasibility, but the packing
  // relaxation can over-tighten ranks in merged instances, so the schedule
  // itself is the arbiter (structural tightness alone never rejects).
  (void)structurally_feasible;
  RankResult result{
      .feasible = true,
      .infeasible_reason = {},
      .rank = std::move(rank),
      .schedule = greedy_from_list(active, list),
      .makespan = 0,
  };
  result.makespan = result.schedule.makespan();

  for (const NodeId id : active.ids()) {
    if (result.schedule.completion(id) > deadlines[id]) {
      result.feasible = false;
      result.infeasible_reason =
          "node " + graph_.node(id).name + " misses its deadline";
      break;
    }
  }
  if (!result.feasible) AIS_OBS_COUNT(obs::ctr::kRankInfeasible);
  return result;
}

}  // namespace ais
