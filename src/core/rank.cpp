#include "core/rank.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <tuple>

#include "graph/topo.hpp"
#include "obs/obs.hpp"
#include "obs/process_stats.hpp"
#include "support/assert.hpp"

namespace ais {
namespace {

constexpr Time kInf = std::numeric_limits<Time>::max() / 4;

/// Backward packer over caller-owned lanes: one lane per physical unit of
/// each class, each lane available arbitrarily late initially; nodes are
/// inserted in nonincreasing rank order, each at the latest completion <=
/// its rank its class allows.  The lane storage lives in the RankSession so
/// repeated rank computations never reallocate it.
class BackwardPacker {
 public:
  explicit BackwardPacker(std::vector<std::vector<Time>>& lanes)
      : lanes_(lanes) {
    for (auto& class_lanes : lanes_) {
      std::fill(class_lanes.begin(), class_lanes.end(), kInf);
    }
  }

  /// Allocates lane storage matching `machine` (all lanes free).
  static std::vector<std::vector<Time>> make_lanes(
      const MachineModel& machine) {
    std::vector<std::vector<Time>> lanes(
        static_cast<std::size_t>(machine.num_fu_classes()));
    for (int c = 0; c < machine.num_fu_classes(); ++c) {
      lanes[static_cast<std::size_t>(c)].assign(
          static_cast<std::size_t>(machine.fu_count(c)), kInf);
    }
    return lanes;
  }

  /// Inserts a node with the given class/exec/rank; returns its start time.
  Time insert(int fu_class, int exec_time, Time rank, bool split) {
    auto& lanes = lanes_[static_cast<std::size_t>(fu_class)];
    if (!split || exec_time == 1) {
      auto best = std::max_element(lanes.begin(), lanes.end());
      const Time completion = std::min(rank, *best);
      *best = completion - exec_time;
      return completion - exec_time;
    }
    // §4.2 unit-splitting: schedule each unit piece at the latest possible
    // time <= rank; the earliest piece start stands in for the node's start.
    Time earliest = kInf;
    for (int piece = 0; piece < exec_time; ++piece) {
      auto best = std::max_element(lanes.begin(), lanes.end());
      const Time completion = std::min(rank, *best);
      *best = completion - 1;
      earliest = std::min(earliest, completion - 1);
    }
    return earliest;
  }

 private:
  std::vector<std::vector<Time>>& lanes_;
};

}  // namespace

RankScheduler::RankScheduler(const DepGraph& g, MachineModel machine)
    : graph_(g), machine_(std::move(machine)) {
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    AIS_CHECK(g.node(id).fu_class < machine_.num_fu_classes(),
              "node uses an FU class the machine does not have");
  }
}

std::vector<Time> RankScheduler::compute_ranks(
    const NodeSet& active, const DeadlineMap& deadlines,
    const RankOptions& opts, bool* structurally_feasible) const {
  RankSession session(*this, active);
  return session.compute_ranks(deadlines, opts, structurally_feasible);
}

RankResult RankScheduler::run(const NodeSet& active,
                              const DeadlineMap& deadlines,
                              const RankOptions& opts) const {
  RankSession session(*this, active);
  return session.run(deadlines, opts);
}

// --- RankSession ---------------------------------------------------------

RankSession::RankSession(const RankScheduler& scheduler, const NodeSet& active,
                         const RankSession* substrate_donor)
    : scheduler_(&scheduler),
      active_(active),
      active_ids_(active.ids()),
      closure_(substrate_donor == nullptr
                   ? DescendantClosure(scheduler.graph(), active, &arena_)
                   : DescendantClosure(scheduler.graph(), active,
                                       substrate_donor->closure_,
                                       substrate_donor->active_, &arena_)),
      exec_(ArenaAllocator<Time>(arena_)),
      fu_class_(ArenaAllocator<std::int32_t>(arena_)),
      succ_begin_(ArenaAllocator<std::uint32_t>(arena_)),
      succ_to_(ArenaAllocator<NodeId>(arena_)),
      succ_lat_(ArenaAllocator<Time>(arena_)),
      rank_(scheduler.graph().num_nodes(), kInf),
      desc_part_(ArenaAllocator<Time>(arena_)),
      desc_keys_(ArenaAllocator<std::uint64_t>(arena_)),
      by_rank_(ArenaAllocator<DescEntry>(arena_)),
      rank_pos_(ArenaAllocator<std::uint32_t>(arena_)),
      pos_words_(ArenaAllocator<std::uint64_t>(arena_)),
      back_start_(ArenaAllocator<Time>(arena_)),
      packer_lanes_(BackwardPacker::make_lanes(scheduler.machine())),
      changed_(scheduler.graph().num_nodes()),
      rank_changed_(scheduler.graph().num_nodes()),
      snap_desc_part_(ArenaAllocator<Time>(arena_)),
      snap_by_rank_(ArenaAllocator<DescEntry>(arena_)) {
  const auto order = topo_order(scheduler.graph(), active);
  AIS_CHECK(order.has_value(), "rank computation requires an acyclic graph");
  order_ = std::move(*order);
  back_start_.assign(scheduler.graph().num_nodes(), kInf);
  desc_part_.assign(scheduler.graph().num_nodes(), kInf);
  desc_keys_.reserve(order_.size());
  by_rank_.reserve(order_.size());

  const DepGraph& g = scheduler.graph();
  const std::size_t n = g.num_nodes();
  single_lane_ = scheduler.machine().total_units() == 1;
  const std::span<const std::int32_t> exec_col = g.exec_times();
  const std::span<const std::int32_t> fu_col = g.fu_classes();
  exec_.assign(exec_col.begin(), exec_col.end());
  fu_class_.assign(fu_col.begin(), fu_col.end());
  rank_pos_.assign(n, 0);
  pos_words_.assign((n + 63) / 64 + 1, 0);
  succ_begin_.assign(n + 1, 0);
  succ_to_.reserve(g.num_edges());
  succ_lat_.reserve(g.num_edges());
  for (NodeId x = 0; x < n; ++x) {
    succ_begin_[x + 1] = succ_begin_[x];
    if (!active_.contains(x)) continue;
    for (const auto eidx : g.out_edges(x)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance != 0 || !active_.contains(e.to)) continue;
      succ_to_.push_back(e.to);
      succ_lat_.push_back(e.latency);
      ++succ_begin_[x + 1];
    }
  }
  if (obs::enabled()) {
    obs::record_arena_high_water(
        "rank_session", static_cast<std::int64_t>(arena_.bytes_reserved()));
    obs::record_arena_high_water(
        "graph", static_cast<std::int64_t>(g.arena_bytes_reserved()));
  }
}

void RankSession::rerank_node(NodeId x, const DeadlineMap& deadlines,
                              const RankOptions& opts) {
  // Descendants come out of for_each_descendant in nonincreasing rank order
  // (ties: ascending id, making the backward pass deterministic): by_rank_
  // maintains the whole active set in exactly that order, so ascending
  // by_rank_ position yields the descendants pre-sorted — the backward pass
  // contains no sort at all.
  pack_and_finish(x, deadlines, opts);
}

template <typename Fn>
void RankSession::for_each_descendant(NodeId x, Fn&& fn) {
  const ClosureRow row = closure_.descendants(x);
  const std::uint64_t* rw = row.words().data();
  const DescEntry* br = by_rank_.data();
  const std::size_t nb = by_rank_.size();

  // Both paths visit the descendants in ascending by_rank_ position, which
  // is exactly (rank desc, id asc) — the backward-pass order — so the
  // density heuristic below can never change an output bit.
  //
  // Dense rows: filtered scan of by_rank_ — sequential loads, and the
  // membership pattern is the structured "below x in rank order" set, so
  // the branch predicts well.  Sparse rows: word-driven iteration over the
  // closure row, marking each descendant's position in pos_words_ and
  // sweeping the position words ascending — O(set bits + nb/64) beats the
  // O(nb) scan once the row is thin relative to the active set.
  const std::size_t k = row.count();
  if (k * 8 >= nb) {
    for (std::size_t p = 0; p < nb; ++p) {
      const DescEntry e = br[p];
      if ((rw[e.id >> 6] >> (e.id & 63)) & 1) fn(e);
    }
    return;
  }
  row.for_each([&](std::size_t d) {
    const std::uint32_t p = rank_pos_[d];
    pos_words_[p >> 6] |= std::uint64_t{1} << (p & 63);
  });
  const std::size_t nwords = (nb + 63) / 64;  // descendant positions are < nb
  for (std::size_t w = 0; w < nwords; ++w) {
    std::uint64_t word = pos_words_[w];
    if (word == 0) continue;
    pos_words_[w] = 0;
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      fn(br[w * 64 + static_cast<std::size_t>(bit)]);
      word &= word - 1;
    }
  }
}

void RankSession::refresh_rank_pos(std::size_t from, std::size_t to) {
  for (std::size_t i = from; i < to; ++i) {
    rank_pos_[by_rank_[i].id] = static_cast<std::uint32_t>(i);
  }
}

void RankSession::reposition(NodeId x, Time old_rank) {
  const auto before = [](const DescEntry& a, const DescEntry& b) {
    return a.rank != b.rank ? a.rank > b.rank : a.id < b.id;
  };
  const auto old_it = std::lower_bound(by_rank_.begin(), by_rank_.end(),
                                       DescEntry{old_rank, x}, before);
  AIS_CHECK(old_it != by_rank_.end() && old_it->id == x &&
                old_it->rank == old_rank,
            "by_rank_ lost track of a node");
  const DescEntry updated{rank_[x], x};
  const auto new_it =
      std::lower_bound(by_rank_.begin(), by_rank_.end(), updated, before);
  if (new_it <= old_it) {
    std::move_backward(new_it, old_it, old_it + 1);
    *new_it = updated;
    refresh_rank_pos(static_cast<std::size_t>(new_it - by_rank_.begin()),
                     static_cast<std::size_t>(old_it - by_rank_.begin()) + 1);
  } else {
    std::move(old_it + 1, new_it, old_it);
    *(new_it - 1) = updated;
    refresh_rank_pos(static_cast<std::size_t>(old_it - by_rank_.begin()),
                     static_cast<std::size_t>(new_it - by_rank_.begin()));
  }
}

void RankSession::pack_and_finish(NodeId x, const DeadlineMap& deadlines,
                                  const RankOptions& opts) {
  // The descendant-driven part of the rank is accumulated separately from
  // the node's own deadline: it depends only on descendant ranks, so it can
  // be reused verbatim when a later call changes d(x) but no descendant
  // rank (the O(1) incremental path in compute_ranks).
  Time r = kInf;

  // back_start_ carries no state across nodes: every slot read below (a
  // descendant of x, or a distance-0 successor, which is also a descendant)
  // is written by this loop first.  Single-unit machines (the restricted
  // case and the deep-pipeline preset) skip the lane machinery: the one
  // lane is a scalar chained through the loop.
  if (single_lane_ && !opts.split_long_ops) {
    // The one lane's free slot chains through the fold and can only move
    // earlier (exec >= 1), so min over every descendant's start is just the
    // final fold value — no per-entry min against r.
    const Time* exec = exec_.data();
    Time* back = back_start_.data();
    Time free = kInf;
    for_each_descendant(x, [&](const DescEntry e) {
      const Time s = std::min(e.rank, free) - exec[e.id];
      free = s;
      back[e.id] = s;
    });
    r = free;  // x completes no later than any descendant starts
  } else if (single_lane_) {
    Time free = kInf;
    for_each_descendant(x, [&](const DescEntry e) {
      const Time exec = exec_[e.id];
      Time s;
      if (exec == 1) {
        s = std::min(e.rank, free) - 1;
        free = s;
      } else {
        // §4.2 unit-splitting on the single lane.
        s = kInf;
        for (Time piece = 0; piece < exec; ++piece) {
          free = std::min(e.rank, free) - 1;
          s = std::min(s, free);
        }
      }
      back_start_[e.id] = s;
      // x completes no later than any descendant starts.
      r = std::min(r, s);
    });
  } else {
    BackwardPacker packer(packer_lanes_);
    for_each_descendant(x, [&](const DescEntry e) {
      const Time s = packer.insert(fu_class_[e.id],
                                   static_cast<int>(exec_[e.id]), e.rank,
                                   opts.split_long_ops);
      back_start_[e.id] = s;
      r = std::min(r, s);
    });
  }
  // Latency gaps to immediate successors (CSR built in the constructor).
  for (std::uint32_t i = succ_begin_[x]; i < succ_begin_[x + 1]; ++i) {
    r = std::min(r, back_start_[succ_to_[i]] - succ_lat_[i]);
  }

  desc_part_[x] = r;
  rank_[x] = std::min(deadlines[x], r);
}

const std::vector<Time>& RankSession::compute_ranks(
    const DeadlineMap& deadlines, const RankOptions& opts,
    bool* structurally_feasible) {
  AIS_OBS_SPAN_DETAIL("rank.compute");
  const DepGraph& graph = scheduler_->graph();
  AIS_CHECK(deadlines.size() == graph.num_nodes(), "deadline map size");

  const bool can_increment =
      has_ranks_ && cached_split_ == opts.split_long_ops;
  if (!can_increment) {
    // Full pass in reverse topological order.  by_rank_ keeps the nodes
    // processed so far in (rank desc, id asc) order: a node's descendants
    // are always a subset (reverse topo), so one membership-filtered scan
    // extracts them already sorted — the per-node sort of rerank_node is
    // replaced by an O(processed) scan plus one ordered insert.
    //
    // A pending seed_full_pass donor short-circuits the donated nodes: their
    // ranks and descendant parts are adopted verbatim (with by_rank_
    // initialized from the donor's already-sorted ordering) and the loop
    // packs only the rest.  Donated ranks are final before any remaining
    // node is processed, and a full pass depends only on final descendant
    // ranks, so the outcome is byte-exact against the unseeded pass.
    std::fill(rank_.begin(), rank_.end(), kInf);
    by_rank_.clear();
    const RankSession* donor = pending_seed_;
    pending_seed_ = nullptr;
    if (donor != nullptr) {
      AIS_CHECK(donor->cached_split_ == opts.split_long_ops,
                "rank seed split_long_ops mismatch");
      by_rank_.assign(donor->by_rank_.begin(), donor->by_rank_.end());
      refresh_rank_pos(0, by_rank_.size());
      for (const DescEntry& e : by_rank_) {
        AIS_CHECK(deadlines[e.id] == donor->cached_deadlines_[e.id],
                  "rank seed deadline mismatch");
        rank_[e.id] = e.rank;
        desc_part_[e.id] = donor->desc_part_[e.id];
      }
    }
    const auto before = [](const DescEntry& a, const DescEntry& b) {
      return a.rank != b.rank ? a.rank > b.rank : a.id < b.id;
    };
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      const NodeId x = *it;
      if (donor != nullptr && donor->active_.contains(x)) continue;
      pack_and_finish(x, deadlines, opts);
      const DescEntry self{rank_[x], x};
      const auto at =
          std::lower_bound(by_rank_.begin(), by_rank_.end(), self, before);
      const std::size_t pos = static_cast<std::size_t>(at - by_rank_.begin());
      by_rank_.insert(at, self);
      refresh_rank_pos(pos, by_rank_.size());
    }
  } else {
    // Incremental pass: rank(x) depends only on d(x) and the ranks of x's
    // descendants, so a node needs reranking only when its own deadline
    // moved or some descendant's *rank* actually moved.  The reverse-topo
    // sweep keeps rank_changed_ exact as it goes — a deadline change whose
    // rank is pinned by descendants stops the propagation on the spot (see
    // docs/PERFORMANCE.md for the cone argument).
    changed_.reset_all();
    bool any_changed = false;
    for (const NodeId id : active_ids_) {
      if (deadlines[id] != cached_deadlines_[id]) {
        changed_.set(id);
        any_changed = true;
      }
    }
    if (any_changed) {
      AIS_OBS_COUNT(obs::ctr::kRankIncrementalPasses);
      rank_changed_.reset_all();
      std::uint64_t reranked = 0;
      for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
        const NodeId x = *it;
        const bool desc_moved =
            closure_.descendants(x).intersects(rank_changed_);
        if (!desc_moved) {
          if (!changed_.test(x)) continue;
          // Only x's own deadline moved: the cached descendant-driven part
          // is still exact, so the rank refreshes without a repack.  This
          // is the common case in Move_Idle_Slot, whose sigma caps touch
          // O(slot time) deadlines per trial while almost every rank stays
          // pinned by descendants.
          const Time before = rank_[x];
          rank_[x] = std::min(deadlines[x], desc_part_[x]);
          if (rank_[x] != before) {
            rank_changed_.set(x);
            reposition(x, before);
          }
          continue;
        }
        const Time before = rank_[x];
        rerank_node(x, deadlines, opts);
        if (rank_[x] != before) {
          rank_changed_.set(x);
          reposition(x, before);
        }
        ++reranked;
      }
      AIS_OBS_COUNT(obs::ctr::kRankNodesReranked, reranked);
    }
  }

  cached_deadlines_ = deadlines;
  cached_split_ = opts.split_long_ops;
  has_ranks_ = true;

  if (structurally_feasible != nullptr) {
    bool ok = true;
    for (const NodeId id : active_ids_) {
      if (rank_[id] < exec_[id]) ok = false;  // start < 0
    }
    *structurally_feasible = ok;
  }
  return rank_;
}

void RankSession::snapshot() {
  AIS_CHECK(has_ranks_, "snapshot requires computed ranks");
  snap_valid_ = true;
  snap_split_ = cached_split_;
  snap_rank_ = rank_;
  snap_desc_part_ = desc_part_;
  snap_by_rank_ = by_rank_;
  snap_deadlines_ = cached_deadlines_;
}

void RankSession::restore_snapshot() {
  AIS_CHECK(snap_valid_, "restore_snapshot without a snapshot");
  has_ranks_ = true;
  cached_split_ = snap_split_;
  rank_ = snap_rank_;
  desc_part_ = snap_desc_part_;
  by_rank_ = snap_by_rank_;
  refresh_rank_pos(0, by_rank_.size());
  cached_deadlines_ = snap_deadlines_;
}

void RankSession::seed_full_pass(const RankSession& donor) {
  AIS_CHECK(!has_ranks_, "seed_full_pass requires an unused session");
  AIS_CHECK(donor.has_ranks_, "seed_full_pass requires a warmed donor");
  pending_seed_ = &donor;
}

RankResult RankSession::run(const DeadlineMap& deadlines,
                            const RankOptions& opts) {
  AIS_OBS_SPAN("rank");
  return run_impl(deadlines, opts, /*count=*/true);
}

RankResult RankSession::run_silent(const DeadlineMap& deadlines,
                                   const RankOptions& opts) {
  AIS_OBS_SPAN("rank");
  return run_impl(deadlines, opts, /*count=*/false);
}

void RankSession::count_run_telemetry(const RankResult& result) const {
  AIS_OBS_COUNT(obs::ctr::kRankRuns);
  AIS_OBS_COUNT(obs::ctr::kRankNodesRanked, active_.size());
  if (!result.feasible) AIS_OBS_COUNT(obs::ctr::kRankInfeasible);
}

RankResult RankSession::run_impl(const DeadlineMap& deadlines,
                                 const RankOptions& opts, bool count) {
  if (count) {
    AIS_OBS_COUNT(obs::ctr::kRankRuns);
    AIS_OBS_COUNT(obs::ctr::kRankNodesRanked, active_.size());
  }
  bool structurally_feasible = true;
  const std::vector<Time>& rank =
      compute_ranks(deadlines, opts, &structurally_feasible);

  // Priority list: nondecreasing rank, ties by opts.tie_break then id.  The
  // tie-break presence check and the active-id materialization are hoisted
  // out of the comparator (both used to run once per comparison).
  std::vector<NodeId> list = active_ids_;
  if (opts.tie_break.empty()) {
    // Same packed-key trick as the backward pass: when the rank spread fits
    // 32 bits, sort flat (rank - min) << 32 | id words instead of chasing
    // rank[] through the comparator.
    Time rank_min = kInf;
    Time rank_max = -kInf;
    for (const NodeId id : list) {
      rank_min = std::min(rank_min, rank[id]);
      rank_max = std::max(rank_max, rank[id]);
    }
    const auto spread =
        list.empty() ? 0ull : static_cast<std::uint64_t>(rank_max - rank_min);
    if (spread <= 0xFFFFFFFFull) {
      desc_keys_.clear();
      for (const NodeId id : list) {
        desc_keys_.push_back(
            (static_cast<std::uint64_t>(rank[id] - rank_min) << 32) | id);
      }
      std::sort(desc_keys_.begin(), desc_keys_.end());
      for (std::size_t i = 0; i < desc_keys_.size(); ++i) {
        list[i] = static_cast<NodeId>(desc_keys_[i] & 0xFFFFFFFFu);
      }
    } else {
      std::sort(list.begin(), list.end(), [&rank](NodeId a, NodeId b) {
        return std::tie(rank[a], a) < std::tie(rank[b], b);
      });
    }
  } else {
    const std::vector<int>& tie = opts.tie_break;
    std::sort(list.begin(), list.end(), [&rank, &tie](NodeId a, NodeId b) {
      return std::make_tuple(rank[a], tie[a], a) <
             std::make_tuple(rank[b], tie[b], b);
    });
  }

  // Feasibility is decided by the constructed schedule against the original
  // deadlines.  The rank values are priorities and bounds; a rank below the
  // node's execution time usually signals infeasibility, but the packing
  // relaxation can over-tighten ranks in merged instances, so the schedule
  // itself is the arbiter (structural tightness alone never rejects).
  (void)structurally_feasible;
  RankResult result{
      .feasible = true,
      .infeasible_reason = {},
      .rank = rank,
      .schedule = scheduler_->greedy_from_list(active_, list),
      .makespan = 0,
  };
  result.makespan = result.schedule.makespan();

  const DepGraph& graph = scheduler_->graph();
  for (const NodeId id : active_ids_) {
    if (result.schedule.completion(id) > deadlines[id]) {
      result.feasible = false;
      result.infeasible_reason =
          "node " + graph.node(id).name + " misses its deadline";
      break;
    }
  }
  if (count && !result.feasible) AIS_OBS_COUNT(obs::ctr::kRankInfeasible);
  return result;
}

// --- greedy list scheduling ----------------------------------------------

Schedule RankScheduler::greedy_from_list(const NodeSet& active,
                                         const std::vector<NodeId>& list) const {
  AIS_CHECK(list.size() == active.size(),
            "priority list must cover the active set exactly");
  for (const NodeId id : list) {
    AIS_CHECK(active.contains(id), "priority list node outside active set");
  }

  // Global unit indexing is class-major, matching validate_schedule.
  std::vector<int> unit_base(
      static_cast<std::size_t>(machine_.num_fu_classes()), 0);
  int total_units = 0;
  for (int c = 0; c < machine_.num_fu_classes(); ++c) {
    unit_base[static_cast<std::size_t>(c)] = total_units;
    total_units += machine_.fu_count(c);
  }

  Schedule sched(&graph_, active, total_units);
  std::vector<Time> unit_free(static_cast<std::size_t>(total_units), 0);

  const std::span<const std::int32_t> exec_col = graph_.exec_times();
  const std::span<const std::int32_t> fu_col = graph_.fu_classes();
  std::vector<std::uint32_t> pos(graph_.num_nodes(), 0);
  for (std::uint32_t i = 0; i < list.size(); ++i) pos[list[i]] = i;

  // earliest dependence-legal start per node; meaningful once all preds
  // are placed.
  std::vector<int> preds_left(graph_.num_nodes(), 0);
  std::vector<Time> est(graph_.num_nodes(), 0);
  for (const NodeId id : list) {
    for (const auto eidx : graph_.in_edges(id)) {
      const DepEdge& e = graph_.edge(eidx);
      if (e.distance == 0 && active.contains(e.from)) ++preds_left[id];
    }
  }

  // Event-driven ready queue.  `ready` holds dependence-ready nodes keyed by
  // list position (the greedy priority); `pending` holds nodes whose
  // dependences are satisfied but whose earliest start is in the future.
  // Equivalent to the classic "rescan the list from the front after every
  // placement" formulation: within one cycle units only get busier and a
  // successor released at t has est >= t + 1, so a single front-to-back
  // sweep over the ready set per cycle issues exactly the same nodes.
  std::set<std::uint32_t> ready;
  using Pending = std::pair<Time, std::uint32_t>;  // (est, list position)
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      pending;
  for (const NodeId id : list) {
    if (preds_left[id] == 0) ready.insert(pos[id]);
  }

  std::vector<char> class_waiting(
      static_cast<std::size_t>(machine_.num_fu_classes()), 0);

  std::size_t unplaced = list.size();
  Time t = 0;
  const Time t_limit = graph_.total_work() +
                       static_cast<Time>(list.size() + 1) *
                           (graph_.max_latency() + 1) +
                       1;
  while (unplaced > 0) {
    AIS_CHECK(t <= t_limit, "greedy scheduler failed to make progress");
    while (!pending.empty() && pending.top().first <= t) {
      ready.insert(pending.top().second);
      pending.pop();
    }

    int issued = 0;
    bool width_exhausted = false;
    for (auto it = ready.begin(); it != ready.end();) {
      if (issued >= machine_.issue_width()) {
        width_exhausted = true;
        break;
      }
      const NodeId id = list[*it];
      const int fu_class = fu_col[id];
      const Time exec_time = exec_col[id];
      // A unit of this node's class free for [t, t + exec)?
      const int base = unit_base[static_cast<std::size_t>(fu_class)];
      int chosen = -1;
      for (int k = 0; k < machine_.fu_count(fu_class); ++k) {
        if (unit_free[static_cast<std::size_t>(base + k)] <= t) {
          chosen = base + k;
          break;
        }
      }
      if (chosen < 0) {
        ++it;
        continue;
      }
      sched.place(id, t, chosen);
      unit_free[static_cast<std::size_t>(chosen)] = t + exec_time;
      --unplaced;
      ++issued;
      // Release successors.  A successor released now has est >= t + 1
      // (exec_time >= 1), so it can never issue this cycle.
      for (const auto eidx : graph_.out_edges(id)) {
        const DepEdge& e = graph_.edge(eidx);
        if (e.distance != 0 || !active.contains(e.to)) continue;
        est[e.to] = std::max(est[e.to], t + exec_time + e.latency);
        if (--preds_left[e.to] == 0) pending.emplace(est[e.to], pos[e.to]);
      }
      it = ready.erase(it);
    }
    if (unplaced == 0) break;

    // Jump to the next cycle where anything can change: (a) t + 1 when the
    // issue width cut the sweep short, (b) the earliest pending release,
    // (c) the earliest unit of a class some ready node waits on freeing up.
    Time next = kInf;
    if (width_exhausted) next = t + 1;
    if (!pending.empty()) next = std::min(next, pending.top().first);
    if (!width_exhausted && !ready.empty()) {
      std::fill(class_waiting.begin(), class_waiting.end(), 0);
      for (const std::uint32_t p : ready) {
        class_waiting[static_cast<std::size_t>(fu_col[list[p]])] = 1;
      }
      for (int c = 0; c < machine_.num_fu_classes(); ++c) {
        if (!class_waiting[static_cast<std::size_t>(c)]) continue;
        const int base = unit_base[static_cast<std::size_t>(c)];
        for (int k = 0; k < machine_.fu_count(c); ++k) {
          next = std::min(next,
                          unit_free[static_cast<std::size_t>(base + k)]);
        }
      }
    }
    AIS_CHECK(next > t && next < kInf,
              "greedy scheduler failed to make progress");
    t = next;
  }
  return sched;
}

}  // namespace ais
