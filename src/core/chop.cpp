#include "core/chop.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace ais {

ChopResult chop(const Schedule& s, DeadlineMap& deadlines, int window) {
  AIS_OBS_SPAN("chop");
  AIS_OBS_COUNT(obs::ctr::kChopCalls);
  AIS_CHECK(window >= 1, "window must be positive");
  const DepGraph& g = s.graph();
  const std::vector<NodeId> perm = s.permutation();

  ChopResult keep_all(g.num_nodes());
  for (const NodeId id : perm) keep_all.suffix.insert(id);
  keep_all.suffix_makespan = s.makespan();

  if (perm.size() < static_cast<std::size_t>(window)) return keep_all;

  // Candidate split times: cycles where every unit is idle.  On a single
  // unit this is exactly the paper's idle-slot set; on multiple units it is
  // the safe generalization (no instruction spans the split).
  std::vector<Time> candidates;
  {
    std::vector<std::vector<Time>> per_unit;
    for (int u = 0; u < s.total_units(); ++u) {
      per_unit.push_back(s.idle_times(u));
    }
    for (const Time t : per_unit[0]) {
      bool all_idle = true;
      for (int u = 1; u < s.total_units(); ++u) {
        if (!std::binary_search(per_unit[static_cast<std::size_t>(u)].begin(),
                                per_unit[static_cast<std::size_t>(u)].end(),
                                t)) {
          all_idle = false;
          break;
        }
      }
      if (all_idle) candidates.push_back(t);
    }
  }
  if (candidates.empty()) return keep_all;

  // Largest t_j with at least W nodes starting after it — the slot is then
  // out of reach of any future instruction: a later-block node filling it
  // would form an inversion spanning >= W + 1 list positions.  (The paper's
  // prose, "the last idle slot prior to the last W nodes in S"; its
  // pseudocode says W-1, which is off by one — with only W-1 nodes after
  // the slot a future node can still legally fill it, see
  // tests/test_baselines.cpp LookaheadOptimality.)
  Time split = -1;
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    std::size_t after = 0;
    for (const NodeId id : perm) {
      if (s.start(id) > *it) ++after;
    }
    if (after >= static_cast<std::size_t>(window)) {
      split = *it;
      break;
    }
  }
  if (split < 0) return keep_all;

  ChopResult result(g.num_nodes());
  for (const NodeId id : perm) {
    if (s.start(id) < split) {
      result.emitted.push_back(id);
    } else {
      AIS_CHECK(s.start(id) > split, "node scheduled inside the idle split");
      result.suffix.insert(id);
    }
  }
  if (!result.emitted.empty()) AIS_OBS_COUNT(obs::ctr::kChopPoints);
  shift_deadlines(deadlines, result.suffix, split + 1);
  result.suffix_makespan = s.makespan() - (split + 1);
  return result;
}

}  // namespace ais
