// Procedures Move_Idle_Slot and Delay_Idle_Slots (paper Figs. 4 and 6).
//
// The key idea of anticipatory scheduling: within a minimum-makespan block
// schedule, push every idle slot as late as possible so instructions of the
// *next* block can fill it through the hardware lookahead window.
//
// Move_Idle_Slot delays one idle slot by repeatedly tightening the deadline
// of the "tail node" (the node completing exactly at the slot) and
// re-running the Rank Algorithm; deadline reductions are committed only when
// the slot actually moved later.  Nodes scheduled before the slot first get
// their deadlines capped at the slot time so no earlier idle slot can move
// earlier.  Provably optimal in the restricted case (0/1 latencies, unit
// execution times, single FU); a heuristic otherwise, where the multi-unit
// variant follows §4.2: deadline reductions are restricted to nodes on units
// of the slot's FU class.
#pragma once

#include "core/deadlines.hpp"
#include "core/rank.hpp"
#include "core/schedule.hpp"

namespace ais {

struct MoveIdleResult {
  /// Schedule after the attempt (== input schedule on failure).
  Schedule schedule;
  /// The processed idle slot after the attempt: the input slot on failure, a
  /// strictly later slot on success.  A slot eliminated outright is reported
  /// with time == schedule.makespan().
  IdleSlot slot;
  bool moved = false;
};

/// Tries to delay the idle slot `slot` of `s`.  `deadlines` is updated in
/// place: committed on success, untouched on failure.  `s` must be a
/// feasible schedule for its active set under `deadlines`.
MoveIdleResult move_idle_slot(const RankScheduler& scheduler, const Schedule& s,
                              DeadlineMap& deadlines, IdleSlot slot,
                              const RankOptions& opts = {});

/// Same, reusing a caller-owned session (its active set must equal
/// s.active()).  Delay_Idle_Slots drives all its attempts through one
/// session so topo order / closure are built once and rank updates stay
/// incremental across slots.
MoveIdleResult move_idle_slot(RankSession& session, const Schedule& s,
                              DeadlineMap& deadlines, IdleSlot slot,
                              const RankOptions& opts = {});

/// Delays every idle slot of `s` as late as possible, earliest slot first,
/// re-trying each slot until it no longer moves (paper Fig. 6).  Returns the
/// final schedule; `deadlines` accumulates all committed reductions.
Schedule delay_idle_slots(const RankScheduler& scheduler, Schedule s,
                          DeadlineMap& deadlines, const RankOptions& opts = {});

}  // namespace ais
