#include "core/schedule.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "support/assert.hpp"

namespace ais {

Schedule::Schedule(const DepGraph* g, NodeSet active, int total_units)
    : graph_(g),
      active_(std::move(active)),
      units_(static_cast<std::size_t>(total_units)),
      start_(g->num_nodes(), Time{-1}),
      unit_(g->num_nodes(), -1) {
  AIS_CHECK(total_units >= 1, "schedule needs at least one unit");
  AIS_CHECK(active_.domain_size() == g->num_nodes(),
            "active set domain mismatch");
}

void Schedule::place(NodeId id, Time start, int unit) {
  AIS_CHECK(active_.contains(id), "placing a node outside the active set");
  AIS_CHECK(!placed(id), "node already placed");
  AIS_CHECK(start >= 0, "start time must be nonnegative");
  AIS_CHECK(unit >= 0 && unit < total_units(), "unit index out of range");
  const Time end = start + graph_->node(id).exec_time;

  auto& lane = units_[static_cast<std::size_t>(unit)];
  const auto pos = std::lower_bound(
      lane.begin(), lane.end(), std::make_pair(start, NodeId{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  // Exclusivity: the previous occupant must end by `start`, the next must
  // begin at or after `end`.
  if (pos != lane.begin()) {
    const auto& prev = *(pos - 1);
    AIS_CHECK(prev.first + graph_->node(prev.second).exec_time <= start,
              "unit already busy at requested start");
  }
  if (pos != lane.end()) {
    AIS_CHECK(pos->first >= end, "unit busy before instruction would finish");
  }
  lane.insert(pos, {start, id});
  start_[id] = start;
  unit_[id] = unit;
  makespan_ = std::max(makespan_, end);
  idle_cache_valid_ = false;
}

bool Schedule::placed(NodeId id) const {
  AIS_CHECK(id < start_.size(), "node id out of range");
  return start_[id] >= 0;
}

Time Schedule::start(NodeId id) const {
  AIS_CHECK(placed(id), "node not placed");
  return start_[id];
}

Time Schedule::completion(NodeId id) const {
  return start(id) + graph_->node(id).exec_time;
}

int Schedule::unit_of(NodeId id) const {
  AIS_CHECK(placed(id), "node not placed");
  return unit_[id];
}

bool Schedule::complete() const {
  bool all = true;
  active_.bits().for_each([&](std::size_t i) {
    if (start_[i] < 0) all = false;
  });
  return all;
}

NodeId Schedule::node_at(int unit, Time time) const {
  AIS_CHECK(unit >= 0 && unit < total_units(), "unit index out of range");
  const auto& lane = units_[static_cast<std::size_t>(unit)];
  const auto pos = std::upper_bound(
      lane.begin(), lane.end(), std::make_pair(time, kInvalidNode),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (pos == lane.begin()) return kInvalidNode;
  const auto& [start, id] = *(pos - 1);
  return (start + graph_->node(id).exec_time > time) ? id : kInvalidNode;
}

const std::vector<IdleSlot>& Schedule::idle_slots() const {
  if (!idle_cache_valid_) {
    idle_cache_.clear();
    for (int u = 0; u < total_units(); ++u) {
      for (const Time t : idle_times(u)) idle_cache_.push_back(IdleSlot{u, t});
    }
    std::sort(idle_cache_.begin(), idle_cache_.end(),
              [](const IdleSlot& a, const IdleSlot& b) {
                return std::tie(a.time, a.unit) < std::tie(b.time, b.unit);
              });
    idle_cache_valid_ = true;
  }
  return idle_cache_;
}

std::size_t Schedule::idle_slot_index(IdleSlot slot) const {
  const auto& slots = idle_slots();
  // The list is sorted by (time, unit) — IdleSlot's default ordering is
  // (unit, time), so spell the comparator out.
  const auto pos = std::lower_bound(
      slots.begin(), slots.end(), slot,
      [](const IdleSlot& a, const IdleSlot& b) {
        return std::tie(a.time, a.unit) < std::tie(b.time, b.unit);
      });
  AIS_CHECK(pos != slots.end() && *pos == slot,
            "slot is not idle in the given schedule");
  return static_cast<std::size_t>(pos - slots.begin());
}

std::vector<Time> Schedule::idle_times(int unit) const {
  AIS_CHECK(unit >= 0 && unit < total_units(), "unit index out of range");
  const auto& lane = units_[static_cast<std::size_t>(unit)];
  std::vector<Time> idle;
  Time cursor = 0;
  for (const auto& [start, id] : lane) {
    for (Time t = cursor; t < start; ++t) idle.push_back(t);
    cursor = start + graph_->node(id).exec_time;
  }
  for (Time t = cursor; t < makespan_; ++t) idle.push_back(t);
  return idle;
}

std::vector<NodeId> Schedule::permutation() const {
  std::vector<NodeId> perm;
  active_.bits().for_each([&](std::size_t i) {
    if (start_[i] >= 0) perm.push_back(static_cast<NodeId>(i));
  });
  std::sort(perm.begin(), perm.end(), [this](NodeId a, NodeId b) {
    return std::tie(start_[a], unit_[a]) < std::tie(start_[b], unit_[b]);
  });
  return perm;
}

std::vector<std::vector<NodeId>> Schedule::u_sets() const {
  AIS_CHECK(total_units() == 1, "u-set partition is defined for one unit");
  const auto& lane = units_[0];
  std::vector<std::vector<NodeId>> sets;
  sets.emplace_back();
  Time cursor = 0;
  for (const auto& [start, id] : lane) {
    if (start > cursor) sets.emplace_back();  // an idle gap ended a u set
    sets.back().push_back(id);
    cursor = start + graph_->node(id).exec_time;
  }
  return sets;
}

NodeId Schedule::tail_node(int unit, Time t) const {
  AIS_CHECK(unit >= 0 && unit < total_units(), "unit index out of range");
  const auto& lane = units_[static_cast<std::size_t>(unit)];
  // Completion times are strictly increasing along a lane (sorted starts +
  // unit exclusivity), so the node completing at t is binary-searchable.
  const auto pos = std::partition_point(
      lane.begin(), lane.end(), [this, t](const std::pair<Time, NodeId>& e) {
        return e.first + graph_->node(e.second).exec_time < t;
      });
  if (pos != lane.end() &&
      pos->first + graph_->node(pos->second).exec_time == t) {
    return pos->second;
  }
  return kInvalidNode;
}

std::string validate_schedule(const Schedule& s, const MachineModel& machine) {
  const DepGraph& g = s.graph();
  if (!s.complete()) return "schedule does not place every active node";

  // Unit typing: a node must run on a unit belonging to its FU class.
  // Global unit indices are assigned class-major: class 0 units first.
  std::vector<int> class_of_unit;
  for (int c = 0; c < machine.num_fu_classes(); ++c) {
    for (int k = 0; k < machine.fu_count(c); ++k) class_of_unit.push_back(c);
  }
  if (static_cast<int>(class_of_unit.size()) != s.total_units()) {
    return "schedule unit count does not match machine";
  }

  std::vector<int> starts_per_cycle;
  for (const NodeId id : s.active().ids()) {
    const int unit = s.unit_of(id);
    if (class_of_unit[static_cast<std::size_t>(unit)] != g.node(id).fu_class) {
      return "node " + g.node(id).name + " runs on a unit of the wrong class";
    }
    const Time t = s.start(id);
    if (t >= static_cast<Time>(starts_per_cycle.size())) {
      starts_per_cycle.resize(static_cast<std::size_t>(t) + 1, 0);
    }
    ++starts_per_cycle[static_cast<std::size_t>(t)];
  }
  for (std::size_t t = 0; t < starts_per_cycle.size(); ++t) {
    if (starts_per_cycle[t] > machine.issue_width()) {
      return "issue width exceeded at cycle " + std::to_string(t);
    }
  }

  for (const DepEdge& e : g.edges()) {
    if (e.distance != 0) continue;
    if (!s.active().contains(e.from) || !s.active().contains(e.to)) continue;
    if (s.start(e.to) < s.completion(e.from) + e.latency) {
      return "dependence " + g.node(e.from).name + " -> " + g.node(e.to).name +
             " violated";
    }
  }
  return {};
}

std::string format_timeline(const Schedule& s, int unit) {
  std::ostringstream os;
  os << '|';
  Time t = 0;
  while (t < s.makespan()) {
    const NodeId id = s.node_at(unit, t);
    if (id == kInvalidNode) {
      os << " . |";
      ++t;
    } else {
      os << ' ' << s.graph().node(id).name << " |";
      t += s.graph().node(id).exec_time;
    }
  }
  return os.str();
}

}  // namespace ais
