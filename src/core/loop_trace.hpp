// Anticipatory scheduling of a loop enclosing a trace of m > 1 blocks
// (§5.1).
//
// Algorithm Lookahead runs over BB1..BBm, followed by one extra step: BBm is
// scheduled with (a clone of) BB1 as its successor, the clone's incoming
// edges derived from the loop-carried dependences — so the tail of iteration
// k leaves its idle slots where the head of iteration k+1 can fill them.
// The clone's own order is discarded: the emitted per-block orders are the
// code, identical for every iteration.
#pragma once

#include "core/lookahead.hpp"
#include "graph/depgraph.hpp"

namespace ais {

/// Schedules the body of a loop whose trace has >= 2 blocks.  `g` must be a
/// loop graph (built by build_loop_graph): blocks 0..m-1 plus carried edges.
/// Carried edges with distance > 1 or targeting blocks other than BB1 are
/// conservatively ignored for the wrap-around step (their slack spans whole
/// iterations).  Single-block loops belong to loop_single.
LookaheadResult schedule_loop_trace(const DepGraph& g,
                                    const MachineModel& machine,
                                    const LookaheadOptions& opts);

}  // namespace ais
