// Algorithm Lookahead (paper Fig. 5): anticipatory scheduling of a trace.
//
// Iterates over the blocks of a trace maintaining a live suffix `old` of
// not-yet-emitted instructions:
//
//   for each block BB_i:
//     (S, d) := merge(old, BB_i, d_old, W)     -- new fills old's idle slots
//     (S, d) := Delay_Idle_Slots(S, d)         -- push idle slots late
//     (S-, S+, d) := chop(S, d)                -- emit the settled prefix
//     sched := sched o S-;  old := S+
//   sched := sched o S+
//
// The output is a *permutation* of the trace: its per-block subpermutations
// are the code the compiler emits (instructions never cross block
// boundaries in the emitted code); overlap between blocks happens only in
// the hardware lookahead window at run time.  Optimal for the restricted
// case (0/1 latencies, unit execution times, single FU); the §4.2 heuristic
// otherwise.
#pragma once

#include <vector>

#include "core/deadlines.hpp"
#include "core/rank.hpp"

namespace ais {

struct LookaheadOptions {
  /// Hardware lookahead window size W.
  int window = 4;
  /// Artificial deadline D; 0 = derive from the graph (huge_deadline).
  Time huge = 0;
  RankOptions rank;
  /// Ablation switches (bench_ablation): disable individual ingredients.
  bool delay_idle = true;     // run Delay_Idle_Slots after each merge
  bool merge_deadline_caps = true;  // cap old deadlines in merge
  bool do_chop = true;        // emit settled prefixes (off = re-merge all)
  /// Worker threads for cold-path pre-scheduling: with jobs > 1 every
  /// block's standalone substrate (topo order, descendant closure, initial
  /// ranks, standalone schedule) is computed concurrently on a thread pool
  /// while the serial Merge/Chop chain consumes the artifacts.  Output is
  /// byte-identical at every jobs value, counters included; jobs <= 0 means
  /// one worker per hardware thread.  jobs == 1 is the plain serial path.
  int jobs = 1;
  /// Gates the substrate pipeline above (only meaningful with jobs > 1);
  /// off = jobs > 1 degenerates to the serial path.  Exposed so tests and
  /// benchmarks can isolate the pre-scheduling machinery.
  bool preschedule = true;
  /// Cap on the Merge fill depth: with fill_cap = C > 0, new-block nodes
  /// may only fill idle slots among the last C retained old instructions of
  /// the planning order (at most C old nodes follow any new node).  0 means
  /// uncapped — the advisory order may promise overlap deeper than the
  /// hardware window reaches (ROADMAP `window-span`).  Changes the emitted
  /// code, so it is part of the schedule-cache key.
  int fill_cap = 0;
};

struct LookaheadDiagnostics {
  /// Makespan of each per-iteration merged schedule (after idle delaying).
  std::vector<Time> merged_makespans;
  /// Number of chops that actually emitted a prefix.
  std::size_t prefixes_emitted = 0;
  /// Widest inversion span of the planning order (0 = no inversion); spans
  /// > W mean Merge packed new-block nodes deeper than the hardware window
  /// reaches — legal for the emitted per-block code, tracked by the
  /// `lookahead.window_span_gt_w` obs counter (see ROADMAP `window-span`).
  /// Computed only while telemetry is enabled (stays 0 otherwise).
  std::size_t max_inversion_span = 0;
};

struct LookaheadResult {
  /// The planning permutation over all trace nodes (may interleave blocks).
  std::vector<NodeId> order;
  /// Emitted code: the subpermutation of `order` for each block.
  std::vector<std::vector<NodeId>> per_block;
  LookaheadDiagnostics diag;

  /// The hardware priority list L = P1 o P2 o ... o Pm.
  std::vector<NodeId> priority_list() const;
};

/// Partition of `g`'s nodes into blocks by NodeInfo::block (dense indices).
std::vector<NodeSet> blocks_of(const DepGraph& g);

/// Runs Algorithm Lookahead over `blocks` (in trace order).
LookaheadResult schedule_trace(const RankScheduler& scheduler,
                               const std::vector<NodeSet>& blocks,
                               const LookaheadOptions& opts);

/// Convenience overload: blocks recovered from the graph's node metadata.
LookaheadResult schedule_trace(const RankScheduler& scheduler,
                               const LookaheadOptions& opts);

}  // namespace ais
