#include "core/loop_trace.hpp"

#include "support/assert.hpp"

namespace ais {

LookaheadResult schedule_loop_trace(const DepGraph& g,
                                    const MachineModel& machine,
                                    const LookaheadOptions& opts) {
  int num_blocks = 0;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    num_blocks = std::max(num_blocks, g.node(id).block + 1);
  }
  AIS_CHECK(num_blocks >= 2,
            "loop-trace scheduling needs >= 2 blocks; use loop_single");

  // Extended graph: the trace plus a clone of BB1 as block m, receiving the
  // wrapped-around loop-carried edges as loop-independent ones.
  DepGraph ext;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    const NodeInfo& n = g.node(id);
    ext.add_node(n.name, n.exec_time, n.fu_class, n.block);
  }
  std::vector<NodeId> clone_of(g.num_nodes(), kInvalidNode);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    const NodeInfo& n = g.node(id);
    if (n.block == 0) {
      clone_of[id] =
          ext.add_node(n.name + "'", n.exec_time, n.fu_class, num_blocks);
    }
  }
  for (const DepEdge& e : g.edges()) {
    if (e.distance == 0) {
      ext.add_edge(e.from, e.to, e.latency, 0);
      // BB1-internal structure repeats inside the clone.
      if (clone_of[e.from] != kInvalidNode && clone_of[e.to] != kInvalidNode) {
        ext.add_edge(clone_of[e.from], clone_of[e.to], e.latency, 0);
      }
    } else if (e.distance == 1 && clone_of[e.to] != kInvalidNode) {
      // Wrap-around: iteration k's `from` constrains iteration k+1's `to`.
      ext.add_edge(e.from, clone_of[e.to], e.latency, 0);
    }
    // distance > 1 or carried into a later block: conservatively ignored.
  }

  const RankScheduler scheduler(ext, machine);
  LookaheadResult full = schedule_trace(scheduler, opts);

  // Strip the clone: drop block m from the result.  Node ids of real nodes
  // are unchanged by construction.
  LookaheadResult out;
  out.diag = full.diag;
  for (const NodeId id : full.order) {
    if (ext.node(id).block < num_blocks) out.order.push_back(id);
  }
  full.per_block.pop_back();
  out.per_block = std::move(full.per_block);
  return out;
}

}  // namespace ais
