#include "core/deadlines.hpp"

#include <algorithm>

namespace ais {

Time huge_deadline(const DepGraph& g, const NodeSet& active) {
  // Any schedule of the active nodes completes within total work plus the
  // worst idle stretch per node; (latency + exec) per node is a safe bound.
  Time bound = 1;
  for (const NodeId id : active.ids()) {
    bound += g.node(id).exec_time + g.max_latency();
  }
  return bound;
}

DeadlineMap uniform_deadlines(const DepGraph& g, Time d) {
  return DeadlineMap(g.num_nodes(), d);
}

void shift_deadlines(DeadlineMap& d, const NodeSet& subset, Time delta) {
  for (const NodeId id : subset.ids()) d[id] -= delta;
}

void cap_deadlines(DeadlineMap& d, const NodeSet& subset, Time cap) {
  for (const NodeId id : subset.ids()) d[id] = std::min(d[id], cap);
}

}  // namespace ais
