#include "core/loop_single.hpp"

#include <algorithm>
#include <limits>

#include "core/move_idle.hpp"
#include "support/assert.hpp"

namespace ais {
namespace {

/// Copies the loop-independent part of `g` (nodes + distance-0 edges).
DepGraph copy_loop_independent(const DepGraph& g) {
  DepGraph out;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    const NodeInfo& n = g.node(id);
    out.add_node(n.name, n.exec_time, n.fu_class, n.block);
  }
  for (const DepEdge& e : g.edges()) {
    if (e.distance == 0) out.add_edge(e.from, e.to, e.latency, 0);
  }
  return out;
}

/// Schedules `surrogate` (acyclic) with Rank + Delay_Idle_Slots and returns
/// the permutation with `dummy` removed.
std::vector<NodeId> schedule_surrogate(const DepGraph& surrogate,
                                       const MachineModel& machine,
                                       NodeId dummy,
                                       const RankOptions& rank_opts,
                                       Time* makespan) {
  const RankScheduler scheduler(surrogate, machine);
  const NodeSet active = NodeSet::all(surrogate.num_nodes());
  DeadlineMap d = uniform_deadlines(surrogate, huge_deadline(surrogate, active));
  RankResult r = scheduler.run(active, d, rank_opts);
  AIS_CHECK(r.feasible, "surrogate loop schedule must be feasible");
  // Normalize deadlines to the achieved makespan, then push idle slots late
  // ("followed by repeated applications of Move_Idle_Slot", §5.2.1).
  for (const NodeId id : active.ids()) d[id] = r.makespan;
  Schedule s =
      delay_idle_slots(scheduler, std::move(r.schedule), d, rank_opts);
  *makespan = s.makespan();

  std::vector<NodeId> order;
  for (const NodeId id : s.permutation()) {
    if (id != dummy) order.push_back(id);
  }
  return order;
}

bool is_carried_target(const DepGraph& g, NodeId id) {
  for (const auto eidx : g.in_edges(id)) {
    if (g.edge(eidx).carried()) return true;
  }
  return false;
}

bool is_carried_source(const DepGraph& g, NodeId id) {
  for (const auto eidx : g.out_edges(id)) {
    if (g.edge(eidx).carried()) return true;
  }
  return false;
}

bool is_li_source(const DepGraph& g, NodeId id) {
  for (const auto eidx : g.in_edges(id)) {
    if (g.edge(eidx).distance == 0) return false;
  }
  return true;
}

bool is_li_sink(const DepGraph& g, NodeId id) {
  for (const auto eidx : g.out_edges(id)) {
    if (g.edge(eidx).distance == 0) return false;
  }
  return true;
}

}  // namespace

LoopCandidate build_loop_candidate(const DepGraph& g,
                                   const MachineModel& machine, NodeId pivot,
                                   bool source_form,
                                   const RankOptions& rank_opts) {
  AIS_CHECK(pivot < g.num_nodes(), "pivot out of range");
  DepGraph surrogate = copy_loop_independent(g);
  const NodeInfo& pivot_info = g.node(pivot);
  const NodeId dummy = surrogate.add_node(
      source_form ? pivot_info.name + "'" : pivot_info.name + "~",
      pivot_info.exec_time, pivot_info.fu_class, pivot_info.block);

  // Carried edges incident to the pivot are rewritten onto the dummy node;
  // carried edges not touching the pivot are dropped for this candidate (in
  // the exact §5.2.1/§5.2.2 settings every carried edge touches the pivot,
  // so nothing is lost; in the §5.2.3 general case the candidate search plus
  // steady-state evaluation compensates for the relaxation).
  if (source_form) {
    // §5.2.1: dummy sink = next iteration's pivot instance.
    for (NodeId id = 0; id < g.num_nodes(); ++id) {
      surrogate.add_edge(id, dummy, 0, 0);
    }
    for (const DepEdge& e : g.edges()) {
      if (e.carried() && e.to == pivot) {
        surrogate.add_edge(e.from, dummy, e.latency, 0);
      }
    }
  } else {
    // §5.2.2: dummy source = previous iteration's pivot instance.
    for (NodeId id = 0; id < g.num_nodes(); ++id) {
      surrogate.add_edge(dummy, id, 0, 0);
    }
    for (const DepEdge& e : g.edges()) {
      if (e.carried() && e.from == pivot) {
        surrogate.add_edge(dummy, e.to, e.latency, 0);
      }
    }
  }

  LoopCandidate cand;
  cand.pivot = pivot;
  cand.source_form = source_form;
  cand.order = schedule_surrogate(surrogate, machine, dummy, rank_opts,
                                  &cand.surrogate_makespan);
  return cand;
}

std::vector<LoopCandidate> loop_single_candidates(
    const DepGraph& g, const MachineModel& machine,
    const LoopSingleOptions& opts) {
  std::vector<LoopCandidate> candidates;

  if (!g.has_carried_edges()) {
    // Iterations are independent: the plain block schedule is the only
    // candidate (steady state equals back-to-back block issues).
    DepGraph surrogate = copy_loop_independent(g);
    const NodeId dummy = surrogate.add_node("(end)", 1, 0, 0);
    for (NodeId id = 0; id + 1 < surrogate.num_nodes(); ++id) {
      surrogate.add_edge(id, dummy, 0, 0);
    }
    LoopCandidate cand;
    cand.pivot = kInvalidNode;
    cand.order = schedule_surrogate(surrogate, machine, dummy, opts.rank,
                                    &cand.surrogate_makespan);
    candidates.push_back(std::move(cand));
    return candidates;
  }

  // The paper's compile-time pruning is only valid for 0/1 latencies; kAuto
  // additionally checks the graph's actual latencies, not just the machine's
  // timing table.
  const bool prune =
      opts.prune == LoopSingleOptions::Prune::kAlways ||
      (opts.prune == LoopSingleOptions::Prune::kAuto &&
       machine.is_restricted_case() && g.max_latency() <= 1);

  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    if (is_carried_target(g, id) && (!prune || is_li_source(g, id))) {
      candidates.push_back(
          build_loop_candidate(g, machine, id, /*source_form=*/true,
                               opts.rank));
    }
    if (is_carried_source(g, id) && (!prune || is_li_sink(g, id))) {
      candidates.push_back(
          build_loop_candidate(g, machine, id, /*source_form=*/false,
                               opts.rank));
    }
  }
  AIS_CHECK(!candidates.empty(),
            "a loop with carried edges must yield at least one candidate");
  return candidates;
}

LoopCandidate schedule_single_block_loop(
    const DepGraph& g, const MachineModel& machine,
    const std::function<double(const std::vector<NodeId>&)>& evaluate,
    const LoopSingleOptions& opts) {
  std::vector<LoopCandidate> candidates =
      loop_single_candidates(g, machine, opts);

  std::size_t best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  Time best_makespan = std::numeric_limits<Time>::max();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double score = evaluate(candidates[i].order);
    if (score < best_score ||
        (score == best_score &&
         candidates[i].surrogate_makespan < best_makespan)) {
      best = i;
      best_score = score;
      best_makespan = candidates[i].surrogate_makespan;
    }
  }
  return candidates[best];
}

}  // namespace ais
