// Anticipatory scheduling of a loop containing a single basic block (§5.2).
//
// A block-optimal schedule can be steady-state suboptimal and vice versa
// (paper Fig. 3), because iteration k's tail overlaps iteration k+1's head
// in the lookahead window and through loop-carried latencies.  The paper's
// solutions build an *acyclic* surrogate graph G' and schedule it with the
// Rank Algorithm + idle-slot delaying:
//
//  §5.2.1 single-source: dummy sink z stands for the next iteration's
//         instance of the source y; every node gets a 0-latency edge to z;
//         each carried edge (u, v) becomes (u, z) with the same latency.
//  §5.2.2 single-sink (duality): dummy source z stands for the previous
//         iteration's instance of the sink y; z gets a 0-latency edge to
//         every node; each carried edge (u, v) becomes (z, v).
//  §5.2.3 general case: try every target of a carried edge as a source
//         candidate and every source of a carried edge as a sink candidate,
//         and keep the best steady-state schedule.  For 0/1 latencies the
//         candidate set prunes to sources/sinks of the loop-independent
//         subgraph.
//
// Candidate quality is judged by the *steady-state initiation interval*,
// which depends on the lookahead machine; callers supply an evaluator
// (usually sim::steady_state_period) so this module stays simulator-free.
#pragma once

#include <functional>
#include <vector>

#include "core/rank.hpp"
#include "graph/depgraph.hpp"

namespace ais {

struct LoopCandidate {
  /// The pivot node y this candidate was built around.
  NodeId pivot = kInvalidNode;
  /// True for the §5.2.1 (dummy-sink) construction, false for §5.2.2.
  bool source_form = true;
  /// Emitted instruction order for the block (original node ids).
  std::vector<NodeId> order;
  /// Makespan of the surrogate acyclic schedule (diagnostic; the relative
  /// completion-time objective the construction minimizes).
  Time surrogate_makespan = 0;
};

struct LoopSingleOptions {
  RankOptions rank;
  /// Prune candidates to G_li sources (step 1) / sinks (step 2); valid for
  /// 0/1 latencies (paper's observation).  Default: prune only when the
  /// machine is the restricted case.
  enum class Prune { kAuto, kAlways, kNever } prune = Prune::kAuto;
};

/// Builds the §5.2.1/§5.2.2 surrogate graph for pivot `y` and schedules it;
/// `g` must be a single-block loop graph with carried edges.
LoopCandidate build_loop_candidate(const DepGraph& g,
                                   const MachineModel& machine, NodeId pivot,
                                   bool source_form,
                                   const RankOptions& rank_opts);

/// Enumerates every §5.2.3 candidate (both constructions, pruned per opts).
/// If the loop has no carried edges, returns the single plain block schedule.
std::vector<LoopCandidate> loop_single_candidates(
    const DepGraph& g, const MachineModel& machine,
    const LoopSingleOptions& opts = {});

/// Runs §5.2.3: enumerate candidates and keep the one with the smallest
/// evaluator score (e.g. simulated steady-state cycles per iteration);
/// surrogate makespan breaks ties.
LoopCandidate schedule_single_block_loop(
    const DepGraph& g, const MachineModel& machine,
    const std::function<double(const std::vector<NodeId>&)>& evaluate,
    const LoopSingleOptions& opts = {});

}  // namespace ais
