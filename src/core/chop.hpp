// Procedure Chop (paper Fig. 6).
//
// Splits a merged schedule S into a prefix S- that can be emitted
// immediately (no future block can improve it) and a suffix S+ that stays
// live for merging with the next block.  The split point is the last idle
// slot t_j "prior to the last W nodes" of S — i.e. with at least W nodes
// after it: the slot (and everything before it) is then out of reach of a
// W-instruction lookahead window.  Deadlines of suffix nodes are rebased by
// t_j + 1 so the suffix schedule starts at time 0.
//
// Per the paper: when S has no idle slot, has fewer than W nodes, or no idle
// slot has W-1 nodes behind it, everything is retained (S- is empty) —
// latency edges into the next block may still create fillable idle time
// near the boundary.
#pragma once

#include <vector>

#include "core/deadlines.hpp"
#include "core/schedule.hpp"

namespace ais {

struct ChopResult {
  /// Emitted nodes, in schedule order (possibly empty).
  std::vector<NodeId> emitted;
  /// Retained suffix node set.
  NodeSet suffix;
  /// Makespan of the (rebased) suffix schedule: the "T_old" input of the
  /// next merge.
  Time suffix_makespan = 0;

  explicit ChopResult(std::size_t domain) : suffix(domain) {}
};

/// Chops single-unit schedule `s`; rebases `deadlines` of suffix nodes in
/// place.  `window` is the hardware lookahead window size W.
ChopResult chop(const Schedule& s, DeadlineMap& deadlines, int window);

}  // namespace ais
