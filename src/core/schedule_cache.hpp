// Content-addressed schedule cache: memoization in front of the Lookahead
// solver, with cross-trace reuse and an optional on-disk tier.
//
// A scheduling instance — the dependence DAG restricted to the nodes being
// scheduled, their latencies and deadlines, the machine shape, the window W
// and the algorithm switches — is serialized into a canonical key; the cache
// maps that key to the solver's result so an identical instance (the same
// block re-scheduled on every wrap-around iteration of a §5 loop trace, the
// repeated bodies of an unrolled kernel, the same file recompiled) skips the
// entire RankSession solve and replays the stored answer.
//
// Canonical form and the byte-identity contract
// ---------------------------------------------
// Keys are *dense-id serializations*: the instance's nodes are compacted in
// ascending caller-id order to dense ids 0..n-1, names are dropped
// (scheduling is name-independent; renamed registers reuse each other's
// schedules), and edges are sorted.  Two instances produce equal keys
// exactly when one is a monotone relabeling of the other — and the solver
// breaks every tie by ascending node id, so it is equivariant under
// monotone relabelings: replaying a cached schedule through the key's
// dense→caller id map is byte-identical to a fresh solve.  (Serving hits
// across *non*-monotone isomorphic relabelings would not be: equal-rank
// nodes tie-break by id, and the relabeling can swap them.)  The key's
// *hash* is coarser: a Weisfeiler–Leman-style structural hash, invariant
// under arbitrary isomorphic relabeling and independent of topological
// order, so isomorphic instances land in the same bucket and full-key
// equality — never the hash — decides reuse.  See docs/CACHING.md.
//
// Counters are part of the contract: a hit replays the counter deltas the
// original solve recorded (obs::CounterRecorder), so `aisc --profile` and
// the differential tests see identical numbers with the cache on or off —
// only the `cache.*` counters themselves differ.
//
// Two entry kinds share the cache:
//  * Trace ('T'): one whole schedule_trace() result — order, diagnostics,
//    counter deltas.
//  * Step ('S'): one Lookahead iteration (merge + Delay_Idle_Slots + chop)
//    keyed on the live (old, new, deadlines, t_old) state, so repeated
//    bodies hit even inside a single cold trace and across different traces.
//
// Every entry carries a self-contained dependence certificate — the stored
// order is checked against the key's own edge list at insert and again on
// every disk load.  (The deeper optimality certificates live in src/verify,
// which *links against* this library; the driver's --verify path re-checks
// cached schedules with the full oracle, uncached.)
//
// Concurrency: the in-memory tier is a sharded, mutex-striped LRU, safe
// under ThreadPool parallel trace compilation; the disk tier uses atomic
// temp-file + rename writes and validates header, versions, key bytes and
// the certificate on load, so a torn or stale file degrades to a miss.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/deadlines.hpp"
#include "graph/depgraph.hpp"
#include "graph/nodeset.hpp"
#include "machine/machine_model.hpp"

namespace ais {

/// Bump when any scheduling algorithm changes observable output: it is
/// serialized into every key, so stale disk (and in-memory) entries of an
/// older scheduler can never be served.
inline constexpr std::uint32_t kScheduleCacheAlgoVersion = 1;
/// Bump when the key or value serialization layout changes.
/// v3: values grew per-name histogram sample lists (value_samples).
inline constexpr std::uint32_t kScheduleCacheFormatVersion = 3;

/// A canonical scheduling-instance key plus the remap table for its hits.
struct CacheKey {
  /// Dense serialization; key equality is bytes equality.
  std::string bytes;
  /// Structural (relabeling-invariant) hash; bucket selection only.
  std::uint64_t hash = 0;
  /// Dense id -> caller NodeId (ascending).  Not part of equality: two
  /// equal keys may map onto different caller ids — that is the reuse.
  std::vector<NodeId> ids;
};

/// Scalar context shared by every instance of one schedule_trace() run.
struct CacheInstanceParams {
  const MachineModel* machine = nullptr;
  int window = 0;
  Time huge = 0;
  bool delay_idle = true;
  bool merge_deadline_caps = true;
  bool do_chop = true;
  bool split_long_ops = false;
  /// LookaheadOptions::fill_cap: caps how deep Merge fills new-block nodes
  /// into the retained suffix.  Changes emitted code, hence part of the key.
  int fill_cap = 0;
  /// RankOptions::tie_break, indexed by caller NodeId; empty = id order.
  const std::vector<int>* tie_break = nullptr;
};

using CounterDeltaMap = std::map<std::string, std::uint64_t, std::less<>>;
/// Histogram samples recorded by the original solve (obs::record_value),
/// replayed on hits like counter_deltas.  Only deterministic, run-
/// independent distributions qualify (chop.prefix_len); wall-clock
/// histograms carry the "time." prefix, which CounterRecorder filters
/// before anything reaches a cache value.
using ValueSampleMap =
    std::map<std::string, std::vector<std::uint64_t>, std::less<>>;

/// One whole schedule_trace() outcome, in dense ids.
struct TraceCacheValue {
  std::vector<std::uint32_t> order;        // planning permutation, dense
  std::vector<Time> merged_makespans;      // LookaheadDiagnostics
  std::uint64_t prefixes_emitted = 0;
  CounterDeltaMap counter_deltas;
  ValueSampleMap value_samples;
};

/// One Lookahead iteration outcome, in dense ids.
struct StepCacheValue {
  std::vector<std::uint32_t> emitted;       // chop prefix, emission order
  std::vector<std::uint32_t> suffix_order;  // suffix, merged-schedule order
  std::vector<Time> suffix_deadlines;       // rebased, aligned with above
  Time suffix_makespan = 0;                 // next iteration's t_old
  Time merged_makespan = 0;                 // diagnostics entry
  CounterDeltaMap counter_deltas;
  ValueSampleMap value_samples;
};

/// Key for a whole trace: `blocks` in iteration order over `g`.
CacheKey build_trace_key(const DepGraph& g, const std::vector<NodeSet>& blocks,
                         const CacheInstanceParams& params);

/// Key for one Lookahead iteration: live suffix `old`, incoming block
/// `new_nodes`, their current `deadlines` and the suffix makespan `t_old`.
CacheKey build_step_key(const DepGraph& g, const NodeSet& old,
                        const NodeSet& new_nodes, const DeadlineMap& deadlines,
                        Time t_old, const CacheInstanceParams& params);

/// Structural hash of `key` recomputed from scratch — exposed for tests
/// (invariance under isomorphic relabeling); equals key.hash.
std::uint64_t structural_hash(const CacheKey& key);

class ScheduleCache {
 public:
  explicit ScheduleCache(std::size_t capacity_bytes = kDefaultCapacityBytes);
  ~ScheduleCache();
  ScheduleCache(const ScheduleCache&) = delete;
  ScheduleCache& operator=(const ScheduleCache&) = delete;

  /// The process-wide cache used by schedule_trace().  First use reads the
  /// environment: AIS_CACHE=0 disables it, AIS_CACHE_DIR sets the disk tier.
  static ScheduleCache& global();

  /// The global cache if it should serve the calling thread right now —
  /// nullptr when disabled or bypassed.  Lookahead's single entry check.
  static ScheduleCache* active();

  /// RAII thread-local bypass: benchmarks measuring the raw solver and the
  /// differential tests' reference passes run under one of these.
  class ScopedBypass {
   public:
    ScopedBypass();
    ~ScopedBypass();
    ScopedBypass(const ScopedBypass&) = delete;
    ScopedBypass& operator=(const ScopedBypass&) = delete;
  };

  void set_enabled(bool on);
  bool enabled() const;

  /// Total in-memory budget, split evenly across shards; inserting past it
  /// evicts least-recently-used entries (counter cache.evictions).
  void set_capacity(std::size_t bytes);

  /// Directory of the persistent tier; empty disables it.  Created on first
  /// write.  Entries are validated (versions, key bytes, certificate) on
  /// load, so a foreign or corrupt file is just a miss.
  void set_disk_dir(std::string dir);
  std::string disk_dir() const;

  /// Drains every pending coalesced disk write and stops the background
  /// flusher (it restarts on the next insert).  Called on daemon shutdown;
  /// registered via atexit for the global cache so entries written late in
  /// a process's life still land on disk.
  void flush_disk();

  /// Number of LRU shards (rounded up to a power of two, clamped to
  /// [1, 256]).  Resizing rebuilds the shard array and DROPS all in-memory
  /// entries; the caller must guarantee quiescence (no concurrent lookups
  /// or inserts).  A contention-tuning knob for bench_server's shard sweep,
  /// also settable at process start via AIS_CACHE_SHARDS.
  void set_shard_count(std::size_t count);
  std::size_t shard_count() const;

  /// Drops every in-memory entry (the disk tier is untouched).  Tests use
  /// this to make hit/miss sequences deterministic.
  void clear();

  std::optional<TraceCacheValue> lookup_trace(const CacheKey& key);
  void insert_trace(const CacheKey& key, const TraceCacheValue& value);
  std::optional<StepCacheValue> lookup_step(const CacheKey& key);
  void insert_step(const CacheKey& key, const StepCacheValue& value);

  static constexpr std::size_t kDefaultCapacityBytes = 64u << 20;
  /// Default shard count; see set_shard_count.
  static constexpr std::size_t kNumShards = 16;
  static constexpr std::size_t kMaxShards = 256;

 private:
  struct Impl;
  /// Raw serialized-value lookup/insert/erase shared by both kinds.
  /// lookup_bytes consults memory, then disk; *from_disk tells the caller
  /// whether the bytes still need certification and in-memory promotion.
  std::optional<std::string> lookup_bytes(const CacheKey& key,
                                          bool* from_disk);
  void insert_bytes(const CacheKey& key, std::string value, bool write_disk);
  void erase_bytes(const CacheKey& key);

  std::unique_ptr<Impl> impl_;
};

}  // namespace ais
