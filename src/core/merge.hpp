// Procedure Merge (paper Fig. 7).
//
// Schedules old ∪ new so that instructions of the incoming block only fill
// idle slots of the retained suffix, never displace it:
//
//   1. schedule old ∪ new under one huge deadline D — its makespan T is a
//      lower bound for any legal schedule of the union,
//   2. cap old deadlines at min(previous deadline, T_old) where T_old is the
//      makespan of scheduling `old` alone, give every new node deadline T,
//   3. if infeasible, relax the new nodes' deadlines by +1 until the Rank
//      Algorithm finds a feasible schedule (the minimum such relaxation).
//
// Step 3 is implemented as galloping (1, 2, 4, …) plus bisection on the
// relax amount in the restricted case, where feasibility is monotone in the
// relaxation; heuristic regimes (latencies > 1, typed units, long ops) keep
// the original +1 linear scan so the accepted relaxation is unchanged.  See
// docs/PERFORMANCE.md.
#pragma once

#include "core/deadlines.hpp"
#include "core/rank.hpp"

namespace ais {

struct MergeResult {
  /// Feasible schedule of old ∪ new.
  Schedule schedule;
  Time makespan = 0;
  /// Deadlines of old ∪ new after merging (old caps + relaxed new deadline).
  DeadlineMap deadlines;
  /// Ranks from the final feasible run (inputs to later passes).
  std::vector<Time> rank;
  /// Relaxation amount of the accepted schedule: new-node deadlines ended at
  /// t_lower + relax.  Minimal in the restricted case.
  Time relax = 0;
};

/// Merges `old_nodes` (with current deadlines in `deadlines`, scheduled
/// alone in `t_old` cycles) with `new_nodes`.  `deadlines` entries of new
/// nodes are ignored on input.  `huge` is the artificial deadline D.
MergeResult merge_blocks(const RankScheduler& scheduler,
                         const NodeSet& old_nodes, const NodeSet& new_nodes,
                         const DeadlineMap& deadlines, Time t_old, Time huge,
                         const RankOptions& opts = {});

}  // namespace ais
