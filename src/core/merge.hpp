// Procedure Merge (paper Fig. 7).
//
// Schedules old ∪ new so that instructions of the incoming block only fill
// idle slots of the retained suffix, never displace it:
//
//   1. schedule old ∪ new under one huge deadline D — its makespan T is a
//      lower bound for any legal schedule of the union,
//   2. cap old deadlines at min(previous deadline, T_old) where T_old is the
//      makespan of scheduling `old` alone, give every new node deadline T,
//   3. if infeasible, relax the new nodes' deadlines by +1 until the Rank
//      Algorithm finds a feasible schedule (the minimum such relaxation).
//
// Step 3 is implemented as galloping (1, 2, 4, …) plus bisection on the
// relax amount in the restricted case, where feasibility is monotone in the
// relaxation; heuristic regimes (latencies > 1, typed units, long ops) keep
// the original +1 linear scan so the accepted relaxation is unchanged.  See
// docs/PERFORMANCE.md.
#pragma once

#include "core/deadlines.hpp"
#include "core/rank.hpp"

namespace ais {

struct MergeResult {
  /// Feasible schedule of old ∪ new.
  Schedule schedule;
  Time makespan = 0;
  /// Deadlines of old ∪ new after merging (old caps + relaxed new deadline).
  DeadlineMap deadlines;
  /// Ranks from the final feasible run (inputs to later passes).
  std::vector<Time> rank;
  /// Relaxation amount of the accepted schedule: new-node deadlines ended at
  /// t_lower + relax.  Minimal in the restricted case.
  Time relax = 0;
};

/// Pre-scheduled substrate for the incoming block, produced ahead of time by
/// the lookahead prescheduler (possibly on a thread-pool worker): a
/// standalone RankSession over exactly the new nodes whose ranks were warmed
/// by run_silent under the uniform deadline `huge`, plus that run's result.
/// merge_blocks consumes it only when it can prove byte-identity with the
/// unseeded path: `huge` must match merge's own lower-pass deadline and no
/// distance-0 edge may run from a new node into `old_nodes` (otherwise the
/// standalone ranks/closure rows would differ from the union's).  The
/// session is mutated on consumption; a seed is good for one merge.
struct MergeSeed {
  RankSession* session = nullptr;
  /// run_silent result of `session` under uniform `huge` deadlines with the
  /// same RankOptions the merge will use; moved from on adoption.
  RankResult* standalone = nullptr;
  Time huge = 0;
};

/// Merges `old_nodes` (with current deadlines in `deadlines`, scheduled
/// alone in `t_old` cycles) with `new_nodes`.  `deadlines` entries of new
/// nodes are ignored on input.  `huge` is the artificial deadline D.
/// `seed`, when usable (see MergeSeed), only changes how the answer is
/// computed — never the answer or its counter deltas.
MergeResult merge_blocks(const RankScheduler& scheduler,
                         const NodeSet& old_nodes, const NodeSet& new_nodes,
                         const DeadlineMap& deadlines, Time t_old, Time huge,
                         const RankOptions& opts = {}, MergeSeed* seed = nullptr);

}  // namespace ais
