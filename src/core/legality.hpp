// Legality of trace schedules under hardware lookahead (Definitions 2.1-2.3).
//
// A schedule S with permutation P for a trace of blocks is *legal* iff
//  (a) it satisfies all data dependences,
//  (b) Window Constraint: every inversion (i, j) in P — position i < j but
//      P[i] belongs to a later block than P[j] — fits the lookahead window:
//      j - i + 1 <= W,
//  (c) Ordering Constraint: S is obtainable as a greedy schedule from the
//      priority list L = P1 o P2 o ... o Pm (the concatenation of P's
//      per-block subpermutations), modelling hardware that never issues a
//      later ready instruction in the window ahead of an earlier ready one.
#pragma once

#include <string>
#include <vector>

#include "core/rank.hpp"
#include "core/schedule.hpp"
#include "graph/depgraph.hpp"

namespace ais {

/// Subpermutations of `perm`: perm filtered to each block 0..num_blocks-1
/// (Definition 2.1).  Every node of `perm` must carry its block index in
/// NodeInfo::block.
std::vector<std::vector<NodeId>> subpermutations(const DepGraph& g,
                                                 const std::vector<NodeId>& perm,
                                                 int num_blocks);

/// All inversions (i, j) of `perm` (Definition 2.2), as index pairs.
/// Materializes O(n^2) pairs — debugging aid only; the window check below
/// uses the linear max-span pass instead.
std::vector<std::pair<std::size_t, std::size_t>> inversions(
    const DepGraph& g, const std::vector<NodeId>& perm);

/// The widest inversion of `perm`: span == 0 means no inversion exists,
/// otherwise (i, j) is an inversion maximizing span = j - i + 1.  Computed
/// in one forward pass (O(n * num_blocks), no pair materialization); the
/// Window Constraint holds for window W iff span <= W.
struct InversionSpan {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t span = 0;
};
InversionSpan max_inversion_span(const DepGraph& g,
                                 const std::vector<NodeId>& perm);

/// Checks the Window Constraint for window size `window` via
/// max_inversion_span.  Define AIS_LEGALITY_ENUMERATE_INVERSIONS to instead
/// enumerate every inversion pair (slow; for debugging the fast path).
bool window_constraint_ok(const DepGraph& g, const std::vector<NodeId>& perm,
                          int window, std::string* why = nullptr);

struct LegalityReport {
  bool legal = false;
  std::string reason;  // empty when legal
};

/// Full Definition-2.3 check of `s` (which must schedule the whole trace
/// graph) for window size `window`.
LegalityReport check_legal(const RankScheduler& scheduler, const Schedule& s,
                           int window, int num_blocks);

}  // namespace ais
