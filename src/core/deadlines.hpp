// Deadline maps for the Rank Algorithm.
//
// The paper drives every transformation (idle-slot motion, merging, chopping)
// through deadline assignment: nodes start with a single artificially large
// deadline D and the algorithms tighten / rebase per-node deadlines.
#pragma once

#include <vector>

#include "graph/depgraph.hpp"
#include "graph/nodeset.hpp"

namespace ais {

/// Per-node deadlines, indexed by NodeId.  Entries of inactive nodes are
/// ignored by the scheduler.
using DeadlineMap = std::vector<Time>;

/// A "sufficiently large" artificial deadline for `active` nodes of `g`:
/// big enough never to constrain any schedule of the set (paper §2.1), small
/// enough to keep printed ranks readable.
Time huge_deadline(const DepGraph& g, const NodeSet& active);

/// DeadlineMap with every entry = `d`.
DeadlineMap uniform_deadlines(const DepGraph& g, Time d);

/// Subtracts `delta` from the deadline of every node in `subset`.
void shift_deadlines(DeadlineMap& d, const NodeSet& subset, Time delta);

/// d[id] = min(d[id], cap) for every node in `subset`.
void cap_deadlines(DeadlineMap& d, const NodeSet& subset, Time cap);

}  // namespace ais
