#include "core/merge.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace ais {
namespace {

/// True when the instance is in the provably-monotone regime: the machine is
/// the paper's restricted case and the graph itself stays within unit
/// execution times and 0/1 latencies.  There the Rank Algorithm is exact, so
/// enlarging deadlines can only enlarge the feasible set and the minimal
/// relaxation is binary-searchable.
bool restricted_instance(const RankScheduler& scheduler) {
  const DepGraph& g = scheduler.graph();
  return scheduler.machine().is_restricted_case() && g.max_latency() <= 1 &&
         g.max_exec_time() <= 1;
}

MergeResult make_result(RankResult result, DeadlineMap d_cur, Time relax) {
  return MergeResult{
      .schedule = std::move(result.schedule),
      .makespan = result.makespan,
      .deadlines = std::move(d_cur),
      .rank = std::move(result.rank),
      .relax = relax,
  };
}

}  // namespace

MergeResult merge_blocks(const RankScheduler& scheduler,
                         const NodeSet& old_nodes, const NodeSet& new_nodes,
                         const DeadlineMap& deadlines, Time t_old, Time huge,
                         const RankOptions& opts, MergeSeed* seed) {
  AIS_OBS_SPAN("merge");
  AIS_OBS_COUNT(obs::ctr::kMergeCalls);
  const DepGraph& g = scheduler.graph();
  AIS_CHECK(deadlines.size() == g.num_nodes(), "deadline map size");
  const NodeSet cur = set_union(old_nodes, new_nodes);
  AIS_CHECK(!new_nodes.empty(), "merge needs at least one new node");
  const std::vector<NodeId> old_ids = old_nodes.ids();
  const std::vector<NodeId> new_ids = new_nodes.ids();

  // Seed gate: the pre-scheduled standalone substrate is byte-equivalent to
  // recomputation only when its artificial deadline matches this merge's
  // lower pass and nothing in the new block feeds a retained old node at
  // distance 0 (trace dependences flow forward, so this passes essentially
  // always; irregular graphs fall back silently to the unseeded path).
  bool seed_usable = seed != nullptr && seed->session != nullptr &&
                     seed->standalone != nullptr && seed->huge == huge;
  if (seed_usable && !old_nodes.empty()) {
    for (const NodeId x : new_ids) {
      for (const auto eidx : g.out_edges(x)) {
        const DepEdge& e = g.edge(eidx);
        if (e.distance == 0 && old_nodes.contains(e.to)) {
          seed_usable = false;
          break;
        }
      }
      if (!seed_usable) break;
    }
  }

  // One session drives every Rank Algorithm run below: the active set is
  // fixed at old ∪ new, only deadlines move, so the topological order and
  // descendant closure are built once and rank updates are incremental.
  // With no old suffix the union *is* the new block and the warmed donor
  // session is adopted outright; otherwise the union session copies the
  // donor's closure rows and preseeds its first full pass with the donor's
  // ranks, packing only the old nodes.
  const bool adopt_donor = seed_usable && old_nodes.empty();
  std::optional<RankSession> local_session;
  if (!adopt_donor) {
    local_session.emplace(scheduler, cur,
                          seed_usable ? seed->session : nullptr);
    if (seed_usable) local_session->seed_full_pass(*seed->session);
  }
  RankSession& session = adopt_donor ? *seed->session : *local_session;

  // Lower-bound pass: one huge uniform deadline.  An adopted donor already
  // ran exactly this pass (silently, possibly on a pool worker); re-issue
  // its counter bumps on this thread and reuse the result.
  DeadlineMap d_cur = uniform_deadlines(g, huge);
  const RankResult lower =
      adopt_donor ? std::move(*seed->standalone) : session.run(d_cur, opts);
  if (adopt_donor) session.count_run_telemetry(lower);
  AIS_CHECK(lower.feasible, "unconstrained merge schedule must be feasible");
  const Time t_lower = lower.makespan;

  // Minimal relaxation of the new nodes' deadlines.  A feasible schedule
  // always exists with new entirely after old plus a worst-case latency gap
  // (paper footnote 8), which bounds the loop in the restricted case.  In
  // the heuristic regimes (latencies > 1, typed units) greedy-by-rank is
  // not minimum-tardiness, so the old caps themselves may be unreachable;
  // past the budget we relax *all* deadlines, trading the no-displacement
  // guarantee for progress (§4.2 heuristic territory).
  const Time new_only_limit =
      t_old + g.max_latency() + g.total_work() + 1 - t_lower;
  const Time hard_limit =
      new_only_limit + g.total_work() +
      static_cast<Time>(cur.size() + 1) * (g.max_latency() + 1);

  // Deadlines at relaxation r: old capped at min(d, t_old) and only pushed
  // out once r exceeds the new-only budget (which can start negative — then
  // old deadlines relax from round one, exactly as the +1 scan did), new at
  // the lower bound plus r.
  const auto apply_relax = [&](Time r) {
    const Time old_extra = std::max<Time>(r - std::max<Time>(new_only_limit, 0),
                                          0);
    for (const NodeId w : old_ids) {
      d_cur[w] = std::min(deadlines[w], t_old) + old_extra;
    }
    for (const NodeId w : new_ids) d_cur[w] = t_lower + r;
  };

  apply_relax(0);
  {
    RankResult result = session.run(d_cur, opts);
    if (result.feasible) return make_result(std::move(result), std::move(d_cur), 0);
  }

  if (restricted_instance(scheduler) && new_only_limit >= 1) {
    // Feasibility is monotone in r here, so gallop up to the first feasible
    // relaxation, then bisect down to the minimal one.  Every probe is one
    // full schedule, same as one round of the old scan.
    const auto probe = [&](Time r) -> std::optional<RankResult> {
      AIS_OBS_COUNT(obs::ctr::kMergeRelaxRounds);
      AIS_OBS_COUNT(obs::ctr::kMergeGallopProbes);
      apply_relax(r);
      RankResult result = session.run(d_cur, opts);
      if (result.feasible) return result;
      return std::nullopt;
    };

    Time lo = 0;  // infeasible
    Time hi = 1;
    std::optional<RankResult> best;
    while (true) {
      hi = std::min(hi, new_only_limit);
      best = probe(hi);
      if (best.has_value() || hi == new_only_limit) break;
      lo = hi;
      hi *= 2;
    }
    if (best.has_value()) {
      // Invariant: lo infeasible, hi feasible (result in `best`).
      while (hi - lo > 1) {
        const Time mid = lo + (hi - lo) / 2;
        if (auto mid_result = probe(mid)) {
          hi = mid;
          best = std::move(mid_result);
        } else {
          lo = mid;
        }
      }
      apply_relax(hi);
      return make_result(std::move(*best), std::move(d_cur), hi);
    }
    // Even the full new-only budget is infeasible (possible only when the
    // old caps clash with `deadlines` entries below t_old); continue with
    // the linear scan into full-relaxation territory.
    lo = new_only_limit;
    for (Time r = lo + 1;; ++r) {
      AIS_CHECK(r <= hard_limit, "merge failed to find a feasible schedule");
      AIS_OBS_COUNT(obs::ctr::kMergeRelaxRounds);
      AIS_OBS_COUNT(obs::ctr::kMergeFullRelaxRounds);
      apply_relax(r);
      RankResult result = session.run(d_cur, opts);
      if (result.feasible) {
        return make_result(std::move(result), std::move(d_cur), r);
      }
    }
  }

  // Heuristic regimes: feasibility need not be monotone in r, keep the
  // original +1 scan so the accepted relaxation is byte-identical to the
  // paper's formulation.
  for (Time r = 1;; ++r) {
    AIS_CHECK(r <= hard_limit, "merge failed to find a feasible schedule");
    AIS_OBS_COUNT(obs::ctr::kMergeRelaxRounds);
    if (r > new_only_limit) AIS_OBS_COUNT(obs::ctr::kMergeFullRelaxRounds);
    apply_relax(r);
    RankResult result = session.run(d_cur, opts);
    if (result.feasible) {
      return make_result(std::move(result), std::move(d_cur), r);
    }
  }
}

}  // namespace ais
