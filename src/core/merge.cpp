#include "core/merge.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace ais {

MergeResult merge_blocks(const RankScheduler& scheduler,
                         const NodeSet& old_nodes, const NodeSet& new_nodes,
                         const DeadlineMap& deadlines, Time t_old, Time huge,
                         const RankOptions& opts) {
  AIS_OBS_SPAN("merge");
  AIS_OBS_COUNT(obs::ctr::kMergeCalls);
  const DepGraph& g = scheduler.graph();
  AIS_CHECK(deadlines.size() == g.num_nodes(), "deadline map size");
  const NodeSet cur = set_union(old_nodes, new_nodes);
  AIS_CHECK(!new_nodes.empty(), "merge needs at least one new node");

  // Lower-bound pass: one huge uniform deadline.
  DeadlineMap d_cur = uniform_deadlines(g, huge);
  const RankResult lower = scheduler.run(cur, d_cur, opts);
  AIS_CHECK(lower.feasible, "unconstrained merge schedule must be feasible");
  const Time t_lower = lower.makespan;

  // Old nodes keep (capped) deadlines; new nodes start at the lower bound.
  for (const NodeId w : old_nodes.ids()) {
    d_cur[w] = std::min(deadlines[w], t_old);
  }
  for (const NodeId w : new_nodes.ids()) d_cur[w] = t_lower;

  // Minimal relaxation of the new nodes' deadlines.  A feasible schedule
  // always exists with new entirely after old plus a worst-case latency gap
  // (paper footnote 8), which bounds the loop in the restricted case.  In
  // the heuristic regimes (latencies > 1, typed units) greedy-by-rank is
  // not minimum-tardiness, so the old caps themselves may be unreachable;
  // past the budget we relax *all* deadlines, trading the no-displacement
  // guarantee for progress (§4.2 heuristic territory).
  const Time new_only_limit =
      t_old + g.max_latency() + g.total_work() + 1 - t_lower;
  const Time hard_limit =
      new_only_limit + g.total_work() +
      static_cast<Time>(cur.size() + 1) * (g.max_latency() + 1);
  Time relax = 0;
  while (true) {
    RankResult result = scheduler.run(cur, d_cur, opts);
    if (result.feasible) {
      return MergeResult{
          .schedule = std::move(result.schedule),
          .makespan = result.makespan,
          .deadlines = std::move(d_cur),
          .rank = std::move(result.rank),
      };
    }
    ++relax;
    AIS_CHECK(relax <= hard_limit, "merge failed to find a feasible schedule");
    AIS_OBS_COUNT(obs::ctr::kMergeRelaxRounds);
    for (const NodeId w : new_nodes.ids()) ++d_cur[w];
    if (relax > new_only_limit) {
      AIS_OBS_COUNT(obs::ctr::kMergeFullRelaxRounds);
      for (const NodeId w : old_nodes.ids()) ++d_cur[w];
    }
  }
}

}  // namespace ais
