// The Rank Algorithm (Palem & Simons, TOPLAS'93) as used by the paper.
//
// rank(x) is an upper bound on the completion time of x in any schedule in
// which x and all of its descendants meet their deadlines.  The algorithm:
//
//   1. compute ranks of all nodes (reverse topological order; for each node,
//      backward-schedule its descendants as late as their ranks allow),
//   2. order nodes by nondecreasing rank,
//   3. greedy (list) schedule in that order.
//
// For the restricted case — unit execution times, latencies in {0,1}, a
// single functional unit — the result is an optimal (minimum makespan,
// minimum tardiness) schedule.  For typed multiple units, non-unit execution
// times and longer latencies it is the §4.2 heuristic: the backward pass
// packs per-FU-class (optionally unit-splitting long operations) and the
// forward pass respects unit typing and issue width.
//
// rank(x) for node x with descendant set D(x):
//
//   backward-schedule D(x) in nonincreasing rank order, each node completing
//   at the latest free slot <= its rank on a unit of its class; with s_y the
//   resulting start times,
//
//   rank(x) = min( d(x),
//                  min_{y in D(x)} s_y,                     [x precedes all]
//                  min_{(x,y) edge} s_y - latency(x, y) )   [latency gaps]
//
// This formulation reproduces every rank value printed in the paper's
// worked examples (see tests/test_paper_figures.cpp).
#pragma once

#include <string>
#include <vector>

#include "core/deadlines.hpp"
#include "core/schedule.hpp"
#include "graph/depgraph.hpp"
#include "graph/nodeset.hpp"
#include "machine/machine_model.hpp"

namespace ais {

struct RankOptions {
  /// Secondary priority for equal ranks; lower values are scheduled first.
  /// Empty = ascending node id (stable, deterministic).
  std::vector<int> tie_break;
  /// §4.2 "non-unit execution times": when true, long operations are broken
  /// into unit pieces in the backward pass (tighter packing bound); when
  /// false they are inserted whole.
  bool split_long_ops = false;
};

struct RankResult {
  /// True iff every rank admits a start >= 0 and the greedy schedule meets
  /// every deadline.
  bool feasible = false;
  std::string infeasible_reason;
  /// rank[id]; only entries of active nodes are meaningful.
  std::vector<Time> rank;
  Schedule schedule;
  Time makespan = 0;
};

class RankScheduler {
 public:
  /// `g` must outlive the scheduler; the machine model is copied (it is
  /// small, and callers routinely pass preset temporaries).
  RankScheduler(const DepGraph& g, MachineModel machine);

  /// Runs ranks + greedy scheduling of `active` under `deadlines`.
  RankResult run(const NodeSet& active, const DeadlineMap& deadlines,
                 const RankOptions& opts = {}) const;

  /// Rank computation only.  Sets *structurally_feasible to false when some
  /// rank cannot be met by any schedule (rank(x) < exec_time(x)).
  std::vector<Time> compute_ranks(const NodeSet& active,
                                  const DeadlineMap& deadlines,
                                  const RankOptions& opts,
                                  bool* structurally_feasible) const;

  /// Greedy list scheduling of `active` using the given priority list
  /// (every active node exactly once).  Exposed for the legality checker's
  /// Ordering Constraint and for baselines.
  Schedule greedy_from_list(const NodeSet& active,
                            const std::vector<NodeId>& list) const;

  const MachineModel& machine() const { return machine_; }
  const DepGraph& graph() const { return graph_; }

 private:
  const DepGraph& graph_;
  MachineModel machine_;
};

}  // namespace ais
