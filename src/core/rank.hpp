// The Rank Algorithm (Palem & Simons, TOPLAS'93) as used by the paper.
//
// rank(x) is an upper bound on the completion time of x in any schedule in
// which x and all of its descendants meet their deadlines.  The algorithm:
//
//   1. compute ranks of all nodes (reverse topological order; for each node,
//      backward-schedule its descendants as late as their ranks allow),
//   2. order nodes by nondecreasing rank,
//   3. greedy (list) schedule in that order.
//
// For the restricted case — unit execution times, latencies in {0,1}, a
// single functional unit — the result is an optimal (minimum makespan,
// minimum tardiness) schedule.  For typed multiple units, non-unit execution
// times and longer latencies it is the §4.2 heuristic: the backward pass
// packs per-FU-class (optionally unit-splitting long operations) and the
// forward pass respects unit typing and issue width.
//
// rank(x) for node x with descendant set D(x):
//
//   backward-schedule D(x) in nonincreasing rank order, each node completing
//   at the latest free slot <= its rank on a unit of its class; with s_y the
//   resulting start times,
//
//   rank(x) = min( d(x),
//                  min_{y in D(x)} s_y,                     [x precedes all]
//                  min_{(x,y) edge} s_y - latency(x, y) )   [latency gaps]
//
// This formulation reproduces every rank value printed in the paper's
// worked examples (see tests/test_paper_figures.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/deadlines.hpp"
#include "core/schedule.hpp"
#include "graph/closure.hpp"
#include "graph/depgraph.hpp"
#include "graph/nodeset.hpp"
#include "machine/machine_model.hpp"
#include "support/arena.hpp"
#include "support/bitset.hpp"

namespace ais {

struct RankOptions {
  /// Secondary priority for equal ranks; lower values are scheduled first.
  /// Empty = ascending node id (stable, deterministic).
  std::vector<int> tie_break;
  /// §4.2 "non-unit execution times": when true, long operations are broken
  /// into unit pieces in the backward pass (tighter packing bound); when
  /// false they are inserted whole.
  bool split_long_ops = false;
};

struct RankResult {
  /// True iff every rank admits a start >= 0 and the greedy schedule meets
  /// every deadline.
  bool feasible = false;
  std::string infeasible_reason;
  /// rank[id]; only entries of active nodes are meaningful.
  std::vector<Time> rank;
  Schedule schedule;
  Time makespan = 0;
};

class RankScheduler {
 public:
  /// `g` must outlive the scheduler; the machine model is copied (it is
  /// small, and callers routinely pass preset temporaries).
  RankScheduler(const DepGraph& g, MachineModel machine);

  /// Runs ranks + greedy scheduling of `active` under `deadlines`.
  RankResult run(const NodeSet& active, const DeadlineMap& deadlines,
                 const RankOptions& opts = {}) const;

  /// Rank computation only.  Sets *structurally_feasible to false when some
  /// rank cannot be met by any schedule (rank(x) < exec_time(x)).
  std::vector<Time> compute_ranks(const NodeSet& active,
                                  const DeadlineMap& deadlines,
                                  const RankOptions& opts,
                                  bool* structurally_feasible) const;

  /// Greedy list scheduling of `active` using the given priority list
  /// (every active node exactly once).  Exposed for the legality checker's
  /// Ordering Constraint and for baselines.
  Schedule greedy_from_list(const NodeSet& active,
                            const std::vector<NodeId>& list) const;

  const MachineModel& machine() const { return machine_; }
  const DepGraph& graph() const { return graph_; }

 private:
  const DepGraph& graph_;
  MachineModel machine_;
};

/// Reusable scheduling context for one fixed (graph, active) pair.
///
/// The deadline-driven loops of the paper — Merge's relaxation rounds
/// (Fig. 7) and Move_Idle_Slot's tail tightening (Fig. 4) — re-run the Rank
/// Algorithm many times over the *same* active set while only deadlines
/// change.  A session caches everything that is invariant across those runs
/// (the topological order, the descendant closure, the sorted active-id
/// list, the backward-pass scratch buffers) and recomputes ranks
/// incrementally: when the deadlines of a set S changed since the previous
/// call, only S and its ancestors (queryable from the cached closure) can
/// change rank, so the backward pass restarts from that cone instead of all
/// nodes.  Results are bit-identical to a fresh computation
/// (tests/test_differential.cpp enforces this against the uncached
/// reference path); see docs/PERFORMANCE.md for the invariant's proof
/// sketch.
///
/// A session is single-threaded mutable state; concurrent compiles use one
/// session per thread (they hold distinct graphs anyway).
class RankSession {
 public:
  /// `scheduler` must outlive the session; `active` is copied.  The active
  /// induced subgraph must be acyclic.
  ///
  /// When `substrate_donor` is given (a session over a *subset* of `active`,
  /// typically a standalone block session warmed by the lookahead
  /// prescheduler), the descendant-closure rows of the donor's nodes are
  /// copied instead of recomputed.  The caller must guarantee the donated
  /// rows are valid in this session's induced subgraph: no distance-0 edge
  /// may leave the donor's active set into the rest of `active` (the merge
  /// seed gate checks exactly this).  The donor is only read during
  /// construction and seed_full_pass; it need not outlive the session.
  explicit RankSession(const RankScheduler& scheduler, const NodeSet& active,
                       const RankSession* substrate_donor = nullptr);

  /// Ranks of the active nodes under `deadlines`; same contract as
  /// RankScheduler::compute_ranks.  The returned reference is invalidated
  /// by the next compute_ranks / run call on this session.
  const std::vector<Time>& compute_ranks(const DeadlineMap& deadlines,
                                         const RankOptions& opts,
                                         bool* structurally_feasible = nullptr);

  /// Ranks + greedy schedule; same contract as RankScheduler::run.
  RankResult run(const DeadlineMap& deadlines, const RankOptions& opts = {});

  /// run() minus its telemetry counter bumps (rank.runs / rank.nodes_ranked
  /// / rank.infeasible).  Used by the lookahead prescheduler to warm
  /// sessions on thread-pool workers, where counter deltas would escape the
  /// compiling thread's CounterRecorder and break cache-on/off counter
  /// identity; the serial consumer re-issues the bumps through
  /// count_run_telemetry when it adopts the result.
  RankResult run_silent(const DeadlineMap& deadlines,
                        const RankOptions& opts = {});

  /// Re-issues, on the calling thread, exactly the counter bumps a run()
  /// that produced `result` would have made.
  void count_run_telemetry(const RankResult& result) const;

  /// Preseeds the next *full* compute_ranks pass with `donor`'s rank cache:
  /// every donor-active node adopts its donor rank and descendant part
  /// verbatim and is skipped by the backward pass, which packs only the
  /// remaining nodes.  Requirements (checked where cheap): this session has
  /// not computed ranks yet; the donor has; the next call's deadlines match
  /// the donor's cached deadlines on donated nodes; split_long_ops matches;
  /// and donated nodes' descendant sets here equal their donor sets (same
  /// gate as the substrate-donor constructor).  The result is byte-exact
  /// against an unseeded full pass because a full pass depends only on the
  /// final ranks of each node's descendants, not on the processing order.
  void seed_full_pass(const RankSession& donor);

  /// Saves the current rank cache (ranks, descendant parts, rank ordering,
  /// deadlines).  Requires ranks to have been computed.
  void snapshot();
  /// Restores the last snapshot in O(active) time.  Speculative deadline
  /// trials (Move_Idle_Slot) snapshot the base state and restore it on
  /// failure, so the next trial's incremental pass pays only for its own
  /// deadline caps — never for undoing the previous trial's.
  void restore_snapshot();

  const RankScheduler& scheduler() const { return *scheduler_; }
  const NodeSet& active() const { return active_; }
  /// active().ids(), materialized once at construction.
  const std::vector<NodeId>& active_ids() const { return active_ids_; }
  const DescendantClosure& closure() const { return closure_; }
  /// Cached topological order of the active nodes.
  const std::vector<NodeId>& topo() const { return order_; }

 private:
  /// Recomputes rank_[x] (and its cached descendant-driven part); the ranks
  /// of all descendants of x must be final.
  void rerank_node(NodeId x, const DeadlineMap& deadlines,
                   const RankOptions& opts);
  /// Calls fn(DescEntry) for each descendant of x in (rank desc, id asc)
  /// order.  Dense closure rows use a filtered scan of by_rank_ (sequential
  /// loads, descendants are a large predictable fraction); sparse rows use
  /// word-driven iteration over the row (mark each descendant's by_rank_
  /// position in pos_words_, sweep ascending — ascending position *is* the
  /// wanted order, so no comparison happens, at O(descendants +
  /// by_rank_/64)).  Both paths visit the identical sequence.
  template <typename Fn>
  void for_each_descendant(NodeId x, Fn&& fn);
  /// Rewrites rank_pos_ for by_rank_ positions [from, to).
  void refresh_rank_pos(std::size_t from, std::size_t to);
  /// Backward-packs desc_entries_ (already in (rank desc, id asc) order)
  /// and finishes rank_[x] / desc_part_[x].
  void pack_and_finish(NodeId x, const DeadlineMap& deadlines,
                       const RankOptions& opts);
  /// Moves x's by_rank_ entry from its old_rank position to where rank_[x]
  /// now sorts it.
  void reposition(NodeId x, Time old_rank);
  /// Shared body of run() / run_silent().
  RankResult run_impl(const DeadlineMap& deadlines, const RankOptions& opts,
                      bool count);

  const RankScheduler* scheduler_;
  NodeSet active_;
  std::vector<NodeId> order_;       // topo order of the active nodes
  std::vector<NodeId> active_ids_;  // == active_.ids(), materialized once

  // Backing store for the closure matrix and the session-internal scratch
  // vectors below: they are sized once to the active set and die with the
  // session, so their growth is pointer bumps instead of a dozen mallocs
  // per session.  Declared before closure_ (members initialize in
  // declaration order and the closure's row matrix is carved from this
  // arena).  Members the API exposes by reference (order_, active_ids_,
  // rank_, snap_rank_, deadline maps) stay ordinary vectors.  Full-size
  // initial chunks: a session always fills tens of KiB of scratch, and the
  // construction cost is on the per-compile hot path.
  Arena arena_{Arena::kDefaultChunkBytes, Arena::kDefaultChunkBytes};
  DescendantClosure closure_;

  // Flat copies of the per-node fields the backward pass touches — NodeInfo
  // drags a std::string through the cache per access, these do not.
  bool single_lane_ = false;  // machine has exactly one unit overall
  ArenaVector<Time> exec_;
  ArenaVector<std::int32_t> fu_class_;
  // CSR of distance-0 out-edges between active nodes: targets/latencies of
  // node x live at [succ_begin_[x], succ_begin_[x + 1]).
  ArenaVector<std::uint32_t> succ_begin_;
  ArenaVector<NodeId> succ_to_;
  ArenaVector<Time> succ_lat_;

  // Rank cache: valid while has_ranks_, for deadlines cached_deadlines_ and
  // the split_long_ops setting cached_split_.  rank_[x] ==
  // min(deadline[x], desc_part_[x]); the descendant-driven part is cached
  // separately so a node whose own deadline moved — but whose descendants'
  // ranks did not — reranks in O(1) instead of repacking its closure.
  bool has_ranks_ = false;
  bool cached_split_ = false;
  /// Donor for the next full pass (seed_full_pass); cleared on consumption.
  const RankSession* pending_seed_ = nullptr;
  DeadlineMap cached_deadlines_;
  std::vector<Time> rank_;
  ArenaVector<Time> desc_part_;

  // Scratch hoisted out of the per-node backward pass.
  struct DescEntry {
    Time rank;
    NodeId id;
  };
  ArenaVector<std::uint64_t> desc_keys_;
  // Active nodes in (rank desc, id asc) order, maintained across passes
  // (full pass rebuilds it; incremental passes reposition changed nodes),
  // so a node's descendants come out of one membership-filtered scan
  // already sorted — no per-node sort anywhere in the backward pass.
  ArenaVector<DescEntry> by_rank_;
  // rank_pos_[id] = id's position in by_rank_ (maintained by the same
  // shifts that move the entries); pos_words_ is the position-space scratch
  // bitset extract_descendants marks and sweeps.
  ArenaVector<std::uint32_t> rank_pos_;
  ArenaVector<std::uint64_t> pos_words_;
  ArenaVector<Time> back_start_;
  std::vector<std::vector<Time>> packer_lanes_;  // [class][lane]
  DynamicBitset changed_;       // deadline-changed nodes, per call
  DynamicBitset rank_changed_;  // rank-moved nodes, per call

  // snapshot() / restore_snapshot() state.
  bool snap_valid_ = false;
  bool snap_split_ = false;
  std::vector<Time> snap_rank_;
  ArenaVector<Time> snap_desc_part_;
  ArenaVector<DescEntry> snap_by_rank_;
  DeadlineMap snap_deadlines_;
};

}  // namespace ais
