#include "core/legality.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ais {

std::vector<std::vector<NodeId>> subpermutations(
    const DepGraph& g, const std::vector<NodeId>& perm, int num_blocks) {
  std::vector<std::vector<NodeId>> subs(static_cast<std::size_t>(num_blocks));
  for (const NodeId id : perm) {
    const int b = g.node(id).block;
    AIS_CHECK(b >= 0 && b < num_blocks, "node block index out of range");
    subs[static_cast<std::size_t>(b)].push_back(id);
  }
  return subs;
}

std::vector<std::pair<std::size_t, std::size_t>> inversions(
    const DepGraph& g, const std::vector<NodeId>& perm) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    for (std::size_t j = i + 1; j < perm.size(); ++j) {
      if (g.node(perm[i]).block > g.node(perm[j]).block) {
        out.emplace_back(i, j);
      }
    }
  }
  return out;
}

InversionSpan max_inversion_span(const DepGraph& g,
                                 const std::vector<NodeId>& perm) {
  int num_blocks = 0;
  for (const NodeId id : perm) {
    num_blocks = std::max(num_blocks, g.node(id).block + 1);
  }
  // earliest[b]: first position where block b occurs.  The widest inversion
  // ending at j pairs it with the earliest earlier position of any strictly
  // later block, so one forward pass suffices.
  constexpr std::size_t kUnseen = static_cast<std::size_t>(-1);
  std::vector<std::size_t> earliest(static_cast<std::size_t>(num_blocks),
                                    kUnseen);
  InversionSpan worst;
  for (std::size_t j = 0; j < perm.size(); ++j) {
    const int b = g.node(perm[j]).block;
    std::size_t first_later = kUnseen;
    for (int later = b + 1; later < num_blocks; ++later) {
      first_later =
          std::min(first_later, earliest[static_cast<std::size_t>(later)]);
    }
    if (first_later != kUnseen && j - first_later + 1 > worst.span) {
      worst = InversionSpan{first_later, j, j - first_later + 1};
    }
    std::size_t& seen = earliest[static_cast<std::size_t>(b)];
    if (seen == kUnseen) seen = j;
  }
  return worst;
}

namespace {

std::string inversion_message(const DepGraph& g,
                              const std::vector<NodeId>& perm, std::size_t i,
                              std::size_t j, int window) {
  return "inversion (" + g.node(perm[i]).name + " @" + std::to_string(i) +
         ", " + g.node(perm[j]).name + " @" + std::to_string(j) + ") spans " +
         std::to_string(j - i + 1) + " > W = " + std::to_string(window);
}

}  // namespace

bool window_constraint_ok(const DepGraph& g, const std::vector<NodeId>& perm,
                          int window, std::string* why) {
#ifdef AIS_LEGALITY_ENUMERATE_INVERSIONS
  for (const auto& [i, j] : inversions(g, perm)) {
    if (static_cast<int>(j - i + 1) > window) {
      if (why != nullptr) *why = inversion_message(g, perm, i, j, window);
      return false;
    }
  }
  return true;
#else
  const InversionSpan worst = max_inversion_span(g, perm);
  if (worst.span > static_cast<std::size_t>(window)) {
    if (why != nullptr) {
      *why = inversion_message(g, perm, worst.i, worst.j, window);
    }
    return false;
  }
  return true;
#endif
}

LegalityReport check_legal(const RankScheduler& scheduler, const Schedule& s,
                           int window, int num_blocks) {
  const DepGraph& g = s.graph();
  if (!s.complete()) return {false, "schedule is incomplete"};

  const std::string dep_issue = validate_schedule(s, scheduler.machine());
  if (!dep_issue.empty()) return {false, dep_issue};

  const std::vector<NodeId> perm = s.permutation();

  std::string why;
  if (!window_constraint_ok(g, perm, window, &why)) {
    return {false, "window constraint: " + why};
  }

  // Ordering Constraint: rebuild greedily from L = P1 o ... o Pm and demand
  // identical start times.
  std::vector<NodeId> list;
  for (auto& sub : subpermutations(g, perm, num_blocks)) {
    list.insert(list.end(), sub.begin(), sub.end());
  }
  const Schedule rebuilt = scheduler.greedy_from_list(s.active(), list);
  for (const NodeId id : perm) {
    if (rebuilt.start(id) != s.start(id)) {
      return {false,
              "ordering constraint: greedy from L schedules " +
                  g.node(id).name + " at " + std::to_string(rebuilt.start(id)) +
                  ", not " + std::to_string(s.start(id))};
    }
  }
  return {true, {}};
}

}  // namespace ais
