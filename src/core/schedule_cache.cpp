#include "core/schedule_cache.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <list>
#include <mutex>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "support/arena.hpp"
#include "support/assert.hpp"
#include "support/mutex.hpp"
#include "support/stopwatch.hpp"

namespace ais {
namespace {

// --- byte-buffer serialization (native-endian; keys and values never leave
// --- the machine except through the disk tier, whose header is validated
// --- byte-for-byte, so a foreign-endian file is simply a miss) ------------

template <typename T>
void put_raw(std::string& b, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  b.append(buf, sizeof(T));
}

void put_u8(std::string& b, std::uint8_t v) { put_raw(b, v); }
void put_u32(std::string& b, std::uint32_t v) { put_raw(b, v); }
void put_u64(std::string& b, std::uint64_t v) { put_raw(b, v); }
void put_i64(std::string& b, std::int64_t v) { put_raw(b, v); }

/// Bounds-checked forward reader over a byte string.  Every accessor
/// returns a zero value once ok() has gone false, so a truncated buffer
/// cannot walk past the end — callers check ok() after a parse, not after
/// every field.
class Reader {
 public:
  explicit Reader(std::string_view bytes)
      : p_(bytes.data()), end_(bytes.data() + bytes.size()) {}

  bool ok() const { return ok_; }
  bool at_end() const { return ok_ && p_ == end_; }

  std::uint8_t u8() { return get<std::uint8_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::int64_t i64() { return get<std::int64_t>(); }

  std::string_view bytes(std::size_t n) {
    if (!ok_ || static_cast<std::size_t>(end_ - p_) < n) {
      ok_ = false;
      return {};
    }
    std::string_view v(p_, n);
    p_ += n;
    return v;
  }

 private:
  template <typename T>
  T get() {
    if (!ok_ || static_cast<std::size_t>(end_ - p_) < sizeof(T)) {
      ok_ = false;
      return T{};
    }
    T v;
    std::memcpy(&v, p_, sizeof(T));
    p_ += sizeof(T);
    return v;
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

// --- hashing --------------------------------------------------------------

/// splitmix64 finalizer: the bijective mixer every label and accumulator
/// goes through, so commutative sums of mixed values stay well-distributed.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over raw bytes; seeds the structural hash with the scalar
/// (node-id-free) prefix of the key.
std::uint64_t hash_bytes(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr std::uint64_t kInSalt = 0x8e2a4f7d9c1b3e55ULL;
constexpr std::uint64_t kOutSalt = 0x41c64e6da3b59f21ULL;
constexpr char kTraceKind = 'T';
constexpr char kStepKind = 'S';
constexpr std::uint32_t kNoBlock = 0xffffffffU;

/// Flag bits of the key prefix's `flags` byte.
constexpr std::uint8_t kFlagDelayIdle = 1U << 0U;
constexpr std::uint8_t kFlagMergeCaps = 1U << 1U;
constexpr std::uint8_t kFlagDoChop = 1U << 2U;
constexpr std::uint8_t kFlagSplitLongOps = 1U << 3U;
constexpr std::uint8_t kFlagHasTie = 1U << 4U;

/// One node of the dense instance, attributes only — ids are positional.
struct DenseNode {
  std::uint32_t exec = 0;
  std::uint32_t fu = 0;
  std::uint32_t block_pos = 0;  // trace keys
  std::uint8_t is_new = 0;      // step keys
  std::int64_t deadline = 0;    // step keys
  std::int64_t tie = 0;         // when the instance has a tie-break vector
};

struct DenseEdge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t latency = 0;
};

/// The Weisfeiler–Leman-style structural hash: per-node labels from local
/// attributes, refined by two rounds of commutative in/out-neighborhood
/// accumulation, folded into an order-independent digest.  Invariant under
/// any isomorphic relabeling of the dense instance (sums and xors commute;
/// nothing reads a node's positional id).
std::uint64_t wl_hash(std::uint64_t seed, char kind, bool has_tie,
                      const DenseNode* nodes, std::size_t n,
                      const DenseEdge* edges, std::size_t m, Arena& scratch) {
  std::uint64_t* cur = scratch.alloc_array<std::uint64_t>(n);
  std::uint64_t* nxt = scratch.alloc_array<std::uint64_t>(n);
  std::uint64_t* in_acc = scratch.alloc_array<std::uint64_t>(n);
  std::uint64_t* out_acc = scratch.alloc_array<std::uint64_t>(n);

  for (std::size_t v = 0; v < n; ++v) {
    const DenseNode& node = nodes[v];
    std::uint64_t h = mix64(seed ^ ((static_cast<std::uint64_t>(node.exec)
                                     << 32U) |
                                    node.fu));
    if (kind == kTraceKind) {
      h = mix64(h ^ node.block_pos);
    } else {
      h = mix64(mix64(h ^ node.is_new) ^
                static_cast<std::uint64_t>(node.deadline));
    }
    if (has_tie) h = mix64(h ^ static_cast<std::uint64_t>(node.tie));
    cur[v] = h;
  }

  for (int round = 0; round < 2; ++round) {
    std::fill_n(in_acc, n, std::uint64_t{0});
    std::fill_n(out_acc, n, std::uint64_t{0});
    for (std::size_t e = 0; e < m; ++e) {
      const DenseEdge& edge = edges[e];
      const std::uint64_t lat = mix64(edge.latency);
      out_acc[edge.from] += mix64(cur[edge.to] ^ lat ^ kOutSalt);
      in_acc[edge.to] += mix64(cur[edge.from] ^ lat ^ kInSalt);
    }
    for (std::size_t v = 0; v < n; ++v) {
      nxt[v] = mix64(cur[v] + 3 * mix64(in_acc[v]) + 5 * mix64(out_acc[v]));
    }
    std::swap(cur, nxt);
  }

  std::uint64_t sum = 0;
  std::uint64_t xored = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint64_t h = mix64(cur[v]);
    sum += h;
    xored ^= h;
  }
  return mix64(seed ^ sum) ^
         mix64(xored + (static_cast<std::uint64_t>(n) << 32U) + m);
}

/// Per-thread scratch for key building and hashing; reset at every use, so
/// it converges on the peak instance size and stops allocating.
Arena& key_scratch() {
  thread_local Arena arena;
  return arena;
}

// --- key serialization ----------------------------------------------------

std::uint8_t flags_of(const CacheInstanceParams& params, bool has_tie) {
  std::uint8_t flags = 0;
  if (params.delay_idle) flags |= kFlagDelayIdle;
  if (params.merge_deadline_caps) flags |= kFlagMergeCaps;
  if (params.do_chop) flags |= kFlagDoChop;
  if (params.split_long_ops) flags |= kFlagSplitLongOps;
  if (has_tie) flags |= kFlagHasTie;
  return flags;
}

/// The scalar, node-id-free key prefix: kind, versions, the machine
/// fingerprint (shape and full timing table; names are dropped — scheduling
/// is name-independent), window, huge horizon and the algorithm switches.
void serialize_prefix(std::string& b, char kind,
                      const CacheInstanceParams& params, bool has_tie) {
  put_u8(b, static_cast<std::uint8_t>(kind));
  put_u32(b, kScheduleCacheFormatVersion);
  put_u32(b, kScheduleCacheAlgoVersion);
  const MachineModel& machine = *params.machine;
  put_u32(b, static_cast<std::uint32_t>(machine.issue_width()));
  put_u32(b, static_cast<std::uint32_t>(machine.num_fu_classes()));
  for (const FuClassInfo& fu : machine.fu_classes()) {
    put_u32(b, static_cast<std::uint32_t>(fu.count));
  }
  put_u32(b, static_cast<std::uint32_t>(kNumOpClasses));
  for (std::size_t cls = 0; cls < kNumOpClasses; ++cls) {
    const OpTiming& t = machine.timing(static_cast<OpClass>(cls));
    put_u32(b, static_cast<std::uint32_t>(t.fu_class));
    put_u32(b, static_cast<std::uint32_t>(t.exec_time));
    put_u32(b, static_cast<std::uint32_t>(t.latency));
  }
  put_i64(b, static_cast<std::int64_t>(params.window));
  put_i64(b, params.huge);
  put_i64(b, static_cast<std::int64_t>(params.fill_cap));
  put_u8(b, flags_of(params, has_tie));
}

bool params_have_tie(const CacheInstanceParams& params) {
  return params.tie_break != nullptr && !params.tie_break->empty();
}

std::int64_t tie_value(const CacheInstanceParams& params, NodeId id) {
  if (id < params.tie_break->size()) return (*params.tie_break)[id];
  return static_cast<std::int64_t>(id);
}

void sort_edges(DenseEdge* edges, std::size_t m) {
  std::sort(edges, edges + m, [](const DenseEdge& a, const DenseEdge& b) {
    if (a.from != b.from) return a.from < b.from;
    if (a.to != b.to) return a.to < b.to;
    return a.latency < b.latency;
  });
}

/// Serializes the node/edge sections shared by both key kinds and computes
/// the structural hash.  `b` already holds the kind-specific prefix.
void finish_key(CacheKey& key, char kind, bool has_tie,
                const DenseNode* nodes, std::size_t n, DenseEdge* edges,
                std::size_t m, Arena& scratch) {
  std::string& b = key.bytes;
  const std::uint64_t seed = hash_bytes(std::string_view(b.data(), b.size()));

  sort_edges(edges, m);
  put_u32(b, static_cast<std::uint32_t>(n));
  for (std::size_t v = 0; v < n; ++v) {
    put_u32(b, nodes[v].exec);
    put_u32(b, nodes[v].fu);
    if (kind == kTraceKind) {
      put_u32(b, nodes[v].block_pos);
    } else {
      put_u8(b, nodes[v].is_new);
      put_i64(b, nodes[v].deadline);
    }
  }
  if (has_tie) {
    for (std::size_t v = 0; v < n; ++v) put_i64(b, nodes[v].tie);
  }
  put_u32(b, static_cast<std::uint32_t>(m));
  for (std::size_t e = 0; e < m; ++e) {
    put_u32(b, edges[e].from);
    put_u32(b, edges[e].to);
    put_u32(b, edges[e].latency);
  }

  key.hash = wl_hash(seed, kind, has_tie, nodes, n, edges, m, scratch);
}

/// Decoded form of a key's node/edge sections, for certification and for
/// recomputing the structural hash in tests.
struct DecodedKey {
  char kind = 0;
  bool has_tie = false;
  std::size_t num_nodes = 0;
  std::vector<DenseNode> nodes;
  std::vector<DenseEdge> edges;
};

/// Sanity cap on node/edge counts read from (possibly corrupt) disk bytes.
constexpr std::uint32_t kMaxDecodedCount = 1U << 26U;

bool decode_key(std::string_view bytes, DecodedKey& out) {
  Reader r(bytes);
  out.kind = static_cast<char>(r.u8());
  if (out.kind != kTraceKind && out.kind != kStepKind) return false;
  if (r.u32() != kScheduleCacheFormatVersion) return false;
  if (r.u32() != kScheduleCacheAlgoVersion) return false;
  r.u32();  // issue width
  const std::uint32_t num_classes = r.u32();
  if (!r.ok() || num_classes > kMaxDecodedCount) return false;
  for (std::uint32_t i = 0; i < num_classes; ++i) r.u32();
  const std::uint32_t num_timings = r.u32();
  if (!r.ok() || num_timings != kNumOpClasses) return false;
  for (std::uint32_t i = 0; i < 3 * num_timings; ++i) r.u32();
  r.i64();  // window
  r.i64();  // huge
  r.i64();  // fill_cap
  const std::uint8_t flags = r.u8();
  out.has_tie = (flags & kFlagHasTie) != 0;
  if (out.kind == kTraceKind) {
    r.u32();  // raw block count
  } else {
    r.i64();  // t_old
  }

  const std::uint32_t n = r.u32();
  if (!r.ok() || n > kMaxDecodedCount) return false;
  out.num_nodes = n;
  out.nodes.assign(n, DenseNode{});
  for (DenseNode& node : out.nodes) {
    node.exec = r.u32();
    node.fu = r.u32();
    if (out.kind == kTraceKind) {
      node.block_pos = r.u32();
    } else {
      node.is_new = r.u8();
      node.deadline = r.i64();
    }
  }
  if (out.has_tie) {
    for (DenseNode& node : out.nodes) node.tie = r.i64();
  }
  const std::uint32_t m = r.u32();
  if (!r.ok() || m > kMaxDecodedCount) return false;
  out.edges.assign(m, DenseEdge{});
  for (DenseEdge& edge : out.edges) {
    edge.from = r.u32();
    edge.to = r.u32();
    edge.latency = r.u32();
    if (edge.from >= n || edge.to >= n) return false;
  }
  return r.at_end();
}

/// Offset where the node section starts (end of the seed-hashed prefix):
/// everything before the `n` field.
std::size_t prefix_length(char kind, std::uint32_t num_classes) {
  std::size_t len = 1 + 4 + 4;                       // kind + versions
  len += 4 + 4 + 4ULL * num_classes;                 // machine shape
  len += 4 + 12ULL * kNumOpClasses;                  // timing table
  len += 8 + 8 + 8 + 1;                              // window, huge, fill_cap, flags
  len += kind == kTraceKind ? 4 : 8;                 // block count / t_old
  return len;
}

// --- certification --------------------------------------------------------

/// True iff `order` (dense ids, possibly the concatenation of two runs) is
/// a permutation of 0..n-1 that places every edge's source before its sink.
/// O(n + m); the only property a consumer needs for memory safety and for
/// the tail-end AIS_CHECKs of schedule_trace to pass.
bool order_respects_key(const DecodedKey& dk,
                        const std::vector<std::uint32_t>& head,
                        const std::vector<std::uint32_t>& tail) {
  const std::size_t n = dk.num_nodes;
  if (head.size() + tail.size() != n) return false;
  std::vector<std::uint32_t> pos(n, kNoBlock);
  std::uint32_t next = 0;
  for (const std::uint32_t v : head) {
    if (v >= n || pos[v] != kNoBlock) return false;
    pos[v] = next++;
  }
  for (const std::uint32_t v : tail) {
    if (v >= n || pos[v] != kNoBlock) return false;
    pos[v] = next++;
  }
  for (const DenseEdge& e : dk.edges) {
    if (pos[e.from] >= pos[e.to]) return false;
  }
  return true;
}

bool certify_trace(const CacheKey& key, const TraceCacheValue& value) {
  DecodedKey dk;
  if (!decode_key(key.bytes, dk) || dk.kind != kTraceKind) return false;
  if (!key.ids.empty() && key.ids.size() != dk.num_nodes) return false;
  static const std::vector<std::uint32_t> kEmpty;
  return order_respects_key(dk, value.order, kEmpty);
}

bool certify_step(const CacheKey& key, const StepCacheValue& value) {
  DecodedKey dk;
  if (!decode_key(key.bytes, dk) || dk.kind != kStepKind) return false;
  if (!key.ids.empty() && key.ids.size() != dk.num_nodes) return false;
  if (value.suffix_deadlines.size() != value.suffix_order.size()) return false;
  return order_respects_key(dk, value.emitted, value.suffix_order);
}

// --- value serialization --------------------------------------------------

void put_u32_vec(std::string& b, const std::vector<std::uint32_t>& v) {
  put_u32(b, static_cast<std::uint32_t>(v.size()));
  for (const std::uint32_t x : v) put_u32(b, x);
}

void put_time_vec(std::string& b, const std::vector<Time>& v) {
  put_u32(b, static_cast<std::uint32_t>(v.size()));
  for (const Time x : v) put_i64(b, x);
}

void put_counters(std::string& b, const CounterDeltaMap& deltas) {
  put_u32(b, static_cast<std::uint32_t>(deltas.size()));
  for (const auto& [name, delta] : deltas) {
    put_u32(b, static_cast<std::uint32_t>(name.size()));
    b.append(name);
    put_u64(b, delta);
  }
}

bool read_u32_vec(Reader& r, std::vector<std::uint32_t>& v) {
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > kMaxDecodedCount) return false;
  v.assign(n, 0);
  for (std::uint32_t& x : v) x = r.u32();
  return r.ok();
}

bool read_time_vec(Reader& r, std::vector<Time>& v) {
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > kMaxDecodedCount) return false;
  v.assign(n, 0);
  for (Time& x : v) x = r.i64();
  return r.ok();
}

bool read_counters(Reader& r, CounterDeltaMap& deltas) {
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > kMaxDecodedCount) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t len = r.u32();
    if (!r.ok() || len > kMaxDecodedCount) return false;
    const std::string_view name = r.bytes(len);
    const std::uint64_t delta = r.u64();
    if (!r.ok()) return false;
    deltas.emplace(std::string(name), delta);
  }
  return true;
}

void put_samples(std::string& b, const ValueSampleMap& samples) {
  put_u32(b, static_cast<std::uint32_t>(samples.size()));
  for (const auto& [name, values] : samples) {
    put_u32(b, static_cast<std::uint32_t>(name.size()));
    b.append(name);
    put_u32(b, static_cast<std::uint32_t>(values.size()));
    for (const std::uint64_t v : values) put_u64(b, v);
  }
}

bool read_samples(Reader& r, ValueSampleMap& samples) {
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > kMaxDecodedCount) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t len = r.u32();
    if (!r.ok() || len > kMaxDecodedCount) return false;
    const std::string_view name = r.bytes(len);
    const std::uint32_t count = r.u32();
    if (!r.ok() || count > kMaxDecodedCount) return false;
    std::vector<std::uint64_t> values(count, 0);
    for (std::uint64_t& v : values) v = r.u64();
    if (!r.ok()) return false;
    samples.emplace(std::string(name), std::move(values));
  }
  return true;
}

std::string encode_trace_value(const TraceCacheValue& v) {
  std::string b;
  put_u32_vec(b, v.order);
  put_time_vec(b, v.merged_makespans);
  put_u64(b, v.prefixes_emitted);
  put_counters(b, v.counter_deltas);
  put_samples(b, v.value_samples);
  return b;
}

bool decode_trace_value(std::string_view bytes, TraceCacheValue& v) {
  Reader r(bytes);
  if (!read_u32_vec(r, v.order)) return false;
  if (!read_time_vec(r, v.merged_makespans)) return false;
  v.prefixes_emitted = r.u64();
  if (!read_counters(r, v.counter_deltas)) return false;
  if (!read_samples(r, v.value_samples)) return false;
  return r.at_end();
}

std::string encode_step_value(const StepCacheValue& v) {
  std::string b;
  put_u32_vec(b, v.emitted);
  put_u32_vec(b, v.suffix_order);
  put_time_vec(b, v.suffix_deadlines);
  put_i64(b, v.suffix_makespan);
  put_i64(b, v.merged_makespan);
  put_counters(b, v.counter_deltas);
  put_samples(b, v.value_samples);
  return b;
}

bool decode_step_value(std::string_view bytes, StepCacheValue& v) {
  Reader r(bytes);
  if (!read_u32_vec(r, v.emitted)) return false;
  if (!read_u32_vec(r, v.suffix_order)) return false;
  if (!read_time_vec(r, v.suffix_deadlines)) return false;
  v.suffix_makespan = r.i64();
  v.merged_makespan = r.i64();
  if (!read_counters(r, v.counter_deltas)) return false;
  if (!read_samples(r, v.value_samples)) return false;
  return r.at_end();
}

// --- disk tier ------------------------------------------------------------

constexpr char kDiskMagic[4] = {'A', 'I', 'S', 'C'};

std::string disk_file_name(std::uint64_t hash) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx.aisc",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::optional<std::string> disk_load(const std::string& dir,
                                     const CacheKey& key) {
  const std::filesystem::path path =
      std::filesystem::path(dir) / disk_file_name(key.hash);
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return std::nullopt;

  Reader r(blob);
  const std::string_view magic = r.bytes(sizeof kDiskMagic);
  if (!r.ok() || std::memcmp(magic.data(), kDiskMagic, sizeof kDiskMagic) != 0)
    return std::nullopt;
  if (r.u32() != kScheduleCacheFormatVersion) return std::nullopt;
  if (r.u32() != kScheduleCacheAlgoVersion) return std::nullopt;
  if (r.u64() != key.hash) return std::nullopt;
  const std::uint64_t key_size = r.u64();
  if (!r.ok() || key_size != key.bytes.size()) return std::nullopt;
  const std::string_view key_bytes = r.bytes(key_size);
  if (!r.ok() || key_bytes != key.bytes) return std::nullopt;
  const std::uint64_t value_size = r.u64();
  const std::string_view value = r.bytes(value_size);
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return std::string(value);
}

/// Atomic publish: write a unique temp file, then rename over the final
/// name.  A reader never sees a torn file; a lost race just rewrites the
/// same (deterministic) bytes.  Returns false when any step fails — the
/// cache degrades to memory-only for that entry.
bool disk_store(const std::string& dir, const CacheKey& key,
                const std::string& value, std::uint64_t seq) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);

  std::string blob;
  blob.reserve(40 + key.bytes.size() + value.size());
  blob.append(kDiskMagic, sizeof kDiskMagic);
  put_u32(blob, kScheduleCacheFormatVersion);
  put_u32(blob, kScheduleCacheAlgoVersion);
  put_u64(blob, key.hash);
  put_u64(blob, key.bytes.size());
  blob.append(key.bytes);
  put_u64(blob, value.size());
  blob.append(value);

  const std::uint64_t nonce =
      mix64(seq ^ static_cast<std::uint64_t>(
                      std::chrono::steady_clock::now().time_since_epoch()
                          .count()));
  char tmp_name[64];
  std::snprintf(tmp_name, sizeof tmp_name, ".tmp-%016llx-%016llx",
                static_cast<unsigned long long>(key.hash),
                static_cast<unsigned long long>(nonce));
  const fs::path tmp = fs::path(dir) / tmp_name;
  const fs::path final_path = fs::path(dir) / disk_file_name(key.hash);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return false;
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out.good()) {
      out.close();
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, final_path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

thread_local int t_bypass_depth = 0;

}  // namespace

// --- key builders ---------------------------------------------------------

CacheKey build_trace_key(const DepGraph& g, const std::vector<NodeSet>& blocks,
                         const CacheInstanceParams& params) {
  AIS_CHECK(params.machine != nullptr, "cache key needs a machine model");
  CacheKey key;
  Arena& scratch = key_scratch();
  scratch.reset();

  const std::size_t domain = g.num_nodes();
  std::uint32_t* block_pos = scratch.alloc_array<std::uint32_t>(domain);
  std::fill_n(block_pos, domain, kNoBlock);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (const NodeId id : blocks[b].ids()) {
      if (block_pos[id] == kNoBlock) {
        block_pos[id] = static_cast<std::uint32_t>(b);
      }
    }
  }
  std::uint32_t* dense_of = scratch.alloc_array<std::uint32_t>(domain);
  for (NodeId id = 0; id < domain; ++id) {
    if (block_pos[id] != kNoBlock) {
      dense_of[id] = static_cast<std::uint32_t>(key.ids.size());
      key.ids.push_back(id);
    }
  }
  const std::size_t n = key.ids.size();

  const bool has_tie = params_have_tie(params);
  DenseNode* nodes = scratch.alloc_array<DenseNode>(n);
  for (std::size_t v = 0; v < n; ++v) {
    const NodeId id = key.ids[v];
    const NodeInfo& info = g.node(id);
    nodes[v] = DenseNode{};
    nodes[v].exec = static_cast<std::uint32_t>(info.exec_time);
    nodes[v].fu = static_cast<std::uint32_t>(info.fu_class);
    nodes[v].block_pos = block_pos[id];
    if (has_tie) nodes[v].tie = tie_value(params, id);
  }

  DenseEdge* edges = scratch.alloc_array<DenseEdge>(g.num_edges());
  std::size_t m = 0;
  for (const DepEdge& e : g.edges()) {
    if (e.distance != 0) continue;
    if (block_pos[e.from] == kNoBlock || block_pos[e.to] == kNoBlock) continue;
    edges[m++] = DenseEdge{dense_of[e.from], dense_of[e.to],
                           static_cast<std::uint32_t>(e.latency)};
  }

  key.bytes.reserve(256 + n * 12 + m * 12);
  serialize_prefix(key.bytes, kTraceKind, params, has_tie);
  put_u32(key.bytes, static_cast<std::uint32_t>(blocks.size()));
  finish_key(key, kTraceKind, has_tie, nodes, n, edges, m, scratch);
  return key;
}

CacheKey build_step_key(const DepGraph& g, const NodeSet& old,
                        const NodeSet& new_nodes, const DeadlineMap& deadlines,
                        Time t_old, const CacheInstanceParams& params) {
  AIS_CHECK(params.machine != nullptr, "cache key needs a machine model");
  CacheKey key;
  Arena& scratch = key_scratch();
  scratch.reset();

  const std::size_t domain = g.num_nodes();
  std::uint32_t* dense_of = scratch.alloc_array<std::uint32_t>(domain);
  for (NodeId id = 0; id < domain; ++id) {
    if (old.contains(id) || new_nodes.contains(id)) {
      dense_of[id] = static_cast<std::uint32_t>(key.ids.size());
      key.ids.push_back(id);
    } else {
      dense_of[id] = kNoBlock;
    }
  }
  const std::size_t n = key.ids.size();

  const bool has_tie = params_have_tie(params);
  DenseNode* nodes = scratch.alloc_array<DenseNode>(n);
  for (std::size_t v = 0; v < n; ++v) {
    const NodeId id = key.ids[v];
    const NodeInfo& info = g.node(id);
    nodes[v] = DenseNode{};
    nodes[v].exec = static_cast<std::uint32_t>(info.exec_time);
    nodes[v].fu = static_cast<std::uint32_t>(info.fu_class);
    nodes[v].is_new = new_nodes.contains(id) ? 1 : 0;
    nodes[v].deadline = id < deadlines.size() ? deadlines[id] : 0;
    if (has_tie) nodes[v].tie = tie_value(params, id);
  }

  DenseEdge* edges = scratch.alloc_array<DenseEdge>(g.num_edges());
  std::size_t m = 0;
  for (const DepEdge& e : g.edges()) {
    if (e.distance != 0) continue;
    if (dense_of[e.from] == kNoBlock || dense_of[e.to] == kNoBlock) continue;
    edges[m++] = DenseEdge{dense_of[e.from], dense_of[e.to],
                           static_cast<std::uint32_t>(e.latency)};
  }

  key.bytes.reserve(256 + n * 21 + m * 12);
  serialize_prefix(key.bytes, kStepKind, params, has_tie);
  put_i64(key.bytes, t_old);
  finish_key(key, kStepKind, has_tie, nodes, n, edges, m, scratch);
  return key;
}

std::uint64_t structural_hash(const CacheKey& key) {
  DecodedKey dk;
  AIS_CHECK(decode_key(key.bytes, dk), "structural_hash: undecodable key");
  // Recover the seed the builder used: the hash of the scalar prefix.
  std::uint32_t num_classes = 0;
  {
    Reader r(key.bytes);
    r.u8();
    r.u32();
    r.u32();
    r.u32();
    num_classes = r.u32();
  }
  const std::size_t prefix = prefix_length(dk.kind, num_classes);
  const std::uint64_t seed =
      hash_bytes(std::string_view(key.bytes.data(), prefix));
  Arena& scratch = key_scratch();
  scratch.reset();
  return wl_hash(seed, dk.kind, dk.has_tie, dk.nodes.data(), dk.nodes.size(),
                 dk.edges.data(), dk.edges.size(), scratch);
}

// --- the cache ------------------------------------------------------------

struct ScheduleCache::Impl {
  /// Owned key: the map node keeps `bytes` and `hash` at stable addresses
  /// (unordered_map is node-based), so the LRU list stores key pointers.
  struct StoredKey {
    std::string bytes;
    std::uint64_t hash = 0;
  };
  struct KeyView {
    std::string_view bytes;
    std::uint64_t hash = 0;
  };
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(const StoredKey& k) const { return k.hash; }
    std::size_t operator()(const KeyView& k) const { return k.hash; }
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(const StoredKey& a, const StoredKey& b) const {
      return a.bytes == b.bytes;
    }
    bool operator()(const StoredKey& a, const KeyView& b) const {
      return a.bytes == b.bytes;
    }
    bool operator()(const KeyView& a, const StoredKey& b) const {
      return a.bytes == b.bytes;
    }
  };
  struct Entry {
    std::string value;
    std::list<const StoredKey*>::iterator lru_it;
  };
  struct Shard {
    Mutex mu;
    std::unordered_map<StoredKey, Entry, KeyHash, KeyEq> map
        AIS_GUARDED_BY(mu);
    std::list<const StoredKey*> lru
        AIS_GUARDED_BY(mu);  // front = most recently used
    std::size_t bytes AIS_GUARDED_BY(mu) = 0;
  };

  /// Fixed per-entry overhead charged against the byte budget (map node,
  /// list node, string headers) on top of the actual key/value bytes.
  static constexpr std::size_t kEntryOverhead = 128;

  /// Shard is immovable (Mutex), so a runtime-sized shard array lives
  /// behind unique_ptr<Shard[]>.  num_shards is a power of two, written
  /// only under external quiescence (set_shard_count's contract).
  std::size_t num_shards = kNumShards;
  std::unique_ptr<Shard[]> shards = std::make_unique<Shard[]>(kNumShards);
  std::atomic<bool> enabled{true};
  std::atomic<std::size_t> capacity{kDefaultCapacityBytes};
  mutable Mutex dir_mu;
  std::string dir AIS_GUARDED_BY(dir_mu);
  std::atomic<std::uint64_t> tmp_seq{0};

  // --- disk-write coalescing (background flusher) -----------------------
  //
  // insert_bytes queues disk writes here instead of writing inline; the
  // flusher thread (started lazily on the first queued write) drains the
  // map in batches after a short gather delay, so a burst of inserts of
  // the same key — every wrap-around iteration of a warm loop body —
  // costs one file write instead of N (counter cache.disk_write_coalesced
  // tracks the writes saved).  disk_store's atomic tmp+rename publish is
  // unchanged.  flush_disk() / the destructor stop the thread and drain.
  struct PendingWrite {
    std::uint64_t hash = 0;
    std::string value;
  };
  Mutex flush_mu;
  CondVar flush_cv;
  std::map<std::string, PendingWrite, std::less<>> pending
      AIS_GUARDED_BY(flush_mu);  // keyed by key bytes (dedup = coalescing)
  bool flusher_running AIS_GUARDED_BY(flush_mu) = false;
  bool flusher_exit AIS_GUARDED_BY(flush_mu) = false;
  std::thread flusher_thread AIS_GUARDED_BY(flush_mu);
  std::mutex flusher_lifecycle_mu;  // serializes stop_flusher callers

  /// Gather delay before a batch is written: long enough to coalesce a
  /// compile's burst of step inserts, short enough to be invisible next to
  /// a single solve.
  static constexpr std::chrono::microseconds kFlushDelay{2000};

#if AIS_OBS_ENABLED
  // Per-shard labeled latency metrics, registered once at construction so
  // the hot paths only touch the cached handles (registrations are
  // permanent; a second ScheduleCache instance just gets the same handles).
  // Outcome indexes: 0 = hit (memory), 1 = miss, 2 = disk_hit.
  static constexpr int kOutcomeHit = 0;
  static constexpr int kOutcomeMiss = 1;
  static constexpr int kOutcomeDiskHit = 2;
  static constexpr const char* kOutcomeNames[3] = {"hit", "miss", "disk_hit"};
  struct ShardMetrics {
    obs::Counter* requests[3] = {};
    obs::Histogram* lookup_us[3] = {};
  };
  std::vector<ShardMetrics> shard_metrics;  // one per shard
  obs::Histogram* disk_read_us = nullptr;
  obs::Histogram* disk_write_us = nullptr;

  Impl() {
    register_shard_metrics();
    obs::MetricRegistry& reg = obs::MetricRegistry::global();
    disk_read_us = reg.histogram("cache_disk_read_us");
    disk_write_us = reg.histogram("cache_disk_write_us");
  }

  /// (Re)builds the per-shard handle table for the current shard count.
  /// Registrations are permanent, so growing and shrinking just re-resolves
  /// the same series.
  void register_shard_metrics() {
    obs::MetricRegistry& reg = obs::MetricRegistry::global();
    shard_metrics.assign(num_shards, ShardMetrics{});
    for (std::size_t i = 0; i < num_shards; ++i) {
      const std::string shard = std::to_string(i);
      for (int o = 0; o < 3; ++o) {
        shard_metrics[i].requests[o] =
            reg.counter("cache_requests_total", {"shard", shard},
                        {"outcome", kOutcomeNames[o]});
        shard_metrics[i].lookup_us[o] =
            reg.histogram("cache_lookup_us", {"shard", shard},
                          {"outcome", kOutcomeNames[o]});
      }
    }
  }

  /// Books one lookup: outcome counter plus whole-lookup latency, into the
  /// shard the key hashes to.  start_us < 0 means telemetry was disabled at
  /// lookup entry — record nothing.
  void note_lookup(std::uint64_t hash, int outcome, std::int64_t start_us) {
    if (start_us < 0) return;
    const std::size_t sh = shard_index(hash);
    shard_metrics[sh].requests[outcome]->add(1);
    shard_metrics[sh].lookup_us[outcome]->record(
        static_cast<std::uint64_t>(Stopwatch::now_us() - start_us));
  }
#else
  Impl() = default;
  void register_shard_metrics() {}
#endif  // AIS_OBS_ENABLED

  ~Impl() { stop_flusher(); }

  std::size_t shard_index(std::uint64_t hash) const {
    // High bits select the shard (top 8 cover kMaxShards); the map's
    // buckets use the full hash.
    return (hash >> 56U) & (num_shards - 1);
  }

  Shard& shard_for(std::uint64_t hash) { return shards[shard_index(hash)]; }

  std::string dir_copy() const {
    MutexLock lock(dir_mu);
    return dir;
  }

  /// Queues one disk write for the flusher, starting it on first use.  A
  /// key already pending is coalesced: values are deterministic, so the
  /// queued bytes already match and one write covers both inserts.
  void queue_disk_write(const CacheKey& key, const std::string& value)
      AIS_EXCLUDES(flush_mu) {
    bool coalesced = false;
    {
      MutexLock lock(flush_mu);
      const auto [it, inserted] = pending.try_emplace(key.bytes);
      if (inserted) {
        it->second.hash = key.hash;
        it->second.value = value;
      } else {
        coalesced = true;
      }
      if (!flusher_running) {
        flusher_running = true;
        flusher_exit = false;
        flusher_thread = std::thread([this] { flusher_loop(); });
      }
      flush_cv.notify_one();
    }
    if (coalesced) AIS_OBS_COUNT(obs::ctr::kCacheDiskWriteCoalesced);
  }

  void flusher_loop() AIS_EXCLUDES(flush_mu) {
    std::map<std::string, PendingWrite, std::less<>> batch;
    for (;;) {
      batch.clear();
      {
        MutexLock lock(flush_mu);
        while (pending.empty() && !flusher_exit) flush_cv.wait(flush_mu);
        if (pending.empty() && flusher_exit) return;
        if (!flusher_exit) {
          // Gather delay: let the burst that woke us finish coalescing.
          flush_cv.wait_for(flush_mu, kFlushDelay);
        }
        batch.swap(pending);
      }
      const std::string dir = dir_copy();
      if (dir.empty()) continue;  // tier turned off with writes in flight
      for (const auto& [bytes, write] : batch) {
        CacheKey key;
        key.bytes = bytes;
        key.hash = write.hash;
#if AIS_OBS_ENABLED
        const std::int64_t start_us =
            obs::enabled() ? Stopwatch::now_us() : -1;
#endif
        const bool stored =
            disk_store(dir, key, write.value,
                       tmp_seq.fetch_add(1, std::memory_order_relaxed));
#if AIS_OBS_ENABLED
        if (start_us >= 0) {
          disk_write_us->record(
              static_cast<std::uint64_t>(Stopwatch::now_us() - start_us));
        }
#endif
        if (stored) AIS_OBS_COUNT(obs::ctr::kCacheDiskWrites);
      }
    }
  }

  /// Stops the flusher after it drains everything pending.  Idempotent;
  /// the next queue_disk_write restarts the thread.
  void stop_flusher() AIS_EXCLUDES(flush_mu) {
    std::lock_guard<std::mutex> lifecycle(flusher_lifecycle_mu);
    std::thread thread;
    {
      MutexLock lock(flush_mu);
      if (!flusher_running) return;
      flusher_exit = true;
      flush_cv.notify_all();
      thread = std::move(flusher_thread);
    }
    thread.join();
    MutexLock lock(flush_mu);
    flusher_running = false;
    flusher_exit = false;
  }
};

ScheduleCache::ScheduleCache(std::size_t capacity_bytes)
    : impl_(std::make_unique<Impl>()) {
  impl_->capacity.store(capacity_bytes, std::memory_order_relaxed);
}

ScheduleCache::~ScheduleCache() = default;

ScheduleCache& ScheduleCache::global() {
  static ScheduleCache* cache = [] {
    auto* c = new ScheduleCache();  // leaked: usable during static teardown
    const char* env = std::getenv("AIS_CACHE");
    if (env != nullptr &&
        (std::string_view(env) == "0" || std::string_view(env) == "off")) {
      c->set_enabled(false);
    }
    const char* dir = std::getenv("AIS_CACHE_DIR");
    if (dir != nullptr && dir[0] != '\0') c->set_disk_dir(dir);
    const char* shards = std::getenv("AIS_CACHE_SHARDS");
    if (shards != nullptr && shards[0] != '\0') {
      c->set_shard_count(
          static_cast<std::size_t>(std::strtoul(shards, nullptr, 10)));
    }
    // Disk writes are coalesced through a background flusher; drain it at
    // exit so short-lived aisc runs still persist their tail-end entries.
    std::atexit([] { ScheduleCache::global().flush_disk(); });
    return c;
  }();
  return *cache;
}

ScheduleCache* ScheduleCache::active() {
  if (t_bypass_depth > 0) return nullptr;
  ScheduleCache& c = global();
  return c.enabled() ? &c : nullptr;
}

ScheduleCache::ScopedBypass::ScopedBypass() { ++t_bypass_depth; }
ScheduleCache::ScopedBypass::~ScopedBypass() { --t_bypass_depth; }

void ScheduleCache::set_enabled(bool on) {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

bool ScheduleCache::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void ScheduleCache::set_capacity(std::size_t bytes) {
  impl_->capacity.store(bytes, std::memory_order_relaxed);
}

void ScheduleCache::set_disk_dir(std::string dir) {
  MutexLock lock(impl_->dir_mu);
  impl_->dir = std::move(dir);
}

std::string ScheduleCache::disk_dir() const { return impl_->dir_copy(); }

void ScheduleCache::clear() {
  for (std::size_t i = 0; i < impl_->num_shards; ++i) {
    Impl::Shard& s = impl_->shards[i];
    MutexLock lock(s.mu);
    s.map.clear();
    s.lru.clear();
    s.bytes = 0;
  }
}

void ScheduleCache::flush_disk() { impl_->stop_flusher(); }

void ScheduleCache::set_shard_count(std::size_t count) {
  std::size_t n = 1;
  while (n < count && n < kMaxShards) n <<= 1U;
  if (n == impl_->num_shards) {
    clear();
    return;
  }
  // Caller guarantees quiescence: nothing holds a Shard& or is mid-lookup.
  impl_->shards = std::make_unique<Impl::Shard[]>(n);
  impl_->num_shards = n;
  impl_->register_shard_metrics();
}

std::size_t ScheduleCache::shard_count() const { return impl_->num_shards; }

std::optional<std::string> ScheduleCache::lookup_bytes(const CacheKey& key,
                                                       bool* from_disk) {
  *from_disk = false;
  Impl::Shard& s = impl_->shard_for(key.hash);
  {
    MutexLock lock(s.mu);
    const auto it = s.map.find(Impl::KeyView{key.bytes, key.hash});
    if (it != s.map.end()) {
      s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
      return it->second.value;
    }
  }
  const std::string dir = impl_->dir_copy();
  if (dir.empty()) return std::nullopt;
#if AIS_OBS_ENABLED
  const std::int64_t start_us = obs::enabled() ? Stopwatch::now_us() : -1;
#endif
  std::optional<std::string> value = disk_load(dir, key);
#if AIS_OBS_ENABLED
  if (start_us >= 0) {
    impl_->disk_read_us->record(
        static_cast<std::uint64_t>(Stopwatch::now_us() - start_us));
  }
#endif
  if (value) *from_disk = true;
  return value;
}

void ScheduleCache::insert_bytes(const CacheKey& key, std::string value,
                                 bool write_disk) {
  if (write_disk && !impl_->dir_copy().empty()) {
    impl_->queue_disk_write(key, value);
  }

  const std::size_t entry_bytes =
      key.bytes.size() + value.size() + Impl::kEntryOverhead;
  const std::size_t shard_budget =
      impl_->capacity.load(std::memory_order_relaxed) / impl_->num_shards;
  std::uint64_t evictions = 0;
  Impl::Shard& s = impl_->shard_for(key.hash);
  {
    MutexLock lock(s.mu);
    const auto it = s.map.find(Impl::KeyView{key.bytes, key.hash});
    if (it != s.map.end()) {
      // Deterministic values: an existing entry already holds these bytes.
      s.lru.splice(s.lru.begin(), s.lru, it->second.lru_it);
      return;
    }
    const auto [pos, inserted] =
        s.map.emplace(Impl::StoredKey{key.bytes, key.hash}, Impl::Entry{});
    static_cast<void>(inserted);
    pos->second.value = std::move(value);
    s.lru.push_front(&pos->first);
    pos->second.lru_it = s.lru.begin();
    s.bytes += entry_bytes;

    // Evict from the cold end, but never the entry just inserted: one
    // oversized instance must not make the cache permanently empty.
    while (s.bytes > shard_budget && s.lru.size() > 1) {
      const Impl::StoredKey* victim = s.lru.back();
      const auto vit = s.map.find(Impl::KeyView{victim->bytes, victim->hash});
      AIS_CHECK(vit != s.map.end(), "cache LRU points at a missing entry");
      s.bytes -= victim->bytes.size() + vit->second.value.size() +
                 Impl::kEntryOverhead;
      s.lru.pop_back();
      s.map.erase(vit);
      ++evictions;
    }
  }
  AIS_OBS_COUNT(obs::ctr::kCacheBytes, entry_bytes);
  if (evictions > 0) AIS_OBS_COUNT(obs::ctr::kCacheEvictions, evictions);
}

void ScheduleCache::erase_bytes(const CacheKey& key) {
  Impl::Shard& s = impl_->shard_for(key.hash);
  MutexLock lock(s.mu);
  const auto it = s.map.find(Impl::KeyView{key.bytes, key.hash});
  if (it == s.map.end()) return;
  s.bytes -= it->first.bytes.size() + it->second.value.size() +
             Impl::kEntryOverhead;
  s.lru.erase(it->second.lru_it);
  s.map.erase(it);
}

std::optional<TraceCacheValue> ScheduleCache::lookup_trace(
    const CacheKey& key) {
#if AIS_OBS_ENABLED
  const std::int64_t start_us = obs::enabled() ? Stopwatch::now_us() : -1;
  int outcome = Impl::kOutcomeMiss;
#endif
  bool from_disk = false;
  bool ok = true;
  std::optional<std::string> raw = lookup_bytes(key, &from_disk);
  TraceCacheValue value;
  if (!raw || !decode_trace_value(*raw, value)) {
    if (raw) erase_bytes(key);  // undecodable entries can only rot away
    AIS_OBS_COUNT(obs::ctr::kCacheMisses);
    ok = false;
  } else if (from_disk) {
    if (!certify_trace(key, value)) {
      AIS_OBS_COUNT(obs::ctr::kCacheMisses);
      ok = false;
    } else {
      insert_bytes(key, std::move(*raw), /*write_disk=*/false);
      AIS_OBS_COUNT(obs::ctr::kCacheDiskHits);
#if AIS_OBS_ENABLED
      outcome = Impl::kOutcomeDiskHit;
#endif
    }
  } else {
    AIS_OBS_COUNT(obs::ctr::kCacheHits);
#if AIS_OBS_ENABLED
    outcome = Impl::kOutcomeHit;
#endif
  }
#if AIS_OBS_ENABLED
  impl_->note_lookup(key.hash, outcome, start_us);
#endif
  if (!ok) return std::nullopt;
  return value;
}

void ScheduleCache::insert_trace(const CacheKey& key,
                                 const TraceCacheValue& value) {
  if (!certify_trace(key, value)) return;
  insert_bytes(key, encode_trace_value(value), /*write_disk=*/true);
}

std::optional<StepCacheValue> ScheduleCache::lookup_step(const CacheKey& key) {
#if AIS_OBS_ENABLED
  const std::int64_t start_us = obs::enabled() ? Stopwatch::now_us() : -1;
  int outcome = Impl::kOutcomeMiss;
#endif
  bool from_disk = false;
  bool ok = true;
  std::optional<std::string> raw = lookup_bytes(key, &from_disk);
  StepCacheValue value;
  if (!raw || !decode_step_value(*raw, value)) {
    if (raw) erase_bytes(key);
    AIS_OBS_COUNT(obs::ctr::kCacheMisses);
    ok = false;
  } else if (from_disk) {
    if (!certify_step(key, value)) {
      AIS_OBS_COUNT(obs::ctr::kCacheMisses);
      ok = false;
    } else {
      insert_bytes(key, std::move(*raw), /*write_disk=*/false);
      AIS_OBS_COUNT(obs::ctr::kCacheDiskHits);
#if AIS_OBS_ENABLED
      outcome = Impl::kOutcomeDiskHit;
#endif
    }
  } else {
    AIS_OBS_COUNT(obs::ctr::kCacheHits);
#if AIS_OBS_ENABLED
    outcome = Impl::kOutcomeHit;
#endif
  }
#if AIS_OBS_ENABLED
  impl_->note_lookup(key.hash, outcome, start_us);
#endif
  if (!ok) return std::nullopt;
  return value;
}

void ScheduleCache::insert_step(const CacheKey& key,
                                const StepCacheValue& value) {
  if (!certify_step(key, value)) return;
  insert_bytes(key, encode_step_value(value), /*write_disk=*/true);
}

}  // namespace ais
