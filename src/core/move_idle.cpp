#include "core/move_idle.hpp"

#include <algorithm>
#include <utility>

#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace ais {
namespace {

/// Class-major unit -> FU class mapping (same layout as greedy_from_list).
std::vector<int> unit_classes(const MachineModel& machine) {
  std::vector<int> classes;
  for (int c = 0; c < machine.num_fu_classes(); ++c) {
    for (int k = 0; k < machine.fu_count(c); ++k) classes.push_back(c);
  }
  return classes;
}

/// Restores the session's rank-cache snapshot on scope exit unless the
/// trial committed.  Failed deadline trials thereby never pollute the
/// session cache: the next trial diffs against the base deadlines instead
/// of paying a second incremental pass to undo this trial's caps.
class SessionRestore {
 public:
  explicit SessionRestore(RankSession& session) : session_(&session) {}
  SessionRestore(const SessionRestore&) = delete;
  SessionRestore& operator=(const SessionRestore&) = delete;
  ~SessionRestore() {
    if (session_ != nullptr) session_->restore_snapshot();
  }
  void commit() { session_ = nullptr; }

 private:
  RankSession* session_;
};

}  // namespace

MoveIdleResult move_idle_slot(const RankScheduler& scheduler, const Schedule& s,
                              DeadlineMap& deadlines, IdleSlot slot,
                              const RankOptions& opts) {
  RankSession session(scheduler, s.active());
  return move_idle_slot(session, s, deadlines, slot, opts);
}

MoveIdleResult move_idle_slot(RankSession& session, const Schedule& s,
                              DeadlineMap& deadlines, IdleSlot slot,
                              const RankOptions& opts) {
  AIS_OBS_COUNT(obs::ctr::kIdleMoveAttempts);
  const RankScheduler& scheduler = session.scheduler();
  const NodeSet& active = s.active();
  AIS_CHECK(session.active() == active,
            "session active set must match the schedule");
  const std::vector<int> classes = unit_classes(scheduler.machine());
  const int slot_class = classes[static_cast<std::size_t>(slot.unit)];
  const std::size_t index = s.idle_slot_index(slot);

  const MoveIdleResult failure{s, slot, false};

  // Prime the cache at the *uncapped* deadlines and snapshot it; the trial
  // below is speculative, and SessionRestore rolls the cache back to this
  // state on every failure path.
  session.compute_ranks(deadlines, opts);
  session.snapshot();
  SessionRestore restore(session);

  // Trial deadlines; committed into `deadlines` only on success.
  DeadlineMap trial = deadlines;

  // sigma: nodes currently scheduled before the slot on units of the slot's
  // class.  Capping their deadlines at the slot time guarantees no earlier
  // idle slot moves earlier (they must all still complete by slot.time).
  std::vector<NodeId> sigma;
  for (const NodeId y : session.active_ids()) {
    if (classes[static_cast<std::size_t>(s.unit_of(y))] != slot_class) continue;
    if (s.start(y) < slot.time) {
      sigma.push_back(y);
      if (trial[y] > slot.time) {
        trial[y] = slot.time;
        AIS_OBS_COUNT(obs::ctr::kDeadlinesTightened);
      }
    }
  }

  // Ranks under the capped deadlines, for the paper's failure guard.
  bool structurally_feasible = true;
  std::vector<Time> rank =
      session.compute_ranks(trial, opts, &structurally_feasible);
  if (!structurally_feasible) return failure;

  Schedule current = s;
  // Each iteration strictly reduces the tail node's deadline below
  // slot.time, and the guard below bounds how often the slot can stay put;
  // the explicit cap is belt-and-braces for the heuristic regimes.
  const std::size_t iteration_cap = 4 * active.size() + 8;
  for (std::size_t iter = 0; iter < iteration_cap; ++iter) {
    const NodeId tail = current.tail_node(slot.unit, slot.time);
    if (tail == kInvalidNode) return failure;  // slot preceded by idle time
    if (trial[tail] > slot.time - 1) {
      trial[tail] = slot.time - 1;
      AIS_OBS_COUNT(obs::ctr::kDeadlinesTightened);
    }

    // Paper guard: some sigma node must still be allowed to complete at
    // slot.time, otherwise the tail position can never be filled.
    bool refillable = false;
    for (const NodeId y : sigma) {
      if (rank[y] >= slot.time && trial[y] >= slot.time) {
        refillable = true;
        break;
      }
    }
    if (!refillable) return failure;

    RankResult result = session.run(trial, opts);
    if (!result.feasible) return failure;
    rank = std::move(result.rank);

    const auto& slots = result.schedule.idle_slots();
    IdleSlot new_slot;
    if (index >= slots.size()) {
      // The slot was eliminated outright (possible in heuristic regimes;
      // §4.2 calls this out as a desirable outcome).
      new_slot = IdleSlot{slot.unit, result.schedule.makespan()};
    } else {
      new_slot = slots[index];
    }
    if (new_slot.time > slot.time) {
      deadlines = std::move(trial);  // finalize all deadline modifications
      restore.commit();  // the trial state is the new base
      AIS_OBS_COUNT(obs::ctr::kIdleSlotsMoved);
      return MoveIdleResult{std::move(result.schedule), new_slot, true};
    }
    if (new_slot.time < slot.time) {
      // Cannot happen in the restricted case (the sigma caps pin every node
      // before the slot), but heuristic machines (typed units, long
      // execution times) can shuffle slots across units; treat as failure.
      return failure;
    }
    current = std::move(result.schedule);
  }
  return failure;
}

Schedule delay_idle_slots(const RankScheduler& scheduler, Schedule s,
                          DeadlineMap& deadlines, const RankOptions& opts) {
  AIS_OBS_SPAN("move_idle");
  // Every re-schedule below keeps the active set of `s`, so one session
  // serves the whole sweep.
  RankSession session(scheduler, s.active());
  std::size_t i = 0;
  while (true) {
    const auto& slots = s.idle_slots();
    if (i >= slots.size()) break;
    IdleSlot slot = slots[i];
    // Keep trying to move the i-th idle slot (paper Fig. 6 inner loop).
    while (true) {
      MoveIdleResult res = move_idle_slot(session, s, deadlines, slot, opts);
      s = std::move(res.schedule);
      if (!res.moved || res.slot.time >= s.makespan()) break;
      slot = res.slot;
    }
    ++i;
  }
  return s;
}

}  // namespace ais
