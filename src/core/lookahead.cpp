#include "core/lookahead.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "core/chop.hpp"
#include "core/legality.hpp"
#include "core/merge.hpp"
#include "core/move_idle.hpp"
#include "core/schedule_cache.hpp"
#include "obs/obs.hpp"
#include "support/assert.hpp"
#include "support/mutex.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace ais {
namespace {

/// Dense id of `id` within `key` (key.ids is ascending).
std::uint32_t dense_index(const CacheKey& key, NodeId id) {
  const auto it = std::lower_bound(key.ids.begin(), key.ids.end(), id);
  AIS_CHECK(it != key.ids.end() && *it == id,
            "scheduled node missing from its cache key");
  return static_cast<std::uint32_t>(it - key.ids.begin());
}

/// Cold-path pre-scheduling (opts.jobs > 1): one standalone RankSession per
/// block — topological order, descendant closure, initial ranks and the
/// standalone greedy schedule — is warmed on thread-pool workers while the
/// serial Merge/Chop chain drains blocks in trace order and consumes the
/// artifacts through MergeSeed.  The substrate work runs through
/// run_silent(), so no counter delta ever originates on a worker thread:
/// every bump the serial path reports is issued (or re-issued) on the
/// compiling thread, inside its CounterRecorder, keeping cache-on/off and
/// jobs-1/jobs-N counter streams identical.  Workers are submitted in trace
/// order, so by the time the consumer needs block i the pool has usually
/// finished it and is ahead warming later blocks.
class BlockPrescheduler {
 public:
  struct Substrate {
    std::unique_ptr<RankSession> session;
    std::optional<RankResult> standalone;
    bool ready = false;
  };

  /// Requires jobs > 1 (callers keep jobs <= 1 on the plain serial path).
  BlockPrescheduler(const RankScheduler& scheduler,
                    const std::vector<NodeSet>& blocks, Time huge,
                    const RankOptions& rank_opts, int jobs)
      : scheduler_(scheduler),
        blocks_(blocks),
        huge_(huge),
        rank_opts_(rank_opts),
        subs_(blocks.size()),
        pool_(std::min(jobs, static_cast<int>(blocks.size()) + 1)) {
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      if (blocks_[i].empty()) continue;
      pool_.submit([this, i] {
        // The expensive warm-up runs unlocked on scratch locals; only the
        // hand-off into subs_ is a critical section.
        auto session =
            std::make_unique<RankSession>(scheduler_, blocks_[i]);
        std::optional<RankResult> standalone = session->run_silent(
            uniform_deadlines(scheduler_.graph(), huge_), rank_opts_);
        {
          MutexLock lock(mu_);
          Substrate& sub = subs_[i];
          sub.session = std::move(session);
          sub.standalone = std::move(standalone);
          sub.ready = true;
        }
        cv_.notify_all();
      });
    }
  }

  /// Blocks computed for step-cache hits are speculative waste; the pool is
  /// drained before members die either way.
  ~BlockPrescheduler() { pool_.wait_idle(); }

  /// The warmed substrate of (non-empty) block `i`; blocks until the pool
  /// delivers it.  The returned reference is safe to use unlocked: once
  /// ready, no worker touches the slot again, so the consumer has exclusive
  /// access until destruction.
  Substrate& take(std::size_t i) AIS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!subs_[i].ready) cv_.wait(mu_);
    return subs_[i];
  }

 private:
  const RankScheduler& scheduler_;
  const std::vector<NodeSet>& blocks_;
  const Time huge_;
  const RankOptions rank_opts_;
  std::vector<Substrate> subs_ AIS_GUARDED_BY(mu_);
  Mutex mu_;
  CondVar cv_;
  ThreadPool pool_;  // last member: joins before the state above dies
};

/// Places `list`'s nodes in exactly that order: each node starts at the
/// earliest dependence- and resource-legal cycle whose (start, unit) pair
/// lexicographically follows its list predecessor's, so the resulting
/// schedule's permutation() *is* `list`.  Unlike greedy_from_list — which
/// re-derives the order from start times, letting stalled nodes slip past
/// lower-priority ones — the planning order is pinned here, which is what
/// the fill-depth cap needs: a bound on the order, not on start times.
Schedule place_in_list_order(const RankScheduler& scheduler,
                             const NodeSet& active,
                             const std::vector<NodeId>& list) {
  const DepGraph& g = scheduler.graph();
  const MachineModel& machine = scheduler.machine();

  // Global unit indexing is class-major, matching validate_schedule.
  std::vector<int> unit_base(
      static_cast<std::size_t>(machine.num_fu_classes()), 0);
  int total_units = 0;
  for (int c = 0; c < machine.num_fu_classes(); ++c) {
    unit_base[static_cast<std::size_t>(c)] = total_units;
    total_units += machine.fu_count(c);
  }

  Schedule sched(&g, active, total_units);
  std::vector<Time> unit_free(static_cast<std::size_t>(total_units), 0);
  Time t_prev = 0;
  int u_prev = -1;
  int issued_this_cycle = 0;  // issue-width use at cycle t_prev
  const Time t_limit = g.total_work() +
                       static_cast<Time>(list.size() + 1) *
                           (g.max_latency() + 1) +
                       1;

  for (const NodeId id : list) {
    const NodeInfo& info = g.node(id);
    Time est = 0;
    for (const auto eidx : g.in_edges(id)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance == 0 && active.contains(e.from)) {
        AIS_CHECK(sched.placed(e.from),
                  "in-order placement list is not dependence consistent");
        est = std::max(est, sched.completion(e.from) + e.latency);
      }
    }

    Time t = std::max(est, t_prev);
    int unit = -1;
    const int base = unit_base[static_cast<std::size_t>(info.fu_class)];
    while (unit < 0) {
      AIS_CHECK(t <= t_limit, "in-order placement failed to make progress");
      const int width_used = (t == t_prev) ? issued_this_cycle : 0;
      if (width_used < machine.issue_width()) {
        for (int k = 0; k < machine.fu_count(info.fu_class); ++k) {
          const int u = base + k;
          // Same-cycle placements must advance the unit index, or the
          // permutation's (start, unit) sort would swap the pair.
          if (t == t_prev && u <= u_prev) continue;
          if (unit_free[static_cast<std::size_t>(u)] <= t) {
            unit = u;
            break;
          }
        }
      }
      if (unit < 0) ++t;
    }

    sched.place(id, t, unit);
    issued_this_cycle = (t == t_prev) ? issued_this_cycle + 1 : 1;
    unit_free[static_cast<std::size_t>(unit)] = t + info.exec_time;
    t_prev = t;
    u_prev = unit;
  }
  return sched;
}

/// Enforces opts.fill_cap on one merged planning order: afterwards at most
/// `cap` old-suffix instructions follow any new-block instruction, i.e. the
/// incoming block only fills idle slots among the last `cap` retained old
/// instructions.  New nodes packed deeper are relocated — keeping their
/// relative order, and the old nodes' — to just past the cap boundary, and
/// the schedule is rebuilt by order-pinned placement so the bound holds in
/// the final permutation; `deadlines` are raised to the rebuilt completions
/// so downstream passes (chop, the next merge's caps) stay consistent.
/// New nodes with a distance-0 path to a retained old node are pinned in
/// place — relocating them past their old successors would be illegal, so
/// the bound is dependence-limited for them.  A no-op when the suffix
/// already fits the cap, so fill_cap >= |old| behaves exactly like
/// uncapped.
Schedule cap_fill_depth(const RankScheduler& scheduler, Schedule merged,
                        const NodeSet& old_nodes, int cap,
                        DeadlineMap& deadlines) {
  const DepGraph& g = scheduler.graph();
  const std::vector<NodeId> perm = merged.permutation();
  std::size_t old_count = 0;
  for (const NodeId id : perm) {
    if (old_nodes.contains(id)) ++old_count;
  }
  if (old_count <= static_cast<std::size_t>(cap)) return merged;
  const std::size_t prefix_olds = old_count - static_cast<std::size_t>(cap);

  // Distance-0 reachability to an old node (perm is dependence consistent,
  // so one reverse sweep settles the transitive closure).
  std::vector<char> reaches_old(g.num_nodes(), 0);
  for (auto it = perm.rbegin(); it != perm.rend(); ++it) {
    const NodeId id = *it;
    if (old_nodes.contains(id)) {
      reaches_old[id] = 1;
      continue;
    }
    for (const auto eidx : g.out_edges(id)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance == 0 && merged.active().contains(e.to) &&
          reaches_old[e.to] != 0) {
        reaches_old[id] = 1;
        break;
      }
    }
  }

  std::vector<NodeId> legalized;
  legalized.reserve(perm.size());
  std::vector<NodeId> relocated;
  std::size_t olds_seen = 0;
  for (const NodeId id : perm) {
    if (olds_seen < prefix_olds) {
      if (reaches_old[id] != 0) {
        legalized.push_back(id);
        if (old_nodes.contains(id) && ++olds_seen == prefix_olds) {
          legalized.insert(legalized.end(), relocated.begin(),
                           relocated.end());
        }
      } else {
        relocated.push_back(id);
      }
    } else {
      legalized.push_back(id);
    }
  }

  Schedule rebuilt = place_in_list_order(scheduler, merged.active(), legalized);
  for (const NodeId id : legalized) {
    deadlines[id] = std::max(deadlines[id], rebuilt.completion(id));
  }
  return rebuilt;
}

}  // namespace

std::vector<NodeId> LookaheadResult::priority_list() const {
  std::vector<NodeId> list;
  for (const auto& sub : per_block) {
    list.insert(list.end(), sub.begin(), sub.end());
  }
  return list;
}

std::vector<NodeSet> blocks_of(const DepGraph& g) {
  int max_block = -1;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    max_block = std::max(max_block, g.node(id).block);
  }
  std::vector<NodeSet> blocks(static_cast<std::size_t>(max_block + 1),
                              NodeSet(g.num_nodes()));
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    blocks[static_cast<std::size_t>(g.node(id).block)].insert(id);
  }
  return blocks;
}

LookaheadResult schedule_trace(const RankScheduler& scheduler,
                               const std::vector<NodeSet>& blocks,
                               const LookaheadOptions& opts) {
  AIS_OBS_SPAN("lookahead");
  const DepGraph& g = scheduler.graph();
  AIS_CHECK(!blocks.empty(), "trace needs at least one block");
  AIS_CHECK(opts.window >= 1, "window must be positive");

  const Time huge =
      opts.huge > 0 ? opts.huge : huge_deadline(g, NodeSet::all(g.num_nodes()));

  // The schedule cache memoizes this function at two granularities: the
  // whole trace and single Lookahead iterations (so repeated bodies hit even
  // inside one cold trace).  Hits are byte-identical to a fresh solve —
  // keys only match monotone relabelings of the same instance, and the
  // recorded counter deltas are replayed — so everything below the probes
  // is the unchanged algorithm.
  ScheduleCache* cache = ScheduleCache::active();
  CacheInstanceParams params;
  params.machine = &scheduler.machine();
  params.window = opts.window;
  params.huge = huge;
  params.delay_idle = opts.delay_idle;
  params.merge_deadline_caps = opts.merge_deadline_caps;
  params.do_chop = opts.do_chop;
  params.split_long_ops = opts.rank.split_long_ops;
  params.tie_break = &opts.rank.tie_break;
  params.fill_cap = opts.fill_cap;
  // opts.jobs / opts.preschedule are deliberately absent from the key: the
  // substrate pipeline never changes the answer, so cache entries are
  // shared across every --jobs value.

  LookaheadResult out;
  bool solved_from_cache = false;
  CacheKey trace_key;
  if (cache != nullptr) {
    trace_key = build_trace_key(g, blocks, params);
    if (std::optional<TraceCacheValue> hit = cache->lookup_trace(trace_key)) {
      out.order.reserve(hit->order.size());
      for (const std::uint32_t dense : hit->order) {
        out.order.push_back(trace_key.ids[dense]);
      }
      out.diag.merged_makespans = std::move(hit->merged_makespans);
      out.diag.prefixes_emitted = hit->prefixes_emitted;
      obs::CounterRecorder::replay(hit->counter_deltas);
      obs::CounterRecorder::replay_values(hit->value_samples);
      solved_from_cache = true;
    }
  }

  if (!solved_from_cache) {
    obs::CounterRecorder trace_rec(cache != nullptr);
    AIS_OBS_COUNT(obs::ctr::kLookaheadBlocks, blocks.size());

    // Cold path: fan the per-block substrate work out over a pool while the
    // serial chain below consumes it.  Only worth spinning up when merges
    // will actually run (the ablation path schedules from scratch and the
    // trace-cache hit above never reaches here).
    const int jobs = clamp_jobs(opts.jobs);
    std::optional<BlockPrescheduler> presched;
    if (opts.preschedule && jobs > 1 && opts.merge_deadline_caps) {
      presched.emplace(scheduler, blocks, huge, opts.rank, jobs);
    }

    NodeSet old(g.num_nodes());
    DeadlineMap deadlines = uniform_deadlines(g, huge);
    Time t_old = 0;
    // The final suffix in its schedule order, refreshed every iteration;
    // appended to the emitted prefixes after the loop.
    std::vector<NodeId> last_suffix_order;

    for (std::size_t block_index = 0; block_index < blocks.size();
         ++block_index) {
      const NodeSet& new_nodes = blocks[block_index];
      if (new_nodes.empty()) continue;

      CacheKey step_key;
      bool step_hit = false;
      if (cache != nullptr) {
        step_key = build_step_key(g, old, new_nodes, deadlines, t_old, params);
        if (std::optional<StepCacheValue> hit = cache->lookup_step(step_key)) {
          for (const std::uint32_t dense : hit->emitted) {
            out.order.push_back(step_key.ids[dense]);
          }
          if (!hit->emitted.empty()) ++out.diag.prefixes_emitted;
          NodeSet suffix(g.num_nodes());
          last_suffix_order.clear();
          for (std::size_t i = 0; i < hit->suffix_order.size(); ++i) {
            const NodeId id = step_key.ids[hit->suffix_order[i]];
            suffix.insert(id);
            last_suffix_order.push_back(id);
            deadlines[id] = hit->suffix_deadlines[i];
          }
          // Deadlines of just-emitted nodes go stale here relative to a
          // fresh solve; nothing reads them again and later step keys only
          // serialize live (old ∪ new) nodes, so the divergence is inert.
          old = std::move(suffix);
          t_old = hit->suffix_makespan;
          out.diag.merged_makespans.push_back(hit->merged_makespan);
          obs::CounterRecorder::replay(hit->counter_deltas);
          obs::CounterRecorder::replay_values(hit->value_samples);
          step_hit = true;
        }
      }
      if (step_hit) continue;

      obs::CounterRecorder step_rec(cache != nullptr);
      const std::size_t emitted_before = out.order.size();

      Schedule merged(&g, NodeSet(g.num_nodes()), 1);
      if (opts.merge_deadline_caps) {
        MergeSeed seed;
        MergeSeed* seed_ptr = nullptr;
        if (presched.has_value()) {
          BlockPrescheduler::Substrate& sub = presched->take(block_index);
          seed.session = sub.session.get();
          seed.standalone = &*sub.standalone;
          seed.huge = huge;
          seed_ptr = &seed;
        }
        // Graft latency: how long the serial chain spends consuming one
        // prescheduled substrate.  A wall-clock ("time.") histogram, so it
        // never enters the step recorder or a cache value.
        const std::int64_t graft_start_us =
            seed_ptr != nullptr && obs::enabled() ? Stopwatch::now_us() : -1;
        MergeResult m = merge_blocks(scheduler, old, new_nodes, deadlines,
                                     t_old, huge, opts.rank, seed_ptr);
        if (graft_start_us >= 0) {
          AIS_OBS_VALUE(obs::hist::kGraftUs,
                        static_cast<std::uint64_t>(Stopwatch::now_us() -
                                                   graft_start_us));
        }
        deadlines = std::move(m.deadlines);
        merged = std::move(m.schedule);
      } else {
        // Ablation: schedule the whole live set fresh, no displacement
        // protection for old nodes.
        const NodeSet cur = set_union(old, new_nodes);
        DeadlineMap flat = uniform_deadlines(g, huge);
        RankResult r = scheduler.run(cur, flat, opts.rank);
        AIS_CHECK(r.feasible, "unconstrained schedule must be feasible");
        for (const NodeId id : cur.ids()) flat[id] = r.makespan;
        deadlines = std::move(flat);
        merged = std::move(r.schedule);
      }

      if (opts.delay_idle) {
        merged = delay_idle_slots(scheduler, std::move(merged), deadlines,
                                  opts.rank);
      }
      if (opts.fill_cap > 0 && !old.empty()) {
        merged = cap_fill_depth(scheduler, std::move(merged), old,
                                opts.fill_cap, deadlines);
      }
      out.diag.merged_makespans.push_back(merged.makespan());

      if (opts.do_chop) {
        ChopResult c = chop(merged, deadlines, opts.window);
        out.order.insert(out.order.end(), c.emitted.begin(), c.emitted.end());
        if (!c.emitted.empty()) ++out.diag.prefixes_emitted;
        // Deterministic shape distribution (no "time." prefix): recorded
        // into the step value below and replayed on hits, so cached and
        // fresh runs report identical prefix-length histograms.
        AIS_OBS_VALUE(obs::hist::kChopPrefixLen, c.emitted.size());
        old = std::move(c.suffix);
        t_old = c.suffix_makespan;
        // Rebase the retained suffix schedule implicitly: the next merge
        // re-schedules `old` from its deadlines, so only the node set, the
        // deadlines (already rebased by chop) and t_old carry forward.
      } else {
        old = merged.active();
        t_old = merged.makespan();
      }
      last_suffix_order.clear();
      for (const NodeId id : merged.permutation()) {
        if (old.contains(id)) last_suffix_order.push_back(id);
      }

      if (cache != nullptr) {
        StepCacheValue value;
        value.emitted.reserve(out.order.size() - emitted_before);
        for (std::size_t i = emitted_before; i < out.order.size(); ++i) {
          value.emitted.push_back(dense_index(step_key, out.order[i]));
        }
        value.suffix_order.reserve(last_suffix_order.size());
        value.suffix_deadlines.reserve(last_suffix_order.size());
        for (const NodeId id : last_suffix_order) {
          value.suffix_order.push_back(dense_index(step_key, id));
          value.suffix_deadlines.push_back(deadlines[id]);
        }
        value.suffix_makespan = t_old;
        value.merged_makespan = out.diag.merged_makespans.back();
        value.counter_deltas = step_rec.deltas();
        value.value_samples = step_rec.value_samples();
        cache->insert_step(step_key, value);
      }
    }

    // Emit the final suffix in its schedule order.
    out.order.insert(out.order.end(), last_suffix_order.begin(),
                     last_suffix_order.end());

    if (cache != nullptr) {
      TraceCacheValue value;
      value.order.reserve(out.order.size());
      for (const NodeId id : out.order) {
        value.order.push_back(dense_index(trace_key, id));
      }
      value.merged_makespans = out.diag.merged_makespans;
      value.prefixes_emitted = out.diag.prefixes_emitted;
      value.counter_deltas = trace_rec.deltas();
      value.value_samples = trace_rec.value_samples();
      cache->insert_trace(trace_key, value);
    }
  }

  AIS_CHECK(out.order.size() == [&] {
    std::size_t n = 0;
    for (const auto& b : blocks) n += b.size();
    return n;
  }(), "lookahead must emit every instruction exactly once");

  // Quantify the ROADMAP `window-span` open item: how often does the
  // planning order promise overlap deeper than the hardware window?  Only
  // measured under telemetry — the linear scan is off the disabled path.
  // Runs outside the cache's counter recording on hit and miss paths alike,
  // so cached entries never need to carry it.
#if AIS_OBS_ENABLED
  if (obs::enabled()) {
    out.diag.max_inversion_span = max_inversion_span(g, out.order).span;
    obs::count(obs::ctr::kWindowSpanOverW,
               out.diag.max_inversion_span >
                       static_cast<std::size_t>(opts.window)
                   ? 1
                   : 0);
  }
#endif

  out.per_block.assign(blocks.size(), {});
  for (const NodeId id : out.order) {
    const int b = g.node(id).block;
    AIS_CHECK(b >= 0 && b < static_cast<int>(blocks.size()),
              "node block index out of range");
    AIS_CHECK(blocks[static_cast<std::size_t>(b)].contains(id),
              "node emitted into the wrong block");
    out.per_block[static_cast<std::size_t>(b)].push_back(id);
  }
  return out;
}

LookaheadResult schedule_trace(const RankScheduler& scheduler,
                               const LookaheadOptions& opts) {
  return schedule_trace(scheduler, blocks_of(scheduler.graph()), opts);
}

}  // namespace ais
