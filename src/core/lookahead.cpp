#include "core/lookahead.hpp"

#include <algorithm>

#include "core/chop.hpp"
#include "core/legality.hpp"
#include "core/merge.hpp"
#include "core/move_idle.hpp"
#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace ais {

std::vector<NodeId> LookaheadResult::priority_list() const {
  std::vector<NodeId> list;
  for (const auto& sub : per_block) {
    list.insert(list.end(), sub.begin(), sub.end());
  }
  return list;
}

std::vector<NodeSet> blocks_of(const DepGraph& g) {
  int max_block = -1;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    max_block = std::max(max_block, g.node(id).block);
  }
  std::vector<NodeSet> blocks(static_cast<std::size_t>(max_block + 1),
                              NodeSet(g.num_nodes()));
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    blocks[static_cast<std::size_t>(g.node(id).block)].insert(id);
  }
  return blocks;
}

LookaheadResult schedule_trace(const RankScheduler& scheduler,
                               const std::vector<NodeSet>& blocks,
                               const LookaheadOptions& opts) {
  AIS_OBS_SPAN("lookahead");
  const DepGraph& g = scheduler.graph();
  AIS_CHECK(!blocks.empty(), "trace needs at least one block");
  AIS_CHECK(opts.window >= 1, "window must be positive");
  AIS_OBS_COUNT(obs::ctr::kLookaheadBlocks, blocks.size());

  const Time huge =
      opts.huge > 0 ? opts.huge : huge_deadline(g, NodeSet::all(g.num_nodes()));

  LookaheadResult out;
  NodeSet old(g.num_nodes());
  DeadlineMap deadlines = uniform_deadlines(g, huge);
  Time t_old = 0;

  auto append_suffix = [&](const Schedule& s, const NodeSet& suffix) {
    // Suffix nodes in schedule order.
    std::vector<NodeId> tail;
    for (const NodeId id : s.permutation()) {
      if (suffix.contains(id)) tail.push_back(id);
    }
    out.order.insert(out.order.end(), tail.begin(), tail.end());
  };

  Schedule last_schedule(&g, NodeSet(g.num_nodes()), 1);
  for (const NodeSet& new_nodes : blocks) {
    if (new_nodes.empty()) continue;

    Schedule merged(&g, NodeSet(g.num_nodes()), 1);
    if (opts.merge_deadline_caps) {
      MergeResult m = merge_blocks(scheduler, old, new_nodes, deadlines, t_old,
                                   huge, opts.rank);
      deadlines = std::move(m.deadlines);
      merged = std::move(m.schedule);
    } else {
      // Ablation: schedule the whole live set fresh, no displacement
      // protection for old nodes.
      const NodeSet cur = set_union(old, new_nodes);
      DeadlineMap flat = uniform_deadlines(g, huge);
      RankResult r = scheduler.run(cur, flat, opts.rank);
      AIS_CHECK(r.feasible, "unconstrained schedule must be feasible");
      for (const NodeId id : cur.ids()) flat[id] = r.makespan;
      deadlines = std::move(flat);
      merged = std::move(r.schedule);
    }

    if (opts.delay_idle) {
      merged = delay_idle_slots(scheduler, std::move(merged), deadlines,
                                opts.rank);
    }
    out.diag.merged_makespans.push_back(merged.makespan());

    if (opts.do_chop) {
      ChopResult c = chop(merged, deadlines, opts.window);
      out.order.insert(out.order.end(), c.emitted.begin(), c.emitted.end());
      if (!c.emitted.empty()) ++out.diag.prefixes_emitted;
      old = std::move(c.suffix);
      t_old = c.suffix_makespan;
      // Rebase the retained suffix schedule implicitly: the next merge
      // re-schedules `old` from its deadlines, so only the node set, the
      // deadlines (already rebased by chop) and t_old carry forward.
    } else {
      old = merged.active();
      t_old = merged.makespan();
    }
    last_schedule = std::move(merged);
  }

  // Emit the final suffix in its schedule order.
  append_suffix(last_schedule, old);

  AIS_CHECK(out.order.size() == [&] {
    std::size_t n = 0;
    for (const auto& b : blocks) n += b.size();
    return n;
  }(), "lookahead must emit every instruction exactly once");

  // Quantify the ROADMAP `window-span` open item: how often does the
  // planning order promise overlap deeper than the hardware window?  Only
  // measured under telemetry — the linear scan is off the disabled path.
#if AIS_OBS_ENABLED
  if (obs::enabled()) {
    out.diag.max_inversion_span = max_inversion_span(g, out.order).span;
    obs::count(obs::ctr::kWindowSpanOverW,
               out.diag.max_inversion_span >
                       static_cast<std::size_t>(opts.window)
                   ? 1
                   : 0);
  }
#endif

  out.per_block.assign(blocks.size(), {});
  for (const NodeId id : out.order) {
    const int b = g.node(id).block;
    AIS_CHECK(b >= 0 && b < static_cast<int>(blocks.size()),
              "node block index out of range");
    AIS_CHECK(blocks[static_cast<std::size_t>(b)].contains(id),
              "node emitted into the wrong block");
    out.per_block[static_cast<std::size_t>(b)].push_back(id);
  }
  return out;
}

LookaheadResult schedule_trace(const RankScheduler& scheduler,
                               const LookaheadOptions& opts) {
  return schedule_trace(scheduler, blocks_of(scheduler.graph()), opts);
}

}  // namespace ais
