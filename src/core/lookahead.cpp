#include "core/lookahead.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>

#include "core/chop.hpp"
#include "core/legality.hpp"
#include "core/merge.hpp"
#include "core/move_idle.hpp"
#include "core/schedule_cache.hpp"
#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace ais {
namespace {

/// Dense id of `id` within `key` (key.ids is ascending).
std::uint32_t dense_index(const CacheKey& key, NodeId id) {
  const auto it = std::lower_bound(key.ids.begin(), key.ids.end(), id);
  AIS_CHECK(it != key.ids.end() && *it == id,
            "scheduled node missing from its cache key");
  return static_cast<std::uint32_t>(it - key.ids.begin());
}

}  // namespace

std::vector<NodeId> LookaheadResult::priority_list() const {
  std::vector<NodeId> list;
  for (const auto& sub : per_block) {
    list.insert(list.end(), sub.begin(), sub.end());
  }
  return list;
}

std::vector<NodeSet> blocks_of(const DepGraph& g) {
  int max_block = -1;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    max_block = std::max(max_block, g.node(id).block);
  }
  std::vector<NodeSet> blocks(static_cast<std::size_t>(max_block + 1),
                              NodeSet(g.num_nodes()));
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    blocks[static_cast<std::size_t>(g.node(id).block)].insert(id);
  }
  return blocks;
}

LookaheadResult schedule_trace(const RankScheduler& scheduler,
                               const std::vector<NodeSet>& blocks,
                               const LookaheadOptions& opts) {
  AIS_OBS_SPAN("lookahead");
  const DepGraph& g = scheduler.graph();
  AIS_CHECK(!blocks.empty(), "trace needs at least one block");
  AIS_CHECK(opts.window >= 1, "window must be positive");

  const Time huge =
      opts.huge > 0 ? opts.huge : huge_deadline(g, NodeSet::all(g.num_nodes()));

  // The schedule cache memoizes this function at two granularities: the
  // whole trace and single Lookahead iterations (so repeated bodies hit even
  // inside one cold trace).  Hits are byte-identical to a fresh solve —
  // keys only match monotone relabelings of the same instance, and the
  // recorded counter deltas are replayed — so everything below the probes
  // is the unchanged algorithm.
  ScheduleCache* cache = ScheduleCache::active();
  CacheInstanceParams params;
  params.machine = &scheduler.machine();
  params.window = opts.window;
  params.huge = huge;
  params.delay_idle = opts.delay_idle;
  params.merge_deadline_caps = opts.merge_deadline_caps;
  params.do_chop = opts.do_chop;
  params.split_long_ops = opts.rank.split_long_ops;
  params.tie_break = &opts.rank.tie_break;

  LookaheadResult out;
  bool solved_from_cache = false;
  CacheKey trace_key;
  if (cache != nullptr) {
    trace_key = build_trace_key(g, blocks, params);
    if (std::optional<TraceCacheValue> hit = cache->lookup_trace(trace_key)) {
      out.order.reserve(hit->order.size());
      for (const std::uint32_t dense : hit->order) {
        out.order.push_back(trace_key.ids[dense]);
      }
      out.diag.merged_makespans = std::move(hit->merged_makespans);
      out.diag.prefixes_emitted = hit->prefixes_emitted;
      obs::CounterRecorder::replay(hit->counter_deltas);
      solved_from_cache = true;
    }
  }

  if (!solved_from_cache) {
    obs::CounterRecorder trace_rec(cache != nullptr);
    AIS_OBS_COUNT(obs::ctr::kLookaheadBlocks, blocks.size());

    NodeSet old(g.num_nodes());
    DeadlineMap deadlines = uniform_deadlines(g, huge);
    Time t_old = 0;
    // The final suffix in its schedule order, refreshed every iteration;
    // appended to the emitted prefixes after the loop.
    std::vector<NodeId> last_suffix_order;

    for (const NodeSet& new_nodes : blocks) {
      if (new_nodes.empty()) continue;

      CacheKey step_key;
      bool step_hit = false;
      if (cache != nullptr) {
        step_key = build_step_key(g, old, new_nodes, deadlines, t_old, params);
        if (std::optional<StepCacheValue> hit = cache->lookup_step(step_key)) {
          for (const std::uint32_t dense : hit->emitted) {
            out.order.push_back(step_key.ids[dense]);
          }
          if (!hit->emitted.empty()) ++out.diag.prefixes_emitted;
          NodeSet suffix(g.num_nodes());
          last_suffix_order.clear();
          for (std::size_t i = 0; i < hit->suffix_order.size(); ++i) {
            const NodeId id = step_key.ids[hit->suffix_order[i]];
            suffix.insert(id);
            last_suffix_order.push_back(id);
            deadlines[id] = hit->suffix_deadlines[i];
          }
          // Deadlines of just-emitted nodes go stale here relative to a
          // fresh solve; nothing reads them again and later step keys only
          // serialize live (old ∪ new) nodes, so the divergence is inert.
          old = std::move(suffix);
          t_old = hit->suffix_makespan;
          out.diag.merged_makespans.push_back(hit->merged_makespan);
          obs::CounterRecorder::replay(hit->counter_deltas);
          step_hit = true;
        }
      }
      if (step_hit) continue;

      obs::CounterRecorder step_rec(cache != nullptr);
      const std::size_t emitted_before = out.order.size();

      Schedule merged(&g, NodeSet(g.num_nodes()), 1);
      if (opts.merge_deadline_caps) {
        MergeResult m = merge_blocks(scheduler, old, new_nodes, deadlines,
                                     t_old, huge, opts.rank);
        deadlines = std::move(m.deadlines);
        merged = std::move(m.schedule);
      } else {
        // Ablation: schedule the whole live set fresh, no displacement
        // protection for old nodes.
        const NodeSet cur = set_union(old, new_nodes);
        DeadlineMap flat = uniform_deadlines(g, huge);
        RankResult r = scheduler.run(cur, flat, opts.rank);
        AIS_CHECK(r.feasible, "unconstrained schedule must be feasible");
        for (const NodeId id : cur.ids()) flat[id] = r.makespan;
        deadlines = std::move(flat);
        merged = std::move(r.schedule);
      }

      if (opts.delay_idle) {
        merged = delay_idle_slots(scheduler, std::move(merged), deadlines,
                                  opts.rank);
      }
      out.diag.merged_makespans.push_back(merged.makespan());

      if (opts.do_chop) {
        ChopResult c = chop(merged, deadlines, opts.window);
        out.order.insert(out.order.end(), c.emitted.begin(), c.emitted.end());
        if (!c.emitted.empty()) ++out.diag.prefixes_emitted;
        old = std::move(c.suffix);
        t_old = c.suffix_makespan;
        // Rebase the retained suffix schedule implicitly: the next merge
        // re-schedules `old` from its deadlines, so only the node set, the
        // deadlines (already rebased by chop) and t_old carry forward.
      } else {
        old = merged.active();
        t_old = merged.makespan();
      }
      last_suffix_order.clear();
      for (const NodeId id : merged.permutation()) {
        if (old.contains(id)) last_suffix_order.push_back(id);
      }

      if (cache != nullptr) {
        StepCacheValue value;
        value.emitted.reserve(out.order.size() - emitted_before);
        for (std::size_t i = emitted_before; i < out.order.size(); ++i) {
          value.emitted.push_back(dense_index(step_key, out.order[i]));
        }
        value.suffix_order.reserve(last_suffix_order.size());
        value.suffix_deadlines.reserve(last_suffix_order.size());
        for (const NodeId id : last_suffix_order) {
          value.suffix_order.push_back(dense_index(step_key, id));
          value.suffix_deadlines.push_back(deadlines[id]);
        }
        value.suffix_makespan = t_old;
        value.merged_makespan = out.diag.merged_makespans.back();
        value.counter_deltas = step_rec.deltas();
        cache->insert_step(step_key, value);
      }
    }

    // Emit the final suffix in its schedule order.
    out.order.insert(out.order.end(), last_suffix_order.begin(),
                     last_suffix_order.end());

    if (cache != nullptr) {
      TraceCacheValue value;
      value.order.reserve(out.order.size());
      for (const NodeId id : out.order) {
        value.order.push_back(dense_index(trace_key, id));
      }
      value.merged_makespans = out.diag.merged_makespans;
      value.prefixes_emitted = out.diag.prefixes_emitted;
      value.counter_deltas = trace_rec.deltas();
      cache->insert_trace(trace_key, value);
    }
  }

  AIS_CHECK(out.order.size() == [&] {
    std::size_t n = 0;
    for (const auto& b : blocks) n += b.size();
    return n;
  }(), "lookahead must emit every instruction exactly once");

  // Quantify the ROADMAP `window-span` open item: how often does the
  // planning order promise overlap deeper than the hardware window?  Only
  // measured under telemetry — the linear scan is off the disabled path.
  // Runs outside the cache's counter recording on hit and miss paths alike,
  // so cached entries never need to carry it.
#if AIS_OBS_ENABLED
  if (obs::enabled()) {
    out.diag.max_inversion_span = max_inversion_span(g, out.order).span;
    obs::count(obs::ctr::kWindowSpanOverW,
               out.diag.max_inversion_span >
                       static_cast<std::size_t>(opts.window)
                   ? 1
                   : 0);
  }
#endif

  out.per_block.assign(blocks.size(), {});
  for (const NodeId id : out.order) {
    const int b = g.node(id).block;
    AIS_CHECK(b >= 0 && b < static_cast<int>(blocks.size()),
              "node block index out of range");
    AIS_CHECK(blocks[static_cast<std::size_t>(b)].contains(id),
              "node emitted into the wrong block");
    out.per_block[static_cast<std::size_t>(b)].push_back(id);
  }
  return out;
}

LookaheadResult schedule_trace(const RankScheduler& scheduler,
                               const LookaheadOptions& opts) {
  return schedule_trace(scheduler, blocks_of(scheduler.graph()), opts);
}

}  // namespace ais
