// Whole-program driver: profile-guided trace formation + anticipatory
// scheduling of every trace, preserving code layout.
//
// This is the end-to-end story the paper tells: form traces from the CFG
// (as trace scheduling does, §6), but instead of moving instructions across
// blocks, reorder *within* each block so the hardware window overlaps the
// trace at run time — safe on off-trace paths by construction, and
// serviceable because every instruction stays in its home block.
#pragma once

#include <vector>

#include "cfg/cfg.hpp"
#include "cfg/trace_select.hpp"
#include "driver/anticipatory.hpp"
#include "verify/report.hpp"

namespace ais {

struct CompiledProgram {
  /// The program with every block's instructions reordered in place (block
  /// order and labels untouched).
  Program program;
  /// The traces that were formed and scheduled, heaviest first.
  std::vector<SelectedTrace> traces;
  /// Simulated completion of the hottest trace's emitted code before and
  /// after anticipatory scheduling, at the window used.
  Time hot_trace_cycles_before = 0;
  Time hot_trace_cycles_after = 0;
  int window = 0;
  /// Oracle findings when compiled with `verify` set (empty otherwise).
  verify::Report verification;
};

/// Compiles `cfg.program()` for `machine`: select traces by profile,
/// schedule each trace anticipatorily, reassemble.  `window` = 0 uses the
/// machine default.  With `verify` set, every scheduled trace is re-checked
/// by the independent oracle and findings land in
/// CompiledProgram::verification.
///
/// `jobs` compiles that many traces concurrently (<= 0 = one per hardware
/// thread).  Traces partition the CFG's blocks disjointly, so per-trace
/// results are independent; they are folded back in trace order, making the
/// output — program, diagnostics, verification report — identical at every
/// job count.
CompiledProgram compile_program(const Cfg& cfg, const MachineModel& machine,
                                int window = 0, bool verify = false,
                                int jobs = 1);

}  // namespace ais
