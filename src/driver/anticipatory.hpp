// Facade: the one-call interface a compiler backend would use.
//
// Wraps the whole pipeline — dependence analysis, Algorithm Lookahead for
// traces (§4), the wrap-around step for multi-block loop bodies (§5.1) and
// the candidate search for single-block loops (§5.2) — behind `schedule`
// overloads that take IR and return reordered IR with diagnostics attached.
#pragma once

#include <vector>

#include "core/lookahead.hpp"
#include "ir/depbuild.hpp"
#include "ir/instruction.hpp"
#include "machine/machine_model.hpp"
#include "verify/verify.hpp"

namespace ais {

/// Result of scheduling a trace: reordered blocks (same labels, same
/// instruction multisets — nothing crosses a block boundary) plus the
/// dependence graph and per-iteration diagnostics for inspection.
struct ScheduledTrace {
  std::vector<BasicBlock> blocks;
  DepGraph graph;
  LookaheadResult detail;
  int window = 0;

  /// Simulated completion of the emitted code on the lookahead machine.
  Time simulated_cycles(const MachineModel& machine) const;
};

/// Result of scheduling a loop body.
struct ScheduledLoop {
  std::vector<BasicBlock> blocks;
  DepGraph graph;
  /// Steady-state cycles per iteration of the selected schedule.
  double cycles_per_iteration = 0;
  int window = 0;
};

/// Anticipatorily schedules `trace` for `machine`.  `window` = 0 uses the
/// machine's default lookahead window.  `jobs` > 1 pre-schedules block
/// substrates on that many pool workers (LookaheadOptions::jobs); the
/// output is byte-identical at every jobs value.
ScheduledTrace schedule(const Trace& trace, const MachineModel& machine,
                        int window = 0, const DepBuildOptions& deps = {},
                        int jobs = 1);

/// Anticipatorily schedules the body of `loop`: §5.2.3 for a single block,
/// §5.1 (Algorithm Lookahead + wrap-around clone) for multi-block bodies.
ScheduledLoop schedule(const Loop& loop, const MachineModel& machine,
                       int window = 0, const DepBuildOptions& deps = {});

/// Runs the independent static-analysis oracle (src/verify) over a
/// scheduling result: emitted-code legality against dependences re-derived
/// from `original`'s IR, plus the planning-order window constraint.
/// `check_optimality` additionally certifies completion time on restricted
/// machines (brute-force cross-check; keep inputs small).
verify::Report verify_schedule(const Trace& original,
                               const ScheduledTrace& scheduled,
                               const MachineModel& machine,
                               bool check_optimality = false);

/// Loop variant: emitted-code legality of the reordered body (the window
/// constraint and optimality certificate do not apply to steady state).
verify::Report verify_schedule(const Loop& original,
                               const ScheduledLoop& scheduled,
                               const MachineModel& machine);

}  // namespace ais
