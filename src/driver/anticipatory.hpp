// Facade: the one-call interface a compiler backend would use.
//
// Wraps the whole pipeline — dependence analysis, Algorithm Lookahead for
// traces (§4), the wrap-around step for multi-block loop bodies (§5.1) and
// the candidate search for single-block loops (§5.2) — behind `schedule`
// overloads that take IR and return reordered IR with diagnostics attached.
#pragma once

#include <vector>

#include "core/lookahead.hpp"
#include "ir/depbuild.hpp"
#include "ir/instruction.hpp"
#include "machine/machine_model.hpp"

namespace ais {

/// Result of scheduling a trace: reordered blocks (same labels, same
/// instruction multisets — nothing crosses a block boundary) plus the
/// dependence graph and per-iteration diagnostics for inspection.
struct ScheduledTrace {
  std::vector<BasicBlock> blocks;
  DepGraph graph;
  LookaheadResult detail;
  int window = 0;

  /// Simulated completion of the emitted code on the lookahead machine.
  Time simulated_cycles(const MachineModel& machine) const;
};

/// Result of scheduling a loop body.
struct ScheduledLoop {
  std::vector<BasicBlock> blocks;
  DepGraph graph;
  /// Steady-state cycles per iteration of the selected schedule.
  double cycles_per_iteration = 0;
  int window = 0;
};

/// Anticipatorily schedules `trace` for `machine`.  `window` = 0 uses the
/// machine's default lookahead window.
ScheduledTrace schedule(const Trace& trace, const MachineModel& machine,
                        int window = 0, const DepBuildOptions& deps = {});

/// Anticipatorily schedules the body of `loop`: §5.2.3 for a single block,
/// §5.1 (Algorithm Lookahead + wrap-around clone) for multi-block bodies.
ScheduledLoop schedule(const Loop& loop, const MachineModel& machine,
                       int window = 0, const DepBuildOptions& deps = {});

}  // namespace ais
