#include "driver/anticipatory.hpp"

#include "core/loop_single.hpp"
#include "core/loop_trace.hpp"
#include "obs/obs.hpp"
#include "sim/lookahead_sim.hpp"
#include "sim/loop_sim.hpp"
#include "support/assert.hpp"

namespace ais {
namespace {

/// Reassembles per-block instruction orders into BasicBlocks.  Node id i is
/// instruction i in trace emission order (blocks concatenated), which is
/// how the dependence builder numbers them.
std::vector<BasicBlock> reorder_blocks(
    const Trace& trace, const std::vector<std::vector<NodeId>>& per_block) {
  AIS_OBS_SPAN("emit");
  // Flatten the original instructions in numbering order.
  std::vector<const Instruction*> flat;
  for (const BasicBlock& bb : trace.blocks) {
    for (const Instruction& inst : bb.insts) flat.push_back(&inst);
  }

  std::vector<BasicBlock> out;
  AIS_CHECK(per_block.size() == trace.blocks.size(),
            "per-block orders do not match the trace");
  for (std::size_t b = 0; b < per_block.size(); ++b) {
    BasicBlock bb;
    bb.label = trace.blocks[b].label;
    for (const NodeId id : per_block[b]) {
      AIS_CHECK(id < flat.size(), "node id out of range");
      bb.insts.push_back(*flat[id]);
    }
    AIS_CHECK(bb.insts.size() == trace.blocks[b].insts.size(),
              "scheduled block lost or gained instructions");
    out.push_back(std::move(bb));
  }
  return out;
}

int resolve_window(const MachineModel& machine, int window) {
  AIS_CHECK(window >= 0, "window must be nonnegative");
  return window == 0 ? machine.default_window() : window;
}

}  // namespace

Time ScheduledTrace::simulated_cycles(const MachineModel& machine) const {
  return simulated_completion(graph, machine, detail.priority_list(), window);
}

ScheduledTrace schedule(const Trace& trace, const MachineModel& machine,
                        int window, const DepBuildOptions& deps, int jobs) {
  AIS_OBS_SPAN("compile.trace");
  AIS_OBS_TIMER(obs::hist::kCompileTraceUs);
  const int w = resolve_window(machine, window);
  DepGraph g = [&] {
    AIS_OBS_SPAN("deps");
    return build_trace_graph(trace, machine, deps);
  }();
  const RankScheduler scheduler(g, machine);
  LookaheadOptions opts;
  opts.window = w;
  opts.jobs = jobs;
  LookaheadResult detail = schedule_trace(scheduler, opts);

  ScheduledTrace out{
      .blocks = reorder_blocks(trace, detail.per_block),
      .graph = std::move(g),
      .detail = std::move(detail),
      .window = w,
  };
  return out;
}

verify::Report verify_schedule(const Trace& original,
                               const ScheduledTrace& scheduled,
                               const MachineModel& machine,
                               bool check_optimality) {
  AIS_OBS_SPAN("verify");
  verify::VerifyOptions opts;
  opts.window = scheduled.window;
  opts.check_optimality = check_optimality;
  verify::Report report = verify::check_emitted(
      original, Trace{scheduled.blocks}, machine, opts);
  report.merge(verify::check_planning(scheduled.graph, scheduled.detail.order,
                                      scheduled.detail.per_block,
                                      scheduled.window));
  return report;
}

verify::Report verify_schedule(const Loop& original,
                               const ScheduledLoop& scheduled,
                               const MachineModel& machine) {
  AIS_OBS_SPAN("verify");
  verify::VerifyOptions opts;
  opts.window = scheduled.window;
  return verify::check_emitted(original.body, Trace{scheduled.blocks}, machine,
                               opts);
}

ScheduledLoop schedule(const Loop& loop, const MachineModel& machine,
                       int window, const DepBuildOptions& deps) {
  AIS_OBS_SPAN("compile.loop");
  AIS_OBS_TIMER(obs::hist::kCompileLoopUs);
  const int w = resolve_window(machine, window);
  DepGraph g = [&] {
    AIS_OBS_SPAN("deps");
    return build_loop_graph(loop, machine, deps);
  }();

  std::vector<std::vector<NodeId>> per_block;
  std::vector<NodeId> iteration_list;
  if (loop.body.blocks.size() == 1) {
    const auto evaluator = [&](const std::vector<NodeId>& order) {
      return steady_state_period(g, machine, order, w);
    };
    LoopSingleOptions opts;
    const LoopCandidate best =
        schedule_single_block_loop(g, machine, evaluator, opts);
    per_block.push_back(best.order);
    iteration_list = best.order;
  } else {
    LookaheadOptions opts;
    opts.window = w;
    const LookaheadResult res = schedule_loop_trace(g, machine, opts);
    per_block = res.per_block;
    iteration_list = res.priority_list();
  }

  ScheduledLoop out{
      .blocks = reorder_blocks(loop.body, per_block),
      .graph = std::move(g),
      .cycles_per_iteration = 0,
      .window = w,
  };
  out.cycles_per_iteration =
      steady_state_period(out.graph, machine, iteration_list, w);
  return out;
}

}  // namespace ais
