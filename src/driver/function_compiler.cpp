#include "driver/function_compiler.hpp"

#include "baselines/block_schedulers.hpp"
#include "ir/depbuild.hpp"
#include "obs/obs.hpp"
#include "sim/lookahead_sim.hpp"
#include "support/assert.hpp"

namespace ais {

CompiledProgram compile_program(const Cfg& cfg, const MachineModel& machine,
                                int window, bool verify) {
  AIS_OBS_SPAN("compile.program");
  const int w = window == 0 ? machine.default_window() : window;

  CompiledProgram out;
  out.program = cfg.program();
  {
    AIS_OBS_SPAN("trace_select");
    out.traces = select_traces(cfg);
  }
  out.window = w;

  for (std::size_t t = 0; t < out.traces.size(); ++t) {
    const SelectedTrace& selected = out.traces[t];
    const Trace trace = materialize(cfg, selected);

    const ScheduledTrace scheduled = schedule(trace, machine, w);
    AIS_CHECK(scheduled.blocks.size() == selected.blocks.size(),
              "scheduled trace block count mismatch");
    if (verify) {
      out.verification.merge(verify_schedule(trace, scheduled, machine));
    }
    for (std::size_t i = 0; i < selected.blocks.size(); ++i) {
      out.program.blocks[static_cast<std::size_t>(selected.blocks[i])] =
          scheduled.blocks[i];
    }

    if (t == 0) {
      // Hot-trace diagnostics: original order vs anticipatory order.
      const DepGraph g = build_trace_graph(trace, machine);
      out.hot_trace_cycles_before = simulated_completion(
          g, machine,
          schedule_trace_per_block(g, machine, BlockScheduler::kSourceOrder),
          w);
      out.hot_trace_cycles_after = scheduled.simulated_cycles(machine);
    }
  }
  return out;
}

}  // namespace ais
