#include "driver/function_compiler.hpp"

#include <optional>
#include <utility>
#include <vector>

#include "baselines/block_schedulers.hpp"
#include "ir/depbuild.hpp"
#include "obs/obs.hpp"
#include "sim/lookahead_sim.hpp"
#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace ais {
namespace {

/// Everything one trace contributes to the program, produced independently
/// of every other trace (select_traces assigns each block to exactly one
/// trace).
struct TraceOutcome {
  ScheduledTrace scheduled;
  verify::Report verification;
  Time hot_cycles_before = 0;
  Time hot_cycles_after = 0;
};

TraceOutcome compile_trace(const Cfg& cfg, const SelectedTrace& selected,
                           const MachineModel& machine, int w, bool verify,
                           bool hot) {
  const Trace trace = materialize(cfg, selected);
  TraceOutcome out{schedule(trace, machine, w), {}, 0, 0};
  AIS_CHECK(out.scheduled.blocks.size() == selected.blocks.size(),
            "scheduled trace block count mismatch");
  if (verify) {
    out.verification = verify_schedule(trace, out.scheduled, machine);
  }
  if (hot) {
    // Hot-trace diagnostics: original order vs anticipatory order.
    const DepGraph g = build_trace_graph(trace, machine);
    out.hot_cycles_before = simulated_completion(
        g, machine,
        schedule_trace_per_block(g, machine, BlockScheduler::kSourceOrder), w);
    out.hot_cycles_after = out.scheduled.simulated_cycles(machine);
  } else {
    // The fold only consumes the reordered blocks; dropping the graph and
    // per-iteration diagnostics here keeps the peak footprint of a
    // many-trace compile at O(blocks), not O(traces * arena).
    out.scheduled.graph = DepGraph();
    out.scheduled.detail = LookaheadResult();
  }
  return out;
}

}  // namespace

CompiledProgram compile_program(const Cfg& cfg, const MachineModel& machine,
                                int window, bool verify, int jobs) {
  AIS_OBS_SPAN("compile.program");
  AIS_OBS_TIMER(obs::hist::kCompileProgramUs);
  const int w = window == 0 ? machine.default_window() : window;

  CompiledProgram out;
  out.program = cfg.program();
  {
    AIS_OBS_SPAN("trace_select");
    out.traces = select_traces(cfg);
  }
  out.window = w;

  // Compile traces independently (possibly on the pool), then fold the
  // outcomes back in trace order so every job count yields the same program
  // and the same verification-report order.
  std::vector<std::optional<TraceOutcome>> outcomes(out.traces.size());
  parallel_for(jobs, out.traces.size(), [&](std::size_t t) {
    outcomes[t].emplace(
        compile_trace(cfg, out.traces[t], machine, w, verify, t == 0));
  });

  for (std::size_t t = 0; t < out.traces.size(); ++t) {
    const SelectedTrace& selected = out.traces[t];
    TraceOutcome& outcome = *outcomes[t];
    for (std::size_t i = 0; i < selected.blocks.size(); ++i) {
      out.program.blocks[static_cast<std::size_t>(selected.blocks[i])] =
          std::move(outcome.scheduled.blocks[i]);
    }
    if (verify) out.verification.merge(outcome.verification);
    if (t == 0) {
      out.hot_trace_cycles_before = outcome.hot_cycles_before;
      out.hot_trace_cycles_after = outcome.hot_cycles_after;
    }
  }
  return out;
}

}  // namespace ais
