#include "sim/loop_sim.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ais {

LoopSimResult simulate_loop(const DepGraph& g, const MachineModel& machine,
                            const std::vector<NodeId>& per_iteration_list,
                            int window, int iterations) {
  AIS_CHECK(window >= 1, "window must be positive");
  AIS_CHECK(iterations >= 1, "need at least one iteration");
  const std::size_t body = per_iteration_list.size();
  AIS_CHECK(body == g.num_nodes(),
            "per-iteration list must cover every loop-body instruction");

  std::vector<std::size_t> pos(g.num_nodes(), static_cast<std::size_t>(-1));
  for (std::size_t p = 0; p < body; ++p) {
    AIS_CHECK(pos[per_iteration_list[p]] == static_cast<std::size_t>(-1),
              "node listed twice");
    pos[per_iteration_list[p]] = p;
  }

  const std::size_t total = body * static_cast<std::size_t>(iterations);

  std::vector<int> unit_base(
      static_cast<std::size_t>(machine.num_fu_classes()), 0);
  int total_units = 0;
  for (int c = 0; c < machine.num_fu_classes(); ++c) {
    unit_base[static_cast<std::size_t>(c)] = total_units;
    total_units += machine.fu_count(c);
  }
  std::vector<Time> unit_free(static_cast<std::size_t>(total_units), 0);

  std::vector<Time> issue(total, Time{-1});
  std::size_t head = 0;
  std::size_t remaining = total;

  const Time t_limit =
      (g.total_work() +
       static_cast<Time>(body + 1) * (g.max_latency() + g.max_exec_time()) +
       1) *
      iterations;

  // Incremental readiness: every dependence edge is touched exactly twice --
  // once here to seed the per-instance unresolved-dependence count, and once
  // when its source instance issues (out-edge propagation below).  The hot
  // per-cycle scan then runs in O(window) with no edge walks at all.
  //
  // deps_left[q]: dependences of instance q whose source has not issued yet
  //               (edges reaching before the first iteration are satisfied by
  //               pre-loop state and never counted).
  // ready[q]:     earliest issue cycle imposed by already-resolved
  //               dependences; authoritative once deps_left[q] == 0.
  std::vector<std::uint32_t> deps_left(total, 0);
  std::vector<Time> ready(total, 0);
  for (std::size_t p = 0; p < body; ++p) {
    const NodeId id = per_iteration_list[p];
    for (const auto eidx : g.in_edges(id)) {
      const DepEdge& e = g.edge(eidx);
      // Edge <latency, distance> constrains iteration i against iteration
      // i - distance, so it is live for every instance with iter >= distance.
      for (int iter = e.distance; iter < iterations; ++iter) {
        ++deps_left[static_cast<std::size_t>(iter) * body + p];
      }
    }
  }

  Time t = 0;
  while (remaining > 0) {
    AIS_CHECK(t <= t_limit, "loop simulator failed to make progress");
    // Dependences resolve no earlier than one cycle after an issue
    // (exec_time >= 1, latency >= 0), so issuing an instance can never make
    // another one ready within the same cycle: a single forward sweep visits
    // each candidate exactly once.  The window limit is re-evaluated every
    // step because advancing `head` exposes new instances at the tail.
    int issued_this_cycle = 0;
    for (std::size_t q = head;
         q < std::min(total, head + static_cast<std::size_t>(window)) &&
         issued_this_cycle < machine.issue_width();
         ++q) {
      if (issue[q] >= 0) continue;
      if (deps_left[q] != 0 || ready[q] > t) continue;
      const NodeId id = per_iteration_list[q % body];
      const NodeInfo& info = g.node(id);
      const int base = unit_base[static_cast<std::size_t>(info.fu_class)];
      int chosen = -1;
      for (int k = 0; k < machine.fu_count(info.fu_class); ++k) {
        if (unit_free[static_cast<std::size_t>(base + k)] <= t) {
          chosen = base + k;
          break;
        }
      }
      if (chosen < 0) continue;
      issue[q] = t;
      unit_free[static_cast<std::size_t>(chosen)] = t + info.exec_time;
      --remaining;
      ++issued_this_cycle;
      while (head < total && issue[head] >= 0) ++head;
      // Resolve the out-edges of the freshly issued instance.
      const int iter = static_cast<int>(q / body);
      const Time done = t + info.exec_time;
      for (const auto eidx : g.out_edges(id)) {
        const DepEdge& e = g.edge(eidx);
        const int dst_iter = iter + e.distance;
        if (dst_iter >= iterations) continue;
        const std::size_t dst_q =
            static_cast<std::size_t>(dst_iter) * body + pos[e.to];
        ready[dst_q] = std::max(ready[dst_q], done + e.latency);
        --deps_left[dst_q];
      }
    }
    // Event-driven time advance: machine state only changes when an
    // instruction issues, so instead of stepping one cycle at a time we jump
    // straight to the earliest cycle at which some window instance could
    // issue.  An instance whose dependences are all satisfied can issue no
    // earlier than max(its ready time, the earliest free unit of its class),
    // and instances with unissued dependences must wait for a future issue
    // event anyway.  Skipped cycles provably issue nothing, so the computed
    // issue times are identical to the one-cycle-at-a-time walk.
    Time next_t = t_limit + 1;
    const std::size_t limit =
        std::min(total, head + static_cast<std::size_t>(window));
    for (std::size_t q = head; q < limit && remaining > 0; ++q) {
      if (issue[q] >= 0 || deps_left[q] != 0) continue;
      const NodeInfo& info = g.node(per_iteration_list[q % body]);
      const int base = unit_base[static_cast<std::size_t>(info.fu_class)];
      Time unit_t = t_limit + 1;
      for (int k = 0; k < machine.fu_count(info.fu_class); ++k) {
        unit_t =
            std::min(unit_t, unit_free[static_cast<std::size_t>(base + k)]);
      }
      // t + 1 floor: this cycle's issue opportunities are already spent.
      next_t = std::min(next_t, std::max({ready[q], t + 1, unit_t}));
    }
    t = remaining > 0 ? next_t : t + 1;
  }

  LoopSimResult result;
  result.iteration_finish.assign(static_cast<std::size_t>(iterations), 0);
  for (std::size_t q = 0; q < total; ++q) {
    const Time finish =
        issue[q] + g.node(per_iteration_list[q % body]).exec_time;
    auto& slot = result.iteration_finish[q / body];
    slot = std::max(slot, finish);
    result.completion = std::max(result.completion, finish);
  }
  return result;
}

double steady_state_period(const DepGraph& g, const MachineModel& machine,
                           const std::vector<NodeId>& per_iteration_list,
                           int window, int iterations) {
  AIS_CHECK(iterations >= 8, "steady-state measurement needs >= 8 iterations");
  const LoopSimResult r =
      simulate_loop(g, machine, per_iteration_list, window, iterations);
  const std::size_t hi = static_cast<std::size_t>(iterations) - 1;
  const std::size_t lo = hi / 2;
  return static_cast<double>(r.iteration_finish[hi] - r.iteration_finish[lo]) /
         static_cast<double>(hi - lo);
}

}  // namespace ais
