#include "sim/loop_sim.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ais {

LoopSimResult simulate_loop(const DepGraph& g, const MachineModel& machine,
                            const std::vector<NodeId>& per_iteration_list,
                            int window, int iterations) {
  AIS_CHECK(window >= 1, "window must be positive");
  AIS_CHECK(iterations >= 1, "need at least one iteration");
  const std::size_t body = per_iteration_list.size();
  AIS_CHECK(body == g.num_nodes(),
            "per-iteration list must cover every loop-body instruction");

  std::vector<std::size_t> pos(g.num_nodes(), static_cast<std::size_t>(-1));
  for (std::size_t p = 0; p < body; ++p) {
    AIS_CHECK(pos[per_iteration_list[p]] == static_cast<std::size_t>(-1),
              "node listed twice");
    pos[per_iteration_list[p]] = p;
  }

  const std::size_t total = body * static_cast<std::size_t>(iterations);

  std::vector<int> unit_base(
      static_cast<std::size_t>(machine.num_fu_classes()), 0);
  int total_units = 0;
  for (int c = 0; c < machine.num_fu_classes(); ++c) {
    unit_base[static_cast<std::size_t>(c)] = total_units;
    total_units += machine.fu_count(c);
  }
  std::vector<Time> unit_free(static_cast<std::size_t>(total_units), 0);

  std::vector<Time> issue(total, Time{-1});
  std::size_t head = 0;
  std::size_t remaining = total;

  const Time t_limit =
      (g.total_work() +
       static_cast<Time>(body + 1) * (g.max_latency() + g.max_exec_time()) +
       1) *
      iterations;

  auto instance_ready = [&](std::size_t q, Time t) {
    const int iter = static_cast<int>(q / body);
    const NodeId id = per_iteration_list[q % body];
    for (const auto eidx : g.in_edges(id)) {
      const DepEdge& e = g.edge(eidx);
      const int src_iter = iter - e.distance;
      if (src_iter < 0) continue;  // satisfied by pre-loop state
      const std::size_t src_q =
          static_cast<std::size_t>(src_iter) * body + pos[e.from];
      const Time it = issue[src_q];
      if (it < 0 || it + g.node(e.from).exec_time + e.latency > t) {
        return false;
      }
    }
    return true;
  };

  Time t = 0;
  while (remaining > 0) {
    AIS_CHECK(t <= t_limit, "loop simulator failed to make progress");
    int issued_this_cycle = 0;
    bool progressed = true;
    while (progressed && issued_this_cycle < machine.issue_width()) {
      progressed = false;
      const std::size_t limit =
          std::min(total, head + static_cast<std::size_t>(window));
      for (std::size_t q = head; q < limit; ++q) {
        if (issue[q] >= 0) continue;
        if (!instance_ready(q, t)) continue;
        const NodeInfo& info = g.node(per_iteration_list[q % body]);
        const int base = unit_base[static_cast<std::size_t>(info.fu_class)];
        int chosen = -1;
        for (int k = 0; k < machine.fu_count(info.fu_class); ++k) {
          if (unit_free[static_cast<std::size_t>(base + k)] <= t) {
            chosen = base + k;
            break;
          }
        }
        if (chosen < 0) continue;
        issue[q] = t;
        unit_free[static_cast<std::size_t>(chosen)] = t + info.exec_time;
        --remaining;
        ++issued_this_cycle;
        while (head < total && issue[head] >= 0) ++head;
        progressed = true;
        break;
      }
    }
    ++t;
  }

  LoopSimResult result;
  result.iteration_finish.assign(static_cast<std::size_t>(iterations), 0);
  for (std::size_t q = 0; q < total; ++q) {
    const Time finish =
        issue[q] + g.node(per_iteration_list[q % body]).exec_time;
    auto& slot = result.iteration_finish[q / body];
    slot = std::max(slot, finish);
    result.completion = std::max(result.completion, finish);
  }
  return result;
}

double steady_state_period(const DepGraph& g, const MachineModel& machine,
                           const std::vector<NodeId>& per_iteration_list,
                           int window, int iterations) {
  AIS_CHECK(iterations >= 8, "steady-state measurement needs >= 8 iterations");
  const LoopSimResult r =
      simulate_loop(g, machine, per_iteration_list, window, iterations);
  const std::size_t hi = static_cast<std::size_t>(iterations) - 1;
  const std::size_t lo = hi / 2;
  return static_cast<double>(r.iteration_finish[hi] - r.iteration_finish[lo]) /
         static_cast<double>(hi - lo);
}

}  // namespace ais
