// Loop execution on the lookahead machine.
//
// The completion time of n iterations equals that of the completely unrolled
// trace, ignoring loop-back branch cost (paper §5): the dynamic stream is
// the per-iteration priority list repeated n times, and a <latency, distance>
// edge (u, v) constrains instance v[k] against u[k - distance].
#pragma once

#include <vector>

#include "graph/depgraph.hpp"
#include "machine/machine_model.hpp"

namespace ais {

struct LoopSimResult {
  /// Completion time of the whole unrolled run.
  Time completion = 0;
  /// Completion time of the last instruction of each iteration.
  std::vector<Time> iteration_finish;
};

/// Simulates `iterations` repetitions of `per_iteration_list` (a permutation
/// of a loop body; for multi-block bodies pass the concatenated per-block
/// orders) with lookahead window `window`.
LoopSimResult simulate_loop(const DepGraph& g, const MachineModel& machine,
                            const std::vector<NodeId>& per_iteration_list,
                            int window, int iterations);

/// Steady-state initiation interval: cycles per iteration once the pipeline
/// has warmed up, measured as the slope of iteration finish times over the
/// second half of `iterations` runs (default 48).
double steady_state_period(const DepGraph& g, const MachineModel& machine,
                           const std::vector<NodeId>& per_iteration_list,
                           int window, int iterations = 48);

}  // namespace ais
