// Cycle-accurate simulator of the paper's hardware lookahead model (§2.3).
//
// The machine holds a window of W instructions that occur contiguously in
// the program's dynamic instruction stream (the priority list L the compiler
// emitted).  Each cycle it issues ready instructions from the window in list
// order — never a later ready instruction before an earlier ready one with a
// free unit (the Ordering Constraint) — and the window advances only when
// its first instruction has issued.  W = 1 degenerates to strict in-order
// issue; W >= |L| equals greedy list scheduling with full lookahead.
//
// This simulator is the paper's missing testbed: every benchmark measures
// completion times by executing emitted code on it.
#pragma once

#include <vector>

#include "core/schedule.hpp"
#include "graph/depgraph.hpp"
#include "graph/nodeset.hpp"
#include "machine/machine_model.hpp"

namespace ais {

struct SimResult {
  /// Completion time of the last instruction.
  Time completion = 0;
  /// Issue (start) cycle per node id; -1 for nodes not in the list.
  std::vector<Time> issue_time;
  /// Number of cycles in which nothing issued (pure stall cycles).
  Time stall_cycles = 0;
  /// Stall cycles attributed to dependences: nothing anywhere in the list
  /// could have issued (every unissued instruction waits on a latency or a
  /// busy unit), so a deeper window would not have helped.
  Time latency_stall_cycles = 0;
  /// Stall cycles attributed to the window: some instruction *beyond* the
  /// window's reach was ready with a free unit, but the W-deep head
  /// blockage kept it invisible.  Always:
  ///   latency_stall_cycles + window_stall_cycles == stall_cycles.
  Time window_stall_cycles = 0;
  /// Histogram over cycles of window occupancy: entry k counts the cycles
  /// that began with exactly k unissued instructions visible in the window
  /// (size min(window, list size) + 1; entries sum to the cycles executed).
  std::vector<Time> window_occupancy;
};

/// Executes priority list `list` (each active node exactly once) with window
/// size `window` on `machine`.  Dependences are the distance-0 edges of `g`
/// between listed nodes.
SimResult simulate_list(const DepGraph& g, const MachineModel& machine,
                        const std::vector<NodeId>& list, int window);

/// Convenience: completion time only.
Time simulated_completion(const DepGraph& g, const MachineModel& machine,
                          const std::vector<NodeId>& list, int window);

}  // namespace ais
