// Cycle-accurate simulator of the paper's hardware lookahead model (§2.3).
//
// The machine holds a window of W instructions that occur contiguously in
// the program's dynamic instruction stream (the priority list L the compiler
// emitted).  Each cycle it issues ready instructions from the window in list
// order — never a later ready instruction before an earlier ready one with a
// free unit (the Ordering Constraint) — and the window advances only when
// its first instruction has issued.  W = 1 degenerates to strict in-order
// issue; W >= |L| equals greedy list scheduling with full lookahead.
//
// This simulator is the paper's missing testbed: every benchmark measures
// completion times by executing emitted code on it.
//
// The engine is event-driven (see docs/PERFORMANCE.md, "Event-driven list
// simulation"): per-position unsatisfied-predecessor counters are decremented
// when a producer issues, a woken position is examined only when its last
// operand arrives (wake-time heaps), per-FU-class availability heaps replace
// the linear unit scan, and the clock jumps straight over provably idle gaps
// — with the stall attribution and the window-occupancy histogram accumulated
// in bulk across the jumped cycles, since neither readiness nor occupancy can
// change between events.  Outputs are byte-exact against the original
// cycle-stepping formulation, which tests/test_differential.cpp keeps
// verbatim as an in-test oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "core/schedule.hpp"
#include "graph/depgraph.hpp"
#include "graph/nodeset.hpp"
#include "machine/machine_model.hpp"
#include "support/arena.hpp"

namespace ais {

struct SimResult {
  /// Completion time of the last instruction.
  Time completion = 0;
  /// Issue (start) cycle per node id; -1 for nodes not in the list.
  std::vector<Time> issue_time;
  /// Number of cycles in which nothing issued (pure stall cycles).
  Time stall_cycles = 0;
  /// Stall cycles attributed to dependences: nothing anywhere in the list
  /// could have issued (every unissued instruction waits on a latency or a
  /// busy unit), so a deeper window would not have helped.
  Time latency_stall_cycles = 0;
  /// Stall cycles attributed to the window: some instruction *beyond* the
  /// window's reach was ready with a free unit, but the W-deep head
  /// blockage kept it invisible.  Always:
  ///   latency_stall_cycles + window_stall_cycles == stall_cycles.
  Time window_stall_cycles = 0;
  /// Histogram over cycles of window occupancy: entry k counts the cycles
  /// that began with exactly k unissued instructions visible in the window
  /// (size min(window, list size) + 1; entries sum to the cycles executed).
  std::vector<Time> window_occupancy;
};

/// Reusable buffers for simulate_list: the per-position readiness state, the
/// per-class availability and wake-time heaps and the id→position map, all
/// arena-backed so a caller running thousands of simulations (surveys,
/// window sweeps, bruteforce enumeration) pays the allocations once and
/// converges on the peak instance size.  A scratch carries no results across
/// calls — every simulate_list call fully re-initializes what it reads — and
/// is single-threaded state: concurrent simulations use one scratch each
/// (simulate_many hands one to every pool worker).
class SimScratch {
 public:
  SimScratch();

  /// Arena bytes this scratch has reserved — the high-water footprint a
  /// long-lived holder (an aisd worker) reports as a gauge.
  std::size_t bytes_reserved() const { return arena_.bytes_reserved(); }

  /// A dep-satisfied but not yet ready position, keyed by the cycle its
  /// last operand arrives (min-heap order).
  struct WakeEntry {
    Time ready;
    std::uint32_t pos;
  };

 private:
  friend SimResult simulate_list(const DepGraph& g, const MachineModel& machine,
                                 const std::vector<NodeId>& list, int window,
                                 SimScratch& scratch);
  // Full-size initial chunks: a simulation fills tens of KiB of scratch,
  // and the one-shot simulate_list overload constructs a scratch per call.
  Arena arena_{Arena::kDefaultChunkBytes, Arena::kDefaultChunkBytes};
  ArenaVector<std::size_t> pos_;        // id -> list position
  ArenaVector<std::int32_t> deps_left_;  // per position
  ArenaVector<Time> ready_;              // per position; final once deps == 0
  ArenaVector<char> issued_;             // per position
  ArenaVector<char> awake_;              // per position
  ArenaVector<std::int32_t> klass_;      // per position: FU class
  ArenaVector<std::int32_t> free_count_;  // per class
  ArenaVector<std::int32_t> awake_in_;    // per class, inside the window
  ArenaVector<std::int32_t> awake_beyond_;  // per class, beyond the window
  // Per class: min-heaps of busy-until times and of sleeping dep-satisfied
  // positions (in-window / beyond-window), keyed by resolved ready time.
  std::vector<std::vector<Time>> busy_;
  std::vector<std::vector<WakeEntry>> sleep_in_;
  std::vector<std::vector<WakeEntry>> sleep_beyond_;
};

/// Executes priority list `list` (each active node exactly once) with window
/// size `window` on `machine`.  Dependences are the distance-0 edges of `g`
/// between listed nodes.
SimResult simulate_list(const DepGraph& g, const MachineModel& machine,
                        const std::vector<NodeId>& list, int window);

/// Same, reusing `scratch`'s buffers (no per-call allocations after the
/// first use at a given instance size).
SimResult simulate_list(const DepGraph& g, const MachineModel& machine,
                        const std::vector<NodeId>& list, int window,
                        SimScratch& scratch);

/// Convenience: completion time only.
Time simulated_completion(const DepGraph& g, const MachineModel& machine,
                          const std::vector<NodeId>& list, int window);
Time simulated_completion(const DepGraph& g, const MachineModel& machine,
                          const std::vector<NodeId>& list, int window,
                          SimScratch& scratch);

/// One simulation request for the batched survey API.  All pointed-to data
/// must outlive the simulate_many call.
struct SimJob {
  const DepGraph* graph = nullptr;
  const MachineModel* machine = nullptr;
  const std::vector<NodeId>* list = nullptr;
  int window = 0;
};

/// Runs every job and returns the results in job order.  `threads > 1` fans
/// the batch out over a ThreadPool with one SimScratch per worker; results
/// are deterministic and independent of the thread count (each simulation is
/// pure).  `threads <= 1` runs serially on the calling thread through one
/// reused scratch.
std::vector<SimResult> simulate_many(const std::vector<SimJob>& jobs,
                                     int threads = 1);

}  // namespace ais
