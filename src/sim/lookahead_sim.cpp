// Event-driven implementation of the §2.3 lookahead machine.
//
// The original engine stepped the clock one cycle at a time and, per cycle,
// rescanned the window from the head and re-walked every in-edge of every
// candidate (ready_at) plus the unit table (free_unit_at) — O(cycles × W ×
// edges), which dominates every benchmark and survey run.  This engine keeps
// the machine model bit-for-bit (tests/test_differential.cpp holds it
// byte-exact against the original, retained there as an oracle) but does the
// work incrementally:
//
//  * deps_left[p] counts the unsatisfied listed distance-0 predecessors of
//    position p; issuing a producer decrements its consumers, so an edge is
//    walked exactly once over the whole simulation (at the producer's issue)
//    instead of once per candidate scan per cycle.
//  * ready[p] accumulates the max operand-arrival cycle; when deps_left hits
//    zero the position goes into a per-FU-class wake-time min-heap and is
//    not looked at again until that cycle arrives.
//  * per-class free-unit counts plus busy-until min-heaps replace the linear
//    unit scan; the lowest-index-unit choice of the original only matters
//    through the multiset of busy-until times, which the heap preserves.
//  * the clock jumps to the next event — the earliest cycle at which some
//    in-window position can possibly issue (operand arrival or unit release,
//    whichever is later).  Cycle-exactness survives because every jumped
//    cycle is provably issue-free, and neither window occupancy nor the
//    stall attribution can change during such a gap: occupancy moves only on
//    issues/head slides, readiness beyond the window only resolves further
//    (never regresses), and units only become free.  The occupancy histogram
//    and the stall split are therefore accumulated in bulk per gap.
//
// Attribution across a gap: a gap cycle u is a *window* stall iff some
// instruction beyond the window's reach could have issued at u, i.e. iff
// u >= T_w = min over classes c of max(first beyond-window ready of c,
// first free unit of c).  Both components are monotone during a gap (ready
// times are fixed, units only free up), so the gap splits at the single
// threshold T_w: cycles before it are latency stalls, cycles from it on are
// window stalls — exactly what the original per-cycle scan computed.
#include "sim/lookahead_sim.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "obs/obs.hpp"
#include "support/assert.hpp"
#include "support/thread_pool.hpp"

namespace ais {

namespace {
constexpr std::size_t kUnlisted = static_cast<std::size_t>(-1);
constexpr Time kNever = std::numeric_limits<Time>::max() / 4;

// Min-heap orderings for std::push_heap/pop_heap (which build max-heaps).
inline bool wake_after(const SimScratch::WakeEntry& a,
                       const SimScratch::WakeEntry& b) {
  return a.ready > b.ready;
}
inline bool time_after(Time a, Time b) { return a > b; }
}  // namespace

SimScratch::SimScratch()
    : pos_(ArenaAllocator<std::size_t>(arena_)),
      deps_left_(ArenaAllocator<std::int32_t>(arena_)),
      ready_(ArenaAllocator<Time>(arena_)),
      issued_(ArenaAllocator<char>(arena_)),
      awake_(ArenaAllocator<char>(arena_)),
      klass_(ArenaAllocator<std::int32_t>(arena_)),
      free_count_(ArenaAllocator<std::int32_t>(arena_)),
      awake_in_(ArenaAllocator<std::int32_t>(arena_)),
      awake_beyond_(ArenaAllocator<std::int32_t>(arena_)) {}

SimResult simulate_list(const DepGraph& g, const MachineModel& machine,
                        const std::vector<NodeId>& list, int window,
                        SimScratch& s) {
  AIS_OBS_SPAN("sim");
  AIS_CHECK(window >= 1, "window must be positive");
  const std::size_t n = list.size();
  const int width = machine.issue_width();
  const std::size_t num_classes =
      static_cast<std::size_t>(machine.num_fu_classes());
  // Flat per-node columns; the issue sweep reads exec times and FU classes
  // once per issued node, so skip assembling NodeInfo views.
  const std::span<const std::int32_t> exec_times = g.exec_times();
  const std::span<const std::int32_t> fu_classes = g.fu_classes();

  // Position of each node in the list; also validates uniqueness.
  auto& pos = s.pos_;
  pos.assign(g.num_nodes(), kUnlisted);
  for (std::size_t p = 0; p < n; ++p) {
    AIS_CHECK(pos[list[p]] == kUnlisted, "node listed twice");
    pos[list[p]] = p;
  }

  auto& deps_left = s.deps_left_;
  auto& ready = s.ready_;
  auto& issued = s.issued_;
  auto& awake = s.awake_;
  auto& klass = s.klass_;
  deps_left.assign(n, 0);
  ready.assign(n, Time{0});
  issued.assign(n, 0);
  awake.assign(n, 0);
  klass.resize(n);

  // Compiled code lists producers before consumers; a violated order would
  // deadlock the window (head waiting on an instruction behind it).  The
  // same pass counts each position's unsatisfied predecessors.
  for (std::size_t p = 0; p < n; ++p) {
    const NodeId id = list[p];
    klass[p] = fu_classes[id];
    for (const auto eidx : g.in_edges(id)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance != 0 || pos[e.from] == kUnlisted) {
        continue;
      }
      AIS_CHECK(pos[e.from] < p,
                "priority list is not topological: " + g.node(e.from).name +
                    " must precede " + g.node(id).name);
      ++deps_left[p];
    }
  }

  auto& free_count = s.free_count_;
  auto& awake_in = s.awake_in_;
  auto& awake_beyond = s.awake_beyond_;
  free_count.resize(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) {
    free_count[c] = machine.fu_count(static_cast<int>(c));
  }
  awake_in.assign(num_classes, 0);
  awake_beyond.assign(num_classes, 0);

  auto& busy = s.busy_;
  auto& sleep_in = s.sleep_in_;
  auto& sleep_beyond = s.sleep_beyond_;
  if (busy.size() < num_classes) {
    busy.resize(num_classes);
    sleep_in.resize(num_classes);
    sleep_beyond.resize(num_classes);
  }
  for (std::size_t c = 0; c < num_classes; ++c) {
    busy[c].clear();
    sleep_in[c].clear();
    sleep_beyond[c].clear();
  }

  SimResult result;
  result.issue_time.assign(g.num_nodes(), Time{-1});
  result.window_occupancy.assign(
      std::min(static_cast<std::size_t>(window), n) + 1, Time{0});

  std::size_t head = 0;  // first unissued position
  std::size_t limit = std::min(n, head + static_cast<std::size_t>(window));
  std::size_t remaining = n;
  // Unissued positions the window currently exposes.  Maintained
  // incrementally: -1 per issue (every issue is in-window), +1 per position
  // a head slide exposes (positions past the window are never issued).
  std::size_t occ = limit;

  // Sources sleep at ready == 0 and wake in the first event's drain.
  for (std::size_t p = 0; p < n; ++p) {
    if (deps_left[p] == 0) {
      auto& h = p < limit ? sleep_in[static_cast<std::size_t>(klass[p])]
                          : sleep_beyond[static_cast<std::size_t>(klass[p])];
      h.push_back({Time{0}, static_cast<std::uint32_t>(p)});
    }
  }
  // Equal keys: already a valid heap, but keep the invariant explicit.
  for (std::size_t c = 0; c < num_classes; ++c) {
    std::make_heap(sleep_in[c].begin(), sleep_in[c].end(), wake_after);
    std::make_heap(sleep_beyond[c].begin(), sleep_beyond[c].end(), wake_after);
  }

  const Time t_limit =
      g.total_work() +
      static_cast<Time>(n + 1) * (g.max_latency() + g.max_exec_time()) + 1;

  Time t = 0;
  Time t_final = 0;
  std::uint64_t events = 0;
  while (remaining > 0) {
    AIS_CHECK(t <= t_limit, "simulator failed to make progress");
    ++events;

    // Release units whose busy interval elapsed.
    for (std::size_t c = 0; c < num_classes; ++c) {
      auto& h = busy[c];
      while (!h.empty() && h.front() <= t) {
        std::pop_heap(h.begin(), h.end(), time_after);
        h.pop_back();
        ++free_count[c];
      }
    }
    // Wake sleepers whose last operand has arrived.  sleep_beyond may hold
    // stale duplicates for positions a head slide moved into the window
    // (the live copy went to sleep_in); those are discarded here.
    for (std::size_t c = 0; c < num_classes; ++c) {
      auto& hi = sleep_in[c];
      while (!hi.empty() && hi.front().ready <= t) {
        const std::size_t p = hi.front().pos;
        std::pop_heap(hi.begin(), hi.end(), wake_after);
        hi.pop_back();
        if (issued[p] || awake[p]) continue;
        awake[p] = 1;
        ++awake_in[c];
      }
      auto& hb = sleep_beyond[c];
      while (!hb.empty() && hb.front().ready <= t) {
        const std::size_t p = hb.front().pos;
        std::pop_heap(hb.begin(), hb.end(), wake_after);
        hb.pop_back();
        if (p < limit || issued[p] || awake[p]) continue;
        awake[p] = 1;
        ++awake_beyond[c];
      }
    }

    // Window occupancy at cycle start.
    ++result.window_occupancy[occ];

    // Issue sweep, in list order from the head.  A single forward pass is
    // equivalent to the original rescan-from-head: issuing a position only
    // consumes units and resolves operands at >= t+1 (exec_time >= 1), so a
    // position already passed over can never become issuable within the
    // same cycle, and head slides only expose positions ahead of the sweep.
    int issued_this_event = 0;
    for (std::size_t p = head; p < limit && issued_this_event < width; ++p) {
      if (!awake[p]) continue;
      const std::size_t c = static_cast<std::size_t>(klass[p]);
      if (free_count[c] == 0) continue;

      const NodeId id = list[p];
      const Time exec = exec_times[id];
      result.issue_time[id] = t;
      --free_count[c];
      busy[c].push_back(t + exec);
      std::push_heap(busy[c].begin(), busy[c].end(), time_after);
      issued[p] = 1;
      awake[p] = 0;
      --awake_in[c];
      --remaining;
      ++issued_this_event;
      --occ;

      // Resolve this producer's consumers; a consumer whose last operand
      // this was goes to sleep until that operand arrives (always in the
      // future: exec >= 1).
      for (const auto eidx : g.out_edges(id)) {
        const DepEdge& e = g.edge(eidx);
        if (e.distance != 0) continue;
        const std::size_t q = pos[e.to];
        if (q == kUnlisted) continue;
        const Time r = t + exec + e.latency;
        if (r > ready[q]) ready[q] = r;
        if (--deps_left[q] == 0) {
          auto& h = q < limit
                        ? sleep_in[static_cast<std::size_t>(klass[q])]
                        : sleep_beyond[static_cast<std::size_t>(klass[q])];
          h.push_back({ready[q], static_cast<std::uint32_t>(q)});
          std::push_heap(h.begin(), h.end(), wake_after);
        }
      }

      if (p == head) {
        while (head < n && issued[head]) ++head;  // slide the window
        const std::size_t new_limit =
            std::min(n, head + static_cast<std::size_t>(window));
        for (std::size_t q = limit; q < new_limit; ++q) {
          ++occ;
          const std::size_t qc = static_cast<std::size_t>(klass[q]);
          if (awake[q]) {
            --awake_beyond[qc];
            ++awake_in[qc];
          } else if (deps_left[q] == 0) {
            // Sleeping (its sleep_beyond copy goes stale); ready > t here,
            // because anything ready by t was woken in this event's drain.
            sleep_in[qc].push_back({ready[q], static_cast<std::uint32_t>(q)});
            std::push_heap(sleep_in[qc].begin(), sleep_in[qc].end(),
                           wake_after);
          }
        }
        limit = new_limit;
      }
    }

    if (remaining == 0) {
      t_final = t + 1;
      break;
    }

    if (issued_this_event == 0) {
      // Safety net: event times are chosen so that at least one issue is
      // possible, so this branch is unreachable by construction — but keep
      // the original engine's per-cycle attribution in case that proof ever
      // rots, rather than silently desynchronizing the clock.
      ++result.stall_cycles;
      bool blocked_by_window = false;
      for (std::size_t c = 0; c < num_classes; ++c) {
        if (awake_beyond[c] > 0 && free_count[c] > 0) {
          blocked_by_window = true;
          break;
        }
      }
      if (blocked_by_window) {
        ++result.window_stall_cycles;
      } else {
        ++result.latency_stall_cycles;
      }
    }

    // Next event: the earliest cycle > t at which some in-window position
    // can issue — an awake position as soon as its class has a free unit, a
    // sleeping position at max(operand arrival, first unit release).
    // Beyond-window positions cannot issue without a head slide, and the
    // head cannot move without an in-window issue, so they never bound the
    // jump.  (The head itself always has deps_left == 0 — every earlier
    // position has issued — so a finite candidate exists whenever its class
    // has units at all.)
    Time next_t = kNever;
    for (std::size_t c = 0; c < num_classes; ++c) {
      Time eft;  // earliest cycle > t with a free unit of class c
      if (free_count[c] > 0) {
        eft = t + 1;
      } else if (!busy[c].empty()) {
        eft = std::max(busy[c].front(), t + 1);
      } else {
        continue;  // class has no units: nothing of it can ever issue
      }
      if (awake_in[c] > 0) {
        next_t = std::min(next_t, eft);
      }
      if (!sleep_in[c].empty()) {
        next_t = std::min(next_t, std::max(sleep_in[c].front().ready, eft));
      }
    }
    AIS_CHECK(next_t < kNever, "simulator failed to make progress");

    // Bulk-account the provably issue-free gap (t, next_t): occupancy is
    // frozen, every cycle is a stall, and the latency/window split falls at
    // the monotone threshold T_w (see the file comment).
    const Time gap = next_t - t - 1;
    if (gap > 0) {
      result.window_occupancy[occ] += gap;
      result.stall_cycles += gap;
      Time t_w = kNever;
      for (std::size_t c = 0; c < num_classes; ++c) {
        Time eft;
        if (free_count[c] > 0) {
          eft = t + 1;
        } else if (!busy[c].empty()) {
          eft = std::max(busy[c].front(), t + 1);
        } else {
          continue;
        }
        Time rc;  // first cycle some beyond-window position of c is ready
        if (awake_beyond[c] > 0) {
          rc = t + 1;
        } else {
          auto& hb = sleep_beyond[c];
          while (!hb.empty() &&
                 (hb.front().pos < limit || issued[hb.front().pos] ||
                  awake[hb.front().pos])) {
            std::pop_heap(hb.begin(), hb.end(), wake_after);  // stale dup
            hb.pop_back();
          }
          if (hb.empty()) continue;
          rc = hb.front().ready;
        }
        t_w = std::min(t_w, std::max(rc, eft));
      }
      const Time last = next_t - 1;
      const Time w_from = std::max(t_w, t + 1);
      const Time w_cycles = w_from <= last ? last - w_from + 1 : Time{0};
      result.window_stall_cycles += w_cycles;
      result.latency_stall_cycles += gap - w_cycles;
    }
    t = next_t;
  }

  for (const NodeId id : list) {
    result.completion = std::max(
        result.completion, result.issue_time[id] + exec_times[id]);
  }
  AIS_OBS_COUNT(obs::ctr::kSimRuns);
  AIS_OBS_COUNT(obs::ctr::kSimCycles, static_cast<std::uint64_t>(t_final));
  AIS_OBS_COUNT(obs::ctr::kSimStallLatency,
                static_cast<std::uint64_t>(result.latency_stall_cycles));
  AIS_OBS_COUNT(obs::ctr::kSimStallWindow,
                static_cast<std::uint64_t>(result.window_stall_cycles));
  AIS_OBS_COUNT(obs::ctr::kSimEvents, events);
  AIS_OBS_COUNT(obs::ctr::kSimCyclesJumped,
                static_cast<std::uint64_t>(t_final) - events);
  return result;
}

SimResult simulate_list(const DepGraph& g, const MachineModel& machine,
                        const std::vector<NodeId>& list, int window) {
  SimScratch scratch;
  return simulate_list(g, machine, list, window, scratch);
}

Time simulated_completion(const DepGraph& g, const MachineModel& machine,
                          const std::vector<NodeId>& list, int window) {
  return simulate_list(g, machine, list, window).completion;
}

Time simulated_completion(const DepGraph& g, const MachineModel& machine,
                          const std::vector<NodeId>& list, int window,
                          SimScratch& scratch) {
  return simulate_list(g, machine, list, window, scratch).completion;
}

std::vector<SimResult> simulate_many(const std::vector<SimJob>& jobs,
                                     int threads) {
  AIS_OBS_TIMER(obs::hist::kSimBatchUs);
  std::vector<SimResult> results(jobs.size());
  const auto run = [&](SimScratch& scratch, std::size_t i) {
    const SimJob& j = jobs[i];
    results[i] =
        simulate_list(*j.graph, *j.machine, *j.list, j.window, scratch);
  };
  if (threads <= 1 || jobs.size() <= 1) {
    SimScratch scratch;
    for (std::size_t i = 0; i < jobs.size(); ++i) run(scratch, i);
    return results;
  }
  const int workers = static_cast<int>(std::min(
      static_cast<std::size_t>(clamp_jobs(threads)), jobs.size()));
  ThreadPool pool(workers);
  std::atomic<std::size_t> next{0};
  for (int w = 0; w < workers; ++w) {
    pool.submit([&] {
      SimScratch scratch;  // one per worker: a scratch is single-threaded
      for (std::size_t i = next.fetch_add(1); i < jobs.size();
           i = next.fetch_add(1)) {
        run(scratch, i);
      }
    });
  }
  pool.wait_idle();
  return results;
}

}  // namespace ais
