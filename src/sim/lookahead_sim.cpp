#include "sim/lookahead_sim.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace ais {

SimResult simulate_list(const DepGraph& g, const MachineModel& machine,
                        const std::vector<NodeId>& list, int window) {
  AIS_OBS_SPAN("sim");
  AIS_CHECK(window >= 1, "window must be positive");
  const std::size_t n = list.size();

  // Position of each node in the list; also validates uniqueness.
  std::vector<std::size_t> pos(g.num_nodes(), static_cast<std::size_t>(-1));
  for (std::size_t p = 0; p < n; ++p) {
    AIS_CHECK(pos[list[p]] == static_cast<std::size_t>(-1),
              "node listed twice");
    pos[list[p]] = p;
  }
  // Compiled code lists producers before consumers; a violated order would
  // deadlock the window (head waiting on an instruction behind it).
  for (const NodeId id : list) {
    for (const auto eidx : g.in_edges(id)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance != 0 || pos[e.from] == static_cast<std::size_t>(-1)) {
        continue;
      }
      AIS_CHECK(pos[e.from] < pos[id],
                "priority list is not topological: " + g.node(e.from).name +
                    " must precede " + g.node(id).name);
    }
  }

  // Class-major unit availability.
  std::vector<int> unit_base(
      static_cast<std::size_t>(machine.num_fu_classes()), 0);
  int total_units = 0;
  for (int c = 0; c < machine.num_fu_classes(); ++c) {
    unit_base[static_cast<std::size_t>(c)] = total_units;
    total_units += machine.fu_count(c);
  }
  std::vector<Time> unit_free(static_cast<std::size_t>(total_units), 0);

  SimResult result;
  result.issue_time.assign(g.num_nodes(), Time{-1});
  result.window_occupancy.assign(
      std::min(static_cast<std::size_t>(window), n) + 1, Time{0});

  std::vector<bool> issued(n, false);
  std::size_t head = 0;  // first unissued position
  std::size_t remaining = n;

  // Ready at cycle `t`: every listed distance-0 predecessor has issued and
  // its latency has elapsed.  (The issue loop and the stall-attribution
  // scan share this definition.)
  const auto ready_at = [&](const NodeId id, const Time t) {
    for (const auto eidx : g.in_edges(id)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance != 0 || pos[e.from] == static_cast<std::size_t>(-1)) {
        continue;
      }
      const Time it = result.issue_time[e.from];
      if (it < 0 || it + g.node(e.from).exec_time + e.latency > t) {
        return false;
      }
    }
    return true;
  };
  // A free unit of `id`'s class at cycle `t`, or -1.
  const auto free_unit_at = [&](const NodeId id, const Time t) {
    const NodeInfo& info = g.node(id);
    const int base = unit_base[static_cast<std::size_t>(info.fu_class)];
    for (int k = 0; k < machine.fu_count(info.fu_class); ++k) {
      if (unit_free[static_cast<std::size_t>(base + k)] <= t) {
        return base + k;
      }
    }
    return -1;
  };

  const Time t_limit =
      g.total_work() +
      static_cast<Time>(n + 1) * (g.max_latency() + g.max_exec_time()) + 1;

  Time t = 0;
  while (remaining > 0) {
    AIS_CHECK(t <= t_limit, "simulator failed to make progress");
    {
      // Window occupancy at cycle start: unissued instructions the window
      // exposes this cycle.
      const std::size_t limit =
          std::min(n, head + static_cast<std::size_t>(window));
      std::size_t occ = 0;
      for (std::size_t p = head; p < limit; ++p) {
        if (!issued[p]) ++occ;
      }
      ++result.window_occupancy[occ];
    }
    int issued_this_cycle = 0;
    bool progressed = true;
    while (progressed && issued_this_cycle < machine.issue_width()) {
      progressed = false;
      const std::size_t limit =
          std::min(n, head + static_cast<std::size_t>(window));
      for (std::size_t p = head; p < limit; ++p) {
        if (issued[p]) continue;
        const NodeId id = list[p];
        if (!ready_at(id, t)) continue;
        const int chosen = free_unit_at(id, t);
        if (chosen < 0) continue;

        result.issue_time[id] = t;
        unit_free[static_cast<std::size_t>(chosen)] =
            t + g.node(id).exec_time;
        issued[p] = true;
        --remaining;
        ++issued_this_cycle;
        while (head < n && issued[head]) ++head;  // slide the window
        progressed = true;
        break;  // rescan from the (possibly advanced) head
      }
    }
    if (issued_this_cycle == 0 && remaining > 0) {
      ++result.stall_cycles;
      // Attribution: if some instruction past the window's reach could have
      // issued this very cycle, the head blockage is what stalled us;
      // otherwise no depth of lookahead would have helped (latency stall).
      const std::size_t limit =
          std::min(n, head + static_cast<std::size_t>(window));
      bool blocked_by_window = false;
      for (std::size_t p = limit; p < n; ++p) {
        if (issued[p]) continue;  // cannot happen (window only widens), but
                                  // keep the scan independent of that proof
        const NodeId id = list[p];
        if (ready_at(id, t) && free_unit_at(id, t) >= 0) {
          blocked_by_window = true;
          break;
        }
      }
      if (blocked_by_window) {
        ++result.window_stall_cycles;
      } else {
        ++result.latency_stall_cycles;
      }
    }
    ++t;
  }

  for (const NodeId id : list) {
    result.completion = std::max(
        result.completion, result.issue_time[id] + g.node(id).exec_time);
  }
  AIS_OBS_COUNT(obs::ctr::kSimRuns);
  AIS_OBS_COUNT(obs::ctr::kSimCycles, static_cast<std::uint64_t>(t));
  AIS_OBS_COUNT(obs::ctr::kSimStallLatency,
                static_cast<std::uint64_t>(result.latency_stall_cycles));
  AIS_OBS_COUNT(obs::ctr::kSimStallWindow,
                static_cast<std::uint64_t>(result.window_stall_cycles));
  return result;
}

Time simulated_completion(const DepGraph& g, const MachineModel& machine,
                          const std::vector<NodeId>& list, int window) {
  return simulate_list(g, machine, list, window).completion;
}

}  // namespace ais
