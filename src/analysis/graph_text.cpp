#include "analysis/graph_text.hpp"

#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

namespace ais::analysis {
namespace {

void set_error(std::string* error, std::size_t line, const std::string& msg) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line) + ": " + msg;
  }
}

/// Splits on whitespace; strips '#'/';' comments first.
std::vector<std::string> tokenize(const std::string& line) {
  std::string code = line;
  const std::size_t hash = code.find_first_of("#;");
  if (hash != std::string::npos) code.erase(hash);
  std::istringstream in(code);
  std::vector<std::string> tokens;
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

/// Parses a "key=value" attribute token with an integer value.
bool parse_attr(const std::string& tok, std::string* key, int* value) {
  const std::size_t eq = tok.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == tok.size()) {
    return false;
  }
  *key = tok.substr(0, eq);
  char* end = nullptr;
  const long v = std::strtol(tok.c_str() + eq + 1, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *value = static_cast<int>(v);
  return true;
}

}  // namespace

std::optional<DepGraph> parse_graph_text(const std::string& text,
                                         std::string* error) {
  DepGraph g;
  std::map<std::string, NodeId> by_name;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& kind = tokens[0];

    if (kind == "graph") {
      continue;  // informational header
    }

    if (kind == "node") {
      if (tokens.size() < 2) {
        set_error(error, lineno, "node needs a name");
        return std::nullopt;
      }
      const std::string& name = tokens[1];
      if (by_name.count(name) != 0) {
        set_error(error, lineno, "duplicate node name '" + name + "'");
        return std::nullopt;
      }
      int exec = 1, fu = 0, block = 0;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        std::string key;
        int value = 0;
        if (!parse_attr(tokens[i], &key, &value)) {
          set_error(error, lineno, "bad attribute '" + tokens[i] + "'");
          return std::nullopt;
        }
        if (key == "exec") {
          exec = value;
        } else if (key == "fu") {
          fu = value;
        } else if (key == "block") {
          block = value;
        } else {
          set_error(error, lineno, "unknown node attribute '" + key + "'");
          return std::nullopt;
        }
      }
      by_name.emplace(name, g.add_node(name, exec, fu, block));
      continue;
    }

    if (kind == "edge") {
      if (tokens.size() < 3) {
        set_error(error, lineno, "edge needs FROM and TO node names");
        return std::nullopt;
      }
      const auto from = by_name.find(tokens[1]);
      const auto to = by_name.find(tokens[2]);
      if (from == by_name.end() || to == by_name.end()) {
        set_error(error, lineno,
                  "edge references undeclared node '" +
                      (from == by_name.end() ? tokens[1] : tokens[2]) + "'");
        return std::nullopt;
      }
      int lat = 0, dist = 0;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        std::string key;
        int value = 0;
        if (!parse_attr(tokens[i], &key, &value)) {
          set_error(error, lineno, "bad attribute '" + tokens[i] + "'");
          return std::nullopt;
        }
        if (key == "lat") {
          lat = value;
        } else if (key == "dist") {
          dist = value;
        } else {
          set_error(error, lineno, "unknown edge attribute '" + key + "'");
          return std::nullopt;
        }
      }
      g.add_edge(from->second, to->second, lat, dist);
      continue;
    }

    set_error(error, lineno, "unknown declaration '" + kind + "'");
    return std::nullopt;
  }
  return g;
}

std::string write_graph_text(const DepGraph& g, const std::string& name) {
  // Node names come from instruction renderings ("MUL r0, r6, r0") when the
  // graph was built by depbuild: whitespace-mangled and possibly duplicated.
  // Emitted names must be single unique tokens to round-trip, so whitespace
  // becomes '_' and duplicates get an id prefix.
  std::vector<std::string> emitted(g.num_nodes());
  std::map<std::string, int> uses;
  for (NodeId id = 0; id < static_cast<NodeId>(g.num_nodes()); ++id) {
    std::string s = g.node(id).name;
    for (char& c : s) {
      if (c == ' ' || c == '\t') c = '_';
    }
    if (s.empty()) {
      s = "n";
      s += std::to_string(id);
    }
    emitted[id] = s;
    ++uses[s];
  }
  for (NodeId id = 0; id < static_cast<NodeId>(g.num_nodes()); ++id) {
    if (uses[emitted[id]] > 1) {
      std::string unique = "n";
      unique += std::to_string(id);
      unique += ".";
      unique += emitted[id];
      emitted[id] = std::move(unique);
    }
  }

  std::string out;
  if (!name.empty()) out += "graph " + name + "\n";
  for (NodeId id = 0; id < static_cast<NodeId>(g.num_nodes()); ++id) {
    const NodeInfo& n = g.node(id);
    out += "node " + emitted[id];
    if (n.exec_time != 1) out += " exec=" + std::to_string(n.exec_time);
    if (n.fu_class != 0) out += " fu=" + std::to_string(n.fu_class);
    if (n.block != 0) out += " block=" + std::to_string(n.block);
    out += "\n";
  }
  for (const DepEdge& e : g.edges()) {
    out += "edge " + emitted[e.from] + " " + emitted[e.to];
    if (e.latency != 0) out += " lat=" + std::to_string(e.latency);
    if (e.distance != 0) out += " dist=" + std::to_string(e.distance);
    out += "\n";
  }
  return out;
}

}  // namespace ais::analysis
