// IR-level rules: the legacy aislint program lints, re-homed as registry
// rules (same ids, same messages — tests and tooling key on them), plus the
// cross-block dead-def rule that sees through fallthrough chains where
// verify/lint.cpp's dead-write stops at block boundaries.
#include <map>
#include <string>
#include <utility>

#include "analysis/rules.hpp"
#include "verify/lint.hpp"

namespace ais::analysis::internal {
namespace {

/// One legacy lint check exposed as a rule: filters the context's shared
/// lint_program report (one scan per run_analysis, not one per rule) down
/// to the diagnostics carrying this rule's code, so each check stays
/// individually addressable (--rule=, --Werror=) at no repeated cost.
RuleImpl legacy_rule(const char* id, const char* summary, Severity sev) {
  RuleInfo info;
  info.id = id;
  info.summary = summary;
  info.default_severity = sev;
  info.needs_program = true;
  const std::string code = id;
  return RuleImpl{
      std::move(info),
      [code](RuleContext& ctx, Severity effective,
             std::vector<Finding>& out) {
        for (const verify::Diagnostic& d : ctx.lint().diagnostics()) {
          if (d.code != code) continue;
          Finding f;
          f.rule = code;
          f.severity = effective;
          f.message = d.message;
          f.block = d.block;
          f.subject = d.subject;
          out.push_back(std::move(f));
        }
      },
  };
}

/// Register key for the dead-def scan (class and index).
int reg_key(const Reg& r) {
  return static_cast<int>(r.cls) * 256 + static_cast<int>(r.idx);
}

/// Cross-block dead defs: a register written in one block and overwritten in
/// a *later* block of the same linear (fallthrough-certain) segment with no
/// read in between.  Segments end at conditional branches and at
/// unconditional branches that do not target the next block — past those,
/// another path may read the def, so nothing is reported.  Same-block
/// overwrites are the legacy dead-write rule's territory and are skipped
/// here to keep findings disjoint.
void rule_dead_def(RuleContext& ctx, Severity effective,
                   std::vector<Finding>& out) {
  const Program& prog = *ctx.input.program;

  // Sites are (block, instruction) indices; the rendering an eventual
  // finding needs is deferred so the common no-finding scan allocates
  // nothing per definition.
  struct DefSite {
    int block = -1;
    const Instruction* inst = nullptr;
    bool used = false;
  };
  std::map<int, DefSite> last_def;

  for (std::size_t b = 0; b < prog.blocks.size(); ++b) {
    const BasicBlock& bb = prog.blocks[b];
    for (const Instruction& inst : bb.insts) {
      for (const Reg& r : inst.uses) {
        const auto it = last_def.find(reg_key(r));
        if (it != last_def.end()) it->second.used = true;
      }
      for (const Reg& r : inst.defs) {
        auto& site = last_def[reg_key(r)];
        if (site.block >= 0 && !site.used &&
            site.block != static_cast<int>(b)) {
          Finding f;
          f.rule = "dead-def";
          f.severity = effective;
          f.block = site.block;
          f.subject = site.inst->to_string();
          f.message = r.to_string() + " is overwritten in block " +
                      std::to_string(b) + " (" + inst.to_string() +
                      ") before any read; the definition is dead across the "
                      "fallthrough chain";
          out.push_back(std::move(f));
        }
        site = DefSite{static_cast<int>(b), &inst, false};
      }
    }

    // Decide whether control certainly falls through to block b + 1.
    bool fallthrough = b + 1 < prog.blocks.size();
    if (fallthrough && !bb.insts.empty()) {
      const Instruction& last = bb.insts.back();
      if (last.is_branch()) {
        fallthrough = last.op == Opcode::kB &&
                      last.target == prog.blocks[b + 1].label;
      }
    }
    if (!fallthrough) last_def.clear();
  }
}

}  // namespace

void append_ir_rules(std::vector<RuleImpl>& rules) {
  rules.push_back(legacy_rule(
      "branch-position", "branch that is not the final instruction of its block",
      Severity::kError));
  rules.push_back(legacy_rule(
      "branch-operand",
      "BT/BF without a condition-register source, or B with operands",
      Severity::kError));
  rules.push_back(legacy_rule("branch-no-target",
                              "branch with an empty target label",
                              Severity::kError));
  rules.push_back(legacy_rule("duplicate-label", "two blocks share a label",
                              Severity::kError));
  rules.push_back(legacy_rule("branch-target-unknown",
                              "branch target label not defined in the program",
                              Severity::kWarning));
  rules.push_back(legacy_rule("unreachable-block",
                              "block with no path from the entry block",
                              Severity::kWarning));
  rules.push_back(legacy_rule(
      "use-before-def",
      "register read before its first write, but written later",
      Severity::kWarning));
  rules.push_back(legacy_rule(
      "dead-write",
      "register written then overwritten in the same block with no read",
      Severity::kWarning));
  rules.push_back(legacy_rule("empty-block", "block with no instructions",
                              Severity::kWarning));

  RuleInfo dead_def;
  dead_def.id = "dead-def";
  dead_def.summary =
      "register defined, then overwritten in a later fallthrough block with "
      "no read in between";
  dead_def.default_severity = Severity::kWarning;
  dead_def.needs_program = true;
  rules.push_back(RuleImpl{std::move(dead_def), rule_dead_def});
}

}  // namespace ais::analysis::internal
