// Safe transitive reduction of dependence graphs (`aislint --fix`).
//
// Removing a transitively redundant edge cannot create an illegal schedule
// (the implying path still orders the endpoints with at least the same
// separation), but it CAN change which legal schedule the rank heuristic
// picks: ranks depend on the edge multiset, not just the partial order.  So
// the fix is not applied on faith — reduce_and_prove() schedules both graphs
// through the production pipeline (schedule cache bypassed) and accepts the
// reduction only when the planning permutation and every per-block emission
// are byte-identical.  See docs/ANALYSIS.md, "fix-it safety argument".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/depgraph.hpp"
#include "machine/machine_model.hpp"

namespace ais::analysis {

/// Indices into g.edges() of distance-0 edges implied by a longer-or-equal
/// path of other distance-0 edges (path weight = sum of latencies plus the
/// execution times of interior nodes), plus edges dominated by a parallel
/// duplicate.  Deterministic order (ascending edge index).  Empty when the
/// distance-0 subgraph is cyclic (the dep-cycle rule owns that input).
std::vector<std::size_t> redundant_edges(const DepGraph& g);

/// `g` minus the edges whose original indices appear in `remove`.
DepGraph remove_edges(const DepGraph& g, const std::vector<std::size_t>& remove);

struct FixResult {
  /// The reduced graph (== input when nothing was removable).
  DepGraph graph;
  /// Original edge indices removed, ascending.
  std::vector<std::size_t> removed;
  /// True iff the byte-identity proof succeeded (always true when `removed`
  /// is empty: an unchanged graph is trivially identical).
  bool proven = false;
  /// Human-readable proof summary or failure reason.
  std::string detail;
};

/// Iterates redundant_edges to a fixpoint (each round recomputes against the
/// already-reduced graph, so an edge is only removed when the *remaining*
/// edges imply it), then proves schedule byte-identity by scheduling both
/// graphs with Algorithm Lookahead at `window` (0 = machine default) under a
/// cache bypass and comparing planning order and per-block emissions.
/// On proof failure the input graph is returned unchanged with proven=false.
FixResult reduce_and_prove(const DepGraph& g, const MachineModel& machine,
                           int window = 0);

}  // namespace ais::analysis
