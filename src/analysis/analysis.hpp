// Static-analysis framework over ir::Program + DepGraph.
//
// A pass manager runs registered rules against an AnalysisInput (program
// and/or dependence graph and/or machine model — each rule declares what it
// needs and is skipped when an ingredient is absent) and collects structured
// Findings: rule id, effective severity, location (block / subject) and an
// optional machine-applicable fix-it.  `aislint` is the CLI front end;
// docs/ANALYSIS.md is the rule catalog.
//
// Severity model (docs/ANALYSIS.md):
//   error    breaks scheduling or contradicts the machine model; exit 1
//   warning  suspicious but schedulable; exit 1 only under --Werror
//   note     advisory (optimization opportunities); never affects exit code
//
// "Analysis-clean at default severity" means zero errors and zero warnings;
// notes are allowed (the transitive-redundancy and schedule-quality advisors
// fire on virtually every real dependence graph by construction —
// ir/depbuild.cpp intentionally does not transitively reduce).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/depgraph.hpp"
#include "ir/asm_parser.hpp"
#include "machine/machine_model.hpp"
#include "verify/report.hpp"

namespace ais::analysis {

/// Shared with the verifier so diagnostics and findings rank identically.
using Severity = verify::Severity;

/// A machine-applicable repair: edge indices (into DepGraph::edges()) whose
/// removal fixes the finding.  Applied only by `aislint --fix`, which proves
/// schedule byte-identity before accepting it (see analysis/fix.hpp).
struct FixIt {
  std::string description;
  std::vector<std::size_t> remove_edges;
};

struct Finding {
  std::string rule;
  Severity severity = Severity::kWarning;
  std::string message;
  /// Basic-block index the finding is anchored to (-1 = whole input).
  int block = -1;
  /// The offending entity (instruction, node or edge rendering).
  std::string subject;
  std::optional<FixIt> fixit;

  /// "error[dep-cycle] block 1 (MUL r0, r6, r0): ..." rendering, matching
  /// verify::Diagnostic::to_string so mixed output stays uniform.
  std::string to_string() const;
};

struct RuleInfo {
  std::string id;       // stable kebab-case identifier
  std::string summary;  // one-line catalog entry (--list-rules)
  Severity default_severity = Severity::kWarning;
  bool needs_program = false;
  bool needs_graph = false;
  bool needs_machine = false;
};

/// What the rules see.  Null members are simply "not available": rules
/// needing them are skipped (and listed in AnalysisResult::rules_skipped).
struct AnalysisInput {
  const Program* program = nullptr;
  const DepGraph* graph = nullptr;
  const MachineModel* machine = nullptr;
};

struct AnalysisOptions {
  /// Run only these rules (empty = all registered rules).
  std::vector<std::string> only;
  /// Disable these rules (applied after `only`).
  std::vector<std::string> disabled;
  /// Promote all warnings to errors.
  bool warnings_as_errors = false;
  /// Promote specific rules' warnings to errors.
  std::vector<std::string> werror;
};

struct AnalysisResult {
  std::vector<Finding> findings;
  std::vector<std::string> rules_run;
  std::vector<std::string> rules_skipped;  // inputs missing
  /// Counts after severity promotion (--Werror).
  std::size_t num_errors = 0;
  std::size_t num_warnings = 0;
  std::size_t num_notes = 0;

  /// Zero errors (warnings and notes allowed).
  bool clean() const { return num_errors == 0; }
  /// Deterministic exit-code contract: 0 clean, 1 findings at error
  /// severity.  (2 is reserved for usage/IO errors, issued by the CLI.)
  int exit_code() const { return num_errors == 0 ? 0 : 1; }
};

/// All registered rules, in canonical execution order.
const std::vector<RuleInfo>& rule_registry();

/// Registry entry for `id`, or nullptr.
const RuleInfo* find_rule(std::string_view id);

/// Runs every enabled rule whose inputs are available.  Deterministic:
/// findings are ordered by (registry order, rule emission order).
AnalysisResult run_analysis(const AnalysisInput& input,
                            const AnalysisOptions& opts = {});

}  // namespace ais::analysis
