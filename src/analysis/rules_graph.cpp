// Graph-level rules: transitive redundancy, machine-model consistency,
// dependence cycles, loop-carried distance sanity and the schedule-quality
// advisor.
#include <algorithm>
#include <array>
#include <deque>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/fix.hpp"
#include "analysis/rules.hpp"
#include "core/deadlines.hpp"
#include "core/lookahead.hpp"
#include "core/rank.hpp"
#include "graph/critpath.hpp"
#include "graph/nodeset.hpp"
#include "graph/topo.hpp"

namespace ais::analysis::internal {
namespace {

std::string edge_subject(const DepGraph& g, const DepEdge& e) {
  return g.node(e.from).name + " -> " + g.node(e.to).name;
}

// --- redundant-dep-edge ---------------------------------------------------

void rule_redundant_edges(RuleContext& ctx, Severity effective,
                          std::vector<Finding>& out) {
  const DepGraph& g = *ctx.input.graph;
  for (const std::size_t eidx : redundant_edges(g)) {
    const DepEdge& e = g.edge(eidx);
    Finding f;
    f.rule = "redundant-dep-edge";
    f.severity = effective;
    f.block = g.node(e.from).block;
    f.subject = edge_subject(g, e);
    f.message = "latency-" + std::to_string(e.latency) +
                " edge is implied by a longer-or-equal dependence path; "
                "removable by --fix (schedule identity is proven before "
                "removal)";
    f.fixit = FixIt{"remove transitively redundant edge", {eidx}};
    out.push_back(std::move(f));
  }
}

// --- latency-mismatch -----------------------------------------------------

void rule_latency_mismatch(RuleContext& ctx, Severity effective,
                           std::vector<Finding>& out) {
  const DepGraph& g = *ctx.input.graph;
  const MachineModel& m = *ctx.input.machine;

  // Which execution times / producer latencies are realizable per FU class
  // on this machine: the union over operation classes assigned to that unit.
  const int num_fu = m.num_fu_classes();
  std::vector<std::set<int>> exec_ok(static_cast<std::size_t>(num_fu));
  std::vector<std::set<int>> lat_ok(static_cast<std::size_t>(num_fu));
  for (std::size_t c = 0; c < kNumOpClasses; ++c) {
    const OpTiming& t = m.timing(static_cast<OpClass>(c));
    if (t.fu_class < 0 || t.fu_class >= num_fu) continue;
    exec_ok[static_cast<std::size_t>(t.fu_class)].insert(t.exec_time);
    lat_ok[static_cast<std::size_t>(t.fu_class)].insert(t.latency);
  }

  const auto fu_name = [&](int fu) { return m.fu_classes()[
      static_cast<std::size_t>(fu)].name; };

  for (NodeId id = 0; id < static_cast<NodeId>(g.num_nodes()); ++id) {
    const NodeInfo& node = g.node(id);
    if (node.fu_class < 0 || node.fu_class >= num_fu) {
      Finding f;
      f.rule = "latency-mismatch";
      f.severity = effective;
      f.block = node.block;
      f.subject = node.name;
      f.message = "functional-unit class " + std::to_string(node.fu_class) +
                  " does not exist on machine '" + m.name() + "' (" +
                  std::to_string(num_fu) + " classes)";
      out.push_back(std::move(f));
      continue;
    }
    const auto& execs = exec_ok[static_cast<std::size_t>(node.fu_class)];
    if (execs.find(node.exec_time) == execs.end()) {
      Finding f;
      f.rule = "latency-mismatch";
      f.severity = effective;
      f.block = node.block;
      f.subject = node.name;
      f.message = "no '" + m.name() + "' operation on unit class '" +
                  fu_name(node.fu_class) + "' executes in " +
                  std::to_string(node.exec_time) + " cycle(s)";
      out.push_back(std::move(f));
    }
  }

  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    const DepEdge& e = g.edge(i);
    const NodeInfo& from = g.node(e.from);
    if (from.fu_class < 0 || from.fu_class >= num_fu) continue;  // reported
    if (e.latency == 0) continue;  // anti/output/control edges are latency-0
    const auto& lats = lat_ok[static_cast<std::size_t>(from.fu_class)];
    if (e.latency < 0 || lats.find(e.latency) == lats.end()) {
      Finding f;
      f.rule = "latency-mismatch";
      f.severity = effective;
      f.block = from.block;
      f.subject = edge_subject(g, e);
      f.message = "edge latency " + std::to_string(e.latency) +
                  " contradicts machine '" + m.name() +
                  "': no operation on unit class '" + fu_name(from.fu_class) +
                  "' produces with that latency";
      out.push_back(std::move(f));
    }
  }
}

// --- dep-cycle ------------------------------------------------------------

void rule_dep_cycle(RuleContext& ctx, Severity effective,
                    std::vector<Finding>& out) {
  const DepGraph& g = *ctx.input.graph;
  const std::size_t n = g.num_nodes();

  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    const DepEdge& e = g.edge(i);
    if (e.from == e.to && e.distance == 0) {
      Finding f;
      f.rule = "dep-cycle";
      f.severity = effective;
      f.block = g.node(e.from).block;
      f.subject = g.node(e.from).name;
      f.message = "distance-0 self-edge: an instruction cannot precede "
                  "itself within one iteration";
      out.push_back(std::move(f));
    }
  }

  // Kahn peel over distance-0 non-self edges; survivors contain all cycles.
  std::vector<int> indeg(n, 0);
  for (const DepEdge& e : g.edges()) {
    if (e.distance == 0 && e.from != e.to) ++indeg[e.to];
  }
  std::deque<NodeId> queue;
  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    if (indeg[id] == 0) queue.push_back(id);
  }
  std::size_t peeled = 0;
  while (!queue.empty()) {
    const NodeId x = queue.front();
    queue.pop_front();
    ++peeled;
    for (const auto eidx : g.out_edges(x)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance != 0 || e.from == e.to) continue;
      if (--indeg[e.to] == 0) queue.push_back(e.to);
    }
  }
  if (peeled == n) return;

  // Minimal witness: shortest cycle through any surviving node (BFS per
  // survivor; the survivor set is tiny — cycles plus their downstream cone).
  std::vector<NodeId> best_cycle;
  std::vector<std::size_t> dist(n);
  std::vector<NodeId> parent(n);
  for (NodeId start = 0; start < static_cast<NodeId>(n); ++start) {
    if (indeg[start] == 0) continue;  // peeled
    std::fill(dist.begin(), dist.end(), static_cast<std::size_t>(-1));
    dist[start] = 0;
    std::deque<NodeId> bfs{start};
    std::size_t back = static_cast<std::size_t>(-1);
    NodeId back_from = kInvalidNode;
    while (!bfs.empty()) {
      const NodeId x = bfs.front();
      bfs.pop_front();
      for (const auto eidx : g.out_edges(x)) {
        const DepEdge& e = g.edge(eidx);
        if (e.distance != 0 || e.from == e.to) continue;
        if (indeg[e.to] == 0) continue;  // peeled nodes are cycle-free
        if (e.to == start) {
          if (dist[x] + 1 < back) {
            back = dist[x] + 1;
            back_from = x;
          }
          continue;
        }
        if (dist[e.to] != static_cast<std::size_t>(-1)) continue;
        dist[e.to] = dist[x] + 1;
        parent[e.to] = x;
        bfs.push_back(e.to);
      }
    }
    if (back_from == kInvalidNode) continue;
    if (!best_cycle.empty() && back >= best_cycle.size()) continue;
    std::vector<NodeId> cycle;
    for (NodeId x = back_from; x != start; x = parent[x]) cycle.push_back(x);
    cycle.push_back(start);
    std::reverse(cycle.begin(), cycle.end());
    best_cycle = std::move(cycle);
    if (best_cycle.size() == 2) break;  // no shorter multi-node cycle exists
  }
  if (best_cycle.empty()) return;  // self-edges only, reported above

  std::string witness;
  for (const NodeId id : best_cycle) {
    witness += g.node(id).name;
    witness += " -> ";
  }
  witness += g.node(best_cycle.front()).name;
  Finding f;
  f.rule = "dep-cycle";
  f.severity = effective;
  f.block = g.node(best_cycle.front()).block;
  f.subject = witness;
  f.message = "distance-0 dependence cycle of length " +
              std::to_string(best_cycle.size()) +
              "; no schedule can satisfy it (minimal witness shown)";
  out.push_back(std::move(f));
}

// --- loop-distance --------------------------------------------------------

void rule_loop_distance(RuleContext& ctx, Severity effective,
                        std::vector<Finding>& out) {
  const DepGraph& g = *ctx.input.graph;
  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    const DepEdge& e = g.edge(i);
    if (e.distance < 0) {
      Finding f;
      f.rule = "loop-distance";
      f.severity = effective;
      f.block = g.node(e.from).block;
      f.subject = edge_subject(g, e);
      f.message = "negative iteration distance " +
                  std::to_string(e.distance) +
                  ": dependences cannot flow to earlier iterations";
      out.push_back(std::move(f));
      continue;
    }
    // Only meaningful in a loop graph (carried edges present): a distance-0
    // edge against program order says instance i of an *earlier* instruction
    // waits on instance i of a later one — every iteration contradicts
    // program order, so the §5 steady state is unreachable.  (In trace
    // graphs all dependences follow program order, and genuine cycles are
    // the dep-cycle rule's finding.)
    if (g.has_carried_edges() && e.distance == 0 && e.to < e.from) {
      Finding f;
      f.rule = "loop-distance";
      f.severity = effective;
      f.block = g.node(e.from).block;
      f.subject = edge_subject(g, e);
      f.message = "distance-0 back-edge in a loop graph: steady state is "
                  "unreachable (should this dependence be distance >= 1?)";
      out.push_back(std::move(f));
    }
  }
}

// --- schedule-advisor -----------------------------------------------------

void rule_schedule_advisor(RuleContext& ctx, Severity effective,
                           std::vector<Finding>& out) {
  const DepGraph& g = *ctx.input.graph;
  const MachineModel& m = *ctx.input.machine;
  if (g.num_nodes() == 0) return;

  const RankScheduler scheduler(g, m);
  const std::vector<NodeSet> blocks = blocks_of(g);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const NodeSet& active = blocks[b];
    if (active.empty()) continue;
    if (!is_acyclic(g, active)) continue;  // dep-cycle owns that finding

    const Time cp = critical_path(g, active);

    // Resource bounds: per-FU-class work over the class's unit count, and
    // the issue-width bound on starts per cycle.
    std::vector<Time> class_work(static_cast<std::size_t>(m.num_fu_classes()),
                                 0);
    std::size_t insts = 0;
    for (const NodeId id : active.ids()) {
      const NodeInfo& node = g.node(id);
      ++insts;
      if (node.fu_class >= 0 && node.fu_class < m.num_fu_classes()) {
        class_work[static_cast<std::size_t>(node.fu_class)] += node.exec_time;
      }
    }
    Time resource = (static_cast<Time>(insts) + m.issue_width() - 1) /
                    m.issue_width();
    for (int c = 0; c < m.num_fu_classes(); ++c) {
      const Time units = m.fu_count(c);
      resource = std::max(
          resource, (class_work[static_cast<std::size_t>(c)] + units - 1) /
                        units);
    }
    const Time bound = std::max(cp, resource);

    const RankResult result = scheduler.run(
        active, uniform_deadlines(g, huge_deadline(g, active)));
    if (!result.feasible || result.makespan <= bound) continue;

    Finding f;
    f.rule = "schedule-advisor";
    f.severity = effective;
    f.block = static_cast<int>(b);
    f.message = "standalone rank schedule completes in " +
                std::to_string(result.makespan) +
                " cycle(s) vs lower bound " + std::to_string(bound) +
                " (critical path " + std::to_string(cp) +
                ", resource bound " + std::to_string(resource) +
                "): gap of " + std::to_string(result.makespan - bound) +
                " cycle(s) may close with different tie-breaking";
    out.push_back(std::move(f));
  }
}

RuleImpl graph_rule(const char* id, const char* summary, Severity sev,
                    bool needs_machine,
                    void (*fn)(RuleContext&, Severity,
                               std::vector<Finding>&)) {
  RuleInfo info;
  info.id = id;
  info.summary = summary;
  info.default_severity = sev;
  info.needs_graph = true;
  info.needs_machine = needs_machine;
  return RuleImpl{std::move(info), fn};
}

}  // namespace

void append_graph_rules(std::vector<RuleImpl>& rules) {
  rules.push_back(graph_rule(
      "dep-cycle",
      "distance-0 dependence cycle or self-edge (minimal cycle witness)",
      Severity::kError, /*needs_machine=*/false, rule_dep_cycle));
  rules.push_back(graph_rule(
      "loop-distance",
      "loop-carried distance sanity: negative distances, distance-0 "
      "back-edges with unreachable steady state",
      Severity::kError, /*needs_machine=*/false, rule_loop_distance));
  rules.push_back(graph_rule(
      "latency-mismatch",
      "edge latencies / FU classes / execution times contradicting the "
      "active machine preset",
      Severity::kError, /*needs_machine=*/true, rule_latency_mismatch));
  rules.push_back(graph_rule(
      "redundant-dep-edge",
      "dependence edge implied by a longer-or-equal path (transitively "
      "redundant; --fix removes with a schedule-identity proof)",
      Severity::kNote, /*needs_machine=*/false, rule_redundant_edges));
  rules.push_back(graph_rule(
      "schedule-advisor",
      "per-block makespan vs the critical-path/resource lower bound",
      Severity::kNote, /*needs_machine=*/true, rule_schedule_advisor));
}

}  // namespace ais::analysis::internal
