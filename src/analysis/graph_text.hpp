// Text serialization of dependence graphs (.dg files).
//
// The analysis fixture corpus (tests/analysis_corpus/) states graph-level
// defects directly — a redundant edge, an impossible latency, a cycle —
// without routing through depbuild, which by construction cannot produce
// them.  Grammar (one declaration per line, '#' or ';' start comments):
//
//   graph NAME                     optional; informational
//   node NAME [exec=E] [fu=F] [block=B]
//   edge FROM TO [lat=L] [dist=D]
//
// Node declaration order is program order (ids are assigned 0, 1, ... in
// order); FROM/TO refer to node names, which must be unique.  Defaults:
// exec=1, fu=0, block=0, lat=0, dist=0.
#pragma once

#include <optional>
#include <string>

#include "graph/depgraph.hpp"

namespace ais::analysis {

/// Parses .dg text.  Returns std::nullopt and sets *error (when non-null)
/// with a "line N: ..." message on malformed input.
std::optional<DepGraph> parse_graph_text(const std::string& text,
                                         std::string* error = nullptr);

/// Round-trippable rendering: nodes in id order, edges in insertion order,
/// default-valued attributes omitted.
std::string write_graph_text(const DepGraph& g,
                             const std::string& name = "");

}  // namespace ais::analysis
