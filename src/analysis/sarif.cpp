#include "analysis/sarif.hpp"

#include <cstdio>

namespace ais::analysis {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* sarif_level(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "none";
}

}  // namespace

std::string to_sarif(const AnalysisResult& result,
                     const std::string& artifact_uri) {
  const std::vector<RuleInfo>& rules = rule_registry();

  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"aislint\",\n"
      "          \"informationUri\": \"docs/ANALYSIS.md\",\n"
      "          \"rules\": [\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += "            {\"id\": \"" + json_escape(rules[i].id) +
           "\", \"shortDescription\": {\"text\": \"" +
           json_escape(rules[i].summary) +
           "\"}, \"defaultConfiguration\": {\"level\": \"" +
           sarif_level(rules[i].default_severity) + "\"}}";
    out += (i + 1 < rules.size()) ? ",\n" : "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";

  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    std::size_t rule_index = 0;
    for (std::size_t r = 0; r < rules.size(); ++r) {
      if (rules[r].id == f.rule) {
        rule_index = r;
        break;
      }
    }
    std::string location = f.block >= 0
                               ? "block " + std::to_string(f.block)
                               : std::string("program");
    if (!f.subject.empty()) location += ": " + f.subject;

    out += "        {\"ruleId\": \"" + json_escape(f.rule) +
           "\", \"ruleIndex\": " + std::to_string(rule_index) +
           ", \"level\": \"" + sarif_level(f.severity) +
           "\", \"message\": {\"text\": \"" + json_escape(f.message) +
           "\"}, \"locations\": [{";
    if (!artifact_uri.empty()) {
      out += "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"" +
             json_escape(artifact_uri) + "\"}}, ";
    }
    out += "\"logicalLocations\": [{\"fullyQualifiedName\": \"" +
           json_escape(location) + "\"}]}]";
    if (f.fixit.has_value()) {
      out += ", \"properties\": {\"fixit\": \"" +
             json_escape(f.fixit->description) + "\"}";
    }
    out += "}";
    out += (i + 1 < result.findings.size()) ? ",\n" : "\n";
  }

  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace ais::analysis
