// Internal rule table shared by the framework runner (analysis.cpp) and the
// rule implementations (rules_ir.cpp, rules_graph.cpp).  Not installed API;
// include analysis/analysis.hpp instead.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "analysis/analysis.hpp"
#include "verify/lint.hpp"

namespace ais::analysis::internal {

/// Per-run state shared by all rules: the inputs plus results that several
/// rules want but only one should pay for.  The legacy lint rules all
/// filter the same linear program scan, so run_analysis hands every rule
/// the same context and lint() computes the report exactly once.
class RuleContext {
 public:
  explicit RuleContext(const AnalysisInput& input) : input(input) {}

  const AnalysisInput& input;

  /// The shared lint_program report (input.program must be non-null).
  const verify::Report& lint() {
    if (!lint_) lint_ = verify::lint_program(*input.program);
    return *lint_;
  }

 private:
  std::optional<verify::Report> lint_;
};

struct RuleImpl {
  RuleInfo info;
  /// Emits findings at `effective` severity (the registry default unless
  /// promoted by --Werror).  Inputs the rule declared in `info` are
  /// guaranteed non-null by the runner.
  std::function<void(RuleContext&, Severity, std::vector<Finding>&)> run;
};

/// IR rules: the legacy aislint program lints plus cross-block dead defs.
void append_ir_rules(std::vector<RuleImpl>& rules);

/// Graph rules: redundancy, machine-model consistency, cycles, loop
/// distances and the schedule-quality advisor.
void append_graph_rules(std::vector<RuleImpl>& rules);

/// The full table, built once (canonical order: IR rules, then graph rules).
const std::vector<RuleImpl>& all_rules();

}  // namespace ais::analysis::internal
