#include "analysis/fix.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "core/lookahead.hpp"
#include "core/rank.hpp"
#include "core/schedule_cache.hpp"
#include "graph/nodeset.hpp"
#include "graph/topo.hpp"

namespace ais::analysis {
namespace {

constexpr Time kNegInf = std::numeric_limits<Time>::min() / 4;

/// Number of distance-0 out-edges of `u`.
std::size_t dist0_outdeg(const DepGraph& g, NodeId u) {
  std::size_t n = 0;
  for (const auto eidx : g.out_edges(u)) {
    if (g.edge(eidx).distance == 0) ++n;
  }
  return n;
}

}  // namespace

std::vector<std::size_t> redundant_edges(const DepGraph& g) {
  std::vector<std::size_t> redundant;
  const std::size_t n = g.num_nodes();
  if (n == 0) return redundant;
  const auto order = topo_order(g, NodeSet::all(n));
  if (!order) return redundant;  // cyclic: dep-cycle's input, not ours

  std::vector<std::size_t> pos(n, 0);
  for (std::size_t i = 0; i < order->size(); ++i) {
    pos[(*order)[i]] = i;
  }

  // Per-source DP.  best1[x]: max weight of a single direct edge u -> x;
  // best2[x]: max weight over paths u -> x with >= 2 edges.  Weight of a
  // path = sum of edge latencies + sum of interior-node execution times, so
  // a path of weight w enforces start(x) >= completion(u) + w — the same
  // constraint shape a direct edge of latency w enforces.
  std::vector<Time> best1(n), best2(n);
  for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
    if (dist0_outdeg(g, u) < 2) continue;  // no alternative path can leave u

    std::fill(best1.begin(), best1.end(), kNegInf);
    std::fill(best2.begin(), best2.end(), kNegInf);
    for (const auto eidx : g.out_edges(u)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance != 0 || e.to == u) continue;
      best1[e.to] = std::max(best1[e.to], static_cast<Time>(e.latency));
    }
    for (std::size_t i = pos[u] + 1; i < order->size(); ++i) {
      const NodeId x = (*order)[i];
      const Time best = std::max(best1[x], best2[x]);
      if (best == kNegInf) continue;
      const Time through = best + g.node(x).exec_time;
      for (const auto eidx : g.out_edges(x)) {
        const DepEdge& e = g.edge(eidx);
        if (e.distance != 0) continue;
        best2[e.to] = std::max(best2[e.to], through + e.latency);
      }
    }

    for (const auto eidx : g.out_edges(u)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance != 0 || e.to == u) continue;
      if (best2[e.to] >= e.latency) {
        redundant.push_back(eidx);
        continue;
      }
      // Parallel duplicates: dominated by another direct u -> to edge (the
      // earlier index survives a tie, so exactly one of a duplicate pair is
      // flagged).
      for (const auto oidx : g.out_edges(u)) {
        if (oidx == eidx) continue;
        const DepEdge& o = g.edge(oidx);
        if (o.to != e.to || o.distance != 0) continue;
        if (o.latency > e.latency ||
            (o.latency == e.latency && oidx < eidx)) {
          redundant.push_back(eidx);
          break;
        }
      }
    }
  }
  std::sort(redundant.begin(), redundant.end());
  return redundant;
}

DepGraph remove_edges(const DepGraph& g,
                      const std::vector<std::size_t>& remove) {
  DepGraph out;
  for (NodeId id = 0; id < static_cast<NodeId>(g.num_nodes()); ++id) {
    const NodeInfo& info = g.node(id);
    out.add_node(info.name, info.exec_time, info.fu_class, info.block);
  }
  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    if (std::binary_search(remove.begin(), remove.end(), i)) continue;
    const DepEdge& e = g.edge(i);
    out.add_edge(e.from, e.to, e.latency, e.distance);
  }
  return out;
}

FixResult reduce_and_prove(const DepGraph& g, const MachineModel& machine,
                           int window) {
  FixResult result;
  if (!is_acyclic(g, NodeSet::all(g.num_nodes()))) {
    result.graph = g;
    result.detail = "distance-0 subgraph is cyclic; nothing reduced";
    return result;
  }

  // Fixpoint reduction: each round re-derives redundancy against the edges
  // that survived the previous round, so simultaneous removals can never
  // rely on each other as the implying path.
  DepGraph reduced = g;
  std::vector<std::size_t> kept(g.num_edges());  // reduced idx -> original idx
  for (std::size_t i = 0; i < g.num_edges(); ++i) kept[i] = i;
  while (true) {
    const std::vector<std::size_t> round = redundant_edges(reduced);
    if (round.empty()) break;
    std::vector<std::size_t> next_kept;
    next_kept.reserve(kept.size() - round.size());
    for (std::size_t i = 0; i < kept.size(); ++i) {
      if (std::binary_search(round.begin(), round.end(), i)) {
        result.removed.push_back(kept[i]);
      } else {
        next_kept.push_back(kept[i]);
      }
    }
    kept = std::move(next_kept);
    reduced = remove_edges(reduced, round);
  }
  std::sort(result.removed.begin(), result.removed.end());

  if (result.removed.empty()) {
    result.graph = g;
    result.proven = true;
    result.detail = "no transitively redundant edges; graph unchanged";
    return result;
  }

  // Byte-identity proof: the production pipeline must emit the same
  // schedule from both graphs.  The cache is bypassed so both runs compute
  // from scratch — a hit keyed on the un-reduced graph must not vouch for
  // the reduced one.
  const ScheduleCache::ScopedBypass bypass;
  LookaheadOptions opts;
  opts.window = window > 0 ? window : machine.default_window();
  const RankScheduler before(g, machine);
  const RankScheduler after(reduced, machine);
  const LookaheadResult lhs = schedule_trace(before, opts);
  const LookaheadResult rhs = schedule_trace(after, opts);

  const bool identical =
      lhs.order == rhs.order && lhs.per_block == rhs.per_block;
  if (!identical) {
    result.detail =
        "schedule changed after removing " +
        std::to_string(result.removed.size()) +
        " redundant edge(s); reduction rejected (graph unchanged)";
    result.graph = g;
    result.removed.clear();
    return result;
  }

  result.graph = std::move(reduced);
  result.proven = true;
  result.detail =
      "removed " + std::to_string(result.removed.size()) + " of " +
      std::to_string(g.num_edges()) +
      " edge(s); planning order and all per-block emissions byte-identical";
  return result;
}

}  // namespace ais::analysis
