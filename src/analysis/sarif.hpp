// SARIF 2.1.0 output for analysis results.
//
// One run, one tool ("aislint"), the full rule registry in
// tool.driver.rules (so ruleIndex resolves), one result per finding.
// Findings carry no source line numbers — the toy assembly has no file
// locations — so locations use logicalLocations (block / subject) plus the
// input artifact URI when known.  Schema:
// https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html
#pragma once

#include <string>

#include "analysis/analysis.hpp"

namespace ais::analysis {

/// Serializes `result` as a SARIF 2.1.0 log.  `artifact_uri` names the
/// analyzed input (may be empty).
std::string to_sarif(const AnalysisResult& result,
                     const std::string& artifact_uri);

}  // namespace ais::analysis
