#include "analysis/analysis.hpp"

#include <algorithm>

#include "analysis/rules.hpp"

namespace ais::analysis {
namespace internal {

const std::vector<RuleImpl>& all_rules() {
  static const std::vector<RuleImpl>* rules = [] {
    auto* r = new std::vector<RuleImpl>;
    append_ir_rules(*r);
    append_graph_rules(*r);
    return r;
  }();
  return *rules;
}

}  // namespace internal

namespace {

bool contains(const std::vector<std::string>& v, std::string_view s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

std::string Finding::to_string() const {
  std::string out = verify::severity_name(severity);
  out += "[";
  out += rule;
  out += "]";
  if (block >= 0) out += " block " + std::to_string(block);
  if (!subject.empty()) out += " (" + subject + ")";
  out += ": ";
  out += message;
  return out;
}

const std::vector<RuleInfo>& rule_registry() {
  static const std::vector<RuleInfo>* infos = [] {
    auto* v = new std::vector<RuleInfo>;
    for (const internal::RuleImpl& r : internal::all_rules()) {
      v->push_back(r.info);
    }
    return v;
  }();
  return *infos;
}

const RuleInfo* find_rule(std::string_view id) {
  for (const RuleInfo& info : rule_registry()) {
    if (info.id == id) return &info;
  }
  return nullptr;
}

AnalysisResult run_analysis(const AnalysisInput& input,
                            const AnalysisOptions& opts) {
  AnalysisResult result;
  internal::RuleContext ctx(input);
  for (const internal::RuleImpl& rule : internal::all_rules()) {
    const RuleInfo& info = rule.info;
    if (!opts.only.empty() && !contains(opts.only, info.id)) continue;
    if (contains(opts.disabled, info.id)) continue;

    const bool runnable = (!info.needs_program || input.program != nullptr) &&
                          (!info.needs_graph || input.graph != nullptr) &&
                          (!info.needs_machine || input.machine != nullptr);
    if (!runnable) {
      result.rules_skipped.push_back(info.id);
      continue;
    }

    Severity effective = info.default_severity;
    if (effective == Severity::kWarning &&
        (opts.warnings_as_errors || contains(opts.werror, info.id))) {
      effective = Severity::kError;
    }

    rule.run(ctx, effective, result.findings);
    result.rules_run.push_back(info.id);
  }

  for (const Finding& f : result.findings) {
    switch (f.severity) {
      case Severity::kError: ++result.num_errors; break;
      case Severity::kWarning: ++result.num_warnings; break;
      case Severity::kNote: ++result.num_notes; break;
    }
  }
  return result;
}

}  // namespace ais::analysis
