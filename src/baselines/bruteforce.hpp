// Exhaustive optima for small instances: the ground truth behind the
// optimality claims (§4.1) and the property-test oracle.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/depgraph.hpp"
#include "graph/nodeset.hpp"
#include "machine/machine_model.hpp"

namespace ais {

/// Minimum makespan of `block` on a *single unit* machine (arbitrary
/// latencies and execution times) by branch-and-bound over issue decisions,
/// including deliberate idling.  Intended for |block| <= ~14.
Time optimal_block_makespan(const DepGraph& g, const NodeSet& block);

/// Minimum *simulated* completion time over all per-block instruction
/// orders of a trace executed with lookahead window `window`: the true
/// anticipatory-scheduling optimum.  Enumerates every combination of block
/// permutations (topological ones only); intended for tiny traces
/// (product of per-block topological orders <= `enumeration_cap`).
/// Returns -1 if the cap would be exceeded.
Time optimal_trace_completion(const DepGraph& g, const MachineModel& machine,
                              int window,
                              std::size_t enumeration_cap = 2000000);

/// Minimum steady-state period over all single-block loop orders, measured
/// by the loop simulator with `iterations` runs.  Same enumeration cap
/// semantics as optimal_trace_completion; returns -1.0 when exceeded.
double optimal_loop_period(const DepGraph& g, const MachineModel& machine,
                           int window, int iterations = 32,
                           std::size_t enumeration_cap = 500000);

}  // namespace ais
