// Baseline block schedulers the paper positions itself against (§6).
//
// Each baseline produces a per-block instruction order *without* looking
// across block boundaries; anticipatory scheduling is compared against them
// by executing both on the same lookahead machine.  All baselines honor the
// same dependence graph and machine model.
//
//  * CP list scheduling: classic greedy by longest latency-weighted path to
//    a sink (highest level first) — the textbook local scheduler.
//  * Gibbons-Muchnick: greedy that prefers a ready instruction that does not
//    interlock with the just-issued one, breaking ties by number of
//    immediate successors, then by critical path (their §"heuristics",
//    simplified to our machine model).
//  * Warren (RS/6000 product compiler): one-pass greedy over a static
//    priority list ordered by critical path, then earliest original
//    position (simplified rendition of prioritized greedy scheduling).
//  * Per-block Rank: the Rank Algorithm run on each block in isolation —
//    block-optimal in the restricted case but lookahead-oblivious.
//  * Per-block Rank + Delay: Rank followed by Delay_Idle_Slots per block,
//    the paper's "simple application" when no trace information exists.
//  * Source order: the unscheduled input order (sanity floor).
#pragma once

#include <vector>

#include "core/rank.hpp"
#include "graph/depgraph.hpp"
#include "graph/nodeset.hpp"
#include "machine/machine_model.hpp"

namespace ais {

enum class BlockScheduler {
  kSourceOrder,
  kCriticalPathList,
  kGibbonsMuchnick,
  kWarren,
  kRank,
  kRankDelayed,
};

const char* block_scheduler_name(BlockScheduler s);

/// Orders the nodes of one block (`block` ⊆ g's nodes) for emission.
/// Only distance-0 edges inside `block` are considered.
std::vector<NodeId> schedule_block(const DepGraph& g,
                                   const MachineModel& machine,
                                   const NodeSet& block, BlockScheduler kind);

/// Applies `kind` to every block of a trace graph and concatenates the
/// per-block orders into the priority list the hardware executes.
std::vector<NodeId> schedule_trace_per_block(const DepGraph& g,
                                             const MachineModel& machine,
                                             BlockScheduler kind);

}  // namespace ais
