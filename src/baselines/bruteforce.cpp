#include "baselines/bruteforce.hpp"

#include <algorithm>
#include <functional>
#include <limits>

#include "core/lookahead.hpp"
#include "graph/critpath.hpp"
#include "sim/lookahead_sim.hpp"
#include "sim/loop_sim.hpp"
#include "support/assert.hpp"

namespace ais {
namespace {

/// DFS state for the single-unit branch-and-bound.
struct Bnb {
  const DepGraph& g;
  std::vector<NodeId> members;         // block nodes
  std::vector<std::size_t> index_of;   // NodeId -> position in members
  std::vector<Time> cp;                // critical path lengths
  Time best = std::numeric_limits<Time>::max();

  // Mutable DFS state.
  std::vector<Time> finish;  // completion per member; -1 = unscheduled
  std::vector<int> preds_left;
  Time remaining_work = 0;

  explicit Bnb(const DepGraph& graph, const NodeSet& block)
      : g(graph),
        members(block.ids()),
        index_of(graph.num_nodes(), 0),
        finish(block.size(), -1),
        preds_left(block.size(), 0) {
    AIS_CHECK(members.size() <= 20, "brute force limited to small blocks");
    const auto cp_all = critical_path_lengths(graph, block);
    for (std::size_t i = 0; i < members.size(); ++i) {
      index_of[members[i]] = i;
      cp.push_back(cp_all[members[i]]);
      remaining_work += graph.node(members[i]).exec_time;
      for (const auto eidx : graph.in_edges(members[i])) {
        const DepEdge& e = graph.edge(eidx);
        if (e.distance == 0 && block.contains(e.from)) ++preds_left[i];
      }
    }
  }

  /// Earliest dependence-legal start of member i given current finishes.
  Time release(std::size_t i) const {
    Time r = 0;
    for (const auto eidx : g.in_edges(members[i])) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance != 0) continue;
      const auto from_it =
          std::find(members.begin(), members.end(), e.from);
      if (from_it == members.end()) continue;
      const std::size_t j = static_cast<std::size_t>(from_it - members.begin());
      AIS_CHECK(finish[j] >= 0, "release queried before predecessor done");
      r = std::max(r, finish[j] + e.latency);
    }
    return r;
  }

  void dfs(Time t, std::size_t scheduled) {
    if (scheduled == members.size()) {
      best = std::min(best, t);
      return;
    }
    // Lower bounds: serial work, and longest remaining critical path.
    Time cp_bound = 0;
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (finish[i] < 0 && preds_left[i] == 0) {
        cp_bound = std::max(cp_bound, std::max(t, release(i)) + cp[i]);
      }
    }
    if (std::max(t + remaining_work, cp_bound) >= best) return;

    // Candidate decisions at time t: any available node whose release <= t,
    // or idle until the next release.
    Time next_release = std::numeric_limits<Time>::max();
    bool issued_any = false;
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (finish[i] >= 0 || preds_left[i] != 0) continue;
      const Time r = release(i);
      if (r > t) {
        next_release = std::min(next_release, r);
        continue;
      }
      // Issue member i at t.
      const Time f = t + g.node(members[i]).exec_time;
      finish[i] = f;
      remaining_work -= g.node(members[i]).exec_time;
      for (const auto eidx : g.out_edges(members[i])) {
        const DepEdge& e = g.edge(eidx);
        if (e.distance != 0) continue;
        const auto to_it = std::find(members.begin(), members.end(), e.to);
        if (to_it != members.end()) {
          --preds_left[static_cast<std::size_t>(to_it - members.begin())];
        }
      }
      dfs(f, scheduled + 1);
      for (const auto eidx : g.out_edges(members[i])) {
        const DepEdge& e = g.edge(eidx);
        if (e.distance != 0) continue;
        const auto to_it = std::find(members.begin(), members.end(), e.to);
        if (to_it != members.end()) {
          ++preds_left[static_cast<std::size_t>(to_it - members.begin())];
        }
      }
      remaining_work += g.node(members[i]).exec_time;
      finish[i] = -1;
      issued_any = true;
    }
    // Deliberate idling is only useful when some node is pending release.
    if (next_release != std::numeric_limits<Time>::max()) {
      dfs(next_release, scheduled);
    } else {
      AIS_CHECK(issued_any || scheduled == members.size(),
                "deadlocked brute-force state");
    }
  }
};

/// Enumerates topological orders of `block`, invoking fn(order); returns
/// false if more than `cap` orders would be generated.
bool for_each_topo_order(const DepGraph& g, const NodeSet& block,
                         std::size_t cap,
                         const std::function<void(const std::vector<NodeId>&)>& fn) {
  std::vector<NodeId> members = block.ids();
  std::vector<int> preds_left(g.num_nodes(), 0);
  for (const NodeId id : members) {
    for (const auto eidx : g.in_edges(id)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance == 0 && block.contains(e.from)) ++preds_left[id];
    }
  }
  std::vector<NodeId> order;
  std::size_t produced = 0;
  bool ok = true;

  std::function<void()> rec = [&]() {
    if (!ok) return;
    if (order.size() == members.size()) {
      if (++produced > cap) {
        ok = false;
        return;
      }
      fn(order);
      return;
    }
    for (const NodeId id : members) {
      if (preds_left[id] != 0) continue;
      preds_left[id] = -1;
      order.push_back(id);
      for (const auto eidx : g.out_edges(id)) {
        const DepEdge& e = g.edge(eidx);
        if (e.distance == 0 && block.contains(e.to)) --preds_left[e.to];
      }
      rec();
      for (const auto eidx : g.out_edges(id)) {
        const DepEdge& e = g.edge(eidx);
        if (e.distance == 0 && block.contains(e.to)) ++preds_left[e.to];
      }
      order.pop_back();
      preds_left[id] = 0;
      if (!ok) return;
    }
  };
  rec();
  return ok;
}

}  // namespace

Time optimal_block_makespan(const DepGraph& g, const NodeSet& block) {
  if (block.empty()) return 0;
  Bnb bnb(g, block);
  bnb.dfs(0, 0);
  return bnb.best;
}

Time optimal_trace_completion(const DepGraph& g, const MachineModel& machine,
                              int window, std::size_t enumeration_cap) {
  const std::vector<NodeSet> blocks = blocks_of(g);

  // Enumerate per-block topological orders, then take the cartesian product.
  std::vector<std::vector<std::vector<NodeId>>> options;
  std::size_t combinations = 1;
  for (const NodeSet& block : blocks) {
    std::vector<std::vector<NodeId>> orders;
    if (!for_each_topo_order(
            g, block, enumeration_cap,
            [&orders](const std::vector<NodeId>& o) { orders.push_back(o); })) {
      return -1;
    }
    if (orders.empty()) orders.push_back({});
    combinations *= orders.size();
    if (combinations > enumeration_cap) return -1;
    options.push_back(std::move(orders));
  }

  Time best = std::numeric_limits<Time>::max();
  std::vector<std::size_t> pick(options.size(), 0);
  // One scratch across the whole cartesian product: the enumeration runs
  // thousands of simulations of identically-sized instances, so the
  // buffers are allocated once and reused verbatim.
  SimScratch scratch;
  std::vector<NodeId> list;
  while (true) {
    list.clear();
    for (std::size_t b = 0; b < options.size(); ++b) {
      const auto& o = options[b][pick[b]];
      list.insert(list.end(), o.begin(), o.end());
    }
    best = std::min(best,
                    simulated_completion(g, machine, list, window, scratch));

    std::size_t b = 0;
    while (b < options.size() && ++pick[b] == options[b].size()) {
      pick[b] = 0;
      ++b;
    }
    if (b == options.size()) break;
  }
  return best;
}

double optimal_loop_period(const DepGraph& g, const MachineModel& machine,
                           int window, int iterations,
                           std::size_t enumeration_cap) {
  const NodeSet all = NodeSet::all(g.num_nodes());
  double best = std::numeric_limits<double>::infinity();
  const bool ok = for_each_topo_order(
      g, all, enumeration_cap, [&](const std::vector<NodeId>& order) {
        best = std::min(best, steady_state_period(g, machine, order, window,
                                                  iterations));
      });
  return ok ? best : -1.0;
}

}  // namespace ais
