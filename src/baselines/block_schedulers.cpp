#include "baselines/block_schedulers.hpp"

#include <algorithm>
#include <tuple>

#include "core/lookahead.hpp"
#include "core/move_idle.hpp"
#include "graph/critpath.hpp"
#include "support/assert.hpp"

namespace ais {
namespace {

/// Immediate-successor count inside the block (Gibbons-Muchnick tie rule).
std::vector<int> successor_counts(const DepGraph& g, const NodeSet& block) {
  std::vector<int> count(g.num_nodes(), 0);
  for (const NodeId id : block.ids()) {
    for (const auto eidx : g.out_edges(id)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance == 0 && block.contains(e.to)) ++count[id];
    }
  }
  return count;
}

/// Generic dynamic greedy: at each step pick the best *ready* node by the
/// provided comparator; if none is ready, advance time.  Single ordering
/// decision stream — the emitted order, not a timed schedule.
template <typename Better>
std::vector<NodeId> dynamic_greedy(const DepGraph& g, const NodeSet& block,
                                   Better better) {
  std::vector<NodeId> order;
  std::vector<int> preds_left(g.num_nodes(), 0);
  std::vector<Time> release(g.num_nodes(), 0);
  for (const NodeId id : block.ids()) {
    for (const auto eidx : g.in_edges(id)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance == 0 && block.contains(e.from)) ++preds_left[id];
    }
  }

  const std::size_t n = block.size();
  Time t = 0;
  while (order.size() < n) {
    NodeId chosen = kInvalidNode;
    for (const NodeId id : block.ids()) {
      if (preds_left[id] < 0) continue;  // already emitted
      if (preds_left[id] > 0 || release[id] > t) continue;
      if (chosen == kInvalidNode || better(id, chosen, t)) chosen = id;
    }
    if (chosen == kInvalidNode) {
      ++t;
      continue;
    }
    order.push_back(chosen);
    const Time finish = t + g.node(chosen).exec_time;
    preds_left[chosen] = -1;
    for (const auto eidx : g.out_edges(chosen)) {
      const DepEdge& e = g.edge(eidx);
      if (e.distance != 0 || !block.contains(e.to)) continue;
      --preds_left[e.to];
      release[e.to] = std::max(release[e.to], finish + e.latency);
    }
    t = finish;
  }
  return order;
}

std::vector<NodeId> rank_order(const DepGraph& g, const MachineModel& machine,
                               const NodeSet& block, bool delay) {
  const RankScheduler scheduler(g, machine);
  DeadlineMap d = uniform_deadlines(g, huge_deadline(g, block));
  RankResult r = scheduler.run(block, d, {});
  AIS_CHECK(r.feasible, "unconstrained block schedule must be feasible");
  Schedule s = std::move(r.schedule);
  if (delay) {
    for (const NodeId id : block.ids()) d[id] = r.makespan;
    s = delay_idle_slots(scheduler, std::move(s), d, {});
  }
  return s.permutation();
}

}  // namespace

const char* block_scheduler_name(BlockScheduler s) {
  switch (s) {
    case BlockScheduler::kSourceOrder: return "source-order";
    case BlockScheduler::kCriticalPathList: return "cp-list";
    case BlockScheduler::kGibbonsMuchnick: return "gibbons-muchnick";
    case BlockScheduler::kWarren: return "warren";
    case BlockScheduler::kRank: return "rank";
    case BlockScheduler::kRankDelayed: return "rank+delay";
  }
  return "?";
}

std::vector<NodeId> schedule_block(const DepGraph& g,
                                   const MachineModel& machine,
                                   const NodeSet& block, BlockScheduler kind) {
  switch (kind) {
    case BlockScheduler::kSourceOrder:
      return block.ids();  // ascending id = original program order

    case BlockScheduler::kCriticalPathList: {
      const auto cp = critical_path_lengths(g, block);
      return dynamic_greedy(g, block, [&cp](NodeId a, NodeId b, Time) {
        return std::make_tuple(-cp[a], a) < std::make_tuple(-cp[b], b);
      });
    }

    case BlockScheduler::kGibbonsMuchnick: {
      const auto cp = critical_path_lengths(g, block);
      const auto succs = successor_counts(g, block);
      // Interlock avoidance: prefer a candidate whose predecessors' results
      // are already "old" (release strictly below the current decision time
      // would require the release table; approximate with: avoid candidates
      // that have an outgoing latency edge only as a *tie* consideration is
      // the original's secondary rule — here we order by (more successors,
      // longer critical path, program order)).
      return dynamic_greedy(g, block, [&](NodeId a, NodeId b, Time) {
        return std::make_tuple(-succs[a], -cp[a], a) <
               std::make_tuple(-succs[b], -cp[b], b);
      });
    }

    case BlockScheduler::kWarren: {
      // Static priority list (critical path, then original position); the
      // emitted order is the highest-priority dependence-ready node at each
      // step, *without* modelling latencies — one-pass prioritized greedy,
      // leaving interlocks to the hardware.
      const auto cp = critical_path_lengths(g, block);
      std::vector<NodeId> order;
      std::vector<int> preds_left(g.num_nodes(), 0);
      for (const NodeId id : block.ids()) {
        for (const auto eidx : g.in_edges(id)) {
          const DepEdge& e = g.edge(eidx);
          if (e.distance == 0 && block.contains(e.from)) ++preds_left[id];
        }
      }
      while (order.size() < block.size()) {
        NodeId chosen = kInvalidNode;
        for (const NodeId id : block.ids()) {
          if (preds_left[id] != 0) continue;
          if (chosen == kInvalidNode ||
              std::make_tuple(-cp[id], id) < std::make_tuple(-cp[chosen],
                                                             chosen)) {
            chosen = id;
          }
        }
        AIS_CHECK(chosen != kInvalidNode, "block graph has a cycle");
        order.push_back(chosen);
        preds_left[chosen] = -1;
        for (const auto eidx : g.out_edges(chosen)) {
          const DepEdge& e = g.edge(eidx);
          if (e.distance == 0 && block.contains(e.to)) --preds_left[e.to];
        }
      }
      return order;
    }

    case BlockScheduler::kRank:
      return rank_order(g, machine, block, /*delay=*/false);
    case BlockScheduler::kRankDelayed:
      return rank_order(g, machine, block, /*delay=*/true);
  }
  AIS_CHECK(false, "unknown block scheduler");
  return {};
}

std::vector<NodeId> schedule_trace_per_block(const DepGraph& g,
                                             const MachineModel& machine,
                                             BlockScheduler kind) {
  std::vector<NodeId> list;
  for (const NodeSet& block : blocks_of(g)) {
    if (block.empty()) continue;
    const auto order = schedule_block(g, machine, block, kind);
    list.insert(list.end(), order.begin(), order.end());
  }
  return list;
}

}  // namespace ais
