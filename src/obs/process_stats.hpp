// Process-level resource gauges: peak RSS and arena high-water marks.
//
// Exposition paths (aisc --metrics-out, aisprof --metrics) call
// record_process_gauges() just before writing so `mem_peak_rss_bytes`
// reflects the whole run; allocation sites raise
// `arena_high_water{arena=...}` as they go.  All gauges are monotone
// (Gauge::set_max), so concurrent recorders can never lower a peak.
#pragma once

#include <cstdint>
#include <string_view>

namespace ais::obs {

/// Peak resident set size of this process in bytes (getrusage ru_maxrss);
/// 0 where the platform cannot report it.
std::int64_t peak_rss_bytes();

/// Publishes `mem_peak_rss_bytes` from getrusage.  Call just before
/// exposition; safe to call repeatedly (monotone).
void record_process_gauges();

/// Raises `arena_high_water{arena=<name>}` to `bytes` if larger.  `name`
/// must outlive the process (string literals only) — the registry keeps the
/// view.
void record_arena_high_water(std::string_view name, std::int64_t bytes);

}  // namespace ais::obs
