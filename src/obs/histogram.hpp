// Mergeable log-bucketed latency histograms.
//
// A Histogram is a fixed array of relaxed atomics — record() is lock-free
// and wait-free apart from the max CAS loop, safe from any thread, and
// costs a ~7-step binary search plus four relaxed atomic RMWs.  Bucket
// upper bounds grow by roughly x1.2 per bucket (u[i+1] = u[i] + max(1,
// u[i]/5)), which keeps the relative quantile error under ~20% across the
// full range while the low buckets stay exact (width 1 up to 10).  With
// 128 buckets the range runs from 1 to ~2.9e9 before the +infinity
// catch-all — recording microseconds, that is sub-µs to ~48 minutes.
//
// Snapshots are plain structs: elementwise-addable (merge()), comparable,
// and carrying exact count/sum/max alongside the buckets.  quantile(q)
// returns the upper bound of the bucket holding the q-th value, clamped to
// the exact tracked maximum; quantile_bounds(q) exposes the full [lo, hi]
// containment interval for oracle tests.
//
// Histograms register into obs::MetricRegistry (metrics.hpp) for
// exposition; this header is dependency-free so support- and core-level
// code can hold Histogram* handles without pulling in the registry.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace ais::obs {

inline constexpr std::size_t kHistogramBuckets = 128;

namespace detail {
constexpr std::array<std::uint64_t, kHistogramBuckets> make_bucket_bounds() {
  std::array<std::uint64_t, kHistogramBuckets> bounds{};
  std::uint64_t u = 1;
  for (std::size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
    bounds[i] = u;
    const std::uint64_t step = u / 5;
    u += step == 0 ? 1 : step;
  }
  bounds[kHistogramBuckets - 1] = ~0ULL;  // +infinity catch-all
  return bounds;
}
}  // namespace detail

/// Bucket i covers (bound[i-1], bound[i]]; bucket 0 covers [0, bound[0]].
inline constexpr std::array<std::uint64_t, kHistogramBuckets>
    kHistogramBucketBounds = detail::make_bucket_bounds();

/// Index of the bucket covering `value` (branch-free binary search).
std::size_t histogram_bucket_index(std::uint64_t value);

struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> counts{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  /// Elementwise add; max-of-max.  Associative and commutative, so shard-
  /// or thread-partial snapshots merge in any grouping.
  void merge(const HistogramSnapshot& other);

  /// Upper bound of the bucket holding the ceil(q * count)-th smallest
  /// recorded value, clamped to the exact max; 0 when empty.  q in [0, 1].
  std::uint64_t quantile(double q) const;

  struct Bounds {
    std::uint64_t lo = 0;  // exclusive lower bucket bound (0 for bucket 0)
    std::uint64_t hi = 0;  // inclusive upper bound, clamped to max
  };
  /// The containment interval for the q-th value: lo < value <= hi (lo <=
  /// value for bucket 0).  The sorted-vector oracle test asserts this.
  Bounds quantile_bounds(double q) const;

  bool operator==(const HistogramSnapshot&) const = default;
};

class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Lock-free; relaxed ordering throughout.  Concurrent record()s never
  /// lose counts (fetch_add) — only snapshot() taken mid-storm may see a
  /// count/bucket total momentarily out of sync, which merge-based readers
  /// tolerate.
  void record(std::uint64_t value) {
    counts_[histogram_bucket_index(value)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < value && !max_.compare_exchange_weak(
                               prev, value, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot snapshot() const;

  /// Zeroes the values; the histogram object (and any cached pointer to
  /// it) stays valid.  Not linearizable against concurrent record()s.
  void reset_values();

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace ais::obs
