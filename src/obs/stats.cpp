#include "obs/stats.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace ais::obs {

ScheduleStats ScheduleStats::capture() {
  ScheduleStats s;
  s.rank_runs = counter_value(ctr::kRankRuns);
  s.rank_infeasible = counter_value(ctr::kRankInfeasible);
  s.rank_nodes_ranked = counter_value(ctr::kRankNodesRanked);
  s.merge_calls = counter_value(ctr::kMergeCalls);
  s.merge_relax_rounds = counter_value(ctr::kMergeRelaxRounds);
  s.merge_full_relax_rounds = counter_value(ctr::kMergeFullRelaxRounds);
  s.idle_move_attempts = counter_value(ctr::kIdleMoveAttempts);
  s.idle_slots_moved = counter_value(ctr::kIdleSlotsMoved);
  s.deadlines_tightened = counter_value(ctr::kDeadlinesTightened);
  s.chop_calls = counter_value(ctr::kChopCalls);
  s.chop_points = counter_value(ctr::kChopPoints);
  s.lookahead_blocks = counter_value(ctr::kLookaheadBlocks);
  s.window_span_over_w = counter_value(ctr::kWindowSpanOverW);
  s.sim_runs = counter_value(ctr::kSimRuns);
  s.sim_cycles = counter_value(ctr::kSimCycles);
  s.sim_stall_latency = counter_value(ctr::kSimStallLatency);
  s.sim_stall_window = counter_value(ctr::kSimStallWindow);
  s.cache_hits = counter_value(ctr::kCacheHits);
  s.cache_misses = counter_value(ctr::kCacheMisses);
  s.cache_evictions = counter_value(ctr::kCacheEvictions);
  s.cache_bytes = counter_value(ctr::kCacheBytes);
  s.cache_disk_hits = counter_value(ctr::kCacheDiskHits);
  s.cache_disk_writes = counter_value(ctr::kCacheDiskWrites);
  return s;
}

ScheduleStats ScheduleStats::delta(const ScheduleStats& since) const {
  ScheduleStats d;
  d.rank_runs = rank_runs - since.rank_runs;
  d.rank_infeasible = rank_infeasible - since.rank_infeasible;
  d.rank_nodes_ranked = rank_nodes_ranked - since.rank_nodes_ranked;
  d.merge_calls = merge_calls - since.merge_calls;
  d.merge_relax_rounds = merge_relax_rounds - since.merge_relax_rounds;
  d.merge_full_relax_rounds =
      merge_full_relax_rounds - since.merge_full_relax_rounds;
  d.idle_move_attempts = idle_move_attempts - since.idle_move_attempts;
  d.idle_slots_moved = idle_slots_moved - since.idle_slots_moved;
  d.deadlines_tightened = deadlines_tightened - since.deadlines_tightened;
  d.chop_calls = chop_calls - since.chop_calls;
  d.chop_points = chop_points - since.chop_points;
  d.lookahead_blocks = lookahead_blocks - since.lookahead_blocks;
  d.window_span_over_w = window_span_over_w - since.window_span_over_w;
  d.sim_runs = sim_runs - since.sim_runs;
  d.sim_cycles = sim_cycles - since.sim_cycles;
  d.sim_stall_latency = sim_stall_latency - since.sim_stall_latency;
  d.sim_stall_window = sim_stall_window - since.sim_stall_window;
  d.cache_hits = cache_hits - since.cache_hits;
  d.cache_misses = cache_misses - since.cache_misses;
  d.cache_evictions = cache_evictions - since.cache_evictions;
  d.cache_bytes = cache_bytes - since.cache_bytes;
  d.cache_disk_hits = cache_disk_hits - since.cache_disk_hits;
  d.cache_disk_writes = cache_disk_writes - since.cache_disk_writes;
  return d;
}

std::string ScheduleStats::to_string() const {
  TextTable t({"stat", "value"});
  const auto row = [&t](const char* name, std::uint64_t v) {
    t.add_row({name, std::to_string(v)});
  };
  row(ctr::kRankRuns, rank_runs);
  row(ctr::kRankInfeasible, rank_infeasible);
  row(ctr::kRankNodesRanked, rank_nodes_ranked);
  row(ctr::kMergeCalls, merge_calls);
  row(ctr::kMergeRelaxRounds, merge_relax_rounds);
  row(ctr::kMergeFullRelaxRounds, merge_full_relax_rounds);
  row(ctr::kIdleMoveAttempts, idle_move_attempts);
  row(ctr::kIdleSlotsMoved, idle_slots_moved);
  row(ctr::kDeadlinesTightened, deadlines_tightened);
  row(ctr::kChopCalls, chop_calls);
  row(ctr::kChopPoints, chop_points);
  row(ctr::kLookaheadBlocks, lookahead_blocks);
  row(ctr::kWindowSpanOverW, window_span_over_w);
  row(ctr::kSimRuns, sim_runs);
  row(ctr::kSimCycles, sim_cycles);
  row(ctr::kSimStallLatency, sim_stall_latency);
  row(ctr::kSimStallWindow, sim_stall_window);
  row(ctr::kCacheHits, cache_hits);
  row(ctr::kCacheMisses, cache_misses);
  row(ctr::kCacheEvictions, cache_evictions);
  row(ctr::kCacheBytes, cache_bytes);
  row(ctr::kCacheDiskHits, cache_disk_hits);
  row(ctr::kCacheDiskWrites, cache_disk_writes);
  return t.to_string();
}

void register_builtin_counters() {
  for (const char* name :
       {ctr::kRankRuns, ctr::kRankInfeasible, ctr::kRankNodesRanked,
        ctr::kRankIncrementalPasses, ctr::kRankNodesReranked,
        ctr::kMergeCalls, ctr::kMergeRelaxRounds, ctr::kMergeFullRelaxRounds,
        ctr::kMergeGallopProbes,
        ctr::kIdleMoveAttempts, ctr::kIdleSlotsMoved, ctr::kDeadlinesTightened,
        ctr::kChopCalls, ctr::kChopPoints, ctr::kLookaheadBlocks,
        ctr::kWindowSpanOverW, ctr::kSimRuns, ctr::kSimCycles,
        ctr::kSimStallLatency, ctr::kSimStallWindow, ctr::kSimEvents,
        ctr::kSimCyclesJumped,
        ctr::kCacheHits, ctr::kCacheMisses, ctr::kCacheEvictions,
        ctr::kCacheBytes, ctr::kCacheDiskHits, ctr::kCacheDiskWrites}) {
    count(name, 0);
  }
}

std::string profile_report() {
  std::ostringstream os;

  TextTable phases({"phase", "calls", "total ms", "mean ms"});
  for (const PhaseTotal& p : phase_totals()) {
    phases.add_row({p.name, std::to_string(p.calls),
                    fmt_double(p.total_ms, 3),
                    fmt_double(p.calls == 0
                                   ? 0.0
                                   : p.total_ms / static_cast<double>(p.calls),
                               4)});
  }
  os << phases.to_string();

  TextTable counters({"counter", "value"});
  for (const auto& [name, value] : counters_snapshot()) {
    counters.add_row({name, std::to_string(value)});
  }
  os << '\n' << counters.to_string();

  // Latency/size distributions, when any were recorded this run.
  TextTable hists({"histogram", "count", "p50", "p90", "p99", "max"});
  bool any_hist = false;
  for (const MetricSeries& s : MetricRegistry::global().snapshot()) {
    if (s.type != MetricType::kHistogram || s.hist.count == 0) continue;
    any_hist = true;
    std::string name = s.name;
    for (const auto& [k, v] : s.labels) {
      name += name.size() == s.name.size() ? "{" : ",";
      name += k + "=" + v;
    }
    if (!s.labels.empty()) name += "}";
    hists.add_row({name, std::to_string(s.hist.count),
                   std::to_string(s.hist.quantile(0.50)),
                   std::to_string(s.hist.quantile(0.90)),
                   std::to_string(s.hist.quantile(0.99)),
                   std::to_string(s.hist.max)});
  }
  if (any_hist) os << '\n' << hists.to_string();
  return os.str();
}

}  // namespace ais::obs
