// Labeled metric registry: counters, gauges and histograms keyed by a
// metric name plus at most two label pairs, with Prometheus text and JSON
// snapshot exposition — the payload the future `aisd /stats` endpoint will
// serve, written today by `aisc --metrics-out` and `aisprof --metrics`.
//
// Handle discipline
// -----------------
// counter()/gauge()/histogram() return stable pointers: a series, once
// registered, is never destroyed or moved for the life of the process.
// reset_values() zeroes every value but keeps the registrations, so cached
// handles (thread-local memos, the schedule cache's per-shard arrays, the
// flight recorder's crash-path walk) never dangle.  Registration takes the
// registry mutex; steady-state updates are relaxed atomics on the handle —
// callers cache the pointer once and never touch the lock again.
//
// Naming
// ------
// Registry names are free-form (the legacy obs counters use dotted names
// like "cache.hits"); the Prometheus writer sanitizes on the way out
// (prometheus_name()): characters outside [a-zA-Z0-9_:] become '_', and a
// leading digit gets an "ais_" prefix.  Histogram exposition follows the
// Prometheus convention: cumulative `<name>_bucket{le="..."}` rows up to
// the last occupied bound plus `+Inf`, then `<name>_sum` / `<name>_count`.
// scripts/check_metrics.py validates the full format in CI.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace ais::obs {

/// One label pair; a series carries at most two, stored sorted by key.
using MetricLabel = std::pair<std::string_view, std::string_view>;

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset_value() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Monotone raise: records `v` only if it exceeds the current value.  For
  /// high-water marks (peak RSS, arena high water) updated from racing
  /// threads — the CAS loop never lowers the gauge.
  void set_max(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset_value() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// One series in a registry snapshot (tests and writers).
struct MetricSeries {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;  // sorted by key
  MetricType type = MetricType::kCounter;
  std::uint64_t counter_value = 0;
  std::int64_t gauge_value = 0;
  HistogramSnapshot hist;
};

class MetricRegistry {
 public:
  MetricRegistry();
  ~MetricRegistry();
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry every exposition path reads.
  static MetricRegistry& global();

  /// The global registry iff global() has already been called, else nullptr.
  /// Never allocates — the crash handler's entry point.
  static MetricRegistry* global_if_created();

  /// Registers (or finds) a series; aborts on a type mismatch with an
  /// existing registration.  At most two labels; pairs are sorted by key,
  /// so {a,b} and {b,a} name the same series.
  Counter* counter(std::string_view name);
  Counter* counter(std::string_view name, MetricLabel l0);
  Counter* counter(std::string_view name, MetricLabel l0, MetricLabel l1);
  Gauge* gauge(std::string_view name);
  Gauge* gauge(std::string_view name, MetricLabel l0);
  Gauge* gauge(std::string_view name, MetricLabel l0, MetricLabel l1);
  Histogram* histogram(std::string_view name);
  Histogram* histogram(std::string_view name, MetricLabel l0);
  Histogram* histogram(std::string_view name, MetricLabel l0, MetricLabel l1);

  /// Every registered series, sorted by (name, labels).
  std::vector<MetricSeries> snapshot() const;

  /// Prometheus text exposition of every series, plus the legacy obs named
  /// counters (obs::counters_snapshot()) as sanitized counter families.
  void write_prometheus(std::ostream& os) const;
  std::string prometheus_text() const;

  /// JSON snapshot — the `aisd /stats` payload: {"schema": 1, "counters":
  /// {legacy...}, "metrics": [series...]} with per-bucket (non-cumulative)
  /// histogram counts and p50/p90/p99/max.
  void write_json(std::ostream& os) const;
  std::string json_text() const;

  /// ASCII report: one block per histogram series with per-bucket bars
  /// (`aisprof --hist`), plus a counter/gauge table.
  std::string ascii_report() const;

  /// Zeroes every value; registrations and handles survive.
  void reset_values();

  /// Crash-path walk: visits every series without allocating iff the
  /// registry mutex is free (try_lock); returns false when contended.
  /// `fn` gets the series name, a "k=v,k=v" label summary (static buffer,
  /// valid only during the call) and the live series pointers.
  bool try_visit(void (*fn)(void* ctx, const char* name, const char* labels,
                            MetricType type, const void* series),
                 void* ctx) const;

 private:
  struct Impl;
  Impl* impl_;  // leaked via global(); plain pointer keeps teardown trivial
};

/// The Prometheus-sanitized form of a registry name: invalid characters
/// become '_', and a leading digit gets an "ais_" prefix.
std::string prometheus_name(std::string_view name);

/// True when `s` is a valid Prometheus label value needing no escaping
/// beyond the writer's \\ \" \n handling (always true for our values).
std::string prometheus_label_escape(std::string_view value);

}  // namespace ais::obs
