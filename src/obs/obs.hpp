// Pipeline telemetry: RAII phase spans, named monotonic counters, latency
// value distributions and a Chrome-trace-event sink, instrumenting core/,
// sim/, driver/ and verify/.  Value distributions land in mergeable
// log-bucketed histograms (obs/histogram.hpp) inside the labeled metric
// registry (obs/metrics.hpp — Prometheus/JSON exposition); spans also feed
// the crash flight recorder (obs/flight_recorder.hpp) while it is enabled.
//
// Two gates, so hot paths stay as fast as the hardware allows:
//  * compile time — AIS_OBS_ENABLED (CMake option AIS_OBS, default ON).
//    With it 0, AIS_OBS_SPAN / AIS_OBS_COUNT* expand to nothing in that
//    translation unit; the library API below still exists so mixed builds
//    link.
//  * run time — enabled() / trace_enabled(), off by default, flipped only
//    by the AIS_TRACE / AIS_TRACE_JSON environment variables (init_from_env)
//    or by CLI flags (aisc --profile / --trace-json, aisprof).  A disabled
//    hook costs one relaxed atomic load.
//
// enabled() turns on counters and per-phase time aggregation (the
// `aisc --profile` table); trace_enabled() additionally records every span
// as a trace event for write_chrome_trace(), whose output loads in
// Perfetto / chrome://tracing.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef AIS_OBS_ENABLED
#define AIS_OBS_ENABLED 1
#endif

namespace ais::obs {

/// True when this translation unit was compiled with telemetry hooks.
inline constexpr bool kHooksCompiledIn = AIS_OBS_ENABLED != 0;

// --- runtime gates ------------------------------------------------------

bool enabled();
bool trace_enabled();
void set_enabled(bool on);
/// Turning tracing on implies enabled(); turning it off leaves enabled()
/// untouched.
void set_trace_enabled(bool on);

/// Reads AIS_TRACE (any value but "" / "0" enables counters+phases; the
/// value "trace" also enables event recording) and AIS_TRACE_JSON (a path;
/// implies full tracing — tools write the file on exit, see
/// env_trace_path()).  Also forwards to flight_init_from_env()
/// (AIS_FLIGHT_RECORDER / AIS_FLIGHT_RING / AIS_FLIGHT_DIR; see
/// obs/flight_recorder.hpp).
void init_from_env();

/// The AIS_TRACE_JSON path seen by init_from_env(); empty when unset.
const std::string& env_trace_path();

// --- named monotonic counters -------------------------------------------

/// Adds `delta` to the counter `name`, creating it at zero on first touch
/// (so a delta of 0 registers a counter without changing it).  Counters are
/// process-global, thread-safe and monotone: there is no decrement.
/// No-op while !enabled(), except that deltas are still delivered to any
/// CounterRecorder active on the calling thread (the schedule cache records
/// counter deltas even in untraced runs, so a later traced run replaying a
/// cached entry reports the same numbers a fresh solve would).  A fully
/// disabled hook costs one thread-local load plus one relaxed atomic load.
void count(std::string_view name, std::uint64_t delta = 1);

/// Per-call-site memo for count_cached() / Span: caches a pointer into the
/// registry, validated against the registry generation (reset() bumps it, so
/// a stale handle re-resolves instead of dangling).  Zero-initialised; one
/// lives in a function-local static behind each AIS_OBS_SPAN / AIS_OBS_COUNT
/// expansion and is shared by every thread passing that site.
struct SiteHandle {
  std::atomic<void*> slot{nullptr};
  std::atomic<std::uint64_t> gen{0};
};

/// count() with a call-site memo: the steady state is three relaxed loads
/// and one relaxed fetch_add — no mutex, no map walk.  Falls back to the
/// full count() path whenever a CounterRecorder is active on this thread
/// (per-event capture must see every delta).
void count_cached(SiteHandle& site, std::string_view name,
                  std::uint64_t delta = 1);

/// Records one sample into the process-global histogram `name` (registered
/// on first touch in MetricRegistry::global()).  The histogram analog of
/// count(): while !enabled() it only delivers to active CounterRecorders
/// (which skip "cache."/"time."-prefixed names — wall-clock distributions
/// describe the run, not the schedule); while enabled() it also lands in
/// the registry.  Steady state is lock-free: the histogram handle is
/// memoized per (thread, name).
void record_value(std::string_view name, std::uint64_t value);

/// RAII capture of every count() issued by the *calling thread* while alive,
/// independent of enabled().  Recorders nest (a stack per thread; each
/// delivery goes to all of them, so an outer recorder sees deltas replayed
/// by an inner cache hit) and skip counters prefixed "cache." — cache
/// traffic describes the run, not the schedule, and replaying it would
/// double-count.  Used by core/schedule_cache to make cached results
/// counter-identical to fresh solves.
class CounterRecorder {
 public:
  /// An inactive recorder records nothing and costs nothing (the cache
  /// passes active=false when caching is bypassed).
  explicit CounterRecorder(bool active = true);
  ~CounterRecorder();
  CounterRecorder(const CounterRecorder&) = delete;
  CounterRecorder& operator=(const CounterRecorder&) = delete;

  /// Histogram samples captured by record_value(), per name, in arrival
  /// order (order matters: replay re-issues them one by one so an outer
  /// recorder and the registry see the same stream a fresh solve produced).
  using ValueSamples =
      std::map<std::string, std::vector<std::uint64_t>, std::less<>>;

  /// The captured (name, summed delta) pairs, sorted by name.
  const std::map<std::string, std::uint64_t, std::less<>>& deltas() const {
    return deltas_;
  }

  /// The captured histogram samples, sorted by name.
  const ValueSamples& value_samples() const { return samples_; }

  /// Re-issues every recorded delta through count() on the calling thread
  /// (delivering to the global registry while enabled() and to any recorder
  /// active *outside* this one).
  static void replay(
      const std::map<std::string, std::uint64_t, std::less<>>& deltas);

  /// Re-issues every recorded sample through record_value(), same contract.
  static void replay_values(const ValueSamples& samples);

  /// Internal: called by count() for each delivery.
  void record(std::string_view name, std::uint64_t delta);

  /// Internal: called by record_value() for each delivery.
  void record_sample(std::string_view name, std::uint64_t value);

 private:
  bool active_;
  std::map<std::string, std::uint64_t, std::less<>> deltas_;
  ValueSamples samples_;
};

/// Current value of `name`; 0 if it was never touched.
std::uint64_t counter_value(std::string_view name);

/// All registered counters, sorted by name.
std::vector<std::pair<std::string, std::uint64_t>> counters_snapshot();

/// Crash-path counter walk (flight recorder): visits every registered
/// counter without allocating iff the registry mutex is free (try_lock);
/// returns false when contended.  Names are valid only during the call.
bool try_visit_counters(void (*fn)(void* ctx, const char* name,
                                   std::uint64_t value),
                        void* ctx);

// --- phase spans --------------------------------------------------------

/// RAII span over one pipeline phase.  `name` must outlive the span (string
/// literals only — instrumentation sites pass compile-time names).  While
/// enabled(), the destructor folds the elapsed time into the per-phase
/// aggregate; while trace_enabled(), it also appends one trace event.
class Span {
 public:
  explicit Span(const char* name);
  /// The AIS_OBS_SPAN form: `site` memoizes this call site's phase cell so
  /// closing the span is lock-free after the first pass (see SiteHandle).
  Span(SiteHandle& site, const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  SiteHandle* site_ = nullptr;
  std::int64_t start_us_ = 0;
  bool active_ = false;
  bool flight_ = false;
};

/// Span for ultra-hot sub-phases (hundreds of closes per compile, bodies in
/// the sub-microsecond range, where a Span's two clock reads rival the work
/// being measured).  Inert under plain enabled() — it activates only while
/// trace_enabled(), when the caller has asked for full fidelity — but still
/// feeds the flight recorder, whose per-event cost is one ring write.
class DetailSpan {
 public:
  DetailSpan(SiteHandle& site, const char* name);
  ~DetailSpan();
  DetailSpan(const DetailSpan&) = delete;
  DetailSpan& operator=(const DetailSpan&) = delete;

 private:
  const char* name_;
  SiteHandle* site_;
  std::int64_t start_us_ = 0;
  bool active_ = false;
  bool flight_ = false;
};

/// RAII wall-clock sample: while enabled(), the destructor records the
/// elapsed microseconds into the histogram `name` via record_value().
/// Lighter than a Span — no phase aggregate, no trace event; made for hot
/// latency distributions (per-compile time, cache lookups, pool tasks).
/// `name` must outlive the timer (string literals only).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  std::int64_t start_us_ = 0;
  bool active_ = false;
};

struct PhaseTotal {
  std::string name;
  std::uint64_t calls = 0;
  double total_ms = 0;
};

/// Aggregated span time per phase name, sorted by descending total time.
std::vector<PhaseTotal> phase_totals();

// --- trace events -------------------------------------------------------

struct TraceEvent {
  std::string name;
  int tid = 0;       // dense per-thread index, not the OS id
  int depth = 0;     // span nesting depth at open, within its thread
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
};

/// Completed spans recorded while trace_enabled(), in completion order.
std::vector<TraceEvent> trace_events();

/// Writes the Chrome trace-event JSON ({"traceEvents": [...]}): one "X"
/// (complete) event per recorded span plus one "C" (counter) sample per
/// registered counter.  Loadable in Perfetto.
void write_chrome_trace(std::ostream& os);

/// Same, to a file; returns false when the file cannot be opened.
bool write_chrome_trace(const std::string& path);

/// Clears counters, phase aggregates and trace events (gates unchanged).
void reset();

// --- counter names used by the built-in instrumentation -----------------
//
// One constant per counter keeps call sites and reports in sync; see
// docs/OBSERVABILITY.md for the glossary.
namespace ctr {
inline constexpr const char* kRankRuns = "rank.runs";
inline constexpr const char* kRankInfeasible = "rank.infeasible";
inline constexpr const char* kRankNodesRanked = "rank.nodes_ranked";
inline constexpr const char* kRankIncrementalPasses = "rank.incremental_passes";
inline constexpr const char* kRankNodesReranked = "rank.nodes_reranked";
inline constexpr const char* kMergeCalls = "merge.calls";
inline constexpr const char* kMergeRelaxRounds = "merge.relax_rounds";
inline constexpr const char* kMergeFullRelaxRounds = "merge.full_relax_rounds";
inline constexpr const char* kMergeGallopProbes = "merge.gallop_probes";
inline constexpr const char* kIdleMoveAttempts = "move_idle.attempts";
inline constexpr const char* kIdleSlotsMoved = "move_idle.moved";
inline constexpr const char* kDeadlinesTightened =
    "move_idle.deadlines_tightened";
inline constexpr const char* kChopCalls = "chop.calls";
inline constexpr const char* kChopPoints = "chop.points";
inline constexpr const char* kLookaheadBlocks = "lookahead.blocks";
inline constexpr const char* kWindowSpanOverW = "lookahead.window_span_gt_w";
inline constexpr const char* kSimRuns = "sim.runs";
inline constexpr const char* kSimCycles = "sim.cycles";
inline constexpr const char* kSimStallLatency = "sim.stall.latency";
inline constexpr const char* kSimStallWindow = "sim.stall.window";
/// Event-driven simulator internals: kSimEvents counts the event-loop
/// iterations (cycles the engine actually examined); kSimCyclesJumped counts
/// the idle cycles skipped by next-event jumps.  Their sum equals kSimCycles.
inline constexpr const char* kSimEvents = "sim.events";
inline constexpr const char* kSimCyclesJumped = "sim.cycles_jumped";
/// Schedule-cache counters (core/schedule_cache).  The "cache." prefix is
/// load-bearing: CounterRecorder filters it, and the differential tests
/// exclude it when asserting cache-on/off counter identity.
inline constexpr const char* kCachePrefix = "cache.";
inline constexpr const char* kCacheHits = "cache.hits";
inline constexpr const char* kCacheMisses = "cache.misses";
inline constexpr const char* kCacheEvictions = "cache.evictions";
inline constexpr const char* kCacheBytes = "cache.bytes";
inline constexpr const char* kCacheDiskHits = "cache.disk_hits";
inline constexpr const char* kCacheDiskWrites = "cache.disk_writes";
/// Disk writes absorbed by the coalescing flusher: the same key was queued
/// again before its first write hit the disk, so one write covered both.
inline constexpr const char* kCacheDiskWriteCoalesced =
    "cache.disk_write_coalesced";
/// Prefix for per-diagnostic-code verifier counters ("verify.diag.<code>").
inline constexpr const char* kVerifyDiagPrefix = "verify.diag.";
/// Prefix for wall-clock histogram names (see namespace hist below).
/// Load-bearing like kCachePrefix: CounterRecorder filters both prefixes,
/// so run-dependent timings never enter schedule-cache values and the
/// cache-on/off differential tests stay byte-identical.
inline constexpr const char* kTimePrefix = "time.";
}  // namespace ctr

// --- histogram names used by the built-in instrumentation ---------------
//
// All wall-clock distributions use the "time." prefix (filtered by
// CounterRecorder, see ctr::kTimePrefix); deterministic shape
// distributions (chop.prefix_len) do not, and replay through the cache.
namespace hist {
inline constexpr const char* kCompileTraceUs = "time.compile_trace_us";
inline constexpr const char* kCompileLoopUs = "time.compile_loop_us";
inline constexpr const char* kCompileProgramUs = "time.compile_program_us";
/// ThreadPool task queue-wait and run time (support/thread_pool via the
/// TelemetrySink hook — support cannot link obs).
inline constexpr const char* kPoolQueueWaitUs = "time.pool_queue_wait_us";
inline constexpr const char* kPoolRunUs = "time.pool_run_us";
/// BlockPrescheduler substrate graft (seeded merge) time per block.
inline constexpr const char* kGraftUs = "time.graft_us";
/// simulate_many whole-batch time.
inline constexpr const char* kSimBatchUs = "time.sim_batch_us";
/// Schedule-cache latency histograms are labeled series registered by
/// core/schedule_cache directly ("cache_lookup_us{shard=,outcome=}",
/// "cache_disk_read_us", "cache_disk_write_us").
/// Emitted-prefix length per chop call — deterministic, so it is recorded
/// into cache values and replayed on hits like a counter.
inline constexpr const char* kChopPrefixLen = "chop.prefix_len";
}  // namespace hist

}  // namespace ais::obs

// --- hook macros --------------------------------------------------------
//
// All instrumentation sites go through these, so an AIS_OBS_ENABLED=0 build
// compiles them out entirely (tests/test_obs_off.cpp checks this).

#if AIS_OBS_ENABLED

#define AIS_OBS_CONCAT_IMPL(a, b) a##b
#define AIS_OBS_CONCAT(a, b) AIS_OBS_CONCAT_IMPL(a, b)

/// Opens a phase span until the end of the enclosing scope.  The static
/// SiteHandle is zero-initialised (no registration until the span actually
/// closes while enabled) and makes span close lock-free after first use.
#define AIS_OBS_SPAN(name)                                            \
  static ::ais::obs::SiteHandle AIS_OBS_CONCAT(ais_obs_site_,         \
                                               __LINE__);             \
  ::ais::obs::Span AIS_OBS_CONCAT(ais_obs_span_, __LINE__)(           \
      AIS_OBS_CONCAT(ais_obs_site_, __LINE__), (name))

/// AIS_OBS_SPAN for sub-phases too hot to time outside full-trace mode
/// (see obs::DetailSpan).
#define AIS_OBS_SPAN_DETAIL(name)                                     \
  static ::ais::obs::SiteHandle AIS_OBS_CONCAT(ais_obs_site_,         \
                                               __LINE__);             \
  ::ais::obs::DetailSpan AIS_OBS_CONCAT(ais_obs_span_, __LINE__)(     \
      AIS_OBS_CONCAT(ais_obs_site_, __LINE__), (name))

/// Bumps a counter: AIS_OBS_COUNT(name) or AIS_OBS_COUNT(name, delta).
/// Dispatches on arity so each expansion gets its own SiteHandle memo.
#define AIS_OBS_COUNT_ARITY(one, two, pick, ...) pick
#define AIS_OBS_COUNT(...)                                            \
  AIS_OBS_COUNT_ARITY(__VA_ARGS__, AIS_OBS_COUNT_2, AIS_OBS_COUNT_1, )\
  (__VA_ARGS__)
#define AIS_OBS_COUNT_1(name) AIS_OBS_COUNT_2(name, 1)
#define AIS_OBS_COUNT_2(name, delta)                                  \
  do {                                                                \
    static ::ais::obs::SiteHandle AIS_OBS_CONCAT(ais_obs_site_,       \
                                                 __LINE__);           \
    ::ais::obs::count_cached(AIS_OBS_CONCAT(ais_obs_site_, __LINE__), \
                             (name), (delta));                        \
  } while (false)

/// Bumps a counter whose name is computed at run time; the name expression
/// is only evaluated while telemetry is runtime-enabled.
#define AIS_OBS_COUNT_DYN(name_expr, delta)                    \
  do {                                                         \
    if (::ais::obs::enabled()) {                               \
      ::ais::obs::count((name_expr), (delta));                 \
    }                                                          \
  } while (false)

/// Records one histogram sample: AIS_OBS_VALUE(name, value).
#define AIS_OBS_VALUE(name, value) ::ais::obs::record_value((name), (value))

/// Times the enclosing scope into the histogram `name` (microseconds).
#define AIS_OBS_TIMER(name) \
  ::ais::obs::ScopedTimer AIS_OBS_CONCAT(ais_obs_timer_, __LINE__)(name)

#else

#define AIS_OBS_SPAN(name) static_cast<void>(0)
#define AIS_OBS_SPAN_DETAIL(name) static_cast<void>(0)
#define AIS_OBS_COUNT(...) static_cast<void>(0)
#define AIS_OBS_COUNT_DYN(name_expr, delta) static_cast<void>(0)
#define AIS_OBS_VALUE(name, value) static_cast<void>(0)
#define AIS_OBS_TIMER(name) static_cast<void>(0)

#endif  // AIS_OBS_ENABLED
