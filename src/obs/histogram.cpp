#include "obs/histogram.hpp"

#include <algorithm>

namespace ais::obs {

std::size_t histogram_bucket_index(std::uint64_t value) {
  const auto it = std::lower_bound(kHistogramBucketBounds.begin(),
                                   kHistogramBucketBounds.end(), value);
  return static_cast<std::size_t>(it - kHistogramBucketBounds.begin());
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    counts[i] += other.counts[i];
  }
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

std::uint64_t HistogramSnapshot::quantile(double q) const {
  return quantile_bounds(q).hi;
}

HistogramSnapshot::Bounds HistogramSnapshot::quantile_bounds(double q) const {
  Bounds b;
  if (count == 0) return b;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target value, 1-based: ceil(q * count), at least 1.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             q * static_cast<double>(count) + (1.0 - 1e-9)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      b.lo = i == 0 ? 0 : kHistogramBucketBounds[i - 1];
      b.hi = std::min(kHistogramBucketBounds[i], max);
      return b;
    }
  }
  // counts/count raced in a concurrent snapshot; fall back to the max.
  b.lo = 0;
  b.hi = max;
  return b;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset_values() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

}  // namespace ais::obs
