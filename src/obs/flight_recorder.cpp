#include "obs/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "support/stopwatch.hpp"

namespace ais::obs {

namespace {

struct FlightEvent {
  std::int64_t ts_us = 0;
  const char* name = nullptr;
  std::uint64_t arg = 0;
  char kind = 0;
};

// One ring per thread, allocated on the thread's first event and leaked:
// the crash handler may fire on any thread at any time, so rings are never
// freed.  Only the owning thread writes; head is atomic so the dumper can
// read a consistent cursor, and event payloads may tear mid-crash (accepted
// — see the header).
struct FlightRing {
  explicit FlightRing(std::size_t cap)
      : capacity(cap), events(new FlightEvent[cap]()) {}
  const std::size_t capacity;      // power of two
  std::atomic<std::uint64_t> head{0};
  FlightEvent* const events;       // leaked with the ring
};

// Lock-free ring table: slots are claimed by fetch_add and published with
// release stores, so the (async) dumper sees fully constructed rings.
std::atomic<FlightRing*> g_rings[kFlightMaxThreads] = {};
std::atomic<std::size_t> g_ring_count{0};

std::atomic<bool> g_flight{false};
std::atomic<std::size_t> g_ring_entries{kFlightRingDefaultEntries};
std::atomic<bool> g_handlers_installed{false};
std::atomic<bool> g_dumping{false};

// The dump directory, mirrored into a fixed buffer the signal handler can
// read without locks.  Empty string = current working directory.
char g_dump_dir[512] = {0};

thread_local FlightRing* t_flight_ring = nullptr;
thread_local bool t_flight_dropped = false;

std::size_t clamp_ring_entries(std::size_t entries) {
  if (entries < 16) entries = 16;
  if (entries > kFlightRingMaxEntries) entries = kFlightRingMaxEntries;
  std::size_t pow2 = 16;
  while (pow2 * 2 <= entries) pow2 *= 2;
  return pow2;
}

FlightRing* ring_for_thread() {
  if (t_flight_ring != nullptr || t_flight_dropped) return t_flight_ring;
  const std::size_t idx = g_ring_count.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kFlightMaxThreads) {
    t_flight_dropped = true;  // never fetch_add again on this thread
    return nullptr;
  }
  auto* ring = new FlightRing(g_ring_entries.load(std::memory_order_relaxed));
  g_rings[idx].store(ring, std::memory_order_release);
  t_flight_ring = ring;
  return ring;
}

// --- dump emission ------------------------------------------------------
//
// Everything below formats with snprintf into stack buffers and hands the
// bytes to a sink; the fd sink is the async-signal-safe crash path, the
// string sink reuses the identical formatting for tests and deliberate
// dumps.

struct DumpSink {
  virtual ~DumpSink() = default;
  virtual void write(const char* data, std::size_t n) = 0;
};

struct FdSink final : DumpSink {
  explicit FdSink(int fd_in) : fd(fd_in) {}
  void write(const char* data, std::size_t n) override {
    while (n > 0) {
      const ssize_t w = ::write(fd, data, n);
      if (w <= 0) return;  // best-effort: never block or retry forever
      data += w;
      n -= static_cast<std::size_t>(w);
    }
  }
  int fd;
};

struct StringSink final : DumpSink {
  void write(const char* data, std::size_t n) override { out.append(data, n); }
  std::string out;
};

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void emitf(DumpSink& sink, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) {
    sink.write(buf, std::min(static_cast<std::size_t>(n), sizeof buf - 1));
  }
}

void emit_ring(DumpSink& sink, std::size_t index, const FlightRing& ring) {
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  const std::uint64_t n =
      head < ring.capacity ? head : static_cast<std::uint64_t>(ring.capacity);
  emitf(sink, "== ring %zu (%llu events, cap %zu) ==\n", index,
        static_cast<unsigned long long>(n), ring.capacity);
  for (std::uint64_t i = 0; i < n; ++i) {
    // Oldest first: the ring holds [head - n, head).
    const FlightEvent& e = ring.events[(head - n + i) & (ring.capacity - 1)];
    const char kind = e.kind != 0 ? e.kind : '?';
    emitf(sink, "%lld %c %s %llu\n", static_cast<long long>(e.ts_us), kind,
          e.name != nullptr ? e.name : "?",
          static_cast<unsigned long long>(e.arg));
  }
}

void emit_counter(void* ctx, const char* name, std::uint64_t value) {
  emitf(*static_cast<DumpSink*>(ctx), "%s %llu\n", name,
        static_cast<unsigned long long>(value));
}

void emit_metric(void* ctx, const char* name, const char* labels,
                 MetricType type, const void* series) {
  auto& sink = *static_cast<DumpSink*>(ctx);
  if (type != MetricType::kHistogram) return;
  const HistogramSnapshot s =
      static_cast<const Histogram*>(series)->snapshot();
  if (s.count == 0) return;
  emitf(sink,
        "%s{%s} count=%llu sum=%llu max=%llu p50=%llu p90=%llu p99=%llu\n",
        name, labels, static_cast<unsigned long long>(s.count),
        static_cast<unsigned long long>(s.sum),
        static_cast<unsigned long long>(s.max),
        static_cast<unsigned long long>(s.quantile(0.50)),
        static_cast<unsigned long long>(s.quantile(0.90)),
        static_cast<unsigned long long>(s.quantile(0.99)));
}

void dump_impl(DumpSink& sink, int signal) {
  emitf(sink, "AIS-FLIGHT-DUMP v1\n");
  emitf(sink, "signal: %d\n", signal);
  emitf(sink, "pid: %lld\n", static_cast<long long>(::getpid()));
  std::size_t nrings = g_ring_count.load(std::memory_order_relaxed);
  if (nrings > kFlightMaxThreads) nrings = kFlightMaxThreads;
  emitf(sink, "rings: %zu\n", nrings);
  for (std::size_t i = 0; i < nrings; ++i) {
    const FlightRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring != nullptr) emit_ring(sink, i, *ring);
  }
  emitf(sink, "== counters ==\n");
  if (!try_visit_counters(&emit_counter, &sink)) {
    emitf(sink, "(skipped: counter registry busy)\n");
  }
  emitf(sink, "== histograms ==\n");
  MetricRegistry* metrics = MetricRegistry::global_if_created();
  if (metrics == nullptr) {
    // Nothing registered yet — never allocate the registry from a handler.
  } else if (!metrics->try_visit(&emit_metric, &sink)) {
    emitf(sink, "(skipped: metric registry busy)\n");
  }
  emitf(sink, "== end ==\n");
}

extern "C" void ais_flight_crash_handler(int sig) {
  // One dump per process: a second fault inside the handler (or a crash on
  // another thread) must not recurse.
  if (!g_dumping.exchange(true)) {
    char path[640];
    const long long now = static_cast<long long>(::time(nullptr));
    const long long pid = static_cast<long long>(::getpid());
    if (g_dump_dir[0] != 0) {
      snprintf(path, sizeof path, "%s/ais-crash-%lld-%lld.dump", g_dump_dir,
               pid, now);
    } else {
      snprintf(path, sizeof path, "ais-crash-%lld-%lld.dump", pid, now);
    }
    const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      flight_dump_to_fd(fd, sig);
      ::close(fd);
      FdSink err(2);
      emitf(err, "ais: wrote flight-recorder dump: %s\n", path);
    }
  }
  // SA_RESETHAND restored the default disposition at handler entry, so the
  // re-raise terminates with the unhandled-signal exit status (core dumps
  // and shell reporting behave exactly as without the recorder).
  ::raise(sig);
}

void install_handlers_once() {
  if (g_handlers_installed.exchange(true)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = &ais_flight_crash_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
  ::sigaction(SIGBUS, &sa, nullptr);
}

}  // namespace

bool flight_enabled() { return g_flight.load(std::memory_order_relaxed); }

void set_flight_enabled(bool on) {
  if (on) install_handlers_once();
  g_flight.store(on, std::memory_order_relaxed);
}

void flight_init_from_env() {
  if (const char* ring = std::getenv("AIS_FLIGHT_RING");
      ring != nullptr && *ring != 0) {
    set_flight_ring_entries(
        static_cast<std::size_t>(std::strtoull(ring, nullptr, 10)));
  }
  if (const char* dir = std::getenv("AIS_FLIGHT_DIR");
      dir != nullptr && *dir != 0) {
    set_flight_dir(dir);
  }
  const char* flag = std::getenv("AIS_FLIGHT_RECORDER");
  if (flag != nullptr && *flag != 0 && std::string_view(flag) != "0") {
    set_flight_enabled(true);
  }
}

void set_flight_dir(const std::string& dir) {
  const std::size_t n = std::min(dir.size(), sizeof g_dump_dir - 1);
  std::memcpy(g_dump_dir, dir.data(), n);
  g_dump_dir[n] = 0;
}

std::string flight_dir() { return std::string(g_dump_dir); }

void set_flight_ring_entries(std::size_t entries) {
  g_ring_entries.store(clamp_ring_entries(entries),
                       std::memory_order_relaxed);
}

void flight_record(const char* name, char kind, std::uint64_t arg) {
  if (!flight_enabled()) return;
  FlightRing* ring = ring_for_thread();
  if (ring == nullptr) return;
  const std::uint64_t i = ring->head.load(std::memory_order_relaxed);
  FlightEvent& e = ring->events[i & (ring->capacity - 1)];
  e.ts_us = Stopwatch::now_us();
  e.name = name;
  e.arg = arg;
  e.kind = kind;
  // Publish after the payload so the dumper never counts a slot it cannot
  // at least partially read (teared payloads are accepted, absent ones not).
  ring->head.store(i + 1, std::memory_order_release);
}

std::string flight_dump_string(int signal) {
  StringSink sink;
  dump_impl(sink, signal);
  return std::move(sink.out);
}

bool write_flight_dump(const std::string& path, int signal) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  flight_dump_to_fd(fd, signal);
  ::close(fd);
  return true;
}

void flight_dump_to_fd(int fd, int signal) {
  FdSink sink(fd);
  dump_impl(sink, signal);
}

void flight_reset() {
  std::size_t nrings = g_ring_count.load(std::memory_order_relaxed);
  if (nrings > kFlightMaxThreads) nrings = kFlightMaxThreads;
  for (std::size_t i = 0; i < nrings; ++i) {
    FlightRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (std::size_t j = 0; j < ring->capacity; ++j) {
      ring->events[j] = FlightEvent{};
    }
    ring->head.store(0, std::memory_order_relaxed);
  }
}

}  // namespace ais::obs
