#include "obs/process_stats.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/metrics.hpp"

namespace ais::obs {

std::int64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(ru.ru_maxrss);  // already bytes
#else
  return static_cast<std::int64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

void record_process_gauges() {
  MetricRegistry::global().gauge("mem_peak_rss_bytes")
      ->set_max(peak_rss_bytes());
}

void record_arena_high_water(std::string_view name, std::int64_t bytes) {
  MetricRegistry::global()
      .gauge("arena_high_water", {"arena", name})
      ->set_max(bytes);
}

}  // namespace ais::obs
