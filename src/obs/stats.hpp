// Per-compile scheduler statistics and the `--profile` report.
//
// ScheduleStats is a snapshot of the built-in instrumentation counters
// (obs::ctr); capture() before and after a compile and subtract to get the
// per-compile numbers the paper's algorithms imply: Rank Algorithm runs,
// Merge relaxation rounds, idle slots moved, deadlines tightened, chop
// points, window-span > W planning orders, and simulator stall attribution.
#pragma once

#include <cstdint>
#include <string>

namespace ais::obs {

struct ScheduleStats {
  std::uint64_t rank_runs = 0;
  std::uint64_t rank_infeasible = 0;
  std::uint64_t rank_nodes_ranked = 0;
  std::uint64_t merge_calls = 0;
  std::uint64_t merge_relax_rounds = 0;
  std::uint64_t merge_full_relax_rounds = 0;
  std::uint64_t idle_move_attempts = 0;
  std::uint64_t idle_slots_moved = 0;
  std::uint64_t deadlines_tightened = 0;
  std::uint64_t chop_calls = 0;
  std::uint64_t chop_points = 0;
  std::uint64_t lookahead_blocks = 0;
  std::uint64_t window_span_over_w = 0;
  std::uint64_t sim_runs = 0;
  std::uint64_t sim_cycles = 0;
  std::uint64_t sim_stall_latency = 0;
  std::uint64_t sim_stall_window = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t cache_disk_hits = 0;
  std::uint64_t cache_disk_writes = 0;

  /// Snapshot of the current counter registry.
  static ScheduleStats capture();

  /// Per-compile delta: *this (the "after" snapshot) minus `since`.
  ScheduleStats delta(const ScheduleStats& since) const;

  /// Two-column name/value table (support/table rendering).
  std::string to_string() const;
};

/// The full `aisc --profile` report: a per-phase time table (phase, calls,
/// total ms, mean ms) followed by every registered counter.  Pipeline
/// counters that a reader will look for first (the ScheduleStats set) are
/// pre-registered at zero so the table is complete even for compiles that
/// never hit a code path.
std::string profile_report();

/// Registers every ScheduleStats counter at its current value (creating
/// missing ones at zero); a no-op while telemetry is disabled.
void register_builtin_counters();

}  // namespace ais::obs
