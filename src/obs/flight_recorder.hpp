// Always-on crash flight recorder: per-thread fixed ring buffers of recent
// trace events, dumped post-mortem by SIGSEGV/SIGABRT/SIGBUS handlers.
//
// Compiled in under AIS_OBS like every other hook; enabled at run time by
// AIS_FLIGHT_RECORDER=1 (or set_flight_enabled) — independently of
// obs::enabled(), so a production process can fly with counters off and
// rings on.  While enabled, every obs::Span writes a begin ('B') and end
// ('E') event into its thread's ring, and code can add point events with
// flight_record(); a disabled site costs one relaxed atomic load.
//
// Ring discipline: one fixed-size ring per thread (default 256 entries,
// AIS_FLIGHT_RING up to 65536), allocated on the thread's first event and
// leaked — the crash handler may fire on any thread at any time, so rings
// are never freed or shrunk.  Entries hold {timestamp µs, name pointer,
// arg, kind}: names must be string literals (the handler reads them
// asynchronously from the crashing thread).
//
// Signal safety is best-effort by design: the handler walks a lock-free
// fixed table of ring pointers, formats with snprintf into stack buffers,
// and write()s straight to an fd; the counter and histogram sections
// try_lock their registries and are skipped when contended.  Entries being
// overwritten mid-crash can tear — a torn line in a post-mortem beats a
// deadlocked handler.  After dumping, the handler re-raises with the
// default disposition (SA_RESETHAND), so exit codes and core dumps behave
// exactly as without the recorder.  See docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <string>

namespace ais::obs {

inline constexpr std::size_t kFlightRingDefaultEntries = 256;
inline constexpr std::size_t kFlightRingMaxEntries = 65536;
/// Rings beyond this many threads drop their events (never the process).
inline constexpr std::size_t kFlightMaxThreads = 256;

/// One relaxed atomic load.
bool flight_enabled();

/// First enable installs the SIGSEGV/SIGABRT/SIGBUS handlers (once per
/// process; they stay installed after a disable — an installed handler
/// with the recorder off just dumps empty rings).
void set_flight_enabled(bool on);

/// Reads AIS_FLIGHT_RECORDER (any value but ""/"0" enables),
/// AIS_FLIGHT_RING (entries per ring, clamped to a power of two in
/// [16, kFlightRingMaxEntries]) and AIS_FLIGHT_DIR (dump directory).
/// Called by obs::init_from_env().
void flight_init_from_env();

/// Directory crash dumps are written to; empty (default) = CWD.  Dump
/// files are named ais-crash-<pid>-<epoch-seconds>.dump.
void set_flight_dir(const std::string& dir);
std::string flight_dir();

/// Entries per ring for rings created after this call (existing rings keep
/// their size).  Rounded down to a power of two, clamped to
/// [16, kFlightRingMaxEntries].
void set_flight_ring_entries(std::size_t entries);

/// Appends one event to the calling thread's ring (no-op while disabled).
/// `name` MUST be a string literal or otherwise immortal.  kind: 'B' span
/// begin, 'E' span end, 'P' point event.
void flight_record(const char* name, char kind, std::uint64_t arg = 0);

/// The merged dump as a string — rings in thread order (oldest event
/// first), the counter snapshot, and histogram quantiles.  Ordinary
/// locking code for tests and deliberate dumps; the crash path uses
/// flight_dump_to_fd.
std::string flight_dump_string(int signal = 0);

/// Same, to a file; returns false when the file cannot be opened.
bool write_flight_dump(const std::string& path, int signal = 0);

/// Async-signal-safe best-effort dump to an open fd (the crash handler's
/// whole body).  Exposed so tests can exercise the exact crash-path code.
void flight_dump_to_fd(int fd, int signal);

/// Clears every ring's contents (tests; not signal-safe).
void flight_reset();

}  // namespace ais::obs
