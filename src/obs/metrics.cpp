#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>

#include "obs/obs.hpp"
#include "support/assert.hpp"
#include "support/mutex.hpp"

namespace ais::obs {
namespace {

/// Separators for the registry's series key: below every printable char, so
/// keys sort by (name, labels) and one family's series stay contiguous.
constexpr char kNameSep = '\x1f';
constexpr char kLabelSep = '\x1e';

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "counter";
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "ais_metric";
  if (out[0] >= '0' && out[0] <= '9') out.insert(0, "ais_");
  return out;
}

std::string prometheus_label_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

struct MetricRegistry::Impl {
  struct Series {
    std::string name;
    std::vector<std::pair<std::string, std::string>> labels;
    MetricType type = MetricType::kCounter;
    // Exactly one of these is non-null, per `type`; separate allocations
    // keep the common counter series from paying a Histogram's ~1 KiB.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> hist;
  };

  mutable Mutex mu;
  /// Node-stable: Series objects never move or die, so handles (and the
  /// crash path's walk) stay valid forever.
  std::map<std::string, std::unique_ptr<Series>> series AIS_GUARDED_BY(mu);

  Series* get(std::string_view name, const MetricLabel* labels,
              std::size_t n_labels, MetricType type) AIS_EXCLUDES(mu) {
    // Sort the (at most two) labels by key so {a,b} == {b,a}.
    MetricLabel sorted[2];
    for (std::size_t i = 0; i < n_labels; ++i) sorted[i] = labels[i];
    if (n_labels == 2 && sorted[1].first < sorted[0].first) {
      std::swap(sorted[0], sorted[1]);
    }
    std::string key;
    key.reserve(name.size() + 16);
    key.append(name);
    key += kNameSep;
    for (std::size_t i = 0; i < n_labels; ++i) {
      key.append(sorted[i].first);
      key += kLabelSep;
      key.append(sorted[i].second);
      key += kLabelSep;
    }

    MutexLock lock(mu);
    auto it = series.find(key);
    if (it == series.end()) {
      auto s = std::make_unique<Series>();
      s->name = std::string(name);
      for (std::size_t i = 0; i < n_labels; ++i) {
        s->labels.emplace_back(std::string(sorted[i].first),
                               std::string(sorted[i].second));
      }
      s->type = type;
      switch (type) {
        case MetricType::kCounter:
          s->counter = std::make_unique<Counter>();
          break;
        case MetricType::kGauge: s->gauge = std::make_unique<Gauge>(); break;
        case MetricType::kHistogram:
          s->hist = std::make_unique<Histogram>();
          break;
      }
      it = series.emplace(std::move(key), std::move(s)).first;
    }
    AIS_CHECK(it->second->type == type,
              "metric '" + it->second->name + "' re-registered as a different type");
    return it->second.get();
  }
};

MetricRegistry::MetricRegistry() : impl_(new Impl) {}

MetricRegistry::~MetricRegistry() { delete impl_; }

namespace {
// Published by global() so the crash path can reach the registry without
// risking an allocating first call from inside a signal handler.
std::atomic<MetricRegistry*> g_global_registry{nullptr};
}  // namespace

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry* r = [] {
    auto* created = new MetricRegistry;  // leaked: usable during teardown
    g_global_registry.store(created, std::memory_order_release);
    return created;
  }();
  return *r;
}

MetricRegistry* MetricRegistry::global_if_created() {
  return g_global_registry.load(std::memory_order_acquire);
}

Counter* MetricRegistry::counter(std::string_view name) {
  return impl_->get(name, nullptr, 0, MetricType::kCounter)->counter.get();
}

Counter* MetricRegistry::counter(std::string_view name, MetricLabel l0) {
  return impl_->get(name, &l0, 1, MetricType::kCounter)->counter.get();
}

Counter* MetricRegistry::counter(std::string_view name, MetricLabel l0,
                                 MetricLabel l1) {
  const MetricLabel ls[2] = {l0, l1};
  return impl_->get(name, ls, 2, MetricType::kCounter)->counter.get();
}

Gauge* MetricRegistry::gauge(std::string_view name) {
  return impl_->get(name, nullptr, 0, MetricType::kGauge)->gauge.get();
}

Gauge* MetricRegistry::gauge(std::string_view name, MetricLabel l0) {
  return impl_->get(name, &l0, 1, MetricType::kGauge)->gauge.get();
}

Gauge* MetricRegistry::gauge(std::string_view name, MetricLabel l0,
                             MetricLabel l1) {
  const MetricLabel ls[2] = {l0, l1};
  return impl_->get(name, ls, 2, MetricType::kGauge)->gauge.get();
}

Histogram* MetricRegistry::histogram(std::string_view name) {
  return impl_->get(name, nullptr, 0, MetricType::kHistogram)->hist.get();
}

Histogram* MetricRegistry::histogram(std::string_view name, MetricLabel l0) {
  return impl_->get(name, &l0, 1, MetricType::kHistogram)->hist.get();
}

Histogram* MetricRegistry::histogram(std::string_view name, MetricLabel l0,
                                     MetricLabel l1) {
  const MetricLabel ls[2] = {l0, l1};
  return impl_->get(name, ls, 2, MetricType::kHistogram)->hist.get();
}

std::vector<MetricSeries> MetricRegistry::snapshot() const {
  std::vector<MetricSeries> out;
  MutexLock lock(impl_->mu);
  out.reserve(impl_->series.size());
  for (const auto& [key, s] : impl_->series) {
    MetricSeries row;
    row.name = s->name;
    row.labels = s->labels;
    row.type = s->type;
    switch (s->type) {
      case MetricType::kCounter: row.counter_value = s->counter->value(); break;
      case MetricType::kGauge: row.gauge_value = s->gauge->value(); break;
      case MetricType::kHistogram: row.hist = s->hist->snapshot(); break;
    }
    out.push_back(std::move(row));
  }
  return out;  // map order is already (name, labels)
}

namespace {

std::string label_block(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += prometheus_name(labels[i].first);
    out += "=\"";
    out += prometheus_label_escape(labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Labels with one extra `le` pair appended (histogram bucket rows).
std::string bucket_label_block(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string& le) {
  std::string out = "{";
  for (const auto& [k, v] : labels) {
    out += prometheus_name(k);
    out += "=\"";
    out += prometheus_label_escape(v);
    out += "\",";
  }
  out += "le=\"" + le + "\"}";
  return out;
}

}  // namespace

void MetricRegistry::write_prometheus(std::ostream& os) const {
  const std::vector<MetricSeries> series = snapshot();
  std::string open_family;
  std::vector<std::string> emitted_families;
  for (const MetricSeries& s : series) {
    const std::string fam = prometheus_name(s.name);
    if (fam != open_family) {
      os << "# TYPE " << fam << " " << type_name(s.type) << "\n";
      open_family = fam;
      emitted_families.push_back(fam);
    }
    if (s.type == MetricType::kCounter) {
      os << fam << label_block(s.labels) << " " << s.counter_value << "\n";
    } else if (s.type == MetricType::kGauge) {
      os << fam << label_block(s.labels) << " " << s.gauge_value << "\n";
    } else {
      // Cumulative buckets up to the last occupied bound, then +Inf.
      std::size_t last = 0;
      for (std::size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
        if (s.hist.counts[i] != 0) last = i + 1;
      }
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < last; ++i) {
        cum += s.hist.counts[i];
        os << fam << "_bucket"
           << bucket_label_block(s.labels,
                                 std::to_string(kHistogramBucketBounds[i]))
           << " " << cum << "\n";
      }
      os << fam << "_bucket" << bucket_label_block(s.labels, "+Inf") << " "
         << s.hist.count << "\n";
      os << fam << "_sum" << label_block(s.labels) << " " << s.hist.sum
         << "\n";
      os << fam << "_count" << label_block(s.labels) << " " << s.hist.count
         << "\n";
    }
  }

  // Legacy named counters ride along as their own sanitized families; a
  // (never expected) collision with a registry family is skipped rather
  // than emitting a duplicate TYPE declaration.
  for (const auto& [name, value] : counters_snapshot()) {
    const std::string fam = prometheus_name(name);
    if (std::find(emitted_families.begin(), emitted_families.end(), fam) !=
        emitted_families.end()) {
      continue;
    }
    os << "# TYPE " << fam << " counter\n" << fam << " " << value << "\n";
  }
}

std::string MetricRegistry::prometheus_text() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

void MetricRegistry::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": 1,\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_snapshot()) {
    os << (first ? "" : ", ") << "\"" << json_escape(name) << "\": " << value;
    first = false;
  }
  os << "},\n  \"metrics\": [";
  const std::vector<MetricSeries> series = snapshot();
  for (std::size_t i = 0; i < series.size(); ++i) {
    const MetricSeries& s = series[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
       << json_escape(s.name) << "\", \"type\": \"" << type_name(s.type)
       << "\", \"labels\": {";
    for (std::size_t j = 0; j < s.labels.size(); ++j) {
      os << (j == 0 ? "" : ", ") << "\"" << json_escape(s.labels[j].first)
         << "\": \"" << json_escape(s.labels[j].second) << "\"";
    }
    os << "}";
    if (s.type == MetricType::kCounter) {
      os << ", \"value\": " << s.counter_value;
    } else if (s.type == MetricType::kGauge) {
      os << ", \"value\": " << s.gauge_value;
    } else {
      os << ", \"count\": " << s.hist.count << ", \"sum\": " << s.hist.sum
         << ", \"max\": " << s.hist.max << ", \"p50\": "
         << s.hist.quantile(0.5) << ", \"p90\": " << s.hist.quantile(0.9)
         << ", \"p99\": " << s.hist.quantile(0.99) << ", \"buckets\": [";
      bool first_bucket = true;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        if (s.hist.counts[b] == 0) continue;
        os << (first_bucket ? "" : ", ") << "{\"le\": ";
        if (b + 1 == kHistogramBuckets) {
          os << "\"+Inf\"";
        } else {
          os << kHistogramBucketBounds[b];
        }
        os << ", \"count\": " << s.hist.counts[b] << "}";
        first_bucket = false;
      }
      os << "]";
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
}

std::string MetricRegistry::json_text() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

std::string MetricRegistry::ascii_report() const {
  std::ostringstream os;
  const std::vector<MetricSeries> series = snapshot();
  bool any_scalar = false;
  for (const MetricSeries& s : series) {
    if (s.type != MetricType::kHistogram) any_scalar = true;
  }
  if (any_scalar) {
    os << "metrics:\n";
    for (const MetricSeries& s : series) {
      if (s.type == MetricType::kHistogram) continue;
      os << "  " << s.name << label_block(s.labels) << " = ";
      if (s.type == MetricType::kCounter) os << s.counter_value;
      else os << s.gauge_value;
      os << "\n";
    }
  }
  for (const MetricSeries& s : series) {
    if (s.type != MetricType::kHistogram || s.hist.count == 0) continue;
    os << s.name << label_block(s.labels) << ": count=" << s.hist.count
       << " sum=" << s.hist.sum << " max=" << s.hist.max
       << " p50=" << s.hist.quantile(0.5) << " p90=" << s.hist.quantile(0.9)
       << " p99=" << s.hist.quantile(0.99) << "\n";
    std::uint64_t peak = 0;
    for (const std::uint64_t c : s.hist.counts) peak = std::max(peak, c);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (s.hist.counts[b] == 0) continue;
      constexpr int kBarWidth = 40;
      const int bar = std::max<int>(
          1, static_cast<int>((s.hist.counts[b] * kBarWidth) / peak));
      char bound[24];
      if (b + 1 == kHistogramBuckets) {
        std::snprintf(bound, sizeof bound, "%12s", "+Inf");
      } else {
        std::snprintf(bound, sizeof bound, "%12llu",
                      static_cast<unsigned long long>(
                          kHistogramBucketBounds[b]));
      }
      os << "  le " << bound << " | " << std::string(bar, '#') << " "
         << s.hist.counts[b] << "\n";
    }
  }
  return os.str();
}

void MetricRegistry::reset_values() {
  MutexLock lock(impl_->mu);
  for (auto& [key, s] : impl_->series) {
    switch (s->type) {
      case MetricType::kCounter: s->counter->reset_value(); break;
      case MetricType::kGauge: s->gauge->reset_value(); break;
      case MetricType::kHistogram: s->hist->reset_values(); break;
    }
  }
}

bool MetricRegistry::try_visit(void (*fn)(void* ctx, const char* name,
                                          const char* labels, MetricType type,
                                          const void* series),
                               void* ctx) const {
  if (!impl_->mu.try_lock()) return false;
  for (const auto& [key, s] : impl_->series) {
    static thread_local char label_buf[256];
    label_buf[0] = '\0';
    std::size_t off = 0;
    for (const auto& [k, v] : s->labels) {
      const int n = std::snprintf(label_buf + off, sizeof label_buf - off,
                                  "%s%s=%s", off > 0 ? "," : "", k.c_str(),
                                  v.c_str());
      if (n < 0) break;
      off += static_cast<std::size_t>(n);
      if (off >= sizeof label_buf) break;
    }
    const void* ptr = nullptr;
    switch (s->type) {
      case MetricType::kCounter: ptr = s->counter.get(); break;
      case MetricType::kGauge: ptr = s->gauge.get(); break;
      case MetricType::kHistogram: ptr = s->hist.get(); break;
    }
    fn(ctx, s->name.c_str(), label_buf, s->type, ptr);
  }
  impl_->mu.unlock();
  return true;
}

}  // namespace ais::obs
