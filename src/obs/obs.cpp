#include "obs/obs.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <thread>

#include "support/mutex.hpp"
#include "support/stopwatch.hpp"

namespace ais::obs {
namespace {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_trace_enabled{false};

/// Registry state behind one mutex: spans fire at pass granularity (a few
/// thousand per compile at most), so contention is irrelevant; counters use
/// atomics so concurrent add() never serializes on the map once registered.
struct Registry {
  Mutex mu;
  // Node-stable map: counter_slot hands out references to the atomics, which
  // stay valid (and lock-free to bump) after mu is released.
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>> counters
      AIS_GUARDED_BY(mu);
  std::map<std::string, PhaseTotal> phases AIS_GUARDED_BY(mu);
  std::vector<TraceEvent> events AIS_GUARDED_BY(mu);
  std::map<std::thread::id, int> thread_ids AIS_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during static teardown
  return *r;
}

std::atomic<std::uint64_t>& counter_slot(std::string_view name) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  auto it = r.counters.find(std::string(name));
  if (it == r.counters.end()) {
    it = r.counters
             .emplace(std::string(name),
                      std::make_unique<std::atomic<std::uint64_t>>(0))
             .first;
  }
  return *it->second;
}

int thread_index() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  const auto [it, inserted] = r.thread_ids.emplace(
      std::this_thread::get_id(), static_cast<int>(r.thread_ids.size()));
  static_cast<void>(inserted);
  return it->second;
}

/// Span nesting depth of the current thread (opened, not yet closed).
thread_local int t_depth = 0;

/// Active CounterRecorders of the current thread, innermost last.  A plain
/// vector of non-owning pointers: recorders are stack-allocated RAII objects,
/// so push/pop order is guaranteed.
thread_local std::vector<CounterRecorder*> t_recorders;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string g_env_trace_path;  // written once by init_from_env

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
  if (!on) g_trace_enabled.store(false, std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  g_trace_enabled.store(on, std::memory_order_relaxed);
  if (on) g_enabled.store(true, std::memory_order_relaxed);
}

void init_from_env() {
  const char* trace = std::getenv("AIS_TRACE");
  if (trace != nullptr && trace[0] != '\0' &&
      std::string_view(trace) != "0") {
    set_enabled(true);
    if (std::string_view(trace) == "trace") set_trace_enabled(true);
  }
  const char* path = std::getenv("AIS_TRACE_JSON");
  if (path != nullptr && path[0] != '\0') {
    g_env_trace_path = path;
    set_trace_enabled(true);
  }
}

const std::string& env_trace_path() { return g_env_trace_path; }

void count(std::string_view name, std::uint64_t delta) {
  if (!t_recorders.empty()) {
    for (CounterRecorder* r : t_recorders) r->record(name, delta);
  }
  if (!enabled()) return;
  counter_slot(name).fetch_add(delta, std::memory_order_relaxed);
}

CounterRecorder::CounterRecorder(bool active) : active_(active) {
  if (active_) t_recorders.push_back(this);
}

CounterRecorder::~CounterRecorder() {
  if (active_) t_recorders.pop_back();
}

void CounterRecorder::record(std::string_view name, std::uint64_t delta) {
  if (name.substr(0, 6) == ctr::kCachePrefix) return;
  const auto it = deltas_.find(name);
  if (it == deltas_.end()) {
    deltas_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void CounterRecorder::replay(
    const std::map<std::string, std::uint64_t, std::less<>>& deltas) {
  for (const auto& [name, delta] : deltas) count(name, delta);
}

std::uint64_t counter_value(std::string_view name) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  const auto it = r.counters.find(std::string(name));
  return it == r.counters.end()
             ? 0
             : it->second->load(std::memory_order_relaxed);
}

std::vector<std::pair<std::string, std::uint64_t>> counters_snapshot() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(r.counters.size());
  for (const auto& [name, value] : r.counters) {
    out.emplace_back(name, value->load(std::memory_order_relaxed));
  }
  return out;  // std::map iteration order is already sorted by name
}

Span::Span(const char* name) : name_(name) {
  if (!enabled()) return;
  active_ = true;
  start_us_ = Stopwatch::now_us();
  ++t_depth;
}

Span::~Span() {
  if (!active_) return;
  const std::int64_t end_us = Stopwatch::now_us();
  --t_depth;
  // A span that outlives a set_enabled(false) still closes its books; the
  // gate only stops *new* spans from activating.
  Registry& r = registry();
  const int tid = thread_index();
  MutexLock lock(r.mu);
  PhaseTotal& agg = r.phases[name_];
  if (agg.name.empty()) agg.name = name_;
  ++agg.calls;
  agg.total_ms += static_cast<double>(end_us - start_us_) * 1e-3;
  if (trace_enabled()) {
    r.events.push_back(TraceEvent{name_, tid, t_depth, start_us_,
                                  end_us - start_us_});
  }
}

std::vector<PhaseTotal> phase_totals() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  std::vector<PhaseTotal> out;
  out.reserve(r.phases.size());
  for (const auto& [name, agg] : r.phases) out.push_back(agg);
  std::sort(out.begin(), out.end(), [](const PhaseTotal& a,
                                       const PhaseTotal& b) {
    return a.total_ms > b.total_ms || (a.total_ms == b.total_ms &&
                                       a.name < b.name);
  });
  return out;
}

std::vector<TraceEvent> trace_events() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  return r.events;
}

void write_chrome_trace(std::ostream& os) {
  std::vector<TraceEvent> events = trace_events();
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  const auto counters = counters_snapshot();
  std::int64_t last_ts = 0;
  for (const TraceEvent& e : events) {
    last_ts = std::max(last_ts, e.ts_us + e.dur_us);
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(e.name)
       << "\",\"cat\":\"ais\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
       << ",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us
       << ",\"args\":{\"depth\":" << e.depth << "}}";
  }
  for (const auto& [name, value] : counters) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(name)
       << "\",\"cat\":\"ais\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":"
       << last_ts << ",\"args\":{\"value\":" << value << "}}";
  }
  os << "\n]}\n";
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  write_chrome_trace(out);
  return out.good();
}

void reset() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  r.counters.clear();
  r.phases.clear();
  r.events.clear();
}

}  // namespace ais::obs
