#include "obs/obs.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <thread>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "support/mutex.hpp"
#include "support/stopwatch.hpp"
#include "support/telemetry_hook.hpp"

namespace ais::obs {
namespace {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_trace_enabled{false};

/// Registry state behind one mutex: spans fire at pass granularity (a few
/// thousand per compile at most), so contention is irrelevant; counters use
/// atomics so concurrent add() never serializes on the map once registered.
/// One phase's aggregate, bumped lock-free by Span close (the mutex guards
/// only the map that owns the cell, not the cell's totals).
struct PhaseCell {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> total_us{0};
};

struct Registry {
  Mutex mu;
  // Node-stable maps: counter_slot / phase_cell hand out pointers to the
  // heap cells, which stay valid (and lock-free to bump) after mu is
  // released.
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>> counters
      AIS_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<PhaseCell>> phases AIS_GUARDED_BY(mu);
  std::vector<TraceEvent> events AIS_GUARDED_BY(mu);
  std::map<std::thread::id, int> thread_ids AIS_GUARDED_BY(mu);
  // Bumped by reset() so the per-thread and per-call-site memos drop
  // pointers into the cleared maps.  Not guarded: relaxed hot-path loads,
  // release bumps.
  std::atomic<std::uint64_t> generation{1};
};

// Published by registry() so the crash path (try_visit_counters via the
// flight recorder) can reach the registry without risking an allocating
// first call from inside a signal handler.
std::atomic<Registry*> g_registry{nullptr};

Registry& registry() {
  static Registry* r = [] {
    auto* created = new Registry;  // leaked: usable during static teardown
    g_registry.store(created, std::memory_order_release);
    return created;
  }();
  return *r;
}

/// Per-thread counter-slot memo: count() on a warm name costs two map-free
/// TLS lookups and one relaxed fetch_add — the registry mutex is only taken
/// on each thread's first touch of a name (and again after reset(), which
/// invalidates every memo by bumping the registry generation).
struct TlsCounterSlots {
  std::uint64_t generation = 0;
  std::map<std::string, std::atomic<std::uint64_t>*, std::less<>> slots;
};

thread_local TlsCounterSlots t_counter_slots;

std::atomic<std::uint64_t>& counter_slot(std::string_view name) {
  Registry& r = registry();
  const std::uint64_t gen = r.generation.load(std::memory_order_acquire);
  if (t_counter_slots.generation != gen) {
    t_counter_slots.slots.clear();
    t_counter_slots.generation = gen;
  }
  if (const auto memo = t_counter_slots.slots.find(name);
      memo != t_counter_slots.slots.end()) {
    return *memo->second;
  }
  std::atomic<std::uint64_t>* slot = nullptr;
  {
    MutexLock lock(r.mu);
    auto it = r.counters.find(std::string(name));
    if (it == r.counters.end()) {
      it = r.counters
               .emplace(std::string(name),
                        std::make_unique<std::atomic<std::uint64_t>>(0))
               .first;
    }
    slot = it->second.get();
  }
  t_counter_slots.slots.emplace(std::string(name), slot);
  return *slot;
}

/// The phase cell for `name`, registering it on first use.
PhaseCell& phase_cell(const char* name) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  auto it = r.phases.find(name);
  if (it == r.phases.end()) {
    it = r.phases.emplace(name, std::make_unique<PhaseCell>()).first;
  }
  return *it->second;
}

/// Resolves `site`'s cached phase cell, re-registering after a reset().
/// The publish order (slot relaxed, then gen release) pairs with the
/// acquire gen load so a matching generation proves the slot points into
/// the live map.
PhaseCell& resolve_phase(SiteHandle* site, const char* name) {
  Registry& r = registry();
  const std::uint64_t gen = r.generation.load(std::memory_order_acquire);
  if (site != nullptr && site->gen.load(std::memory_order_acquire) == gen) {
    if (void* cell = site->slot.load(std::memory_order_relaxed)) {
      return *static_cast<PhaseCell*>(cell);
    }
  }
  PhaseCell& cell = phase_cell(name);
  if (site != nullptr) {
    site->slot.store(&cell, std::memory_order_relaxed);
    site->gen.store(gen, std::memory_order_release);
  }
  return cell;
}

/// Per-thread histogram-handle memo for record_value().  No generation:
/// MetricRegistry registrations are permanent (reset_values() zeroes values
/// but never drops a series), so a memoized handle can never dangle.
thread_local std::map<std::string, Histogram*, std::less<>> t_hist_slots;

/// Names CounterRecorder refuses to capture: cache traffic ("cache.") and
/// wall-clock distributions ("time.") describe the run, not the schedule —
/// replaying either from a cache hit would double-count or smear timings.
bool recorder_skips(std::string_view name) {
  return name.substr(0, 6) == ctr::kCachePrefix ||
         name.substr(0, 5) == ctr::kTimePrefix;
}

int thread_index() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  const auto [it, inserted] = r.thread_ids.emplace(
      std::this_thread::get_id(), static_cast<int>(r.thread_ids.size()));
  static_cast<void>(inserted);
  return it->second;
}

/// Span nesting depth of the current thread (opened, not yet closed).
thread_local int t_depth = 0;

/// Active CounterRecorders of the current thread, innermost last.  A plain
/// vector of non-owning pointers: recorders are stack-allocated RAII objects,
/// so push/pop order is guaranteed.
thread_local std::vector<CounterRecorder*> t_recorders;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string g_env_trace_path;  // written once by init_from_env

}  // namespace

#if AIS_OBS_ENABLED
namespace {

// ThreadPool lives in support/, which cannot link obs; it reports task
// queue-wait and run times through the TelemetrySink function-pointer hook
// instead.  obs.o is always in the link (Span/enabled() are referenced from
// every instrumented TU), so installing the sink from a static initializer
// is reliable — and an AIS_OBS=OFF build compiles this block away, leaving
// the pool unhooked.
bool sink_enabled() { return enabled(); }
void sink_value(const char* name, std::uint64_t value) {
  record_value(name, value);
}
constexpr TelemetrySink kObsSink{&sink_enabled, &sink_value};
const bool g_sink_installed = [] {
  set_telemetry_sink(&kObsSink);
  return true;
}();

}  // namespace
#endif  // AIS_OBS_ENABLED

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
  if (!on) g_trace_enabled.store(false, std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  g_trace_enabled.store(on, std::memory_order_relaxed);
  if (on) g_enabled.store(true, std::memory_order_relaxed);
}

void init_from_env() {
  const char* trace = std::getenv("AIS_TRACE");
  if (trace != nullptr && trace[0] != '\0' &&
      std::string_view(trace) != "0") {
    set_enabled(true);
    if (std::string_view(trace) == "trace") set_trace_enabled(true);
  }
  const char* path = std::getenv("AIS_TRACE_JSON");
  if (path != nullptr && path[0] != '\0') {
    g_env_trace_path = path;
    set_trace_enabled(true);
  }
  flight_init_from_env();
}

const std::string& env_trace_path() { return g_env_trace_path; }

void count(std::string_view name, std::uint64_t delta) {
  if (!t_recorders.empty()) {
    for (CounterRecorder* r : t_recorders) r->record(name, delta);
  }
  if (!enabled()) return;
  counter_slot(name).fetch_add(delta, std::memory_order_relaxed);
}

void count_cached(SiteHandle& site, std::string_view name,
                  std::uint64_t delta) {
  if (!t_recorders.empty()) {
    count(name, delta);  // per-event capture, then the registry if enabled
    return;
  }
  if (!enabled()) return;
  Registry& r = registry();
  const std::uint64_t gen = r.generation.load(std::memory_order_acquire);
  if (site.gen.load(std::memory_order_acquire) == gen) {
    if (void* slot = site.slot.load(std::memory_order_relaxed)) {
      static_cast<std::atomic<std::uint64_t>*>(slot)->fetch_add(
          delta, std::memory_order_relaxed);
      return;
    }
  }
  std::atomic<std::uint64_t>& slot = counter_slot(name);
  site.slot.store(&slot, std::memory_order_relaxed);
  site.gen.store(gen, std::memory_order_release);
  slot.fetch_add(delta, std::memory_order_relaxed);
}

void record_value(std::string_view name, std::uint64_t value) {
  if (!t_recorders.empty()) {
    for (CounterRecorder* r : t_recorders) r->record_sample(name, value);
  }
  if (!enabled()) return;
  auto it = t_hist_slots.find(name);
  if (it == t_hist_slots.end()) {
    it = t_hist_slots
             .emplace(std::string(name),
                      MetricRegistry::global().histogram(name))
             .first;
  }
  it->second->record(value);
}

CounterRecorder::CounterRecorder(bool active) : active_(active) {
  if (active_) t_recorders.push_back(this);
}

CounterRecorder::~CounterRecorder() {
  if (active_) t_recorders.pop_back();
}

void CounterRecorder::record(std::string_view name, std::uint64_t delta) {
  if (recorder_skips(name)) return;
  const auto it = deltas_.find(name);
  if (it == deltas_.end()) {
    deltas_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void CounterRecorder::record_sample(std::string_view name,
                                    std::uint64_t value) {
  if (recorder_skips(name)) return;
  const auto it = samples_.find(name);
  if (it == samples_.end()) {
    samples_.emplace(std::string(name), std::vector<std::uint64_t>{value});
  } else {
    it->second.push_back(value);
  }
}

void CounterRecorder::replay(
    const std::map<std::string, std::uint64_t, std::less<>>& deltas) {
  for (const auto& [name, delta] : deltas) count(name, delta);
}

void CounterRecorder::replay_values(const ValueSamples& samples) {
  for (const auto& [name, values] : samples) {
    for (const std::uint64_t v : values) record_value(name, v);
  }
}

std::uint64_t counter_value(std::string_view name) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  const auto it = r.counters.find(std::string(name));
  return it == r.counters.end()
             ? 0
             : it->second->load(std::memory_order_relaxed);
}

std::vector<std::pair<std::string, std::uint64_t>> counters_snapshot() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(r.counters.size());
  for (const auto& [name, value] : r.counters) {
    out.emplace_back(name, value->load(std::memory_order_relaxed));
  }
  return out;  // std::map iteration order is already sorted by name
}

bool try_visit_counters(void (*fn)(void* ctx, const char* name,
                                   std::uint64_t value),
                        void* ctx) {
  Registry* r = g_registry.load(std::memory_order_acquire);
  if (r == nullptr) return true;  // never created: nothing to visit
  if (!r->mu.try_lock()) return false;
  for (const auto& [name, value] : r->counters) {
    fn(ctx, name.c_str(), value->load(std::memory_order_relaxed));
  }
  r->mu.unlock();
  return true;
}

namespace {

/// Shared Span / DetailSpan close: folds the elapsed time into the phase
/// cell lock-free, and takes the registry mutex only in full-trace mode to
/// append the event.
void close_span(SiteHandle* site, const char* name, std::int64_t start_us) {
  const std::int64_t end_us = Stopwatch::now_us();
  --t_depth;
  // A span that outlives a set_enabled(false) still closes its books; the
  // gate only stops *new* spans from activating.
  PhaseCell& cell = resolve_phase(site, name);
  cell.calls.fetch_add(1, std::memory_order_relaxed);
  cell.total_us.fetch_add(static_cast<std::uint64_t>(end_us - start_us),
                          std::memory_order_relaxed);
  if (trace_enabled()) {
    Registry& r = registry();
    const int tid = thread_index();
    MutexLock lock(r.mu);
    r.events.push_back(TraceEvent{name, tid, t_depth, start_us,
                                  end_us - start_us});
  }
}

}  // namespace

Span::Span(const char* name) : name_(name) {
  if (flight_enabled()) {
    flight_ = true;  // remember: the gate may flip before the destructor
    flight_record(name_, 'B');
  }
  if (!enabled()) return;
  active_ = true;
  start_us_ = Stopwatch::now_us();
  ++t_depth;
}

Span::Span(SiteHandle& site, const char* name) : name_(name), site_(&site) {
  if (flight_enabled()) {
    flight_ = true;
    flight_record(name_, 'B');
  }
  if (!enabled()) return;
  active_ = true;
  start_us_ = Stopwatch::now_us();
  ++t_depth;
}

Span::~Span() {
  if (flight_) {
    flight_record(name_, 'E',
                  active_ ? static_cast<std::uint64_t>(Stopwatch::now_us() -
                                                       start_us_)
                          : 0);
  }
  if (!active_) return;
  close_span(site_, name_, start_us_);
}

DetailSpan::DetailSpan(SiteHandle& site, const char* name)
    : name_(name), site_(&site) {
  if (flight_enabled()) {
    flight_ = true;
    flight_record(name_, 'B');
  }
  if (!trace_enabled()) return;  // inert outside full-trace mode
  active_ = true;
  start_us_ = Stopwatch::now_us();
  ++t_depth;
}

DetailSpan::~DetailSpan() {
  if (flight_) {
    flight_record(name_, 'E',
                  active_ ? static_cast<std::uint64_t>(Stopwatch::now_us() -
                                                       start_us_)
                          : 0);
  }
  if (!active_) return;
  close_span(site_, name_, start_us_);
}

ScopedTimer::ScopedTimer(const char* name) : name_(name) {
  if (!enabled()) return;
  active_ = true;
  start_us_ = Stopwatch::now_us();
}

ScopedTimer::~ScopedTimer() {
  if (!active_) return;
  record_value(name_, static_cast<std::uint64_t>(Stopwatch::now_us() -
                                                 start_us_));
}

std::vector<PhaseTotal> phase_totals() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  std::vector<PhaseTotal> out;
  out.reserve(r.phases.size());
  for (const auto& [name, cell] : r.phases) {
    PhaseTotal agg;
    agg.name = name;
    agg.calls = cell->calls.load(std::memory_order_relaxed);
    agg.total_ms =
        static_cast<double>(cell->total_us.load(std::memory_order_relaxed)) *
        1e-3;
    out.push_back(std::move(agg));
  }
  std::sort(out.begin(), out.end(), [](const PhaseTotal& a,
                                       const PhaseTotal& b) {
    return a.total_ms > b.total_ms || (a.total_ms == b.total_ms &&
                                       a.name < b.name);
  });
  return out;
}

std::vector<TraceEvent> trace_events() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  return r.events;
}

void write_chrome_trace(std::ostream& os) {
  std::vector<TraceEvent> events = trace_events();
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  const auto counters = counters_snapshot();
  std::int64_t last_ts = 0;
  for (const TraceEvent& e : events) {
    last_ts = std::max(last_ts, e.ts_us + e.dur_us);
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(e.name)
       << "\",\"cat\":\"ais\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
       << ",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us
       << ",\"args\":{\"depth\":" << e.depth << "}}";
  }
  for (const auto& [name, value] : counters) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(name)
       << "\",\"cat\":\"ais\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":"
       << last_ts << ",\"args\":{\"value\":" << value << "}}";
  }
  os << "\n]}\n";
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  write_chrome_trace(out);
  return out.good();
}

void reset() {
  // Callers must quiesce concurrent counting threads first (the same
  // contract the un-memoized registry had: a thread between counter lookup
  // and fetch_add would race the clear either way).
  Registry& r = registry();
  {
    MutexLock lock(r.mu);
    r.counters.clear();
    r.phases.clear();
    r.events.clear();
  }
  // Invalidate every thread's slot memo, then zero histogram values too so
  // reset() means "fresh books" for the whole telemetry layer.
  r.generation.fetch_add(1, std::memory_order_release);
  if (MetricRegistry* m = MetricRegistry::global_if_created()) {
    m->reset_values();
  }
}

}  // namespace ais::obs
