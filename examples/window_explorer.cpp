// Window explorer: how does the hardware lookahead window size change the
// value of compile-time anticipation?
//
//   $ ./build/examples/window_explorer [--blocks 4] [--latency 3] [--seed 7]
//
// Generates a boundary-structured trace (every block ends with a
// long-latency producer feeding the next block's critical chain), schedules
// it anticipatorily and locally, and prints completion cycles for W = 1..16
// — the crossover the paper describes: the compiler matters most when the
// window is small.
#include <cstdio>

#include "baselines/block_schedulers.hpp"
#include "core/lookahead.hpp"
#include "machine/machine_model.hpp"
#include "sim/lookahead_sim.hpp"
#include "support/cli.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"
#include "workloads/random_graphs.hpp"

int main(int argc, char** argv) {
  using namespace ais;
  const CliArgs args(argc, argv);

  BoundaryTraceParams params;
  params.num_blocks = static_cast<int>(args.get_int("blocks", 4));
  params.boundary_latency = static_cast<int>(args.get_int("latency", 3));
  Prng prng(static_cast<std::uint64_t>(args.get_int("seed", 7)));
  const DepGraph g = boundary_trace(prng, params);
  const MachineModel machine = deep_pipeline();

  std::printf("boundary trace: %d blocks, boundary latency %d, "
              "%zu instructions, machine %s\n\n",
              params.num_blocks, params.boundary_latency, g.num_nodes(),
              machine.name().c_str());

  const RankScheduler scheduler(g, machine);
  TextTable t({"W", "anticipatory", "per-block rank", "source order",
               "anticipatory win vs rank"});
  for (const int w : {1, 2, 3, 4, 6, 8, 12, 16}) {
    LookaheadOptions opts;
    opts.window = w;
    const LookaheadResult res = schedule_trace(scheduler, opts);
    const Time ours =
        simulated_completion(g, machine, res.priority_list(), w);
    const Time rank = simulated_completion(
        g, machine, schedule_trace_per_block(g, machine, BlockScheduler::kRank),
        w);
    const Time src = simulated_completion(
        g, machine,
        schedule_trace_per_block(g, machine, BlockScheduler::kSourceOrder), w);
    char win[32];
    std::snprintf(win, sizeof(win), "%+lld cycles",
                  static_cast<long long>(rank - ours));
    t.add_row({std::to_string(w), std::to_string(ours), std::to_string(rank),
               std::to_string(src), win});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nNote how the advantage of anticipatory scheduling shrinks "
              "as the hardware window grows: with a large window the\n"
              "processor discovers the same overlap dynamically, which is "
              "exactly the interplay the paper studies.\n");
  return 0;
}
