# Figure 3 of the paper: the vector-scale loop body whose anticipatory
# schedule (Schedule 2) hoists the MUL between CMP and BT so a one-slot
# lookahead window overlaps consecutive iterations.
#
#   aislint --in examples/fig3_loop.s --mode loop --machine rs6000 --verify
block CL.18:
  LDU r6, x[r7+4]
  STU y[r5+4], r0
  CMP c1, r6, 0
  MUL r0, r6, r0
  BT  c1, CL.18
