// Quickstart: schedule a two-block trace anticipatorily and execute it on
// the lookahead machine simulator.
//
//   $ ./build/examples/quickstart
//
// Walks the whole public API surface: build IR from assembly text, derive
// the dependence graph, run Algorithm Lookahead, check legality, and compare
// the simulated completion time against a per-block baseline.
#include <cstdio>

#include "baselines/block_schedulers.hpp"
#include "core/legality.hpp"
#include "core/lookahead.hpp"
#include "ir/asm_parser.hpp"
#include "ir/depbuild.hpp"
#include "machine/machine_model.hpp"
#include "sim/lookahead_sim.hpp"

int main() {
  using namespace ais;

  // 1. A two-block trace in the toy assembly.
  const Program prog = parse_program(R"(
    block entry:
      LDU r6, a[r7+4]
      LDU r8, b[r9+4]
      MUL r10, r6, r8
      CMP c1, r10, 0
      BT  c1, exit
    block body:
      ADD r11, r10, r6
      ADD r12, r11, r8
      LD  r13, c[r12+0]
      ST  d[r7+0], r13
  )");
  const Trace trace{prog.blocks};

  // 2. Dependence graph under an RS/6000-flavoured machine model.
  const MachineModel machine = rs6000_like();
  const DepGraph g = build_trace_graph(trace, machine);
  std::printf("trace: %zu instructions, %zu dependence edges\n\n",
              g.num_nodes(), g.num_edges());

  // 3. Anticipatory scheduling with a lookahead window of 4.
  const int window = 4;
  const RankScheduler scheduler(g, machine);
  LookaheadOptions opts;
  opts.window = window;
  const LookaheadResult anticipatory = schedule_trace(scheduler, opts);

  std::printf("emitted code (block boundaries preserved):\n");
  for (std::size_t b = 0; b < anticipatory.per_block.size(); ++b) {
    std::printf("  block %zu:\n", b);
    for (const NodeId id : anticipatory.per_block[b]) {
      std::printf("    %s\n", g.node(id).name.c_str());
    }
  }

  // 4. Execute on the lookahead machine; compare with a classic per-block
  // critical-path list scheduler.
  const auto baseline = schedule_trace_per_block(
      g, machine, BlockScheduler::kCriticalPathList);
  const Time t_anticipatory =
      simulated_completion(g, machine, anticipatory.priority_list(), window);
  const Time t_baseline = simulated_completion(g, machine, baseline, window);
  std::printf("\nsimulated completion (W = %d):\n", window);
  std::printf("  anticipatory : %lld cycles\n",
              static_cast<long long>(t_anticipatory));
  std::printf("  cp-list      : %lld cycles\n",
              static_cast<long long>(t_baseline));
  return 0;
}
