# A two-block trace in the style of the paper's straight-line examples:
# block B1 computes an address and a guard, block B2 consumes the loaded
# value.  Anticipatory scheduling may only reorder within each block; the
# verifier checks that and every re-derived dependence.
#
#   aislint --in examples/two_block_trace.s --machine rs6000 --verify
block B1:
  LI  r1, 8
  ADD r2, r1, r1
  LD  r3, a[r2+0]
  CMP c1, r3, 0
  SHL r4, r3, 1
  BT  c1, OUT
block B2:
  MUL r5, r4, r3
  ADD r6, r5, r1
  ST  a[r2+8], r6
  SUB r7, r6, r4
