// Trace pipeline: the full compiler view, step by step, on the workload the
// paper's introduction motivates — a hot path through several basic blocks
// with a long-latency producer feeding each block boundary.
//
//   $ ./build/examples/trace_pipeline [--window N]
//
// Shows each Algorithm Lookahead ingredient doing its job: the per-block
// rank schedules, the merged schedules with idle slots delayed, the chopped
// prefixes, and finally the emitted per-block code compared against every
// baseline on the lookahead machine.
#include <cstdio>

#include "baselines/block_schedulers.hpp"
#include "core/lookahead.hpp"
#include "core/move_idle.hpp"
#include "graph/dot.hpp"
#include "ir/asm_parser.hpp"
#include "ir/depbuild.hpp"
#include "machine/machine_model.hpp"
#include "sim/lookahead_sim.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace ais;
  const CliArgs args(argc, argv);

  // A three-block hot path: each block loads, multiplies (latency 4 on the
  // deep pipeline) and hands the product to the next block.
  const Program prog = parse_program(R"(
    block stage0:
      LDU r6, a[r7+4]
      MUL r10, r6, r6
      ADD r1, r2, r3
      ADD r2, r1, r3
      CMP c1, r6, 0
      BT  c1, done
    block stage1:
      ADD r11, r10, r6
      SHL r4, r1, 2
      MUL r12, r11, r11
      ADD r5, r4, r2
      CMP c2, r11, 0
      BT  c2, done
    block stage2:
      ADD r13, r12, r11
      ST  out[r7+0], r13
      ADD r7, r7, 4
  )");
  const MachineModel machine = deep_pipeline();
  const DepGraph g = build_trace_graph(Trace{prog.blocks}, machine);
  const int window =
      static_cast<int>(args.get_int("window", machine.default_window()));

  std::printf("=== input trace (%zu instructions, %zu dependence edges) ===\n",
              g.num_nodes(), g.num_edges());
  for (std::size_t b = 0; b < prog.blocks.size(); ++b) {
    std::printf("block %s:\n", prog.blocks[b].label.c_str());
    for (const auto& inst : prog.blocks[b].insts) {
      std::printf("  %s\n", inst.to_string().c_str());
    }
  }

  // Step 1: what a local scheduler sees — each block in isolation.
  const RankScheduler scheduler(g, machine);
  std::printf("\n=== per-block rank schedules (lookahead-oblivious) ===\n");
  for (const NodeSet& block : blocks_of(g)) {
    DeadlineMap d = uniform_deadlines(g, huge_deadline(g, block));
    const RankResult r = scheduler.run(block, d, {});
    std::printf("  %s  (makespan %lld, %zu idle slots)\n",
                format_timeline(r.schedule).c_str(),
                static_cast<long long>(r.makespan),
                r.schedule.idle_slots().size());
  }

  // Step 2: Algorithm Lookahead.
  LookaheadOptions opts;
  opts.window = window;
  const LookaheadResult res = schedule_trace(scheduler, opts);
  std::printf("\n=== anticipatory emitted code (W = %d) ===\n", window);
  for (std::size_t b = 0; b < res.per_block.size(); ++b) {
    std::printf("block %s:\n", prog.blocks[b].label.c_str());
    for (const NodeId id : res.per_block[b]) {
      std::printf("  %s\n", g.node(id).name.c_str());
    }
  }
  std::printf("(merged makespans per iteration:");
  for (const Time m : res.diag.merged_makespans) {
    std::printf(" %lld", static_cast<long long>(m));
  }
  std::printf("; %zu prefixes emitted early)\n", res.diag.prefixes_emitted);

  // Step 3: execute everything on the lookahead machine.
  std::printf("\n=== simulated completion, W = %d ===\n", window);
  TextTable t({"scheduler", "cycles", "stalls"});
  {
    const SimResult sim =
        simulate_list(g, machine, res.priority_list(), window);
    t.add_row({"anticipatory", std::to_string(sim.completion),
               std::to_string(sim.stall_cycles)});
  }
  for (const BlockScheduler kind :
       {BlockScheduler::kRank, BlockScheduler::kCriticalPathList,
        BlockScheduler::kGibbonsMuchnick, BlockScheduler::kWarren,
        BlockScheduler::kSourceOrder}) {
    const auto list = schedule_trace_per_block(g, machine, kind);
    const SimResult sim = simulate_list(g, machine, list, window);
    t.add_row({block_scheduler_name(kind), std::to_string(sim.completion),
               std::to_string(sim.stall_cycles)});
  }
  std::printf("%s", t.to_string().c_str());

  if (args.get_bool("dot", false)) {
    std::printf("\n%s", to_dot(g, "trace").c_str());
  }
  return 0;
}
