// Loop kernel scheduling: anticipatory instruction scheduling as a
// post-pass to software pipelining (paper §2.4 / §5.2).
//
//   $ ./build/examples/loop_kernel [--kernel partial-product] [--window N]
//
// Builds the kernel's dependence graph (loop-carried edges included), lists
// every §5.2.3 candidate schedule with its steady-state initiation
// interval, and reports the selected order next to the block-optimal one.
#include <cstdio>
#include <string>

#include "core/loop_single.hpp"
#include "core/rank.hpp"
#include "graph/dot.hpp"
#include "ir/depbuild.hpp"
#include "machine/machine_model.hpp"
#include "sim/loop_sim.hpp"
#include "support/cli.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ais;

std::string order_names(const DepGraph& g, const std::vector<NodeId>& order) {
  std::string out;
  for (const NodeId id : order) {
    if (!out.empty()) out += " ; ";
    out += g.node(id).name;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ais;
  const CliArgs args(argc, argv);
  const std::string kernel_name =
      args.get_string("kernel", "partial-product");

  Loop loop;
  bool found = false;
  for (auto& [name, k] : all_loop_kernels()) {
    if (kernel_name == name) {
      loop = k;
      found = true;
    }
  }
  if (!found) {
    std::printf("unknown kernel '%s'; available:", kernel_name.c_str());
    for (const auto& [name, k] : all_loop_kernels()) std::printf(" %s", name);
    std::printf("\n");
    return 1;
  }

  const MachineModel machine = rs6000_like();
  const DepGraph g = build_loop_graph(loop, machine);
  const int window = static_cast<int>(args.get_int("window", 1));

  std::printf("kernel '%s' on %s, W = %d:\n", kernel_name.c_str(),
              machine.name().c_str(), window);
  for (const auto& bb : loop.body.blocks) {
    for (const auto& inst : bb.insts) {
      std::printf("  %s\n", inst.to_string().c_str());
    }
  }
  std::printf("\ndependences (carried ones marked with their distance):\n");
  for (const DepEdge& e : g.edges()) {
    std::printf("  %-28s -> %-28s <%d,%d>\n", g.node(e.from).name.c_str(),
                g.node(e.to).name.c_str(), e.latency, e.distance);
  }

  const auto evaluator = [&](const std::vector<NodeId>& order) {
    return steady_state_period(g, machine, order, window);
  };
  LoopSingleOptions opts;
  opts.prune = LoopSingleOptions::Prune::kNever;

  std::printf("\ncandidates (5.2.3):\n");
  TextTable t({"pivot", "form", "cycles/iter", "order"});
  for (const auto& cand : loop_single_candidates(g, machine, opts)) {
    t.add_row({cand.pivot == kInvalidNode ? std::string("-")
                                          : g.node(cand.pivot).name.str(),
               cand.source_form ? "source" : "sink",
               fmt_double(evaluator(cand.order), 2),
               order_names(g, cand.order)});
  }
  std::printf("%s", t.to_string().c_str());

  const LoopCandidate best =
      schedule_single_block_loop(g, machine, evaluator, opts);
  std::printf("\nselected order (%.2f cycles/iteration):\n",
              evaluator(best.order));
  for (const NodeId id : best.order) {
    std::printf("  %s\n", g.node(id).name.c_str());
  }

  if (args.get_bool("dot", false)) {
    std::printf("\n%s", to_dot(g, kernel_name).c_str());
  }
  return 0;
}
