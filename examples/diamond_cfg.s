# A diamond control-flow graph: entry branches around a slow path, both
# sides join.  In cfg mode aisc selects traces by profile and reschedules
# each trace; layout and labels must survive untouched.
#
#   aislint --in examples/diamond_cfg.s --mode cfg --machine deep --verify
block entry:
  LI  r1, 4
  LD  r2, p[r1+0]
  CMP c1, r2, 0
  BT  c1, slow
block fast:
  ADD r3, r2, r1
  SHL r4, r3, 2
  B   join
block slow:
  MUL r3, r2, r2
  ADD r4, r3, r1
block join:
  ST  p[r1+8], r4
  ADD r5, r4, r2
