# Memory disambiguation by tag: stores to `a` and loads from `b` are
# independent (distinct tags), while the untagged access aliases everything
# and must stay ordered against both.
#
#   aislint --in examples/memory_alias.s --machine vliw4 --verify
block body:
  LI  r1, 16
  LD  r2, a[r1+0]
  LD  r3, b[r1+0]
  ADD r4, r2, r3
  ST  a[r1+4], r4
  LD  r5, [r1+8]
  MUL r6, r5, r4
  ST  b[r1+4], r6
