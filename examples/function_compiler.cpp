// Whole-program compilation: CFG construction, profile-guided trace
// formation, and anticipatory scheduling of every trace — the end-to-end
// workflow the paper's introduction sketches, with the safety property
// visible: block layout and labels never change, only the order of
// instructions inside each block.
//
//   $ ./build/examples/function_compiler [--window N] [--p 0.1]
#include <cstdio>

#include "cfg/cfg.hpp"
#include "cfg/trace_select.hpp"
#include "driver/function_compiler.hpp"
#include "ir/asm_parser.hpp"
#include "machine/machine_model.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace ais;
  const CliArgs args(argc, argv);

  const Program prog = parse_program(R"(
    block entry:
      LDU r6, a[r7+4]
      MUL r10, r6, r6
      CMP c1, r6, 0
      BT  c1, cold
    block hot1:
      ADD r11, r10, r6
      LD  r12, b[r11+0]
      MUL r13, r12, r11
      ADD r1, r2, r3
      CMP c2, r12, 0
      BT  c2, cold
    block hot2:
      ADD r14, r13, r12
      SHL r15, r14, 1
      ST  out[r7+0], r15
      ADD r7, r7, 4
      B   entry
    block cold:
      SUB r4, r6, r10
      ST  err[r9+0], r4
  )");

  Cfg cfg(prog, 100);
  const double p = args.get_double("p", 0.05);  // branches rarely taken
  cfg.set_branch_probability(cfg.find_label("entry"), p);
  cfg.set_branch_probability(cfg.find_label("hot1"), p);

  const MachineModel machine = deep_pipeline();
  const int window = static_cast<int>(args.get_int("window", 2));
  const CompiledProgram compiled = compile_program(cfg, machine, window);

  std::printf("traces selected (heaviest first):\n");
  for (const SelectedTrace& t : compiled.traces) {
    std::printf("  [w=%.1f]", t.weight);
    for (const BlockId b : t.blocks) {
      std::printf(" %s", cfg.block(b).label.c_str());
    }
    std::printf("\n");
  }

  std::printf("\ncompiled program (layout unchanged, blocks reordered "
              "inside):\n");
  for (const BasicBlock& bb : compiled.program.blocks) {
    std::printf("block %s:\n", bb.label.c_str());
    for (const Instruction& inst : bb.insts) {
      std::printf("  %s\n", inst.to_string().c_str());
    }
  }

  std::printf("\nhot trace at W = %d: %lld cycles before, %lld after "
              "anticipatory scheduling\n",
              compiled.window,
              static_cast<long long>(compiled.hot_trace_cycles_before),
              static_cast<long long>(compiled.hot_trace_cycles_after));
  return 0;
}
