#!/usr/bin/env sh
# Regenerates every experiment (E1-E14) and mirrors the sweep data as CSV.
#
#   sh scripts/run_experiments.sh [BUILD_DIR] [OUT_DIR]
set -eu

BUILD=${1:-build}
OUT=${2:-results}
mkdir -p "$OUT"

run() {
  name=$1
  shift
  echo "===== $name ====="
  "$BUILD/bench/$name" "$@"
  echo
}

{
  run bench_fig1_block
  run bench_fig2_trace
  run bench_fig3_loop
  run bench_fig8_duality
  run bench_window_sweep --csv "$OUT/window_sweep.csv"
  run bench_trace_length --csv "$OUT/trace_length.csv"
  run bench_general_machine --csv "$OUT/general_machine.csv"
  run bench_loops
  run bench_optimality
  run bench_ablation
  run bench_swp_postpass
  run bench_renaming
  run bench_memory_deps
  run bench_compile_time --benchmark_min_time=0.2
} | tee "$OUT/experiments.txt"

echo "results written to $OUT/"
