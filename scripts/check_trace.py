#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file written by --trace-json /
obs::write_chrome_trace (CI runs this on every aisc telemetry artifact).

Checks: the file parses as JSON, traceEvents is a non-empty list, every
event carries the complete-event or counter-event shape, and span nesting
is consistent (a deeper span's interval lies within some enclosing span on
the same thread).
"""
import json
import sys


def fail(msg):
    print(f"check_trace.py: {msg}", file=sys.stderr)
    return 1


def main(argv):
    if len(argv) != 2:
        return fail("usage: check_trace.py TRACE.json")
    with open(argv[1]) as f:
        try:
            trace = json.load(f)
        except json.JSONDecodeError as e:
            return fail(f"not valid JSON: {e}")

    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail("traceEvents missing or empty")

    spans = []
    for i, e in enumerate(events):
        for key in ("name", "ph", "pid", "tid", "ts"):
            if key not in e:
                return fail(f"event {i} lacks '{key}': {e}")
        if e["ph"] == "X":
            if "dur" not in e or e["dur"] < 0:
                return fail(f"complete event {i} lacks a nonnegative dur")
            spans.append(e)
        elif e["ph"] == "C":
            if "value" not in e.get("args", {}):
                return fail(f"counter event {i} lacks args.value")
        else:
            return fail(f"event {i} has unexpected phase '{e['ph']}'")

    # Nesting: every depth>0 span is contained in a shallower span that
    # encloses it on the same thread.
    for e in spans:
        depth = e.get("args", {}).get("depth", 0)
        if depth == 0:
            continue
        enclosed = any(
            p is not e and p["tid"] == e["tid"]
            and p.get("args", {}).get("depth", 0) < depth
            and p["ts"] <= e["ts"]
            and e["ts"] + e["dur"] <= p["ts"] + p["dur"]
            for p in spans)
        if not enclosed:
            return fail(f"span at depth {depth} is not nested: {e}")

    print(f"check_trace.py: OK ({len(spans)} spans, "
          f"{len(events) - len(spans)} counter samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
