#!/usr/bin/env python3
"""Aggregates aisprof --json reports and google-benchmark JSON output into
one flat benchmark snapshot (see scripts/bench_json.sh):

    {"schema": 1, "benchmarks": [
        {"name": ..., "cycles": ..., "compile_ms": ...}, ...]}

Cycles are simulated machine cycles (cycles_after for trace/cfg compiles,
cycles/iteration for loops, absent for pure-runtime rows); compile_ms is
scheduler wall time per compile.

Compare mode checks a fresh snapshot against a committed baseline:

    bench_json.py --compare BENCH_PR3.json --current BENCH_PR4.json \
        --max-regress 1.15

fails (exit 1) when any benchmark present in both files got slower than
max-regress x baseline compile_ms, or when any *cycles* row changed at all
(cycles are deterministic simulation output — any drift is a behavior
change, not noise).

Merge mode builds a best-of-K snapshot from repeated runs:

    bench_json.py --merge-min run1.json run2.json run3.json \
        --out BENCH_PR10.json

Use it when regenerating a committed baseline on a shared/noisy host:
each row keeps its fastest observation, which converges on the
quiet-machine value (cycles must agree across runs — divergence fails).
"""
import argparse
import json
import os
import sys


def row_from_aisprof(path):
    with open(path) as f:
        report = json.load(f)
    name = os.path.splitext(os.path.basename(report["file"]))[0]
    row = {
        "name": f"{name}.{report['mode']}",
        "machine": report["machine"],
        "compile_ms": report["compile_ms"],
    }
    if report["mode"] == "loop":
        row["cycles"] = report["cycles_per_iteration"]
    else:
        row["cycles"] = report["cycles_after"]
        row["cycles_before"] = report["cycles_before"]
    stalls = report.get("stalls")
    if stalls:
        row["stall_latency"] = stalls["latency"]
        row["stall_window"] = stalls["window"]
    return row


def rows_from_google_benchmark(path):
    with open(path) as f:
        report = json.load(f)
    rows = []
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[b["time_unit"]]
        rows.append({
            "name": b["name"],
            "compile_ms": round(b["real_time"] * scale, 4),
        })
    return rows


def row_from_analysis(path, max_overhead):
    """Folds a bench_analysis --json report into one snapshot row and
    enforces the gating-overhead budget: the corpus-aggregate cost of the
    exit-code-relevant analysis rules must stay below max_overhead percent
    of end-to-end compile time (docs/PERFORMANCE.md).  Returns (row, ok).
    The row intentionally carries neither compile_ms nor cycles so compare
    mode never gates on these microsecond-scale, noise-dominated timings."""
    with open(path) as f:
        report = json.load(f)
    total = report["total"]
    ok = total["overhead_pct"] < max_overhead
    status = "ok" if ok else "FAIL"
    print(f"{status:4} analysis overhead: {total['overhead_pct']:.1f}% "
          f"gating / {total['full_pct']:.1f}% full "
          f"(budget {max_overhead}%)")
    if not ok:
        print(f"REGRESSION: analysis gating overhead "
              f"{total['overhead_pct']:.1f}% exceeds {max_overhead}% budget",
              file=sys.stderr)
    row = {
        "name": "analysis_overhead.corpus",
        "analysis_ms": total["analysis_ms"],
        "overhead_pct": round(total["overhead_pct"], 2),
        "full_pct": round(total["full_pct"], 2),
    }
    return row, ok


def row_from_obs(path, max_overhead):
    """Folds a bench_obs --json report into one snapshot row and enforces
    the telemetry budget: metrics-enabled compiles must stay below
    max_overhead percent of the runtime-disabled corpus aggregate
    (docs/OBSERVABILITY.md).  The flight-recorder arm and the ns/record
    microbenchmark are reported but not gated.  Returns (row, ok)."""
    with open(path) as f:
        report = json.load(f)
    total = report["total"]
    ok = total["overhead_pct"] < max_overhead
    status = "ok" if ok else "FAIL"
    print(f"{status:4} telemetry overhead: {total['overhead_pct']:.1f}% "
          f"metrics / {total['flight_pct']:.1f}% flight, "
          f"{total['record_ns']:.0f} ns/record (budget {max_overhead}%)")
    if not ok:
        print(f"REGRESSION: metrics-enabled compile overhead "
              f"{total['overhead_pct']:.1f}% exceeds {max_overhead}% budget",
              file=sys.stderr)
    row = {
        "name": "obs_overhead.corpus",
        "overhead_pct": round(total["overhead_pct"], 2),
        "flight_pct": round(total["flight_pct"], 2),
        "record_ns": round(total["record_ns"], 1),
    }
    return row, ok


def row_from_server(path):
    """Folds a bench_server --json soak report into one snapshot row.
    The daemon gates itself (--min-warm-speedup, --max-rss-growth-mb,
    --min-tcp-ratio, --max-qos-p99-factor, --min-fifo-qos-ratio exit
    nonzero), so the row carries the latency numbers for the record but no
    compile_ms/cycles — socket round-trip times are load-dependent and must
    not trip the 1.15x compare gate."""
    with open(path) as f:
        report = json.load(f)
    row = {
        "name": "server_soak.warm_cache",
        "requests": report["requests"],
        "clients": report["clients"],
        "cold_p50_us": report["cold_p50_us"],
        "cold_p99_us": report["cold_p99_us"],
        "warm_p50_us": report["warm_p50_us"],
        "warm_p99_us": report["warm_p99_us"],
        "warm_speedup_p50": report["warm_speedup_p50"],
        "rss_growth_mb": report["rss_growth_mb"],
        "shard_sweep_rps": {f"c{s['clients']}/s{s['shards']}":
                            round(s["rps"], 1)
                            for s in report.get("shards", [])},
    }
    tcp = report.get("tcp")
    if tcp:
        row["tcp_unix_rps"] = round(tcp["unix_rps"], 1)
        row["tcp_rps"] = round(tcp["tcp_rps"], 1)
        row["tcp_ratio"] = round(tcp["ratio"], 3)
    qos = report.get("qos")
    if qos:
        row["qos_uncontended_p99_us"] = qos["uncontended_p99_us"]
        row["qos_fifo_p99_us"] = qos["fifo_p99_us"]
        row["qos_p99_us"] = qos["qos_p99_us"]
        row["qos_factor"] = round(qos["qos_factor"], 2)
        row["qos_fifo_factor"] = round(qos["fifo_factor"], 2)
    print(f"ok   server soak: cold p50 {report['cold_p50_us']:.0f}us, "
          f"warm p50 {report['warm_p50_us']:.0f}us "
          f"({report['warm_speedup_p50']:.1f}x), "
          f"rss growth {report['rss_growth_mb']:.1f} MiB")
    if tcp:
        print(f"ok   server tcp: {tcp['tcp_rps']:.0f} req/s vs unix "
              f"{tcp['unix_rps']:.0f} req/s (ratio {tcp['ratio']:.2f})")
    if qos:
        print(f"ok   server qos: interactive p99 contended "
              f"{qos['qos_p99_us']:.0f}us = {qos['qos_factor']:.1f}x "
              f"uncontended (fifo {qos['fifo_factor']:.1f}x)")
    return row


def load_rows(path):
    with open(path) as f:
        snapshot = json.load(f)
    return {b["name"]: b for b in snapshot["benchmarks"]}


def compare(baseline_path, current_path, max_regress):
    """Returns the process exit code: 0 clean, 1 on regression."""
    baseline = load_rows(baseline_path)
    current = load_rows(current_path)
    shared = sorted(baseline.keys() & current.keys())
    if not shared:
        print("bench_json.py: no common benchmarks to compare",
              file=sys.stderr)
        return 2

    failures = []
    for name in shared:
        base, cur = baseline[name], current[name]
        if base.get("compile_ms") and cur.get("compile_ms"):
            ratio = cur["compile_ms"] / base["compile_ms"]
            status = "FAIL" if ratio > max_regress else "ok"
            print(f"{status:4} {name}: {base['compile_ms']}ms -> "
                  f"{cur['compile_ms']}ms ({ratio:.2f}x)")
            if ratio > max_regress:
                failures.append(f"{name} compile time {ratio:.2f}x baseline")
        if "cycles" in base and base["cycles"] != cur.get("cycles"):
            failures.append(
                f"{name} cycles changed: {base['cycles']} -> "
                f"{cur.get('cycles')}")
    only = sorted(set(baseline) - set(current))
    if only:
        print(f"note: {len(only)} baseline rows missing from current: "
              f"{', '.join(only[:5])}{'...' if len(only) > 5 else ''}")
    # Benchmarks that exist only in the current snapshot are fine: a PR that
    # adds coverage must not fail its own gate for lacking baseline rows.
    new = sorted(set(current) - set(baseline))
    if new:
        print(f"note: {len(new)} new benchmarks without a baseline: "
              f"{', '.join(new[:5])}{'...' if len(new) > 5 else ''}")

    for f in failures:
        print(f"REGRESSION: {f}", file=sys.stderr)
    return 1 if failures else 0


def merge_min(paths, out_path):
    """Merges N snapshots into one, keeping each row from the run where its
    compile_ms was lowest.  Best-of-K is the standard robust estimator for
    noisy shared hosts: a row's minimum over runs converges on its
    quiet-machine value, while any single run carries scheduler/throttling
    spikes on a random subset of rows.  Deterministic fields must agree
    across runs — divergent cycles fail the merge (that is a behavior
    change, not noise).  Rows without compile_ms keep their last-run value.
    """
    merged = {}
    for path in paths:
        for name, row in load_rows(path).items():
            prev = merged.get(name)
            if prev is not None and "cycles" in prev and \
                    prev["cycles"] != row.get("cycles"):
                print(f"bench_json.py: {name} cycles diverge across runs: "
                      f"{prev['cycles']} vs {row.get('cycles')}",
                      file=sys.stderr)
                return 1
            if prev is None or not prev.get("compile_ms") or \
                    not row.get("compile_ms") or \
                    row["compile_ms"] < prev["compile_ms"]:
                merged[name] = row
    with open(out_path, "w") as f:
        json.dump({"schema": 1, "benchmarks": list(merged.values())}, f,
                  indent=2)
        f.write("\n")
    print(f"merged {len(paths)} runs -> {out_path} ({len(merged)} rows)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("aisprof_reports", nargs="*",
                        help="aisprof --json output files")
    parser.add_argument("--google-benchmark",
                        help="google-benchmark --benchmark_format=json file")
    parser.add_argument("--analysis",
                        help="bench_analysis --json report file")
    parser.add_argument("--max-analysis-overhead", type=float, default=5.0,
                        help="allowed gating-analysis overhead as a percent "
                             "of corpus compile time (default: 5)")
    parser.add_argument("--obs",
                        help="bench_obs --json report file")
    parser.add_argument("--server",
                        help="bench_server --json soak report file")
    parser.add_argument("--max-obs-overhead", type=float, default=3.0,
                        help="allowed metrics-enabled compile overhead as a "
                             "percent of the runtime-disabled corpus "
                             "aggregate (default: 3)")
    parser.add_argument("--out", default="BENCH_PR10.json")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="baseline snapshot to diff --current against")
    parser.add_argument("--current", metavar="SNAPSHOT",
                        help="fresh snapshot for --compare mode")
    parser.add_argument("--max-regress", type=float, default=1.15,
                        help="allowed compile_ms ratio vs baseline "
                             "(default: 1.15)")
    parser.add_argument("--merge-min", nargs="+", metavar="SNAPSHOT",
                        help="merge N snapshots into --out, keeping each "
                             "row's best (min compile_ms) run")
    args = parser.parse_args()

    if args.merge_min:
        return merge_min(args.merge_min, args.out)
    if args.compare:
        if not args.current:
            parser.error("--compare requires --current")
        return compare(args.compare, args.current, args.max_regress)

    benchmarks = [row_from_aisprof(p) for p in args.aisprof_reports]
    if args.google_benchmark:
        benchmarks += rows_from_google_benchmark(args.google_benchmark)
    analysis_ok = True
    if args.analysis:
        row, analysis_ok = row_from_analysis(args.analysis,
                                             args.max_analysis_overhead)
        benchmarks.append(row)
    obs_ok = True
    if args.obs:
        row, obs_ok = row_from_obs(args.obs, args.max_obs_overhead)
        benchmarks.append(row)
    if args.server:
        benchmarks.append(row_from_server(args.server))
    if not benchmarks:
        print("bench_json.py: no input reports", file=sys.stderr)
        return 2

    with open(args.out, "w") as f:
        json.dump({"schema": 1, "benchmarks": benchmarks}, f, indent=2)
        f.write("\n")
    return 0 if analysis_ok and obs_ok else 1


if __name__ == "__main__":
    sys.exit(main())
