#!/usr/bin/env python3
"""Aggregates aisprof --json reports and google-benchmark JSON output into
one flat benchmark snapshot (see scripts/bench_json.sh):

    {"schema": 1, "benchmarks": [
        {"name": ..., "cycles": ..., "compile_ms": ...}, ...]}

Cycles are simulated machine cycles (cycles_after for trace/cfg compiles,
cycles/iteration for loops, absent for pure-runtime rows); compile_ms is
scheduler wall time per compile.
"""
import argparse
import json
import os
import sys


def row_from_aisprof(path):
    with open(path) as f:
        report = json.load(f)
    name = os.path.splitext(os.path.basename(report["file"]))[0]
    row = {
        "name": f"{name}.{report['mode']}",
        "machine": report["machine"],
        "compile_ms": report["compile_ms"],
    }
    if report["mode"] == "loop":
        row["cycles"] = report["cycles_per_iteration"]
    else:
        row["cycles"] = report["cycles_after"]
        row["cycles_before"] = report["cycles_before"]
    stalls = report.get("stalls")
    if stalls:
        row["stall_latency"] = stalls["latency"]
        row["stall_window"] = stalls["window"]
    return row


def rows_from_google_benchmark(path):
    with open(path) as f:
        report = json.load(f)
    rows = []
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[b["time_unit"]]
        rows.append({
            "name": b["name"],
            "compile_ms": round(b["real_time"] * scale, 4),
        })
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("aisprof_reports", nargs="*",
                        help="aisprof --json output files")
    parser.add_argument("--google-benchmark",
                        help="google-benchmark --benchmark_format=json file")
    parser.add_argument("--out", default="BENCH_PR2.json")
    args = parser.parse_args()

    benchmarks = [row_from_aisprof(p) for p in args.aisprof_reports]
    if args.google_benchmark:
        benchmarks += rows_from_google_benchmark(args.google_benchmark)
    if not benchmarks:
        print("bench_json.py: no input reports", file=sys.stderr)
        return 2

    with open(args.out, "w") as f:
        json.dump({"schema": 1, "benchmarks": benchmarks}, f, indent=2)
        f.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
