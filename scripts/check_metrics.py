#!/usr/bin/env python3
"""Validates a Prometheus text exposition written by --metrics-out /
MetricRegistry::write_prometheus (CI runs this on every telemetry
artifact).

Checks: every line is a `# TYPE` comment or a sample; metric and label
names use the Prometheus charset; every sample belongs to a declared
family of the right shape; counter and gauge values are non-negative
numbers (counters are monotone from zero, so a negative snapshot value is
impossible); and each histogram series has strictly increasing `le`
bucket bounds with non-decreasing cumulative counts, a `+Inf` bucket
equal to its `_count`, and a `_sum` sample.

`--require FAMILY` (repeatable) additionally asserts that the named
family is declared and carries at least one sample — CI uses it to pin
the resource gauges (mem_peak_rss_bytes, arena_high_water) that every
`--metrics-out` run must publish.
"""
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>\S+)$")
LABEL_RE = re.compile(r'^(?P<name>[^=]+)="(?P<value>(?:[^"\\]|\\.)*)"$')


def fail(msg):
    print(f"check_metrics.py: {msg}", file=sys.stderr)
    return 1


def parse_labels(text):
    """'a="1",b="2"' -> sorted ((name, value), ...); None on a bad pair."""
    if not text:
        return ()
    pairs = []
    for part in text.split(","):
        m = LABEL_RE.match(part)
        if not m or not LABEL_NAME_RE.match(m.group("name")):
            return None
        pairs.append((m.group("name"), m.group("value")))
    return tuple(sorted(pairs))


def base_family(name, families):
    """The declared histogram family a _bucket/_sum/_count sample extends,
    or the family matching `name` itself; None when undeclared."""
    if name in families:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if families.get(base) == "histogram":
                return base
    return None


def main(argv):
    required = []
    args = []
    it = iter(argv[1:])
    for a in it:
        if a == "--require":
            required.append(next(it, None))
        else:
            args.append(a)
    if len(args) != 1 or None in required:
        return fail("usage: check_metrics.py METRICS.prom "
                    "[--require FAMILY]...")

    families = {}          # name -> type
    histograms = {}        # (family, labels-minus-le) -> {...}
    sampled = set()        # families with at least one sample
    samples = 0
    with open(args[0]) as f:
        lines = f.read().splitlines()
    if not lines:
        return fail("empty exposition")

    for i, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "TYPE":
                return fail(f"line {i}: unexpected comment '{line}'")
            _, _, name, kind = parts
            if not NAME_RE.match(name):
                return fail(f"line {i}: bad metric name '{name}'")
            if kind not in ("counter", "gauge", "histogram"):
                return fail(f"line {i}: unknown type '{kind}'")
            if name in families:
                return fail(f"line {i}: duplicate TYPE for '{name}'")
            families[name] = kind
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            return fail(f"line {i}: unparseable sample '{line}'")
        name = m.group("name")
        labels = parse_labels(m.group("labels") or "")
        if labels is None:
            return fail(f"line {i}: bad label pair in '{line}'")
        try:
            value = float(m.group("value"))
        except ValueError:
            return fail(f"line {i}: non-numeric value in '{line}'")
        samples += 1

        family = base_family(name, families)
        if family is None:
            return fail(f"line {i}: sample '{name}' has no TYPE declaration")
        sampled.add(family)
        kind = families[family]
        if value < 0:
            return fail(f"line {i}: negative value in '{line}'")

        if kind != "histogram":
            continue
        le = dict(labels).get("le")
        series_labels = tuple(p for p in labels if p[0] != "le")
        series = histograms.setdefault(
            (family, series_labels),
            {"buckets": [], "sum": None, "count": None, "line": i})
        if name.endswith("_bucket"):
            if le is None:
                return fail(f"line {i}: bucket sample without 'le'")
            bound = float("inf") if le == "+Inf" else float(le)
            series["buckets"].append((bound, value, i))
        elif name.endswith("_sum"):
            series["sum"] = value
        elif name.endswith("_count"):
            series["count"] = value
        else:
            return fail(f"line {i}: bare histogram sample '{line}'")

    for (family, labels), series in histograms.items():
        where = f"histogram {family}{dict(labels) if labels else ''}"
        buckets = series["buckets"]
        if not buckets or buckets[-1][0] != float("inf"):
            return fail(f"{where}: missing or misplaced +Inf bucket")
        if series["sum"] is None or series["count"] is None:
            return fail(f"{where}: missing _sum or _count")
        for (lo, lo_n, _), (hi, hi_n, line) in zip(buckets, buckets[1:]):
            if hi <= lo:
                return fail(f"{where} line {line}: 'le' bounds not "
                            f"increasing ({lo} then {hi})")
            if hi_n < lo_n:
                return fail(f"{where} line {line}: cumulative bucket count "
                            f"fell ({lo_n} then {hi_n})")
        if buckets[-1][1] != series["count"]:
            return fail(f"{where}: +Inf bucket {buckets[-1][1]} != _count "
                        f"{series['count']}")

    if samples == 0:
        return fail("no samples")
    for name in required:
        if name not in sampled:
            return fail(f"required family '{name}' is missing or empty")
    print(f"check_metrics.py: OK ({len(families)} families, "
          f"{samples} samples, {len(histograms)} histogram series)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
