#!/usr/bin/env sh
# Machine-readable benchmark snapshot: runs aisprof over every shipped
# example plus the google-benchmark compile-time suite and aggregates the
# results (name / cycles / compile-ms) into one JSON file.
#
#   sh scripts/bench_json.sh [BUILD_DIR] [OUT_FILE]
#
# The committed BENCH_PR10.json at the repo root is this script's output;
# regenerate it after scheduler changes so the numbers stay honest.
# BENCH_PR9.json is the frozen previous-PR baseline that CI's perf-smoke
# job diffs fresh numbers against (bench_json.py --compare); the baseline
# rolls forward one PR at a time (see docs/PERFORMANCE.md).
set -eu

BUILD=${1:-build}
OUT=${2:-BENCH_PR10.json}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

EXAMPLES=$(dirname "$0")/../examples

# Per-example aisprof reports; the mode follows the example's shape.
"$BUILD/tools/aisprof" --in "$EXAMPLES/fig3_loop.s" --mode loop \
    --repeat 50 --json "$TMP/fig3_loop.json" > /dev/null
"$BUILD/tools/aisprof" --in "$EXAMPLES/two_block_trace.s" --mode trace \
    --repeat 50 --json "$TMP/two_block_trace.json" > /dev/null
"$BUILD/tools/aisprof" --in "$EXAMPLES/memory_alias.s" --mode trace \
    --repeat 50 --json "$TMP/memory_alias.json" > /dev/null
"$BUILD/tools/aisprof" --in "$EXAMPLES/diamond_cfg.s" --mode cfg \
    --repeat 50 --json "$TMP/diamond_cfg.json" > /dev/null

# Scheduler-runtime scaling (google-benchmark's own JSON writer).
# 0.2s per benchmark: the sub-50us microbenchmarks flap past the
# perf-smoke 1.15x gate at shorter measurement times.
"$BUILD/bench/bench_compile_time" --benchmark_format=json \
    --benchmark_min_time=0.2 > "$TMP/compile_time.json" 2> /dev/null

# Static-analysis ride-along cost; bench_json.py asserts the gating rules
# stay under 5% of corpus compile time.
"$BUILD/bench/bench_analysis" --repeat 80 \
    --json "$TMP/analysis.json" > /dev/null

# Telemetry cost; bench_json.py asserts metrics-enabled compiles stay
# under 3% of the runtime-disabled corpus aggregate.  120 repeats: the
# few-percent delta is jitter-dominated at shorter measurement times and
# flaps past the 3% gate.
"$BUILD/bench/bench_obs" --repeat 120 \
    --json "$TMP/obs.json" > /dev/null

# Daemon soak: 1e5 warm requests through the socket protocol; the bench
# gates itself (warm p50 must beat cold p50 by >= 3x, soak RSS growth must
# stay flat, TCP throughput within 15% of unix, QoS-contended interactive
# p99 <= 3x uncontended with FIFO measurably worse) and exits nonzero on
# violation (docs/SERVER.md).
"$BUILD/bench/bench_server" --requests 100000 \
    --min-warm-speedup 3 --max-rss-growth-mb 64 \
    --min-tcp-ratio 0.85 --max-qos-p99-factor 3 --min-fifo-qos-ratio 1.3 \
    --shards 1,16,64,256 --sweep-clients 64,128,256 \
    --json "$TMP/server.json" > /dev/null

python3 "$(dirname "$0")/bench_json.py" \
    --out "$OUT" \
    --google-benchmark "$TMP/compile_time.json" \
    --analysis "$TMP/analysis.json" \
    --obs "$TMP/obs.json" \
    --server "$TMP/server.json" \
    "$TMP"/fig3_loop.json "$TMP"/two_block_trace.json \
    "$TMP"/memory_alias.json "$TMP"/diamond_cfg.json

echo "wrote $OUT"
