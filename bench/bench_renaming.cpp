// E13: register renaming × anticipatory scheduling.
//
// §6 notes that schedulers either encode allocator-induced anti-dependences
// in the graph or assume renaming removed them.  This experiment measures
// how much scheduling freedom renaming restores under tight register pools:
// random IR traces with 3-6 general registers, scheduled with and without
// the local renaming pass, executed at several window sizes.
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "ir/depbuild.hpp"
#include "ir/rename.hpp"
#include "support/cli.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"
#include "workloads/random_ir.hpp"

int main(int argc, char** argv) {
  using namespace ais;
  using benchutil::RatioMean;

  const CliArgs args(argc, argv);
  const int trials = static_cast<int>(args.get_int("trials", 30));

  const MachineModel machine = deep_pipeline();
  const int windows[] = {1, 2, 4, 8};

  std::printf("E13: local register renaming (random IR traces, 3 blocks x "
              "12 insts, deep pipeline; %d trials per register-pool size; "
              "values are geomean cycles of the renamed program relative to "
              "the original, both anticipatorily scheduled)\n\n",
              trials);

  TextTable t({"gprs", "edges removed (%)", "W=1", "W=2", "W=4", "W=8"});
  for (const int gprs : {3, 4, 6}) {
    Prng prng(0xe13 + static_cast<std::uint64_t>(gprs));
    std::map<int, RatioMean> ratio;
    RatioMean edge_drop;
    for (int trial = 0; trial < trials; ++trial) {
      RandomIrParams params;
      params.num_insts = 12;
      params.num_gprs = gprs;
      params.mem_frac = 0.25;
      const Trace trace = random_ir_trace(prng, params, 3);
      const Trace renamed = rename_trace(trace);

      const DepGraph g0 = build_trace_graph(trace, machine);
      const DepGraph g1 = build_trace_graph(renamed, machine);
      edge_drop.add(static_cast<double>(g1.num_edges() + 1) /
                    static_cast<double>(g0.num_edges() + 1));

      for (const int w : windows) {
        const RankScheduler s0(g0, machine);
        const RankScheduler s1(g1, machine);
        LookaheadOptions opts;
        opts.window = w;
        const Time before = simulated_completion(
            g0, machine, schedule_trace(s0, opts).priority_list(), w);
        const Time after = simulated_completion(
            g1, machine, schedule_trace(s1, opts).priority_list(), w);
        ratio[w].add(static_cast<double>(after) /
                     static_cast<double>(before));
      }
    }
    std::vector<std::string> row = {
        std::to_string(gprs),
        fmt_double(100.0 * (1.0 - edge_drop.geomean()), 1)};
    for (const int w : windows) {
      row.push_back(fmt_double(ratio[w].geomean(), 3));
    }
    t.add_row(row);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\n(< 1.000 = renaming made the scheduled code faster)\n");
  return 0;
}
