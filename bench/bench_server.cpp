// Daemon soak bench: an in-process aisd server driven closed-loop over a
// repeated-body request mix, reporting cold-cache vs warm-cache latency
// from the daemon's own server_request_us histogram (snapshot deltas per
// phase), a shard-count contention sweep, and a leak gate over the soak
// (resident set must stop growing once the per-worker scratch pools and
// the schedule cache reach steady state).  CI perf-smoke runs this via
// scripts/bench_json.sh; see docs/SERVER.md.
//
//   bench_server [--requests N] [--bodies B] [--clients C] [--threads T]
//                [--blocks N] [--insts K] [--window W] [--machine NAME]
//                [--seed S] [--shards "1,4,16,64"] [--json FILE]
//                [--min-warm-speedup X] [--max-rss-growth-mb MB]
//
// Phases (all through the real socket protocol, C client connections):
//   cold:  in-memory cache cleared, every body compiled once per round
//          until at least --cold-requests samples exist — every request
//          misses the trace cache.
//   warm:  one priming round, then --requests requests drawn uniformly
//          from the body pool — steady-state hits.  The leak gate samples
//          VmRSS after priming and again after the soak.
//   sweep: per shard count, cache rebuilt + primed, then a timed burst;
//          reported as requests/second.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/schedule_cache.hpp"
#include "ir/instruction.hpp"
#include "obs/metrics.hpp"
#include "obs/process_stats.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "support/cli.hpp"
#include "support/prng.hpp"
#include "workloads/random_ir.hpp"

namespace {

using namespace ais;

std::string render_trace(const Trace& trace) {
  std::string text;
  for (const BasicBlock& bb : trace.blocks) {
    text += "block " + bb.label + ":\n";
    for (const Instruction& inst : bb.insts) {
      text += "  " + inst.to_string() + "\n";
    }
  }
  return text;
}

/// Current resident set in bytes from /proc/self/statm (0 off-Linux, which
/// disables the leak gate rather than failing it).
std::int64_t current_rss_bytes() {
  std::ifstream in("/proc/self/statm");
  if (!in.is_open()) return 0;
  long long total_pages = 0;
  long long resident_pages = 0;
  in >> total_pages >> resident_pages;
  if (!in.good()) return 0;
  return static_cast<std::int64_t>(resident_pages) *
         static_cast<std::int64_t>(sysconf(_SC_PAGESIZE));
}

/// Per-phase view of a monotone histogram: counts accumulated since `from`.
obs::HistogramSnapshot snapshot_delta(const obs::HistogramSnapshot& from,
                                      const obs::HistogramSnapshot& to) {
  obs::HistogramSnapshot d;
  for (std::size_t i = 0; i < obs::kHistogramBuckets; ++i) {
    d.counts[i] = to.counts[i] - from.counts[i];
  }
  d.count = to.count - from.count;
  d.sum = to.sum - from.sum;
  d.max = to.max;  // upper clamp only; fine for per-phase quantiles
  return d;
}

struct DriveStats {
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  double elapsed_s = 0;
  double rps() const {
    return elapsed_s > 0 ? static_cast<double>(ok + errors) / elapsed_s : 0;
  }
};

/// Closed-loop drive: `clients` connections, each keeping one request in
/// flight, until `requests` total have been answered.  pick(id) selects the
/// body for request id.
template <typename PickBody>
DriveStats drive(const std::string& socket_path, std::size_t requests,
                 std::size_t clients, const std::string& machine, int window,
                 const PickBody& pick) {
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> errors{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      server::Client client;
      std::string error;
      if (!client.connect(socket_path, &error)) {
        std::fprintf(stderr, "bench_server: connect: %s\n", error.c_str());
        return;
      }
      server::Request req;
      req.verb = server::kVerbCompile;
      req.options["mode"] = "trace";
      req.options["machine"] = machine;
      req.options["window"] = std::to_string(window);
      for (;;) {
        const std::size_t id = next.fetch_add(1, std::memory_order_relaxed);
        if (id >= requests) return;
        req.body = pick(id);
        server::Response resp;
        if (!client.call(req, &resp, &error)) {
          errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        (resp.ok ? ok : errors).fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  DriveStats stats;
  stats.ok = ok.load();
  stats.errors = errors.load();
  stats.elapsed_s = std::chrono::duration<double>(t1 - t0).count();
  return stats;
}

std::vector<std::size_t> parse_shards(const std::string& spec) {
  std::vector<std::size_t> out;
  std::istringstream in(spec);
  std::string tok;
  while (std::getline(in, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stoul(tok));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::size_t requests =
      static_cast<std::size_t>(args.get_int("requests", 100'000));
  const std::size_t cold_requests =
      static_cast<std::size_t>(args.get_int("cold-requests", 2'000));
  const std::size_t bodies =
      static_cast<std::size_t>(args.get_int("bodies", 256));
  const std::size_t clients =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   args.get_int("clients", 8)));
  const int blocks = static_cast<int>(args.get_int("blocks", 4));
  const int insts = static_cast<int>(args.get_int("insts", 12));
  const int window = static_cast<int>(args.get_int("window", 2));
  const std::string machine = args.get_string("machine", "rs6000");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  const double min_warm_speedup = args.get_double("min-warm-speedup", 0.0);
  const double max_rss_growth_mb = args.get_double("max-rss-growth-mb", 0.0);
  const std::vector<std::size_t> shard_counts =
      parse_shards(args.get_string("shards", "1,4,16,64"));

  // Body pool: `bodies` distinct traces; a request mix drawn uniformly from
  // it re-compiles every body requests/bodies times — the repeated-body
  // warm-cache regime.
  Prng prng(seed);
  RandomIrParams ir_params;
  ir_params.num_insts = insts;
  std::vector<std::string> pool;
  pool.reserve(bodies);
  for (std::size_t i = 0; i < bodies; ++i) {
    pool.push_back(render_trace(random_ir_trace(prng, ir_params, blocks)));
  }

  server::ServerOptions options;
  options.socket_path =
      "/tmp/bench_server." + std::to_string(getpid()) + ".sock";
  options.threads = static_cast<int>(args.get_int("threads", 0));
  server::Server server(options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "bench_server: %s\n", error.c_str());
    return 2;
  }
  ScheduleCache& cache = ScheduleCache::global();
  cache.set_enabled(true);

  obs::Histogram* request_us = obs::MetricRegistry::global().histogram(
      "server_request_us", {"outcome", "ok"});

  // --- cold phase: every request misses the trace cache -------------------
  std::vector<std::size_t> mix(std::max(cold_requests, bodies));
  Prng mix_prng(seed ^ 0x5eedULL);
  const obs::HistogramSnapshot before_cold = request_us->snapshot();
  DriveStats cold;
  {
    // Round-robin over the pool, clearing the cache between rounds so
    // repeats of a body never hit.
    std::size_t done = 0;
    while (done < cold_requests) {
      cache.clear();
      const std::size_t round = std::min(bodies, cold_requests - done);
      const DriveStats r =
          drive(options.socket_path, round, clients, machine, window,
                [&](std::size_t id) -> const std::string& {
                  return pool[id % bodies];
                });
      cold.ok += r.ok;
      cold.errors += r.errors;
      cold.elapsed_s += r.elapsed_s;
      done += round;
    }
  }
  const obs::HistogramSnapshot cold_hist =
      snapshot_delta(before_cold, request_us->snapshot());

  // --- warm phase + soak leak gate ----------------------------------------
  cache.clear();
  // Priming round: one compile per body fills the cache.
  drive(options.socket_path, bodies, clients, machine, window,
        [&](std::size_t id) -> const std::string& { return pool[id % bodies]; });
  const std::int64_t rss_after_prime = current_rss_bytes();

  std::vector<std::uint32_t> picks(requests);
  for (std::uint32_t& p : picks) {
    p = static_cast<std::uint32_t>(mix_prng.index(bodies));
  }
  const obs::HistogramSnapshot before_warm = request_us->snapshot();
  const DriveStats warm =
      drive(options.socket_path, requests, clients, machine, window,
            [&](std::size_t id) -> const std::string& {
              return pool[picks[id]];
            });
  const obs::HistogramSnapshot warm_hist =
      snapshot_delta(before_warm, request_us->snapshot());
  const std::int64_t rss_after_soak = current_rss_bytes();
  const double rss_growth_mb =
      static_cast<double>(rss_after_soak - rss_after_prime) /
      (1024.0 * 1024.0);

  // --- shard sweep: contention on the shared cache ------------------------
  // The server is quiescent between phases (every drive() call joins its
  // clients after their last reply), which is what set_shard_count needs.
  struct ShardRow {
    std::size_t shards = 0;
    double rps = 0;
  };
  std::vector<ShardRow> sweep;
  const std::size_t sweep_requests =
      std::min<std::size_t>(requests, 20'000);
  for (const std::size_t n : shard_counts) {
    cache.set_shard_count(n);
    drive(options.socket_path, bodies, clients, machine, window,
          [&](std::size_t id) -> const std::string& {
            return pool[id % bodies];
          });
    const DriveStats burst =
        drive(options.socket_path, sweep_requests, clients, machine, window,
              [&](std::size_t id) -> const std::string& {
                return pool[picks[id % picks.size()]];
              });
    sweep.push_back({cache.shard_count(), burst.rps()});
  }
  cache.set_shard_count(ScheduleCache::kNumShards);

  server.stop();

  const double cold_p50 = static_cast<double>(cold_hist.quantile(0.50));
  const double cold_p99 = static_cast<double>(cold_hist.quantile(0.99));
  const double warm_p50 = static_cast<double>(warm_hist.quantile(0.50));
  const double warm_p99 = static_cast<double>(warm_hist.quantile(0.99));
  const double speedup = warm_p50 > 0 ? cold_p50 / warm_p50 : 0.0;

  std::printf("bench_server: cold  %llu requests p50=%.0fus p99=%.0fus "
              "(%.1f req/s)\n",
              static_cast<unsigned long long>(cold_hist.count), cold_p50,
              cold_p99, cold.rps());
  std::printf("bench_server: warm  %llu requests p50=%.0fus p99=%.0fus "
              "(%.1f req/s), p50 speedup %.2fx\n",
              static_cast<unsigned long long>(warm_hist.count), warm_p50,
              warm_p99, warm.rps(), speedup);
  std::printf("bench_server: soak rss growth %.1f MiB "
              "(prime %.1f -> soak %.1f)\n",
              rss_growth_mb,
              static_cast<double>(rss_after_prime) / (1024.0 * 1024.0),
              static_cast<double>(rss_after_soak) / (1024.0 * 1024.0));
  for (const ShardRow& row : sweep) {
    std::printf("bench_server: shards=%zu %.1f req/s\n", row.shards, row.rps);
  }

  const std::string json_path = args.get_string("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out.is_open()) {
      std::fprintf(stderr, "bench_server: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << "{\"benchmark\": \"server\", \"requests\": " << requests
        << ", \"bodies\": " << bodies << ", \"clients\": " << clients
        << ", \"machine\": \"" << machine << "\", \"window\": " << window
        << ", \"cold_p50_us\": " << cold_p50
        << ", \"cold_p99_us\": " << cold_p99
        << ", \"cold_rps\": " << cold.rps()
        << ", \"warm_p50_us\": " << warm_p50
        << ", \"warm_p99_us\": " << warm_p99
        << ", \"warm_rps\": " << warm.rps()
        << ", \"warm_speedup_p50\": " << speedup
        << ", \"rss_growth_mb\": " << rss_growth_mb << ", \"shards\": [";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      out << (i > 0 ? ", " : "") << "{\"shards\": " << sweep[i].shards
          << ", \"rps\": " << sweep[i].rps << "}";
    }
    out << "]}\n";
  }

  int rc = 0;
  const std::uint64_t total_errors = cold.errors + warm.errors;
  if (total_errors > 0) {
    std::fprintf(stderr, "bench_server: %llu requests failed\n",
                 static_cast<unsigned long long>(total_errors));
    rc = 1;
  }
  if (min_warm_speedup > 0 && speedup < min_warm_speedup) {
    std::fprintf(stderr,
                 "bench_server: warm p50 speedup %.2fx below gate %.2fx\n",
                 speedup, min_warm_speedup);
    rc = 1;
  }
  if (max_rss_growth_mb > 0 && rss_growth_mb > max_rss_growth_mb) {
    std::fprintf(stderr,
                 "bench_server: soak RSS growth %.1f MiB exceeds budget "
                 "%.1f MiB\n",
                 rss_growth_mb, max_rss_growth_mb);
    rc = 1;
  }
  return rc;
}
